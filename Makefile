# Convenience targets for the Jade reproduction.

.PHONY: install test lint bench bench-quick bench-smoke bench-engine bench-engine-check bench-whatif-check chaos-demo chaos-smoke deploy-demo deploy-smoke market-demo market-smoke fluid-demo fluid-smoke federate-demo federation-smoke tune-demo tune-smoke figures examples trace-demo whatif-demo sweep-demo clean

install:
	pip install -e .

test:
	pytest tests/

lint:
	ruff check src tests benchmarks

# Short self-sizing run with decision tracing on, then the causal timeline.
trace-demo:
	python -m repro ramp --scale 0.15 --peak 350 --trace /tmp/repro-trace.jsonl
	python -m repro trace /tmp/repro-trace.jsonl

# Fork the managed ramp mid-climb and compare candidate configurations.
whatif-demo:
	python -m repro whatif --at 150 --scale 0.25 --peak 350 \
		--horizon 60 --warmup 45 --slo 0.25 --report /tmp/repro-whatif.json
	@echo "canonical candidate report: /tmp/repro-whatif.json"

bench:
	pytest benchmarks/ --benchmark-only -s

bench-quick:
	REPRO_BENCH_SCALE=0.35 pytest benchmarks/ --benchmark-only -s

# A single reduced-horizon figure benchmark; fast enough for CI.  0.15 is
# the smallest compression that keeps the Fig. 5 staircase shape intact.
bench-smoke:
	REPRO_BENCH_SCALE=0.15 pytest benchmarks/bench_fig5_replicas.py \
		--benchmark-only -x -q -s

# Gray failure demo: the legacy up-flag heartbeat misses a crawling DB
# replica; the phi-accrual progress detector repairs it.  Then the
# classic crash campaign with a multi-seed scorecard.
chaos-demo:
	python -m repro chaos --campaign gray --detector legacy \
		--seeds 1 --clients 60 --duration 420 --serial
	python -m repro chaos --campaign gray --seeds 1 --clients 60 \
		--duration 420 --events --serial
	python -m repro chaos --campaign crash --seeds 1,2,3 --clients 60 \
		--duration 420 --json /tmp/repro-chaos.json
	@echo "canonical scorecard: /tmp/repro-chaos.json"

# Fast resilience gate used by CI: one-seed campaigns + assertions.
chaos-smoke:
	python benchmarks/bench_chaos.py --smoke

# Zero-downtime deployment demo: a bad push caught by the canary and
# rolled back automatically, then a clean crossover bounce with the
# per-step event log, and the canonical scorecard.
deploy-demo:
	python -m repro deploy --scenario bad-push --seeds 1 --serial
	python -m repro deploy --scenario clean-bounce --strategy crossover \
		--seeds 1 --events --serial
	python -m repro deploy --scenario bad-push --seeds 1,2,3 \
		--json /tmp/repro-deploy.json
	@echo "canonical scorecard: /tmp/repro-deploy.json"

# Fast deployment gate used by CI: one-seed bad-push rollback +
# crossover-vs-brutal assertions.
deploy-smoke:
	python benchmarks/bench_deploy.py --smoke

# Heterogeneous fleet demo: the spot-heavy fleet on the Fig. 9 ramp with
# its rebalance/interruption log, the fleet-mix what-if comparison, and
# the canonical scorecard.
market-demo:
	python -m repro market --scenario spot-heavy --seeds 1 --events --serial
	python -m repro market --scenario volatile --seeds 1 --serial
	python -m repro market --scenario spot-heavy --seeds 1,2,3 \
		--json /tmp/repro-market.json
	@echo "canonical scorecard: /tmp/repro-market.json"

# Fast fleet-cost gate used by CI: one seed, same-SLO >=15% savings
# assertions.
market-smoke:
	python benchmarks/bench_market.py --smoke

# Fluid workload demo: the paper's ramp on the flow engine, a hybrid
# run switching between cohorts and fluid at 300 users, and the
# million-user ramp.
fluid-demo:
	python -m repro ramp --fluid --scale 0.25
	python -m repro ramp --fluid --fluid-threshold 300 --scale 0.25
	python -m repro ramp --fluid --cohort 2000 --peak 1000000

# Fast fluid gate used by CI: full-scale accuracy gate (identical
# replica trajectories, latency/CPU within tolerance) + the 1M-user
# wall-clock budget.
fluid-smoke:
	python benchmarks/bench_fluid.py --smoke

# Multi-region federation demo: a 3-region follow-the-sun cycle, a
# 2-region evacuation with the epoch routing log, and the 4-region
# global ramp's canonical scorecard.
federate-demo:
	python -m repro federate --scenario follow-the-sun --regions 3 --serial
	python -m repro federate --scenario evacuation --regions 2 \
		--events --serial
	python -m repro federate --scenario global-ramp --regions 4 \
		--json /tmp/repro-federation.json
	@echo "canonical scorecard: /tmp/repro-federation.json"

# Fast federation gate used by CI: 2 regions, serial-vs-parallel
# byte-identity + critical-path speedup floor.
federation-smoke:
	python benchmarks/bench_federation.py --smoke

# Controller autotuning demo: a small threshold/inhibition grid through
# the cached runner, winner written as a tuned config (re-run it: the
# second pass resolves from the cache).
tune-demo:
	python -m repro tune --app-max 0.7,0.8 --app-min 0.38 \
		--db-max 0.65,0.75 --db-min 0.4 --inhibitions 30,60 \
		--seeds 1 --out /tmp/repro-tuned.json
	@echo "tuned config: /tmp/repro-tuned.json"

# Fast autotuner gate used by CI: the 2x2 tuner-ranking smoke (the
# known-bad never-grow cell must rank last) + the one-seed
# tuned-vs-default comparison.
tune-smoke:
	python benchmarks/bench_policy.py --smoke

# Engine benchmark: every BENCH_engine.json section (micro, ramp,
# whatif, sweep, chaos, deploy, market, fluid, policy, federation) in
# one run; refreshes the committed report.
bench-engine:
	python -m repro bench --out BENCH_engine.json

# Perf gate used by CI: fail if the micro scenarios regress >25% against
# the committed report.
bench-engine-check:
	python -m repro bench --check BENCH_engine.json --tolerance 0.25

# Perf gate over the what-if work: validate the committed whatif section
# (byte-identity, >=3x memoized decision speedup), then run a 2-candidate
# parallel decision and a 2x2 sweep shard live.
bench-whatif-check:
	python -m repro bench --check-whatif BENCH_engine.json

# A small grid through the parallel cached runner (re-run it: the second
# pass resolves from the cache).
sweep-demo:
	python -m repro sweep --seeds 1,2 --scales 0.1 \
		--policies static,managed --csv /tmp/repro-sweep.csv
	@echo "sweep rows: /tmp/repro-sweep.csv"

# Regenerate every paper figure/table series into benchmarks/results/
figures: bench

examples:
	python examples/quickstart.py
	python examples/reconfiguration.py
	python examples/adl_deployment.py
	python examples/self_recovery.py
	python examples/latency_slo.py
	python examples/three_tier.py
	python examples/trace_replay.py
	python examples/self_sizing.py --quick

clean:
	rm -rf benchmarks/results .pytest_cache .benchmarks
	find . -name __pycache__ -type d -exec rm -rf {} +
