"""Shared machinery for the benchmark harness.

The paper's Figures 5–9 come from two runs of the same 3000 s workload ramp
(80 → 500 → 80 clients, +21/min): one managed by Jade, one static.  Those
runs are expensive, so they are computed once per pytest session and shared
by every figure benchmark; Table 1 uses two cheaper constant-load runs.

Every benchmark prints the series/rows it reproduces and appends them to
``benchmarks/results/<name>.txt`` so EXPERIMENTS.md can be assembled from
the artifacts.
"""

from __future__ import annotations

import os
from pathlib import Path

from typing import Optional

from repro.jade.system import ExperimentConfig
from repro.runner import CompletedRun, ExperimentRunner, ResultCache
from repro.workload.profiles import ConstantProfile, RampProfile

RESULTS_DIR = Path(__file__).parent / "results"

#: paper reference points (used in the printed paper-vs-measured tables)
PAPER = {
    "table1": {
        "throughput_rps": (12.0, 12.0),       # (with Jade, without)
        "resp_time_ms": (89.0, 87.0),
        "cpu_pct": (12.74, 12.42),
        "mem_pct": (20.1, 17.5),
    },
    "fig5_db_growth_clients": (180, 320),
    "fig5_app_growth_clients": (420,),
    "fig8_static_latency_avg_s": 10.42,
    "fig9_managed_latency_avg_ms": 590.0,
}

_cache: dict[str, CompletedRun] = {}


def _runner() -> ExperimentRunner:
    """Experiment runner for the shared figure runs.

    Parallel by default (the managed/static ramp pair computes
    concurrently on first use).  The on-disk result cache is opt-in for
    benchmarks — set ``REPRO_BENCH_CACHE=1`` — because a cache hit would
    make pytest-benchmark time a pickle load instead of a simulation.
    """
    cache = ResultCache() if os.environ.get("REPRO_BENCH_CACHE") else None
    return ExperimentRunner(cache=cache)


def _seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "1"))


def _trace_sink(label: str):
    """Opt-in decision tracing for the figure runs: set REPRO_BENCH_TRACE
    to a directory and each shared run dumps `<dir>/<label>.jsonl`
    (render with `python -m repro trace <file>`)."""
    trace_dir = os.environ.get("REPRO_BENCH_TRACE")
    if not trace_dir:
        return None
    path = Path(trace_dir)
    path.mkdir(parents=True, exist_ok=True)
    return str(path / f"{label}.jsonl")


def ramp_profile() -> RampProfile:
    """The paper's §5.2 ramp (optionally compressed via REPRO_BENCH_SCALE,
    e.g. 0.5 halves every duration while keeping the same client counts)."""
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    return RampProfile(
        warmup_s=300.0 * scale,
        step_period_s=60.0 * scale,
        cooldown_s=300.0 * scale,
    )


def _ramp_config(managed: bool, seed: int) -> ExperimentConfig:
    label = "ramp_managed" if managed else "ramp_static"
    return ExperimentConfig(
        profile=ramp_profile(),
        seed=seed,
        managed=managed,
        trace_jsonl=_trace_sink(label),
    )


def _ramp_pair(seed: int) -> None:
    """Compute the managed and static ramp runs for ``seed`` as one batch
    (they are independent, so the runner executes them concurrently)."""
    batch = {}
    for managed in (True, False):
        key = f"{'managed' if managed else 'static'}-{seed}"
        if key not in _cache:
            batch[key] = _ramp_config(managed, seed)
    if batch:
        _cache.update(_runner().run_many(batch))


def managed_ramp(seed: Optional[int] = None) -> CompletedRun:
    """The Jade-managed ramp run (Figures 5, 6, 7, 9)."""
    seed = _seed() if seed is None else seed
    key = f"managed-{seed}"
    if key not in _cache:
        _ramp_pair(seed)
    return _cache[key]


def static_ramp(seed: Optional[int] = None) -> CompletedRun:
    """The unmanaged ramp run (Figures 6, 7, 8 baselines)."""
    seed = _seed() if seed is None else seed
    key = f"static-{seed}"
    if key not in _cache:
        _ramp_pair(seed)
    return _cache[key]


def proactive_ramp(seed: Optional[int] = None) -> CompletedRun:
    """The ramp with the forecast-driven capacity manager alongside the
    reactive loops (the ``bench_ext_proactive`` treatment arm).

    Tuned for the extension benchmark: a 0.25 s SLO in the cost model (the
    ramp's reactive-growth transients sit in the 0.2–0.35 s band) and a
    lower grow margin so the planner arms one inhibition window ahead."""
    from repro.capacity import CostModel, ProactiveConfig

    seed = _seed() if seed is None else seed
    key = f"proactive-{seed}"
    if key not in _cache:
        config = ExperimentConfig(
            profile=ramp_profile(),
            seed=seed,
            managed=True,
            proactive=True,
            proactive_config=ProactiveConfig(
                min_eval_interval_s=90.0,
                grow_margin=0.85,
                cost_model=CostModel(
                    slo_latency_s=0.25, slo_violation_cost_per_s=0.2
                ),
            ),
            trace_jsonl=_trace_sink("ramp_proactive"),
        )
        _cache[key] = _runner().run(config)
    return _cache[key]


def constant80(managed: bool, seed: Optional[int] = None) -> CompletedRun:
    """300 s at 80 clients (Table 1's medium workload); the managed and
    unmanaged arms compute as one concurrent batch."""
    seed = _seed() if seed is None else seed
    key = f"const80-{managed}-{seed}"
    if key not in _cache:
        batch = {
            f"const80-{m}-{seed}": ExperimentConfig(
                profile=ConstantProfile(80, 300.0), seed=seed, managed=m
            )
            for m in (True, False)
            if f"const80-{m}-{seed}" not in _cache
        }
        _cache.update(_runner().run_many(batch))
    return _cache[key]


def emit(name: str, text: str) -> None:
    """Print a result block and persist it under benchmarks/results/."""
    banner = f"\n===== {name} =====\n"
    print(banner + text)
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")


def format_series(pairs, header: str, fmt: str = "{:10.1f}  {:10.3f}") -> str:
    lines = [header]
    lines += [fmt.format(t, v) for t, v in pairs]
    return "\n".join(lines)
