"""Ablation A6 — hardware-speed sensitivity.

§4.2: the thresholds "have been determined manually with some benchmarks
... the determination of these parameters constitutes a key challenge of
this manager".  One reason is that CPU thresholds encode the *hardware*:
on machines twice as fast, the same workload crosses the same threshold at
roughly twice the client count (or never).  This sweep quantifies that by
scaling every node's CPU speed and recording where the first DB scale-out
lands.
"""

from repro.jade.system import ExperimentConfig, ManagedSystem
from repro.workload.profiles import RampProfile

from benchmarks._shared import emit

SCALE = 0.35


def run_with_speed(speed: float) -> dict:
    profile = RampProfile(
        warmup_s=300.0 * SCALE, step_period_s=60.0 * SCALE, cooldown_s=300.0 * SCALE
    )
    cfg = ExperimentConfig(profile=profile, seed=3, node_speed=speed)
    system = ManagedSystem(cfg)
    col = system.run()
    first_grow = next(
        (
            int(col.workload.value_at(t))
            for t, d in col.reconfigurations
            if "grow: allocating" in d
        ),
        None,
    )
    return {
        "speed": speed,
        "first_grow_clients": first_grow,
        "db_peak": int(col.tier_replicas["database"].max()),
        "app_peak": int(col.tier_replicas["application"].max()),
        "latency_ms": col.latency_summary()["mean"] * 1e3,
    }


def bench_ablation_hardware_speed(benchmark):
    speeds = (0.75, 1.0, 2.0)

    def sweep():
        return [run_with_speed(s) for s in speeds]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "Ablation A6: node CPU speed vs scaling points (compressed ramp)",
        "",
        f"{'speed':>6}  {'1st grow @clients':>18}  {'peaks app/db':>13}  "
        f"{'mean lat (ms)':>14}",
    ]
    for r in results:
        first = r["first_grow_clients"] if r["first_grow_clients"] else "never"
        lines.append(
            f"{r['speed']:>6.2f}  {str(first):>18}  "
            f"{f'{r_app(r)}/{r_db(r)}':>13}  {r['latency_ms']:>14.1f}"
        )
    emit("ablation_hardware", "\n".join(lines))

    by_speed = {r["speed"]: r for r in results}
    # Slower hardware triggers earlier (fewer clients) and provisions more.
    slow, base, fast = by_speed[0.75], by_speed[1.0], by_speed[2.0]
    assert slow["first_grow_clients"] <= base["first_grow_clients"]
    # 2x hardware absorbs the peak with fewer replicas than the baseline.
    assert fast["db_peak"] + fast["app_peak"] <= base["db_peak"] + base["app_peak"]


def r_app(r):
    return r["app_peak"]


def r_db(r):
    return r["db_peak"]
