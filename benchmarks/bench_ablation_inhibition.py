"""Ablation A3 — inhibition window vs oscillation.

§5.2: "in order to prevent oscillations, a reconfiguration started by one
of the control loops inhibits any new reconfiguration for a short period
(one minute)".  This sweep removes / varies that window and counts
grow-shrink direction flips per tier — the oscillation the mechanism
exists to prevent.
"""

from repro.jade.self_optimization import LoopConfig
from repro.jade.system import ExperimentConfig, ManagedSystem
from repro.workload.profiles import PiecewiseProfile

from benchmarks._shared import emit


def run_with_inhibition(inhibition_s: float) -> dict:
    # A load level chosen to sit near the DB threshold: noise-prone.
    profile = PiecewiseProfile([(0.0, 210)], duration_s=900.0)
    cfg = ExperimentConfig(
        profile=profile,
        seed=5,
        inhibition_s=inhibition_s,
        # Narrow dead band + short windows: deliberately twitchy, so the
        # inhibition window is what stands between us and oscillation.
        db_loop=LoopConfig(window_s=20.0, max_threshold=0.70, min_threshold=0.55),
        app_loop=LoopConfig(window_s=20.0, max_threshold=0.80, min_threshold=0.38),
    )
    system = ManagedSystem(cfg)
    col = system.run()
    # Count direction flips in the database replica series.
    changes = col.replica_changes("database")
    flips = 0
    for (_, a), (_, b), (_, c) in zip(changes, changes[1:], changes[2:]):
        if (b - a) * (c - b) < 0:
            flips += 1
    return {
        "inhibition": inhibition_s,
        "reconfigs": len(changes) - 1,
        "flips": flips,
    }


def bench_ablation_inhibition_window(benchmark):
    windows = (0.0, 60.0, 240.0)

    def sweep():
        return [run_with_inhibition(w) for w in windows]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "Ablation A3: inhibition window vs oscillation (210 clients, narrow band)",
        "",
        f"{'inhibition (s)':>14}  {'reconfigs':>10}  {'direction flips':>16}",
    ]
    for r in results:
        lines.append(
            f"{r['inhibition']:>14.0f}  {r['reconfigs']:>10}  {r['flips']:>16}"
        )
    emit("ablation_inhibition", "\n".join(lines))

    by_w = {r["inhibition"]: r for r in results}
    # More inhibition, no more reconfigurations than without.
    assert by_w[240.0]["reconfigs"] <= by_w[0.0]["reconfigs"]
