"""Ablation A4 — load-balancing policy comparison.

§2 lists "Random, Round-Robin, etc."; C-JDBC ships
LeastPendingRequestsFirst.  This bench replays the same constant load
against each read-balancing policy and reports latency statistics.  With
homogeneous replicas the differences are small — which is itself the
paper-relevant observation (the autonomic layer, not the balancing policy,
is what controls performance here).
"""

from repro.jade.system import ExperimentConfig, ManagedSystem
from repro.workload.profiles import ConstantProfile

from benchmarks._shared import emit


def run_with_policy(policy: str) -> dict:
    cfg = ExperimentConfig(
        profile=ConstantProfile(250, 400.0), seed=6, managed=False
    )
    system = ManagedSystem(cfg)
    # Reconfigure C-JDBC's policy and add a second backend so balancing
    # actually has a choice.
    system.cjdbc.set_attr("policy", policy)
    system.cjdbc.content.server._load_config()
    system.db_tier.grow()
    system.kernel.run(until=60.0)
    col = system.run(duration_s=400.0)
    stats = col.latency_summary()
    reads = [b.server.reads_served for b in system.cjdbc.content.controller.backends()]
    imbalance = (max(reads) - min(reads)) / max(1, sum(reads))
    return {
        "policy": policy,
        "mean_ms": stats["mean"] * 1e3,
        "p95_ms": stats["p95"] * 1e3,
        "imbalance": imbalance,
    }


def bench_ablation_lb_policies(benchmark):
    policies = ("Random", "RoundRobin", "LeastPendingRequestsFirst")

    def sweep():
        return [run_with_policy(p) for p in policies]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "Ablation A4: C-JDBC read balancing policy (250 clients, 2 backends)",
        "",
        f"{'policy':<28}{'mean (ms)':>10}{'p95 (ms)':>10}{'imbalance':>11}",
    ]
    for r in results:
        lines.append(
            f"{r['policy']:<28}{r['mean_ms']:>10.1f}{r['p95_ms']:>10.1f}"
            f"{r['imbalance']:>11.3f}"
        )
    emit("ablation_lb", "\n".join(lines))

    by_p = {r["policy"]: r for r in results}
    # All policies keep the reads roughly balanced across equal replicas.
    for r in results:
        assert r["imbalance"] < 0.25
    # Least-pending is never the worst on mean latency.
    worst = max(results, key=lambda r: r["mean_ms"])
    assert worst["policy"] != "LeastPendingRequestsFirst"
