"""Ablation A5 — navigation-model robustness.

The quantitative experiments draw interactions i.i.d. from the RUBiS mix
(MixNavigator); real clients walk session graphs (MarkovNavigator, whose
stationary distribution only approximates the mix).  A faithful autonomic
manager must not be sensitive to that modeling choice: this bench runs the
same compressed ramp under both navigators and compares the scaling events.
"""

from repro.jade.system import ExperimentConfig, ManagedSystem
from repro.workload.profiles import RampProfile
from repro.workload.rubis import MarkovNavigator

from benchmarks._shared import emit

SCALE = 0.35


def run_with_navigator(markov: bool) -> dict:
    profile = RampProfile(
        warmup_s=300.0 * SCALE, step_period_s=60.0 * SCALE, cooldown_s=300.0 * SCALE
    )
    cfg = ExperimentConfig(profile=profile, seed=3)
    system = ManagedSystem(cfg)
    if markov:
        streams = system.streams
        system.emulator._navigator_factory = lambda cid: MarkovNavigator(
            streams.get(f"client-nav-{cid}")
        )
    col = system.run()
    events = {}
    for tier in ("database", "application"):
        grows = [
            int(col.workload.value_at(t))
            for t, v in col.replica_changes(tier)[1:]
            if v > col.tier_replicas[tier].value_at(t - 1.0)
        ]
        events[tier] = grows
    return {
        "navigator": "markov" if markov else "mix",
        "db_grow_clients": events["database"],
        "app_grow_clients": events["application"],
        "db_peak": int(col.tier_replicas["database"].max()),
        "app_peak": int(col.tier_replicas["application"].max()),
        "latency_ms": col.latency_summary()["mean"] * 1e3,
    }


def bench_ablation_navigator(benchmark):
    def sweep():
        return [run_with_navigator(False), run_with_navigator(True)]

    mix, markov = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "Ablation A5: i.i.d. mix vs Markov session navigation (compressed ramp)",
        "",
        f"{'navigator':<10}{'db grows @clients':>20}{'app grows @clients':>20}"
        f"{'peaks (app/db)':>16}{'mean lat (ms)':>14}",
    ]
    for r in (mix, markov):
        lines.append(
            f"{r['navigator']:<10}{str(r['db_grow_clients']):>20}"
            f"{str(r['app_grow_clients']):>20}"
            f"{f'{r_app(r)}/{r_db(r)}':>16}{r['latency_ms']:>14.1f}"
        )
    emit("ablation_navigator", "\n".join(lines))

    # Same scaling structure under both navigation models.
    assert mix["db_peak"] == markov["db_peak"]
    assert mix["app_peak"] == markov["app_peak"]
    # First DB scale-out within ~25% of each other in client terms.
    if mix["db_grow_clients"] and markov["db_grow_clients"]:
        a, b = mix["db_grow_clients"][0], markov["db_grow_clients"][0]
        assert abs(a - b) / max(a, b) < 0.25


def r_app(r):
    return r["app_peak"]


def r_db(r):
    return r["db_peak"]
