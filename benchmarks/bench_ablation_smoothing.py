"""Ablation A2 — moving-average window sweep.

§5.2: "the CPU usage is smoothed by a temporal average ... the strength of
this average is experimentally fixed accordingly to the variability of the
CPU usage".  This sweep shows the trade-off the authors tuned: short
windows react fast but fire on noise (more reconfigurations); long windows
are stable but laggy (later provisioning, worse latency transients).
"""

from repro.jade.self_optimization import LoopConfig
from repro.jade.system import ExperimentConfig, ManagedSystem
from repro.workload.profiles import PiecewiseProfile

from benchmarks._shared import emit


def run_with_window(window_s: float) -> dict:
    # A step load: 80 -> 350 clients, held, then back.
    profile = PiecewiseProfile(
        [(0.0, 80), (120.0, 350), (800.0, 80)], duration_s=1200.0
    )
    cfg = ExperimentConfig(
        profile=profile,
        seed=4,
        db_loop=LoopConfig(window_s=window_s, max_threshold=0.75, min_threshold=0.40),
        app_loop=LoopConfig(window_s=window_s, max_threshold=0.80, min_threshold=0.38),
    )
    system = ManagedSystem(cfg)
    col = system.run()
    reconfigs = (
        system.db_tier.grows_completed
        + system.db_tier.shrinks_completed
        + system.app_tier.grows_completed
        + system.app_tier.shrinks_completed
    )
    transient = col.latencies.window(120.0, 400.0)
    first_grow = next(
        (t for t, d in col.reconfigurations if "grow: allocating" in d), None
    )
    return {
        "window": window_s,
        "reconfigs": reconfigs,
        "reaction_s": (first_grow - 120.0) if first_grow else float("nan"),
        "transient_p95_ms": 1e3 * float(
            __import__("numpy").percentile(transient.values, 95)
        )
        if len(transient)
        else float("nan"),
    }


def bench_ablation_smoothing_window(benchmark):
    windows = (15.0, 90.0, 300.0)

    def sweep():
        return [run_with_window(w) for w in windows]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "Ablation A2: moving-average window sweep (step 80->350->80 clients)",
        "",
        f"{'window (s)':>10}  {'reconfigs':>10}  {'reaction (s)':>13}  "
        f"{'transient p95 (ms)':>19}",
    ]
    for r in results:
        lines.append(
            f"{r['window']:>10.0f}  {r['reconfigs']:>10}  {r['reaction_s']:>13.0f}"
            f"  {r['transient_p95_ms']:>19.1f}"
        )
    emit("ablation_smoothing", "\n".join(lines))

    by_w = {r["window"]: r for r in results}
    # A longer window reacts later to the step.
    assert by_w[15.0]["reaction_s"] <= by_w[300.0]["reaction_s"]
