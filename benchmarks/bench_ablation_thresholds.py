"""Ablation A1 — threshold sensitivity.

The paper notes that determining the thresholds "constitutes a key
challenge of this manager" (§4.2, determined experimentally).  This sweep
shows why: a max-threshold close to the min-threshold (0.60 vs min 0.40)
leaves a dead band too narrow for the post-reconfiguration utilization to
land in — the tier oscillates (grow/shrink churn) and every churn costs a
latency transient; a high threshold (0.90) provisions late and cheap; the
paper-style middle value is where both problems vanish.  Run on a
compressed ramp to keep the sweep affordable.
"""

from dataclasses import replace

from repro.jade.self_optimization import LoopConfig
from repro.jade.system import ExperimentConfig, ManagedSystem
from repro.workload.profiles import RampProfile

from benchmarks._shared import emit

SCALE = 0.35  # compress the ramp durations; client counts unchanged


def run_with_max_threshold(max_db: float) -> dict:
    profile = RampProfile(
        warmup_s=300.0 * SCALE, step_period_s=60.0 * SCALE, cooldown_s=300.0 * SCALE
    )
    cfg = ExperimentConfig(
        profile=profile,
        seed=3,
        db_loop=LoopConfig(window_s=90.0 * SCALE, max_threshold=max_db,
                           min_threshold=0.40),
        app_loop=LoopConfig(window_s=60.0 * SCALE, max_threshold=0.80,
                            min_threshold=0.38),
        inhibition_s=60.0 * SCALE,
    )
    system = ManagedSystem(cfg)
    col = system.run()
    horizon = profile.duration_s
    db_nodes = col.tier_replicas["database"].time_weighted_mean(horizon)
    return {
        "max_db": max_db,
        "latency_ms": col.latency_summary()["mean"] * 1e3,
        "p95_ms": col.latency_summary()["p95"] * 1e3,
        "db_node_seconds": db_nodes * horizon,
        "grows": system.db_tier.grows_completed,
        "shrinks": system.db_tier.shrinks_completed,
    }


def bench_ablation_threshold_sweep(benchmark):
    thresholds = (0.60, 0.75, 0.90)

    def sweep():
        return [run_with_max_threshold(t) for t in thresholds]

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "Ablation A1: DB max-threshold sweep (compressed ramp)",
        "",
        f"{'max':>5}  {'mean lat (ms)':>14}  {'p95 (ms)':>10}  "
        f"{'db node-s':>10}  {'grows':>6}  {'shrinks':>8}",
    ]
    for r in results:
        lines.append(
            f"{r['max_db']:>5.2f}  {r['latency_ms']:>14.1f}  {r['p95_ms']:>10.1f}"
            f"  {r['db_node_seconds']:>10.0f}  {r['grows']:>6}  {r['shrinks']:>8}"
        )
    emit("ablation_thresholds", "\n".join(lines))

    by_max = {r["max_db"]: r for r in results}
    # A permissive threshold must not provision more than an aggressive one.
    assert by_max[0.60]["db_node_seconds"] >= by_max[0.90]["db_node_seconds"]
    # The too-narrow dead band churns at least as much as the tuned one.
    assert by_max[0.60]["shrinks"] >= by_max[0.75]["shrinks"]
    # The paper-style threshold is the sweet spot on mean latency.
    assert by_max[0.75]["latency_ms"] <= min(
        by_max[0.60]["latency_ms"], by_max[0.90]["latency_ms"]
    )
