"""Resilience benchmark: fault-injection campaigns through the chaos
subsystem.

Runs the crash, fail-slow and correlated campaigns across seeds and
records MTTR / detection latency / availability with 95 % confidence
intervals, plus the gray-failure detection comparison (the legacy
``up``-flag heartbeat misses a crawling replica; the phi-accrual
detector repairs it).  ``python benchmarks/bench_chaos.py --out
BENCH_engine.json`` merges the section into the committed engine
report; ``--smoke`` is the fast CI gate.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.chaos.bench import check_section, render_section, run_chaos_section


def bench_chaos_resilience(benchmark):
    from benchmarks._shared import emit  # pytest puts the rootdir on sys.path

    section = benchmark.pedantic(run_chaos_section, rounds=1, iterations=1)
    emit("chaos", render_section(section))
    check_section(section)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast CI gate: one seed, assertions only",
    )
    parser.add_argument(
        "--out", metavar="FILE", default=None,
        help="merge the chaos section into this engine report "
        "(e.g. BENCH_engine.json; other sections are preserved)",
    )
    parser.add_argument("--seeds", type=int, default=3, metavar="N",
                        help="run seeds 1..N (default 3)")
    parser.add_argument("--serial", action="store_true")
    args = parser.parse_args(argv)

    seeds = (1,) if args.smoke else tuple(range(1, args.seeds + 1))
    section = run_chaos_section(seeds=seeds, parallel=not args.serial)
    print(render_section(section))
    check_section(section)
    if args.out:
        path = Path(args.out)
        report = json.loads(path.read_text()) if path.exists() else {}
        report["chaos"] = section
        path.write_text(json.dumps(report, indent=2, default=float) + "\n")
        print(f"\nchaos section merged into {args.out}")
    print("chaos-smoke: PASS" if args.smoke else "\nchaos bench: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
