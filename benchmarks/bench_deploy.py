"""Deployment benchmark: bounce strategies and canary rollback.

Runs the bad-push canary scenario (automatic rollback, post-rollback
goodput within 5 % of the pre-push steady state) and the clean-bounce
strategy comparison (``crossover`` keeps SLO violation seconds strictly
below ``brutal``) across seeds.  ``python benchmarks/bench_deploy.py
--out BENCH_engine.json`` merges the section into the committed engine
report; ``--smoke`` is the fast CI gate.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.deploy.bench import check_section, render_section, run_deploy_section


def bench_deploy_rollback(benchmark):
    from benchmarks._shared import emit  # pytest puts the rootdir on sys.path

    section = benchmark.pedantic(run_deploy_section, rounds=1, iterations=1)
    emit("deploy", render_section(section))
    check_section(section)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast CI gate: one seed, assertions only",
    )
    parser.add_argument(
        "--out", metavar="FILE", default=None,
        help="merge the deploy section into this engine report "
        "(e.g. BENCH_engine.json; other sections are preserved)",
    )
    parser.add_argument("--seeds", type=int, default=3, metavar="N",
                        help="run seeds 1..N (default 3)")
    parser.add_argument("--serial", action="store_true")
    args = parser.parse_args(argv)

    seeds = (1,) if args.smoke else tuple(range(1, args.seeds + 1))
    section = run_deploy_section(seeds=seeds, parallel=not args.serial)
    print(render_section(section))
    check_section(section)
    if args.out:
        path = Path(args.out)
        report = json.loads(path.read_text()) if path.exists() else {}
        report["deploy"] = section
        path.write_text(json.dumps(report, indent=2, default=float) + "\n")
        print(f"\ndeploy section merged into {args.out}")
    print("deploy-smoke: PASS" if args.smoke else "\ndeploy bench: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
