"""Extension — adaptive thresholds (§7 future work).

"Part of our future work will focus on improving the self-optimizing
algorithm by setting incrementally and dynamically its parameters."

Scenario engineered to oscillate: a narrow dead band and a load level that
lands *inside* the contested region after each reconfiguration.  The static
reactor keeps flip-flopping; the adaptive reactor detects the grow/shrink
oscillation and widens its own dead band until the system settles.
"""

from repro.jade.self_optimization import LoopConfig
from repro.jade.system import ExperimentConfig, ManagedSystem
from repro.workload.profiles import PiecewiseProfile

from benchmarks._shared import emit


def run_reactor(adaptive: bool) -> dict:
    profile = PiecewiseProfile([(0.0, 230)], duration_s=1800.0)
    loop = LoopConfig(
        window_s=20.0,
        max_threshold=0.66,
        min_threshold=0.52,   # deliberately narrow: oscillation-prone
        adaptive=adaptive,
    )
    cfg = ExperimentConfig(
        profile=profile,
        seed=5,
        inhibition_s=30.0,
        db_loop=loop,
        app_loop=LoopConfig(window_s=60.0, adaptive=adaptive),
    )
    system = ManagedSystem(cfg)
    col = system.run()
    changes = col.replica_changes("database")
    flips = sum(
        1
        for (_, a), (_, b), (_, c) in zip(changes, changes[1:], changes[2:])
        if (b - a) * (c - b) < 0
    )
    reactor = system.optimizer.loops["db"].reactor
    # Reconfigurations in the final third: has the system settled?
    late = [t for t, _ in changes if t > 1200.0]
    return {
        "adaptive": adaptive,
        "reconfigs": len(changes) - 1,
        "flips": flips,
        "late_reconfigs": len(late),
        "final_min_threshold": reactor.min_threshold,
        "adaptations": getattr(reactor, "adaptations", 0),
        "latency_ms": col.latency_summary()["mean"] * 1e3,
    }


def bench_ext_adaptive_thresholds(benchmark):
    def sweep():
        return [run_reactor(False), run_reactor(True)]

    static, adaptive = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "Extension: static vs adaptive thresholds (narrow band, 230 clients)",
        "",
        f"{'reactor':<10}{'reconfigs':>10}{'flips':>7}{'late reconfigs':>15}"
        f"{'final min-thr':>14}{'mean lat (ms)':>14}",
    ]
    for r in (static, adaptive):
        label = "adaptive" if r["adaptive"] else "static"
        lines.append(
            f"{label:<10}{r['reconfigs']:>10}{r['flips']:>7}"
            f"{r['late_reconfigs']:>15}{r['final_min_threshold']:>14.2f}"
            f"{r['latency_ms']:>14.1f}"
        )
    lines.append("")
    lines.append(f"adaptive reactor adapted {adaptive['adaptations']} time(s)")
    emit("ext_adaptive", "\n".join(lines))

    # The adaptive reactor widened its band and churned no more than static.
    assert adaptive["adaptations"] >= 1
    assert adaptive["final_min_threshold"] < 0.52
    assert adaptive["reconfigs"] <= static["reconfigs"]
    assert adaptive["late_reconfigs"] <= static["late_reconfigs"]
