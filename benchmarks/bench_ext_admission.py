"""Extension — overload handling: admission control vs dynamic provisioning.

The paper's related work contrasts Jade's approach with systems like
Cataclysm [23] that *shed* load under overload instead of acquiring
capacity.  This bench puts the static 1+1 deployment under the peak load
three ways:

* unbounded queueing (the paper's Figure 8 configuration);
* admission control (Tomcat maxThreads + MySQL max_connections enforced);
* Jade dynamic provisioning.

Shape: queueing preserves every request but latency is catastrophic;
admission control bounds latency for admitted requests but drops a large
fraction; provisioning delivers both (at the cost of extra nodes).
"""

from repro.jade.system import ExperimentConfig, ManagedSystem
from repro.workload.profiles import PiecewiseProfile

from benchmarks._shared import emit

PROFILE = PiecewiseProfile([(0.0, 450)], duration_s=700.0)


def run_case(managed: bool, limits: bool) -> dict:
    cfg = ExperimentConfig(
        profile=PROFILE, seed=12, managed=managed, tail_s=30.0
    )
    system = ManagedSystem(cfg)
    if limits:
        system._initial_tomcat.set_attr("enforce_limits", True)
        system._initial_mysql.set_attr("enforce_limits", True)
    col = system.run()
    tail = col.latencies.window(400.0, 700.0)
    total = col.completed_requests + col.failed_requests
    return {
        "completed": col.completed_requests,
        "error_rate": col.failed_requests / max(1, total),
        "tail_latency_s": tail.mean() if len(tail) else float("nan"),
        "nodes_peak": int(
            col.tier_replicas["database"].max()
            + col.tier_replicas["application"].max()
        ),
    }


def bench_ext_admission_vs_provisioning(benchmark):
    def sweep():
        return {
            "queueing (Fig. 8)": run_case(managed=False, limits=False),
            "admission control": run_case(managed=False, limits=True),
            "Jade provisioning": run_case(managed=True, limits=False),
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "Extension: overload at 450 clients on a 1+1 deployment",
        "",
        f"{'strategy':<20}{'completed':>10}{'error rate':>11}"
        f"{'late-window lat (s)':>20}{'peak nodes':>11}",
    ]
    for label, r in results.items():
        lines.append(
            f"{label:<20}{r['completed']:>10}{r['error_rate']:>11.2%}"
            f"{r['tail_latency_s']:>20.2f}{r['nodes_peak']:>11}"
        )
    emit("ext_admission", "\n".join(lines))

    queueing = results["queueing (Fig. 8)"]
    shedding = results["admission control"]
    jade = results["Jade provisioning"]
    # Queueing: no errors, catastrophic latency.
    assert queueing["error_rate"] == 0.0
    assert queueing["tail_latency_s"] > 5.0
    # Shedding: bounded latency for admitted requests, substantial errors.
    assert shedding["tail_latency_s"] < queueing["tail_latency_s"]
    assert shedding["error_rate"] > 0.05
    # Provisioning: no errors AND low latency (more nodes).
    assert jade["error_rate"] == 0.0
    assert jade["tail_latency_s"] < 1.0
    assert jade["nodes_peak"] > queueing["nodes_peak"]
