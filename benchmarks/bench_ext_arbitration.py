"""Extension — policy arbitration (§7 future work).

"Furthermore we intend to work on the problem of conflicting autonomic
policies.  Managers have their own goal and control loops and therefore
require a way to arbitrate potential conflicts."

Scenario engineered to produce the conflict: the DB tier legitimately runs
with 2 replicas at 200 clients; the load then drops to 150 *just as one
replica's node crashes*.  Self-recovery repairs the replica (allocate,
reinstall, recovery-log sync) — and the moment it is back, the optimizer's
CPU reading at the lower load says "shrink".  Unmediated, the system pays
for a full repair and immediately throws the repaired node away
(repair-then-shrink churn).  The arbitration manager's post-repair cooldown
denies shrinks on a freshly-repaired tier, spacing the decisions out.
"""

from repro.jade.system import ExperimentConfig, ManagedSystem
from repro.jade.self_optimization import LoopConfig
from repro.workload.profiles import PiecewiseProfile

from benchmarks._shared import emit


def run_conflict(arbitrated: bool) -> dict:
    profile = PiecewiseProfile([(0.0, 200), (400.0, 150)], duration_s=1300.0)
    cfg = ExperimentConfig(
        profile=profile,
        seed=9,
        managed=True,
        recovery=True,
        arbitration=arbitrated,
        db_loop=LoopConfig(window_s=90.0, max_threshold=0.75, min_threshold=0.42),
        tail_s=30.0,
    )
    system = ManagedSystem(cfg)
    kernel = system.kernel

    # Crash one DB replica right as the load drops.
    def crash_second_replica():
        if system.db_tier.replica_count >= 2 and not system.db_tier.busy:
            system.db_tier.replicas[-1].node.crash()
            task.cancel()

    task = kernel.every(5.0, crash_second_replica, start=405.0)
    col = system.run()

    repair_done = next(
        (
            t
            for t, d in col.reconfigurations
            if t > 405.0 and "grow:" in d and "active" in d
        ),
        None,
    )
    first_shrink_after = next(
        (
            t
            for t, d in col.reconfigurations
            if repair_done is not None and t > repair_done and "retiring" in d
        ),
        None,
    )
    denied = (
        sum(1 for _, kind, tier, _ in system.arbitration.denied if kind == "shrink")
        if system.arbitration is not None
        else 0
    )
    return {
        "arbitrated": arbitrated,
        "repairs": system.db_tier.repairs_completed,
        "shrink_delay_s": (
            (first_shrink_after - repair_done)
            if (repair_done and first_shrink_after)
            else float("inf")
        ),
        "denied_shrinks": denied,
        "failed_requests": col.failed_requests,
    }


def bench_ext_arbitration(benchmark):
    def both():
        return [run_conflict(False), run_conflict(True)]

    plain, arbitrated = benchmark.pedantic(both, rounds=1, iterations=1)
    lines = [
        "Extension: repair-then-shrink conflict (crash + load drop at t=400 s)",
        "",
        f"{'mode':<14}{'repairs':>8}{'shrink after repair (s)':>25}"
        f"{'denied shrinks':>15}{'failed reqs':>12}",
    ]
    for r in (plain, arbitrated):
        label = "arbitrated" if r["arbitrated"] else "unmediated"
        delay = (
            f"{r['shrink_delay_s']:.0f}"
            if r["shrink_delay_s"] != float("inf")
            else "never"
        )
        lines.append(
            f"{label:<14}{r['repairs']:>8}{delay:>25}"
            f"{r['denied_shrinks']:>15}{r['failed_requests']:>12}"
        )
    emit("ext_arbitration", "\n".join(lines))

    assert plain["repairs"] >= 1 and arbitrated["repairs"] >= 1
    # The arbitration manager mediated: it denied at least one shrink and
    # thereby delayed the post-repair downsize.
    assert arbitrated["denied_shrinks"] >= 1
    assert arbitrated["shrink_delay_s"] >= plain["shrink_delay_s"]
