"""Extension — latency-SLO manager vs. CPU-threshold manager.

§4.2 mentions a response-time sensor as an alternative to CPU probes.  This
bench runs the full ramp under both managers and compares: achieved
latency, provisioning cost (node-seconds), and scaling decisions.  The CPU
manager provisions pre-emptively (CPU rises before latency does); the SLO
manager waits until users feel the load, so it runs closer to its target —
its mean latency lands near the paper's 590 ms, with fewer node-seconds.
"""

from repro.jade.system import ExperimentConfig, ManagedSystem

from benchmarks._shared import emit, managed_ramp, ramp_profile


def run_slo() -> ManagedSystem:
    system = ManagedSystem(
        ExperimentConfig(profile=ramp_profile(), seed=1, use_slo_manager=True)
    )
    system.run()
    return system


def bench_ext_latency_slo_vs_cpu(benchmark):
    cpu_sys = managed_ramp()
    slo_sys = benchmark.pedantic(run_slo, rounds=1, iterations=1)
    horizon = cpu_sys.config.profile.duration_s

    def node_seconds(system):
        total = 0.0
        for tier in ("application", "database"):
            series = system.collector.tier_replicas[tier]
            total += series.time_weighted_mean(horizon) * horizon
        return total

    rows = []
    for label, system in (("CPU thresholds", cpu_sys), ("latency SLO", slo_sys)):
        stats = system.collector.latency_summary()
        rows.append(
            (
                label,
                stats["mean"] * 1e3,
                stats["p95"] * 1e3,
                node_seconds(system),
                system.app_tier.grows_completed + system.db_tier.grows_completed,
            )
        )
    lines = [
        "Extension: CPU-threshold manager vs latency-SLO manager (full ramp)",
        f"SLO: max {slo_sys.config.slo_max_latency_s * 1e3:.0f} ms / "
        f"min {slo_sys.config.slo_min_latency_s * 1e3:.0f} ms",
        "",
        f"{'manager':<18}{'mean (ms)':>10}{'p95 (ms)':>10}"
        f"{'node-s':>10}{'grows':>7}",
    ]
    for label, mean, p95, ns, grows in rows:
        lines.append(f"{label:<18}{mean:>10.1f}{p95:>10.1f}{ns:>10.0f}{grows:>7}")
    emit("ext_latency_slo", "\n".join(lines))

    slo_stats = slo_sys.collector.latency_summary()
    # The SLO was held on average and the manager actually scaled.
    assert slo_stats["mean"] < slo_sys.config.slo_max_latency_s * 1.5
    assert slo_sys.db_tier.grows_completed >= 1
    # SLO control runs hotter (higher latency) but cheaper (fewer node-s).
    cpu_stats = cpu_sys.collector.latency_summary()
    assert slo_stats["mean"] >= cpu_stats["mean"]
    assert node_seconds(slo_sys) <= node_seconds(cpu_sys) * 1.1
