"""Extension — reactive thresholds vs model-based capacity planning.

The paper's reactor waits for a threshold crossing and moves one replica at
a time.  The :class:`~repro.jade.planner.PlannerReactor` instead computes
the replica count that places utilization at a target and steers toward it
— one fewer hand-tuned parameter pair per tier, and better behaviour under
*abrupt* load steps (the threshold reactor needs one inhibition window per
replica; the planner's intent is known from the first reading).
"""

from repro.jade.self_optimization import LoopConfig
from repro.jade.system import ExperimentConfig, ManagedSystem
from repro.workload.profiles import PiecewiseProfile

from benchmarks._shared import emit

#: an abrupt step straight to a load needing 3 DB replicas
PROFILE = PiecewiseProfile([(0.0, 80), (120.0, 420), (900.0, 80)], duration_s=1400.0)


def run_case(planner: bool) -> dict:
    if planner:
        db = LoopConfig(window_s=90.0, planner=True, planner_target=0.55)
        app = LoopConfig(window_s=60.0, planner=True, planner_target=0.55)
    else:
        db = LoopConfig(window_s=90.0, max_threshold=0.75, min_threshold=0.40)
        app = LoopConfig(window_s=60.0, max_threshold=0.80, min_threshold=0.38)
    cfg = ExperimentConfig(
        profile=PROFILE, seed=14, db_loop=db, app_loop=app, tail_s=30.0
    )
    system = ManagedSystem(cfg)
    col = system.run()
    # Time from the step until the DB tier reached its final (peak) size.
    db_series = col.tier_replicas["database"]
    peak = db_series.max()
    settle_t = next(
        (t for t, v in db_series.changes if v == peak), float("nan")
    )
    transient = col.latencies.window(120.0, 600.0)
    return {
        "reactor": "planner" if planner else "threshold",
        "db_peak": int(peak),
        "settle_s": settle_t - 120.0,
        "transient_p95_ms": 1e3
        * float(__import__("numpy").percentile(transient.values, 95)),
        "reconfigs": len(db_series.changes) - 1,
    }


def bench_ext_planner_vs_threshold(benchmark):
    def sweep():
        return [run_case(False), run_case(True)]

    threshold, planner = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = [
        "Extension: reactive threshold vs model-based planner "
        "(step 80 -> 420 clients)",
        "",
        f"{'reactor':<12}{'db peak':>8}{'settle (s)':>11}"
        f"{'transient p95 (ms)':>19}{'db reconfigs':>13}",
    ]
    for r in (threshold, planner):
        lines.append(
            f"{r['reactor']:<12}{r['db_peak']:>8}{r['settle_s']:>11.0f}"
            f"{r['transient_p95_ms']:>19.1f}{r['reconfigs']:>13}"
        )
    emit("ext_planner", "\n".join(lines))

    # Both control schemes reach a multi-replica configuration and keep the
    # transient bounded; the planner settles at least as fast.
    assert planner["db_peak"] >= 2
    assert threshold["db_peak"] >= 2
    assert planner["settle_s"] <= threshold["settle_s"] * 1.25
