"""Extension — proactive capacity planning vs the reactive loops alone.

The paper's threshold reactor (§5.2) waits for a *measured* crossing and
then pays one inhibition window per replica, so every Fig. 9 ramp carries
latency transients in the minute before each grow.  The proactive manager
(:mod:`repro.capacity`) forecasts the load, forks the simulation through
the what-if engine, and grows ahead of the predicted crossing — the same
staircase, shifted roughly one inhibition window earlier.

Measured on the Fig. 9 ramp: SLO-violation seconds (0.25 s SLO — the
reactive transients sit in the 0.2–0.35 s band), node-hours consumed
(tiers + the two balancer nodes), and the reconfiguration count.  The
claim under test: proactive strictly reduces SLO-violation time at a
bounded (<15 %) node-hour overhead.
"""

import json

from repro.capacity.cost import slo_violation_time
from repro.capacity.whatif import BALANCER_NODES

from benchmarks._shared import RESULTS_DIR, emit, managed_ramp, proactive_ramp

#: the reactive growth transients peak around 0.2–0.35 s; the paper's own
#: 0.5 s bound is met by both arms, so the comparison uses a tighter SLO
SLO_LATENCY_S = 0.25


def _measure(system) -> dict:
    col = system.collector
    duration = system.config.profile.duration_s
    node_seconds = BALANCER_NODES * duration
    reconfigs = 0
    for series in col.tier_replicas.values():
        node_seconds += series.integral(0.0, duration)
        reconfigs += max(0, len(series.changes) - 1)
    window = col.latencies.window(0.0, duration)
    result = {
        "slo_violation_s": slo_violation_time(
            col.latencies, 0.0, duration, SLO_LATENCY_S
        ),
        "node_hours": node_seconds / 3600.0,
        "reconfigurations": reconfigs,
        "latency_mean_ms": 1e3 * float(window.mean()),
        "completed": col.completed_requests,
        "db_growth_times_s": [
            t
            for (_, prev), (t, v) in zip(
                col.tier_replicas["database"].changes,
                col.tier_replicas["database"].changes[1:],
            )
            if v > prev
        ],
    }
    proactive = getattr(system, "proactive", None)
    if proactive is not None:
        result["proactive"] = {
            "forecasts_issued": proactive.forecasts_issued,
            "whatif_evaluations": proactive.evaluations,
            "grows_triggered": proactive.grows_triggered,
            "shrinks_triggered": proactive.shrinks_triggered,
            "decisions_suppressed": proactive.decisions_suppressed,
        }
    return result


def bench_ext_proactive_vs_reactive(benchmark):
    def sweep():
        return _measure(managed_ramp()), _measure(proactive_ramp())

    reactive, proactive = benchmark.pedantic(sweep, rounds=1, iterations=1)

    overhead = proactive["node_hours"] / reactive["node_hours"] - 1.0
    lines = [
        "Extension: reactive thresholds vs proactive capacity planning "
        f"(Fig. 9 ramp, SLO {SLO_LATENCY_S * 1000:.0f} ms)",
        "",
        f"{'arm':<12}{'SLO viol (s)':>13}{'node-hours':>12}"
        f"{'reconfigs':>11}{'mean lat (ms)':>15}",
    ]
    for label, r in (("reactive", reactive), ("proactive", proactive)):
        lines.append(
            f"{label:<12}{r['slo_violation_s']:>13.0f}{r['node_hours']:>12.3f}"
            f"{r['reconfigurations']:>11}{r['latency_mean_ms']:>15.1f}"
        )
    lines += [
        "",
        f"node-hour overhead: {overhead * 100:+.1f} %",
        "db growth at: reactive "
        + ", ".join(f"{t:.0f}s" for t in reactive["db_growth_times_s"])
        + " | proactive "
        + ", ".join(f"{t:.0f}s" for t in proactive["db_growth_times_s"]),
    ]
    emit("ext_proactive", "\n".join(lines))

    RESULTS_DIR.mkdir(exist_ok=True)
    report = {
        "slo_latency_s": SLO_LATENCY_S,
        "reactive": reactive,
        "proactive": proactive,
        "node_hour_overhead": overhead,
    }
    (RESULTS_DIR / "ext_proactive.json").write_text(
        json.dumps(report, indent=2, sort_keys=True) + "\n"
    )

    # The claim: planning ahead strictly reduces SLO-violation time (the
    # reactive arm must have something to shave), at bounded extra cost.
    assert reactive["slo_violation_s"] > 0.0
    assert proactive["slo_violation_s"] < reactive["slo_violation_s"]
    assert overhead < 0.15
