"""Extension — managing the full Figure 2 architecture (3 tiers).

§7: "apply our self-optimization techniques on other use cases to show the
genericity of our approach."  Here the *web* tier (L4 switch + Apache
replicas, a tier the paper only managed qualitatively) gets its own control
loop, using the unchanged generic TierManager/CpuProbe/ThresholdReactor —
the only difference is wiring (balancer = the L4 switch, replica factory =
the Apache wrapper, bindings template = the two Tomcats' AJP interfaces).
"""

from repro.jade.three_tier import ThreeTierSystem
from repro.workload.profiles import RampProfile

from benchmarks._shared import emit


def run_three_tier() -> ThreeTierSystem:
    profile = RampProfile(warmup_s=150.0, step_period_s=30.0, cooldown_s=150.0)
    system = ThreeTierSystem(profile, seed=2)
    system.run()
    return system


def bench_ext_three_tier_ramp(benchmark):
    system = benchmark.pedantic(run_three_tier, rounds=1, iterations=1)
    col = system.collector
    lines = [
        "Extension: three-tier management (L4 + Apache[web loop] + Tomcat x2"
        " + C-JDBC + MySQL[db loop])",
        "workload: 40 % static documents, ramp 80->500->80 (compressed)",
        "",
        f"{'tier':<10}{'change':<8}{'t (s)':>8}{'clients':>9}",
    ]
    for tier in ("web", "database"):
        changes = col.replica_changes(tier)
        for (t0, v0), (t1, v1) in zip(changes, changes[1:]):
            lines.append(
                f"{tier:<10}{f'{int(v0)}->{int(v1)}':<8}{t1:>8.0f}"
                f"{int(col.workload.value_at(t1)):>9}"
            )
    stats = col.latency_summary()
    lines.append("")
    lines.append(
        f"latency: mean {stats['mean'] * 1e3:.1f} ms, p95 {stats['p95'] * 1e3:.1f} ms; "
        f"failed requests: {col.failed_requests}"
    )
    emit("ext_three_tier", "\n".join(lines))

    # Genericity demonstrated: both loops fired, both tiers shrank back.
    assert system.web_tier.grows_completed >= 1
    assert system.db_tier.grows_completed >= 1
    assert system.web_tier.shrinks_completed >= 1
    assert col.failed_requests == 0
    assert stats["mean"] < 0.5
