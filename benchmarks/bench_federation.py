"""Federation benchmark: near-linear multi-region speedup + byte-identity.

Runs a federated Fig. 9 ramp twice — every region in one process, then
one persistent worker process per region — and asserts the headline:
byte-identical per-region scorecards and a critical-path speedup that
approaches the region count (>= 3x on 4 regions for the committed
report).  The cross-region scenarios (2-region evacuation, 3-region
follow-the-sun) run inside the section.  ``python
benchmarks/bench_federation.py --out BENCH_engine.json`` merges the
section into the committed engine report; ``--smoke`` is the fast CI
gate (2 regions, laxer speedup floor for shared runners).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.federation.bench import (
    check_section,
    render_section,
    run_federation_section,
)


def bench_federation(benchmark):
    from benchmarks._shared import emit  # pytest puts the rootdir on sys.path

    section = benchmark.pedantic(
        run_federation_section, rounds=1, iterations=1
    )
    emit("federation", render_section(section))
    check_section(section)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast CI gate: 2 regions, reduced scale, lax speedup floor",
    )
    parser.add_argument(
        "--out", metavar="FILE", default=None,
        help="merge the federation section into this engine report "
        "(e.g. BENCH_engine.json; other sections are preserved)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--regions", type=int, default=4)
    args = parser.parse_args(argv)

    section = run_federation_section(
        seed=args.seed,
        scale=args.scale,
        regions=args.regions,
        smoke=args.smoke,
    )
    print(render_section(section))
    check_section(section)
    if args.out:
        path = Path(args.out)
        report = json.loads(path.read_text()) if path.exists() else {}
        report["federation"] = section
        path.write_text(json.dumps(report, indent=2, default=float) + "\n")
        print(f"\nfederation section merged into {args.out}")
    print("federation-smoke: PASS" if args.smoke else "\nfederation bench: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
