"""Figure 5 — "Dynamically adjusted number of replicas".

Reproduces the replica-count staircase of both tiers over the 80→500→80
ramp.  The paper's events: DB 1→2 near 180 clients, DB 2→3 near 320, app
1→2 near 420 on the ascent; app 2→1 near 400 and DB 3→2 near 280 on the
descent.  We report each replica-count change with the client population at
the *decision* time (allocation start) and at completion.
"""

from benchmarks._shared import PAPER, emit, managed_ramp


def bench_fig5_replica_staircase(benchmark):
    system = benchmark.pedantic(managed_ramp, rounds=1, iterations=1)
    col = system.collector
    lines = [
        "Figure 5: replica counts under the 80->500->80 ramp (+21 clients/min)",
        "",
        f"{'tier':<12}{'change':<10}{'t (s)':>8}{'clients@completion':>20}",
    ]
    for tier in ("database", "application"):
        changes = col.replica_changes(tier)
        for (t0, v0), (t1, v1) in zip(changes, changes[1:]):
            direction = "grow" if v1 > v0 else "shrink"
            lines.append(
                f"{tier:<12}{f'{int(v0)}->{int(v1)}':<10}{t1:>8.0f}"
                f"{int(col.workload.value_at(t1)):>20}"
            )
            assert direction in ("grow", "shrink")
    lines.append("")
    lines.append("decision times (allocation start -> clients at decision):")
    for t, desc in col.reconfigurations:
        if "allocating" in desc or "retiring" in desc:
            lines.append(
                f"  t={t:7.1f}  clients={int(col.workload.value_at(t)):4d}  {desc}"
            )
    lines.append("")
    lines.append(
        "paper: DB grows near clients=%s; app grows near clients=%s"
        % (PAPER["fig5_db_growth_clients"], PAPER["fig5_app_growth_clients"])
    )
    lines.append(
        f"measured peaks: app x{int(col.tier_replicas['application'].max())}, "
        f"db x{int(col.tier_replicas['database'].max())} "
        "(paper: app x2, db x3)"
    )
    emit("fig5_replicas", "\n".join(lines))
    # Shape assertions: same event structure as the paper.
    assert col.tier_replicas["database"].max() == 3
    assert col.tier_replicas["application"].max() == 2
    assert system.db_tier.grows_completed >= 2
    assert system.db_tier.shrinks_completed >= 1
    assert system.app_tier.shrinks_completed >= 1
