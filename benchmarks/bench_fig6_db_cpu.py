"""Figure 6 — "Behavior of the database tier".

Smoothed DB-tier CPU (90 s moving average) with the min/max thresholds and
the backend count, managed vs static.  The paper's shape: with Jade the CPU
is pulled back under the max threshold at each scale-out; without Jade it
saturates at 1.0 during the peak (thrashing) and recovers only when the
load falls.
"""

from benchmarks._shared import emit, format_series, managed_ramp, static_ramp


def bench_fig6_database_cpu(benchmark):
    managed = managed_ramp()
    static = benchmark.pedantic(static_ramp, rounds=1, iterations=1)
    m_cpu = managed.collector.tier_cpu["database"].bucket_mean(60.0)
    s_cpu = static.collector.tier_cpu["database"].bucket_mean(60.0)
    backends = managed.collector.tier_replicas["database"]
    cfg = managed.config

    lines = [
        "Figure 6: database tier CPU (90 s moving average), 60 s buckets",
        f"thresholds: min={cfg.db_loop.min_threshold} max={cfg.db_loop.max_threshold}",
        "",
        f"{'t (s)':>8}  {'managed':>8}  {'static':>8}  {'#backends':>10}",
    ]
    s_by_t = dict(zip(s_cpu.times, s_cpu.values))
    for t, v in zip(m_cpu.times, m_cpu.values):
        sv = s_by_t.get(t, float("nan"))
        lines.append(
            f"{t:8.0f}  {v:8.3f}  {sv:8.3f}  {int(backends.value_at(t)):>10}"
        )
    emit("fig6_db_cpu", "\n".join(lines))

    # Shape assertions.
    # 1. The static run saturates at the peak; the managed one does not.
    peak = (1400.0, 1700.0)
    static_peak = static.collector.tier_cpu["database"].window(*peak).mean()
    managed_peak = managed.collector.tier_cpu["database"].window(*peak).mean()
    assert static_peak > 0.95
    assert managed_peak < 0.95
    # 2. With Jade the moving average stays below max+0.1 after each
    #    reconfiguration settles (sampled over the ramp).
    assert managed_peak < cfg.db_loop.max_threshold + 0.15
