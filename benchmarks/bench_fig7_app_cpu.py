"""Figure 7 — "Behavior of the application tier".

Same presentation as Figure 6 for the Tomcat tier.  The paper's subtlety:
in the *static* run the application CPU stays moderate even at peak load,
because the saturated database upstream throttles it ("the application
servers spend most of the time waiting for the database").
"""

from benchmarks._shared import emit, managed_ramp, static_ramp


def bench_fig7_application_cpu(benchmark):
    managed = managed_ramp()
    static = static_ramp()

    def analysis():
        m = managed.collector.tier_cpu["application"].bucket_mean(60.0)
        s = static.collector.tier_cpu["application"].bucket_mean(60.0)
        return m, s

    m_cpu, s_cpu = benchmark(analysis)
    servers = managed.collector.tier_replicas["application"]
    cfg = managed.config
    lines = [
        "Figure 7: application tier CPU (60 s moving average), 60 s buckets",
        f"thresholds: min={cfg.app_loop.min_threshold} max={cfg.app_loop.max_threshold}",
        "",
        f"{'t (s)':>8}  {'managed':>8}  {'static':>8}  {'#servers':>9}",
    ]
    s_by_t = dict(zip(s_cpu.times, s_cpu.values))
    for t, v in zip(m_cpu.times, m_cpu.values):
        sv = s_by_t.get(t, float("nan"))
        lines.append(f"{t:8.0f}  {v:8.3f}  {sv:8.3f}  {int(servers.value_at(t)):>9}")
    emit("fig7_app_cpu", "\n".join(lines))

    # Shape assertions.
    peak = (1400.0, 1700.0)
    static_peak = static.collector.tier_cpu["application"].window(*peak).mean()
    managed_peak = managed.collector.tier_cpu["application"].window(*peak).mean()
    # The static app tier is NOT saturated: the DB bottleneck throttles it.
    assert static_peak < 0.7
    # The managed app tier was scaled to keep CPU under the max threshold.
    assert managed_peak < cfg.app_loop.max_threshold + 0.1
    assert servers.max() == 2
