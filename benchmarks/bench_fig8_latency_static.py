"""Figure 8 — "Response time without Jade".

Per-request latency of the static (1 Tomcat + 1 MySQL) deployment under the
ramp.  Paper shape: latency grows continuously as the workload increases —
average 10.42 s, excursions of hundreds of seconds (database thrashing) —
and falls back only when the load does.
"""

from benchmarks._shared import PAPER, emit, static_ramp


def bench_fig8_latency_without_jade(benchmark):
    system = benchmark.pedantic(static_ramp, rounds=1, iterations=1)
    col = system.collector
    buckets = col.latency_buckets(60.0)
    lines = [
        "Figure 8: response time WITHOUT Jade, 60 s buckets",
        "",
        f"{'t (s)':>8}  {'latency (ms)':>14}  {'clients':>8}",
    ]
    for t, v in zip(buckets.times, buckets.values):
        lines.append(
            f"{t:8.0f}  {v * 1e3:14.1f}  {int(col.workload.value_at(t)):>8}"
        )
    mean_s = col.latency_summary()["mean"]
    peak_s = col.latencies.max()
    lines.append("")
    lines.append(
        f"measured: mean={mean_s:.2f} s  max={peak_s:.1f} s   "
        f"(paper: mean={PAPER['fig8_static_latency_avg_s']} s, "
        "peaks of hundreds of seconds)"
    )
    emit("fig8_latency_static", "\n".join(lines))

    # Shape assertions: continuously increasing then catastrophic latency.
    early = col.latencies.window(0.0, 300.0).mean()
    mid = col.latencies.window(900.0, 1200.0).mean()
    peak = col.latencies.window(1400.0, 1700.0).mean()
    assert early < mid < peak
    assert mean_s > 3.0          # average is in whole seconds
    assert peak_s > 100.0        # thrashing excursions, as in the figure
