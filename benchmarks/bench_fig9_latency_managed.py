"""Figure 9 — "Response time with Jade".

Same workload as Figure 8, with the self-optimization manager active.
Paper shape: response time stays flat and interactive across the whole ramp
(≈ 590 ms on their hardware) — roughly two orders of magnitude below the
static run's average.
"""

from benchmarks._shared import PAPER, emit, managed_ramp, static_ramp


def bench_fig9_latency_with_jade(benchmark):
    system = managed_ramp()
    col = system.collector

    def analysis():
        return col.latency_buckets(60.0)

    buckets = benchmark(analysis)
    lines = [
        "Figure 9: response time WITH Jade, 60 s buckets",
        "",
        f"{'t (s)':>8}  {'latency (ms)':>14}  {'clients':>8}",
    ]
    for t, v in zip(buckets.times, buckets.values):
        lines.append(
            f"{t:8.0f}  {v * 1e3:14.1f}  {int(col.workload.value_at(t)):>8}"
        )
    mean_ms = col.latency_summary()["mean"] * 1e3
    static_mean_s = static_ramp().collector.latency_summary()["mean"]
    lines.append("")
    lines.append(
        f"measured: mean={mean_ms:.0f} ms, max bucket="
        f"{buckets.values.max() * 1e3:.0f} ms   "
        f"(paper: stable around {PAPER['fig9_managed_latency_avg_ms']:.0f} ms)"
    )
    lines.append(
        f"managed vs static average: {mean_ms / 1e3:.3f} s vs "
        f"{static_mean_s:.2f} s  ->  {static_mean_s / (mean_ms / 1e3):.0f}x better"
    )
    emit("fig9_latency_managed", "\n".join(lines))

    # Shape assertions: flat & interactive; who-wins factor enormous.
    assert mean_ms < 500.0                       # stays interactive
    assert buckets.values.max() < 2.0            # no multi-second bucket
    assert static_mean_s / (mean_ms / 1e3) > 20  # Jade wins by >20x
