"""Fluid workload engine benchmark: accuracy gate + million-user ramp.

Runs the paper's full-scale Fig. 9 ramp twice — once with the discrete
cohort emulator, once with the fluid flow engine — and asserts the
headline: identical replica-count trajectories, latency/utilization
trajectories within the documented tolerance, and a 1M-peak-user ramp
inside the wall-clock budget.  ``python benchmarks/bench_fluid.py --out
BENCH_engine.json`` merges the section into the committed engine report;
``--smoke`` is the fast CI gate (laxer wall budget for slow runners).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.workload.fluid_bench import (
    MILLION_BUDGET_S,
    check_section,
    render_section,
    run_fluid_section,
)

#: wall budget (s) for the 1M ramp on shared CI runners
SMOKE_BUDGET_S = 45.0


def bench_fluid_accuracy(benchmark):
    from benchmarks._shared import emit  # pytest puts the rootdir on sys.path

    section = benchmark.pedantic(run_fluid_section, rounds=1, iterations=1)
    emit("fluid", render_section(section))
    check_section(section)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help=f"fast CI gate: assertions only, {SMOKE_BUDGET_S:.0f} s "
        "million-user budget",
    )
    parser.add_argument(
        "--out", metavar="FILE", default=None,
        help="merge the fluid section into this engine report "
        "(e.g. BENCH_engine.json; other sections are preserved)",
    )
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--serial", action="store_true")
    args = parser.parse_args(argv)

    section = run_fluid_section(
        seed=args.seed,
        parallel=not args.serial,
        million_budget_s=SMOKE_BUDGET_S if args.smoke else MILLION_BUDGET_S,
    )
    print(render_section(section))
    check_section(section)
    if args.out:
        path = Path(args.out)
        report = json.loads(path.read_text()) if path.exists() else {}
        report["fluid"] = section
        path.write_text(json.dumps(report, indent=2, default=float) + "\n")
        print(f"\nfluid section merged into {args.out}")
    print("fluid-smoke: PASS" if args.smoke else "\nfluid bench: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
