"""Heterogeneous-fleet benchmark: spot market vs the uniform pool.

Runs the Fig. 9 ramp on the ``spot-heavy`` cost-aware fleet and on the
paper's uniform on-demand pool across seeds, and asserts the headline:
same SLO-violation budget at >= 15 % lower total fleet cost (95 % CIs).
``python benchmarks/bench_market.py --out BENCH_engine.json`` merges the
section into the committed engine report; ``--smoke`` is the fast CI
gate.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.market.bench import check_section, render_section, run_market_section


def bench_market_savings(benchmark):
    from benchmarks._shared import emit  # pytest puts the rootdir on sys.path

    section = benchmark.pedantic(run_market_section, rounds=1, iterations=1)
    emit("market", render_section(section))
    check_section(section)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast CI gate: one seed, assertions only",
    )
    parser.add_argument(
        "--out", metavar="FILE", default=None,
        help="merge the market section into this engine report "
        "(e.g. BENCH_engine.json; other sections are preserved)",
    )
    parser.add_argument("--seeds", type=int, default=3, metavar="N",
                        help="run seeds 1..N (default 3)")
    parser.add_argument("--serial", action="store_true")
    args = parser.parse_args(argv)

    seeds = (1,) if args.smoke else tuple(range(1, args.seeds + 1))
    section = run_market_section(seeds=seeds, parallel=not args.serial)
    print(render_section(section))
    check_section(section)
    if args.out:
        path = Path(args.out)
        report = json.loads(path.read_text()) if path.exists() else {}
        report["market"] = section
        path.write_text(json.dumps(report, indent=2, default=float) + "\n")
        print(f"\nmarket section merged into {args.out}")
    print("market-smoke: PASS" if args.smoke else "\nmarket bench: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
