"""Micro-benchmarks of the simulation substrate.

Not a paper figure: these keep the reproduction honest about its own cost
(the guides' rule — no optimization without measurement) and catch
performance regressions in the hot paths: the event kernel, the
processor-sharing resource, and recovery-log replay.
"""

import numpy as np

from repro.legacy.recovery_log import RecoveryLog
from repro.simulation import CpuJob, PsCpu, SimKernel


def bench_kernel_schedule_run(benchmark):
    """Schedule + dispatch 10k events."""

    def scenario():
        kernel = SimKernel()
        sink = []
        for i in range(10_000):
            kernel.schedule(float(i % 100) * 0.01, sink.append, i)
        kernel.run()
        return len(sink)

    assert benchmark(scenario) == 10_000


def bench_ps_cpu_churn(benchmark):
    """5k staggered jobs through one processor-sharing CPU."""
    rng = np.random.default_rng(0)
    arrivals = np.cumsum(rng.exponential(0.01, size=5000))
    demands = rng.gamma(4.0, 0.01 / 4.0, size=5000)

    def scenario():
        kernel = SimKernel()
        cpu = PsCpu(kernel)
        for t, d in zip(arrivals, demands):
            kernel.schedule_at(float(t), cpu.submit, CpuJob(kernel, float(d)))
        kernel.run()
        return cpu.completed

    assert benchmark(scenario) == 5000


def bench_recovery_log_append_replay(benchmark):
    """Append 20k writes and walk a 10k-entry replay suffix."""

    def scenario():
        log = RecoveryLog()
        for i in range(20_000):
            log.append(f"UPDATE items SET bid={i}", 0.001)
        total = sum(1 for _ in log.entries_from(10_000))
        return total

    assert benchmark(scenario) == 10_000
