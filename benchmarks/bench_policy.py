"""Controller-autotuning benchmark: the committed tuned policy
parameters against the paper's hand-set defaults on the Fig. 9 ramp.

``python benchmarks/bench_policy.py --out BENCH_engine.json`` merges the
``"policy"`` section into the committed engine report; ``--smoke`` is
the fast CI gate (the 2×2 tuner-ranking smoke plus the default-vs-tuned
comparison on one seed).
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.policy.bench import (
    check_section,
    render_section,
    run_policy_section,
    run_tune_smoke,
)
from repro.policy.tune import render_report


def bench_policy_autotuning(benchmark):
    from benchmarks._shared import emit  # pytest puts the rootdir on sys.path

    section = benchmark.pedantic(run_policy_section, rounds=1, iterations=1)
    emit("policy", render_section(section))
    check_section(section)


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke", action="store_true",
        help="fast CI gate: tuner-ranking smoke + one-seed comparison",
    )
    parser.add_argument(
        "--out", metavar="FILE", default=None,
        help="merge the policy section into this engine report "
        "(e.g. BENCH_engine.json; other sections are preserved)",
    )
    parser.add_argument("--seeds", type=int, default=3, metavar="N",
                        help="run seeds 1..N (default 3)")
    parser.add_argument("--serial", action="store_true")
    parser.add_argument("--cache", action="store_true",
                        help="reuse the content-addressed result cache")
    args = parser.parse_args(argv)

    if args.smoke:
        report = run_tune_smoke(
            parallel=not args.serial, use_cache=args.cache
        )
        print(render_report(report, top=4))
        print()

    seeds = (1,) if args.smoke else tuple(range(1, args.seeds + 1))
    section = run_policy_section(
        seeds=seeds, parallel=not args.serial, use_cache=args.cache
    )
    print(render_section(section))
    check_section(section)
    if args.out:
        path = Path(args.out)
        report = json.loads(path.read_text()) if path.exists() else {}
        report["policy"] = section
        path.write_text(json.dumps(report, indent=2, default=float) + "\n")
        print(f"\npolicy section merged into {args.out}")
    print("policy-smoke: PASS" if args.smoke else "\npolicy bench: OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
