"""§5.1 / Figure 4 — the qualitative reconfiguration comparison.

The paper contrasts the manual legacy procedure (log on the node, stop
Apache, hand-edit ``worker.properties``, restart) with the Jade program::

    Apache1.stop(); Apache1.unbind("ajp-itf");
    Apache1.bind("ajp-itf", tomcat2-itf); Apache1.start()

This benchmark performs the Jade version for real (the wrapper rewrites the
legacy file) and measures it, and also reports the *expressed complexity*:
management operations vs legacy-level steps and config lines touched.
"""

from repro.cluster import Lan, make_nodes
from repro.legacy import Directory
from repro.legacy.configfiles import WorkerProperties
from repro.simulation import SimKernel
from repro.wrappers import make_apache_component, make_tomcat_component

from benchmarks._shared import emit


def _build():
    kernel = SimKernel()
    lan, directory = Lan(), Directory()
    n1, n2, n3 = make_nodes(kernel, 3)
    kw = dict(kernel=kernel, directory=directory, lan=lan)
    apache1 = make_apache_component("apache1", node=n1, **kw)
    tomcat1 = make_tomcat_component("tomcat1", node=n2, **kw)
    tomcat2 = make_tomcat_component("tomcat2", node=n3, **kw)
    instance = apache1.bind("ajp", tomcat1.get_interface("ajp"))
    apache1.start()
    return kernel, n1, apache1, tomcat2, instance


def _reconfigure(apache1, tomcat2, instance):
    """The paper's 4-operation reconfiguration program."""
    apache1.stop()
    apache1.unbind(instance)
    new_instance = apache1.bind("ajp", tomcat2.get_interface("ajp"))
    apache1.start()
    return new_instance


def bench_qualitative_reconfiguration(benchmark):
    def scenario():
        kernel, n1, apache1, tomcat2, instance = _build()
        _reconfigure(apache1, tomcat2, instance)
        return n1

    n1 = benchmark(scenario)
    workers = WorkerProperties.parse(n1.fs.read("/etc/apache/worker.properties"))
    legacy_lines = len(n1.fs.read("/etc/apache/worker.properties").splitlines())
    lines = [
        "Qualitative reconfiguration (Fig. 4): move apache1 from tomcat1 to tomcat2",
        "",
        "Jade program:        4 uniform component operations",
        "                     (stop, unbind, bind, start)",
        "Manual procedure:    log on node1, run the Apache shutdown script,",
        f"                     hand-edit worker.properties ({legacy_lines} "
        "legacy-specific lines),",
        "                     run the httpd start script  (per replica, per change)",
        "",
        f"resulting worker.properties points at: {workers.workers[0].host}"
        f":{workers.workers[0].port}",
    ]
    emit("qualitative_reconfig", "\n".join(lines))
    assert workers.workers[0].host == "node3"
