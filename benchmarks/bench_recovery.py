"""Self-recovery benchmark (Fig. 3's second manager).

Injects a database-replica crash under load and measures the repair
pipeline: detection latency, node re-allocation + reinstall, recovery-log
replay, and total MTTR.  Also verifies the repaired replica is
byte-identical (digest) to the survivors — the recovery log's purpose.
"""

from repro.jade.system import ExperimentConfig, ManagedSystem
from repro.workload.profiles import ConstantProfile

from benchmarks._shared import emit


def run_crash_scenario() -> dict:
    cfg = ExperimentConfig(
        profile=ConstantProfile(120, 900.0),
        seed=7,
        managed=False,
        recovery=True,
    )
    system = ManagedSystem(cfg)
    kernel = system.kernel
    system.db_tier.grow()  # 2 replicas so the service survives the crash
    kernel.run(until=60.0)
    crash_t = 300.0
    victim = system.db_tier.replicas[-1]
    kernel.schedule_at(crash_t, victim.node.crash)
    col = system.run()

    detect_t = next(
        (t for t, d in col.reconfigurations if "detected failure" in d), None
    )
    repaired_t = next(
        (
            t
            for t, d in col.reconfigurations
            if t > crash_t and "grow:" in d and "active" in d
        ),
        None,
    )
    controller = system.cjdbc.content.controller
    backends = controller.enabled_backends()
    digests = {b.server.state_digest for b in backends}
    replayed = sum(b.server.replays_applied for b in backends)
    return {
        "crash_t": crash_t,
        "detect_latency_s": (detect_t - crash_t) if detect_t else float("nan"),
        "mttr_s": (repaired_t - crash_t) if repaired_t else float("nan"),
        "replicas_after": len(backends),
        "digests_consistent": len(digests) == 1,
        "entries_replayed": replayed,
        "failed_requests": col.failed_requests,
        "completed_requests": col.completed_requests,
    }


def bench_recovery_mttr(benchmark):
    r = benchmark.pedantic(run_crash_scenario, rounds=1, iterations=1)
    lines = [
        "Self-recovery: DB replica crash under 120-client load",
        "",
        f"detection latency:   {r['detect_latency_s']:.1f} s",
        f"MTTR (crash -> replica active): {r['mttr_s']:.1f} s",
        f"replicas after repair: {r['replicas_after']}",
        f"recovery-log entries replayed: {r['entries_replayed']}",
        f"state digests consistent: {r['digests_consistent']}",
        f"requests: {r['completed_requests']} ok, {r['failed_requests']} failed",
    ]
    emit("recovery", "\n".join(lines))

    assert r["replicas_after"] == 2
    assert r["digests_consistent"]
    assert r["detect_latency_s"] <= 2.0          # 1 s heartbeat
    assert r["mttr_s"] < 120.0                   # install + start + sync
    # The service never went down: one replica kept serving.
    assert r["completed_requests"] > 0
