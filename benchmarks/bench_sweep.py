"""Decision-latency and sweep-throughput benchmarks (PR 4 perf work).

Not a paper figure: these time the two fan-out paths this repo's planning
layer runs on —

* a **what-if decision**: one 8-candidate proactive evaluation, serial
  (the pre-optimization path) vs parallel against a cold cache vs
  memoized against the warm cache, asserting the candidate reports stay
  byte-identical and the winner unchanged;
* a **sweep shard**: a small ``repro sweep`` grid through the parallel
  cached runner, cold vs warm (cache-resolved), in rows/s.

The same measurements are recorded in ``BENCH_engine.json`` by
``repro bench`` and gated in CI by ``make bench-whatif-check``.
"""

from repro.runner.bench import run_sweep_bench, run_whatif_bench

from benchmarks._shared import emit


def bench_whatif_decision_latency(benchmark):
    """One 8-candidate decision: serial vs parallel-cold vs memoized."""
    result = benchmark.pedantic(
        lambda: run_whatif_bench(candidates=8), rounds=1, iterations=1
    )

    assert result["byte_identical"], "parallel/memoized report drifted"
    assert result["same_winner"], "parallel/memoized winner drifted"
    lines = [
        f"What-if decision latency ({result['candidates']} candidates, "
        f"{result['workers']} workers)",
        "",
        f"{'path':<16}{'wall (s)':>10}{'speedup':>9}",
        f"{'serial':<16}{result['serial_s']:>10.2f}{1.0:>9.2f}",
        f"{'parallel cold':<16}{result['parallel_cold_s']:>10.2f}"
        f"{result['speedup_parallel']:>9.2f}",
        f"{'memoized':<16}{result['memoized_s']:>10.3f}"
        f"{result['speedup_memoized']:>9.1f}",
        "",
        f"winner: {result['winner']} (identical on every path); "
        f"memoized pass: {result['memoized_cache_hits']} cache hits, "
        f"{result['memoized_branches_run']} branches simulated",
    ]
    emit("bench_sweep_whatif", "\n".join(lines))


def bench_sweep_throughput(benchmark):
    """A 2x2 sweep shard, cold vs warm (cache-resolved)."""
    result = benchmark.pedantic(run_sweep_bench, rounds=1, iterations=1)

    assert result["rows_identical"], "warm sweep rows drifted from cold"
    cold, warm = result["cold"], result["warm"]
    lines = [
        f"Sweep throughput ({result['spec']['cells']} cells: "
        f"{'x'.join(str(len(result['spec'][k])) for k in ('policies', 'seeds', 'scales', 'cohorts'))})",
        "",
        f"{'pass':<8}{'wall (s)':>10}{'rows/s':>9}{'hits':>6}{'misses':>8}",
        f"{'cold':<8}{cold['elapsed_s']:>10.2f}{cold['rows_per_s']:>9.1f}"
        f"{cold['cache']['hits']:>6}{cold['cache']['misses']:>8}",
        f"{'warm':<8}{warm['elapsed_s']:>10.3f}{warm['rows_per_s']:>9.0f}"
        f"{warm['cache']['hits']:>6}{warm['cache']['misses']:>8}",
    ]
    emit("bench_sweep_throughput", "\n".join(lines))
