"""Table 1 — "Performance overhead" (intrusivity of Jade).

"The intrusivity has been measured by comparing two executions of the J2EE
application: when it is run and managed by Jade and when it is run by hand,
without Jade ... submitted to a medium workload so that its execution under
the control of Jade didn't induce any dynamic reconfiguration."

Paper rows (with Jade / without): throughput 12 / 12 req/s, response time
89 / 87 ms, CPU 12.74 / 12.42 %, memory 20.1 / 17.5 %.
"""

from benchmarks._shared import PAPER, constant80, emit


def bench_table1_intrusivity(benchmark):
    def run_both():
        return constant80(True), constant80(False)

    with_jade, without = benchmark.pedantic(run_both, rounds=1, iterations=1)
    sw, so = with_jade.summary(), without.summary()
    paper = PAPER["table1"]

    rows = [
        ("Throughput (req/s)", sw["throughput_rps"], so["throughput_rps"],
         *paper["throughput_rps"]),
        ("Resp. time (ms)", sw["latency_mean_ms"], so["latency_mean_ms"],
         *paper["resp_time_ms"]),
        ("CPU usage (%)", sw["node_cpu_mean"] * 100, so["node_cpu_mean"] * 100,
         *paper["cpu_pct"]),
        ("Memory usage (%)", sw["node_mem_mean"] * 100, so["node_mem_mean"] * 100,
         *paper["mem_pct"]),
    ]
    lines = [
        "Table 1: performance overhead at 80 clients (no reconfiguration)",
        "",
        f"{'metric':<22}{'with Jade':>12}{'without':>12}"
        f"{'paper w/':>12}{'paper w/o':>12}",
    ]
    for name, mw, mo, pw, po in rows:
        lines.append(f"{name:<22}{mw:>12.2f}{mo:>12.2f}{pw:>12.2f}{po:>12.2f}")
    emit("table1_intrusivity", "\n".join(lines))

    # No reconfiguration happened in either run (Table 1's protocol).
    for system in (with_jade, without):
        assert system.app_tier.grows_completed == 0
        assert system.db_tier.grows_completed == 0
    # Shape: throughput identical; memory overhead visible but small;
    # CPU overhead imperceptible (paper: +0.32 points).
    assert abs(sw["throughput_rps"] - so["throughput_rps"]) < 0.5
    mem_delta = (sw["node_mem_mean"] - so["node_mem_mean"]) * 100
    assert 0.5 < mem_delta < 6.0
    cpu_delta = (sw["node_cpu_mean"] - so["node_cpu_mean"]) * 100
    assert abs(cpu_delta) < 1.0
