#!/usr/bin/env python
"""Deploying an architecture from an ADL document (§3.3).

Shows the full deployment pipeline on a custom architecture — Figure 2's
shape: an L4 switch in front of two Apache replicas, cross-bound to two
Tomcat replicas, over C-JDBC and one MySQL — described declaratively and
interpreted by the deployment service (Cluster Manager allocates nodes, the
Software Installation Service installs packages, factories build wrapper
components, bindings fan out over replicas).

Run:  python examples/adl_deployment.py
"""

from repro.cluster import (
    ClusterManager,
    Lan,
    Package,
    SoftwareInstallationService,
    make_nodes,
)
from repro.fractal import architecture_report, parse_adl, verify_architecture
from repro.jade.deployment import DeploymentService
from repro.legacy import Directory, WebRequest
from repro.simulation import SimKernel
from repro.wrappers import default_factory_registry

FIG2_ADL = """
<definition name="figure2-j2ee">
  <component name="mysql" type="mysql" package="mysql"/>
  <component name="cjdbc" type="cjdbc" package="cjdbc"/>
  <component name="tomcat" type="tomcat" replicas="2" package="tomcat"/>
  <component name="apache" type="apache" replicas="2" package="apache">
    <attribute name="port" value="80"/>
  </component>
  <component name="l4" type="l4switch"/>
  <binding client="cjdbc.backends" server="mysql.mysql"/>
  <binding client="tomcat.jdbc" server="cjdbc.jdbc"/>
  <binding client="apache.ajp" server="tomcat.ajp"/>
  <binding client="l4.web" server="apache.http"/>
</definition>
"""


def main() -> None:
    kernel = SimKernel()
    lan, directory = Lan(), Directory()
    cluster = ClusterManager(make_nodes(kernel, 8))
    installer = SoftwareInstallationService(kernel, lan)
    for pkg in ("mysql", "cjdbc", "tomcat", "apache"):
        installer.register(Package(pkg, "1.0", size_mb=10.0, setup_time_s=1.0))

    deployer = DeploymentService(
        kernel, default_factory_registry(), cluster, directory, installer, lan
    )
    app = deployer.deploy(parse_adl(FIG2_ADL))
    app.start()
    kernel.run()

    print("Deployed architecture:\n")
    print(architecture_report(app.root))

    # §3.2: the same components, seen from the network-topology point of
    # view (composites per node, holding *shared* references).
    from repro.fractal import topology_view

    print("\nTopology view (same components, grouped by node):\n")
    print(architecture_report(topology_view(app.root)))
    problems = verify_architecture(app.root)
    print(f"\nArchitecture invariants: {'OK' if not problems else problems}")
    print(f"Nodes allocated: {cluster.allocated_count}, free: {cluster.free_count}")

    # Push a dynamic request through the whole chain via the L4 switch.
    switch = app.instance("l4").content.switch
    request = WebRequest(
        kernel, "ViewItem", app_demand_pre=0.012, app_demand_post=0.002,
        db_demand=0.025,
    )
    request.completion.add_callback(
        lambda s: print(
            f"\nRequest path: {' -> '.join(request.hops)}"
            f"\nLatency: {request.latency * 1e3:.1f} ms"
        )
    )
    switch.handle(request)
    kernel.run()


if __name__ == "__main__":
    main()
