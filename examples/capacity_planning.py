#!/usr/bin/env python
"""Capacity planning: forecast, fork, compare, act.

Walks the full proactive pipeline from :mod:`repro.capacity`:

1. run the managed ramp to a fork point and snapshot the system,
2. forecast the client load over a horizon (linear trend),
3. fork the simulation — one deterministic branch per candidate replica
   configuration — and score each on latency, SLO violation and cost,
4. verify the what-if guarantee: identical forks give byte-identical
   reports, and the parent run is never mutated,
5. re-run the same ramp with the :class:`ProactiveManager` in charge and
   show the staircase shifting ahead of the threshold crossings.

Run:  python examples/capacity_planning.py
"""

from repro.capacity import (
    CostModel,
    LinearTrendForecaster,
    ProactiveConfig,
    WhatIfEngine,
    run_to_fork,
)
from repro.jade.system import ExperimentConfig, ManagedSystem
from repro.workload.profiles import RampProfile

SEED = 7
SLO_S = 0.25


def ramp() -> RampProfile:
    # A compressed §5.2 ramp: 80 -> 500 -> 80 clients in ~1200 s.
    return RampProfile(warmup_s=120.0, step_period_s=24.0, cooldown_s=120.0)


def build(proactive: bool = False) -> ManagedSystem:
    config = ExperimentConfig(
        profile=ramp(),
        seed=SEED,
        managed=True,
        proactive=proactive,
        proactive_config=ProactiveConfig(
            min_eval_interval_s=90.0,
            grow_margin=0.85,
            cost_model=CostModel(slo_latency_s=SLO_S, slo_violation_cost_per_s=0.2),
        )
        if proactive
        else None,
    )
    return ManagedSystem(config)


def main() -> None:
    fork_at = 260.0
    print(f"Running the managed ramp to the fork point t={fork_at:.0f}s...")
    parent = build()
    snapshot = run_to_fork(parent, fork_at)
    print(
        f"  fork: {snapshot.clients} clients, app x{snapshot.app_replicas}, "
        f"db x{snapshot.db_replicas}, {snapshot.free_nodes} free nodes"
    )

    forecaster = LinearTrendForecaster()
    for t, clients in parent.collector.workload.changes:
        forecaster.observe(t, clients)
    forecast = forecaster.predict(horizon_s=120.0)
    peak = max(v for _, v in forecast)
    print(f"  forecast [trend]: load {snapshot.clients} -> peak {peak:.0f} in 120s")

    engine = WhatIfEngine(
        horizon_s=120.0,
        warmup_s=60.0,
        cost_model=CostModel(slo_latency_s=SLO_S, slo_violation_cost_per_s=0.2),
    )
    print("\nForking one branch simulation per candidate configuration:")
    outcomes = engine.evaluate(snapshot, forecast)
    best = engine.best(outcomes)
    for outcome in outcomes:
        marker = "  <- best" if outcome is best else ""
        print(
            f"  {outcome.candidate.label:<10s} "
            f"p95 {outcome.latency_p95_s * 1e3:7.1f} ms   "
            f"SLO viol {outcome.slo_violation_s:5.0f} s   "
            f"cost {outcome.cost.total:7.3f}{marker}"
        )

    # The two what-if guarantees, demonstrated live:
    identical = engine.report(outcomes) == engine.report(
        engine.evaluate(snapshot, forecast)
    )
    print(f"\nRe-evaluating the same fork: byte-identical report = {identical}")
    untouched = parent.kernel.now == fork_at
    print(f"Parent still parked at t={parent.kernel.now:.0f}s (unmutated: {untouched})")

    print("\nSame ramp, proactive manager active:")
    managed = build(proactive=True)
    managed.run()
    proactive = managed.proactive
    print(
        f"  {proactive.forecasts_issued} forecasts, "
        f"{proactive.evaluations} what-if evaluations, "
        f"{proactive.grows_triggered} proactive grows"
    )
    for tier in ("application", "database"):
        staircase = " ".join(
            f"t={t:.0f}s->{v:.0f}"
            for t, v in managed.collector.tier_replicas[tier].changes
        )
        print(f"  {tier} replicas: {staircase}")
    print(
        "\nCapacity lands ahead of the measured crossing: the what-if branch "
        "pays the reconfiguration before the SLO does."
    )


if __name__ == "__main__":
    main()
