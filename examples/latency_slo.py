#!/usr/bin/env python
"""Latency-SLO self-optimization (extension of §4.2's response-time sensor).

Instead of CPU thresholds, the manager watches the smoothed end-to-end
client latency against an SLO band and — because latency is not
attributable to one tier — localizes the bottleneck (highest-CPU tier) when
it must grow, and picks the idlest over-provisioned tier when it may
shrink.

Run:  python examples/latency_slo.py
"""

from repro import ExperimentConfig, ManagedSystem
from repro.workload import PiecewiseProfile


def main() -> None:
    profile = PiecewiseProfile(
        [(0.0, 80), (120.0, 350), (900.0, 80)], duration_s=1400.0
    )
    config = ExperimentConfig(
        profile=profile,
        seed=11,
        use_slo_manager=True,
        slo_max_latency_s=0.5,
        slo_min_latency_s=0.06,
    )
    system = ManagedSystem(config)
    print(
        f"SLO: keep the 60 s moving average of client latency under "
        f"{config.slo_max_latency_s * 1e3:.0f} ms"
    )
    print("Workload: 80 -> 350 -> 80 clients (step changes)\n")
    collector = system.run()

    print("Decisions (note the bottleneck localization):")
    for t, desc in collector.reconfigurations:
        print(f"  t={t:7.1f}s  {desc}")

    for window, label in (((300.0, 800.0), "under 350 clients"),
                          ((1100.0, 1400.0), "back at 80 clients")):
        lat = collector.latencies.window(*window)
        print(
            f"\nLatency {label}: mean {lat.mean() * 1e3:.0f} ms "
            f"(SLO {config.slo_max_latency_s * 1e3:.0f} ms)"
        )
    print(
        f"\nFinal provisioning: app x{system.app_tier.replica_count}, "
        f"db x{system.db_tier.replica_count} (scaled back down)"
    )


if __name__ == "__main__":
    main()
