#!/usr/bin/env python
"""Quickstart: deploy the RUBiS J2EE cluster, run a medium workload under
Jade management, and print the headline numbers.

Run:  python examples/quickstart.py
"""

from repro import ExperimentConfig, ManagedSystem
from repro.fractal import architecture_report
from repro.workload import ConstantProfile


def main() -> None:
    config = ExperimentConfig(
        profile=ConstantProfile(clients=80, duration_s=300.0),
        seed=7,
        managed=True,       # self-optimization manager active
    )
    system = ManagedSystem(config)

    print("Deployed architecture (the management layer's view):\n")
    print(architecture_report(system.app.root))

    print("\nRunning 300 s at 80 emulated clients...")
    collector = system.run()

    summary = system.summary()
    print("\nResults:")
    print(f"  completed requests : {summary['completed']:.0f}")
    print(f"  throughput         : {summary['throughput_rps']:.1f} req/s")
    print(f"  mean response time : {summary['latency_mean_ms']:.0f} ms")
    print(f"  p95 response time  : {summary['latency_p95_ms']:.0f} ms")
    print(f"  mean node CPU      : {summary['node_cpu_mean'] * 100:.1f} %")
    print(f"  mean node memory   : {summary['node_mem_mean'] * 100:.1f} %")
    print(
        f"  replicas           : app x{int(summary['app_replicas_max'])}, "
        f"db x{int(summary['db_replicas_max'])}"
    )
    print(
        "\nAt this medium load the control loops stay quiet "
        f"(reconfigurations: {len(collector.reconfigurations)}) — "
        "exactly Table 1's operating point."
    )


if __name__ == "__main__":
    main()
