#!/usr/bin/env python
"""The paper's §5.1 qualitative scenario (Figure 4).

Initially Apache1 (node1) is connected to Tomcat1 (node2).  We reconfigure
the clustered middleware so Apache1 talks to a new server Tomcat2 (node3).

Without Jade this means logging on node1, stopping Apache with its shutdown
script, hand-editing ``worker.properties``, and restarting httpd.  With
Jade it is four operations on the management layer — and the wrapper
rewrites the legacy file for you.

Run:  python examples/reconfiguration.py
"""

from repro.cluster import Lan, make_nodes
from repro.legacy import Directory
from repro.simulation import SimKernel
from repro.wrappers import make_apache_component, make_tomcat_component


def show(title: str, text: str) -> None:
    print(f"\n--- {title} ---")
    print(text.rstrip())


def main() -> None:
    kernel = SimKernel()
    lan, directory = Lan(), Directory()
    node1, node2, node3 = make_nodes(kernel, 3)
    kw = dict(kernel=kernel, directory=directory, lan=lan)

    apache1 = make_apache_component("apache1", {"port": 80}, node=node1, **kw)
    tomcat1 = make_tomcat_component("tomcat1", node=node2, **kw)
    tomcat2 = make_tomcat_component("tomcat2", node=node3, **kw)

    instance = apache1.bind("ajp", tomcat1.get_interface("ajp"))
    apache1.start()
    show(
        "worker.properties on node1 (before)",
        node1.fs.read("/etc/apache/worker.properties"),
    )

    # The paper's reconfiguration program, §5.1:
    apache1.stop()                                       # Apache1.stop()
    apache1.unbind(instance)                             # unbind Apache1 from Tomcat1
    apache1.bind("ajp", tomcat2.get_interface("ajp"))    # bind Apache1 to Tomcat2
    apache1.start()                                      # restart Apache1

    show(
        "worker.properties on node1 (after 4 component operations)",
        node1.fs.read("/etc/apache/worker.properties"),
    )
    print(
        "\nThe management program never touched a config file or a shell "
        "script;\nthe Apache wrapper reflected the binding change into the "
        "legacy layer."
    )


if __name__ == "__main__":
    main()
