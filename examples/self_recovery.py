#!/usr/bin/env python
"""Self-recovery: crash a database replica under load and watch Jade repair
it (Fig. 3's second autonomic manager; repair algorithm after the authors'
SRDS 2005 paper).

The repaired replica is synchronized from the C-JDBC recovery log before it
is re-enabled, so its state digest matches the survivor exactly.

Run:  python examples/self_recovery.py
"""

from repro import ExperimentConfig, ManagedSystem
from repro.workload import ConstantProfile


def main() -> None:
    config = ExperimentConfig(
        profile=ConstantProfile(clients=120, duration_s=900.0),
        seed=7,
        managed=False,   # isolate the recovery manager
        recovery=True,
    )
    system = ManagedSystem(config)
    kernel = system.kernel

    # Two DB replicas so the service survives the crash.
    system.db_tier.grow()
    kernel.run(until=60.0)
    print("Initial DB tier:", [r.component.name for r in system.db_tier.replicas])

    victim = system.db_tier.replicas[-1]
    print(f"Scheduling crash of {victim.node.name} (hosting "
          f"{victim.component.name}) at t=300 s")
    kernel.schedule_at(300.0, victim.node.crash)

    collector = system.run()

    print("\nRecovery timeline:")
    for t, desc in collector.reconfigurations:
        print(f"  t={t:7.1f}s  {desc}")

    controller = system.cjdbc.content.controller
    backends = controller.enabled_backends()
    digests = {b.server.state_digest for b in backends}
    print(f"\nEnabled backends after repair: {[b.name for b in backends]}")
    print(f"State digests identical: {len(digests) == 1}")
    print(
        f"Recovery-log entries replayed onto the replacement: "
        f"{sum(b.server.replays_applied for b in backends)}"
    )
    print(
        f"Requests: {collector.completed_requests} completed, "
        f"{collector.failed_requests} failed during the outage window"
    )


if __name__ == "__main__":
    main()
