#!/usr/bin/env python
"""Self-optimization under the paper's workload ramp (§5.2, Figures 5/6/9).

Drives the managed J2EE cluster through 80 → 500 → 80 emulated clients
(+21/min) and prints the reconfiguration timeline, a compact ASCII plot of
the DB-tier CPU against its thresholds, and the latency comparison against
a static run.

Run:  python examples/self_sizing.py            (full 3000 s ramp, ~1 min)
      python examples/self_sizing.py --quick    (compressed ramp)
"""

import sys

from repro import ExperimentConfig, ManagedSystem
from repro.workload import RampProfile


def ascii_plot(series, thresholds, width=72, height=12, t_end=3000.0):
    """Tiny ASCII rendering of a 0..1 time series with threshold lines."""
    buckets = series.bucket_mean(t_end / width, t_end)
    grid = [[" "] * width for _ in range(height)]
    lo, hi = thresholds
    for row_value, mark in ((hi, "-"), (lo, "-")):
        row = height - 1 - int(row_value * (height - 1))
        grid[row] = [mark] * width
    for t, v in zip(buckets.times, buckets.values):
        col = min(width - 1, int(t / t_end * width))
        row = height - 1 - int(min(1.0, v) * (height - 1))
        grid[row][col] = "*"
    lines = ["1.0 |" + "".join(grid[0])]
    lines += ["    |" + "".join(row) for row in grid[1:-1]]
    lines += ["0.0 +" + "".join(grid[-1])]
    return "\n".join(lines)


def main() -> None:
    quick = "--quick" in sys.argv
    scale = 0.35 if quick else 1.0
    profile = RampProfile(
        warmup_s=300 * scale, step_period_s=60 * scale, cooldown_s=300 * scale
    )
    print(
        f"Workload: 80 -> 500 -> 80 clients over {profile.duration_s:.0f} s "
        f"({'compressed' if quick else 'paper-scale'})"
    )

    print("\n[1/2] Managed run (Jade self-optimization active)...")
    managed = ManagedSystem(ExperimentConfig(profile=profile, seed=1))
    managed.run()
    col = managed.collector

    print("\nReconfiguration timeline:")
    for t, desc in col.reconfigurations:
        clients = int(col.workload.value_at(t))
        print(f"  t={t:7.1f}s  clients={clients:4d}  {desc}")

    print("\nDatabase tier CPU (90 s moving average) vs thresholds:")
    print(
        ascii_plot(
            col.tier_cpu["database"],
            (managed.config.db_loop.min_threshold, managed.config.db_loop.max_threshold),
            t_end=profile.duration_s,
        )
    )

    print("\n[2/2] Static run (no Jade, 1 Tomcat + 1 MySQL)...")
    static = ManagedSystem(
        ExperimentConfig(profile=profile, seed=1, managed=False)
    )
    static.run()

    m = managed.collector.latency_summary()
    s = static.collector.latency_summary()
    print("\nResponse time (Figures 8 & 9):")
    print(f"  with Jade    : mean {m['mean'] * 1e3:8.0f} ms   p95 {m['p95'] * 1e3:8.0f} ms")
    print(f"  without Jade : mean {s['mean'] * 1e3:8.0f} ms   p95 {s['p95'] * 1e3:8.0f} ms")
    print(f"  -> Jade keeps latency {s['mean'] / m['mean']:.0f}x lower on average")
    print(
        f"\nPeak provisioning: app x"
        f"{int(col.tier_replicas['application'].max())}, db x"
        f"{int(col.tier_replicas['database'].max())} (paper: x2 and x3)"
    )


if __name__ == "__main__":
    main()
