#!/usr/bin/env python
"""Managing the full Figure 2 architecture (extension, §7 genericity).

An L4 switch fronts a replicated Apache web tier, cross-bound through
mod_jk to two Tomcats, over C-JDBC and replicated MySQL.  Two control
loops run: one resizes the *web* tier (a tier the paper never resized) and
one the database tier — using the very same generic sensor / reactor /
actuator components, just wired differently.

Run:  python examples/three_tier.py
"""

from repro.fractal import architecture_report
from repro.jade.three_tier import ThreeTierSystem
from repro.workload import RampProfile


def main() -> None:
    profile = RampProfile(warmup_s=150, step_period_s=30, cooldown_s=150)
    system = ThreeTierSystem(profile, seed=2)

    print("Initial architecture:\n")
    print(architecture_report(system.app.root))

    print(f"\nRunning the ramp (80 -> 500 -> 80 clients, {profile.duration_s:.0f} s,"
          " 40 % static documents)...")
    collector = system.run()

    print("\nReconfiguration timeline:")
    for t, desc in collector.reconfigurations:
        clients = int(collector.workload.value_at(t))
        print(f"  t={t:7.1f}s  clients={clients:4d}  {desc}")

    stats = collector.latency_summary()
    print(
        f"\nLatency: mean {stats['mean'] * 1e3:.1f} ms, "
        f"p95 {stats['p95'] * 1e3:.1f} ms; failures: "
        f"{collector.failed_requests}"
    )
    print(
        f"Peak provisioning: web x{int(collector.tier_replicas['web'].max())}, "
        f"db x{int(collector.tier_replicas['database'].max())}"
    )
    print(
        "\nBoth tiers were resized by the SAME generic TierManager/probe/"
        "reactor code —\nonly the wiring (balancer component, replica "
        "factory, binding template) differs."
    )


if __name__ == "__main__":
    main()
