#!/usr/bin/env python
"""Workload trace capture and replay.

Captures the exact request stream of a closed-loop run, saves it as JSON
lines, and replays it open-loop against two configurations (1 vs 2 DB
replicas) — the controlled-comparison methodology enabled by the trace
tooling.

Run:  python examples/trace_replay.py
"""

import tempfile

from repro.jade.system import ExperimentConfig, ManagedSystem
from repro.metrics import MetricsCollector
from repro.workload import ConstantProfile, TraceRecorder, TraceReplayer, WorkloadTrace


def capture() -> WorkloadTrace:
    """Record what 150 clients produce against a managed system."""
    system = ManagedSystem(
        ExperimentConfig(
            profile=ConstantProfile(150, 300.0), seed=31, managed=False,
            sample_nodes=False,
        )
    )
    recorder = TraceRecorder(system.kernel, system.entry)
    system.emulator.entry = recorder
    system.run()
    return recorder.trace


def replay(trace: WorkloadTrace, db_replicas: int) -> MetricsCollector:
    """Replay the trace open-loop against a fresh system."""
    system = ManagedSystem(
        ExperimentConfig(
            profile=ConstantProfile(1, trace.duration_s + 60.0),
            seed=31,
            managed=False,
            sample_nodes=False,
        )
    )
    system.emulator.stop()  # no live clients: the trace drives everything
    for _ in range(db_replicas - 1):
        system.db_tier.grow()
        system.kernel.run(until=system.kernel.now + 30.0)
    collector = MetricsCollector()
    TraceReplayer(system.kernel, trace, system.entry, collector).start()
    system.kernel.run(until=trace.duration_s + 120.0)
    return collector


def main() -> None:
    print("Capturing a 300 s / 150-client trace...")
    trace = capture()
    print(
        f"  {len(trace)} requests, write fraction "
        f"{trace.write_fraction():.1%}"
    )
    with tempfile.NamedTemporaryFile(suffix=".jsonl", delete=False) as fh:
        path = fh.name
    trace.save(path)
    trace = WorkloadTrace.load(path)
    print(f"  saved + reloaded from {path}")

    print("\nReplaying the identical stream against two configurations:")
    for replicas in (1, 2):
        collector = replay(trace, replicas)
        stats = collector.latency_summary()
        print(
            f"  {replicas} DB replica(s): mean "
            f"{stats['mean'] * 1e3:7.1f} ms   p95 {stats['p95'] * 1e3:7.1f} ms"
            f"   completed {collector.completed_requests}"
        )
    print(
        "\nSame arrivals, same demands — the latency difference is purely "
        "the configuration's."
    )


if __name__ == "__main__":
    main()
