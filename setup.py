"""Legacy shim — all packaging metadata lives in pyproject.toml (PEP 621).

Kept so offline environments without `wheel` can still use the
`setup.py develop` install path.
"""

from setuptools import setup

setup()
