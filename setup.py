from setuptools import setup, find_packages

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Jade reproduction: autonomic management of clustered applications"
        " (CLUSTER 2006)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    install_requires=["numpy>=1.24"],
    extras_require={
        "dev": ["pytest>=7", "pytest-benchmark", "hypothesis", "ruff"],
    },
)
