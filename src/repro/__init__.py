"""repro — a reproduction of *Autonomic Management of Clustered
Applications* (Bouchenak, De Palma, Hagimont, Taton — CLUSTER 2006).

The paper's system, **Jade**, wraps legacy middleware in Fractal components
to give heterogeneous software a uniform management interface, and builds
autonomic managers (feedback control loops of sensors, reactors and
actuators) on top — demonstrated by self-optimizing a clustered J2EE
application (dynamic resizing of the Tomcat and MySQL tiers under a RUBiS
workload).

Package map
-----------
================================  =============================================
:mod:`repro.simulation`           discrete-event kernel, processes, CPU models
:mod:`repro.cluster`              nodes, allocator, installer, LAN, failures
:mod:`repro.fractal`              the Fractal component model + ADL
:mod:`repro.legacy`               simulated Apache/Tomcat/MySQL/C-JDBC/PLB
:mod:`repro.wrappers`             Fractal wrappers for the legacy servers
:mod:`repro.jade`                 deployment, control loops, managers, harness
:mod:`repro.workload`             RUBiS interactions, clients, ramp profiles
:mod:`repro.metrics`              time series, moving averages, collector
================================  =============================================

Quickstart
----------
>>> from repro import ExperimentConfig, ManagedSystem
>>> from repro.workload import ConstantProfile
>>> system = ManagedSystem(ExperimentConfig(
...     profile=ConstantProfile(80, 120.0), seed=7))
>>> collector = system.run()
>>> collector.completed_requests > 0
True
"""

from repro.jade.system import ExperimentConfig, ManagedSystem

__version__ = "1.0.0"

__all__ = ["ExperimentConfig", "ManagedSystem", "__version__"]
