"""Predictive capacity planning (extension).

The paper's self-sizing manager is purely *reactive*: the tiers resize
only after the smoothed CPU has already crossed a threshold, so every load
ramp pays the full allocate+install+sync latency before new capacity
arrives (the latency spikes around the reconfigurations of Fig. 9).  This
package adds the predictive layer a production autoscaler grows into:

* :mod:`repro.capacity.forecast` — pluggable load predictors over metric
  series (EWMA, linear trend, seasonal), fed from the existing sensors;
* :mod:`repro.capacity.snapshot` — a point-in-time capture of the managed
  system's state, the input to a what-if fork;
* :mod:`repro.capacity.whatif` — the sim-fork engine: replay a forecast
  horizon under N candidate replica configurations on deterministic branch
  simulations, without touching the parent run;
* :mod:`repro.capacity.cost` — node-hours, reconfiguration and
  SLO-violation costs used to score candidate outcomes;
* :mod:`repro.capacity.proactive` — the :class:`ProactiveManager` control
  loop that proposes grow/shrink *ahead* of predicted threshold crossings,
  routed through the same inhibition/arbitration machinery as the
  reactive loops.
"""

from repro.capacity.cost import CostBreakdown, CostModel, slo_violation_time
from repro.capacity.forecast import (
    EwmaForecaster,
    Forecaster,
    LinearTrendForecaster,
    SeasonalForecaster,
    make_forecaster,
)
from repro.capacity.proactive import ProactiveConfig, ProactiveManager
from repro.capacity.snapshot import SystemSnapshot
from repro.capacity.whatif import (
    BranchOutcome,
    BranchSpec,
    Candidate,
    WhatIfEngine,
    default_candidates,
    evaluate_branch,
    run_to_fork,
    warm_fingerprint,
)

__all__ = [
    "BranchOutcome",
    "BranchSpec",
    "Candidate",
    "CostBreakdown",
    "CostModel",
    "EwmaForecaster",
    "Forecaster",
    "LinearTrendForecaster",
    "ProactiveConfig",
    "ProactiveManager",
    "SeasonalForecaster",
    "SystemSnapshot",
    "WhatIfEngine",
    "default_candidates",
    "evaluate_branch",
    "make_forecaster",
    "run_to_fork",
    "slo_violation_time",
    "warm_fingerprint",
]
