"""Cost model for candidate configurations.

A candidate's score combines what a production operator actually pays:

* **node-hours** — hardware held over the evaluation horizon (the paper's
  resource-saving argument of §1, priced instead of merely counted);
* **reconfiguration cost** — each grow/shrink has a fixed operational
  price (the allocate+install+sync work, plus the risk window it opens);
* **SLO-violation cost** — every second the bucketed client latency sits
  above the SLO threshold costs; this is what a latency SLA bills.

Scores are linear so candidate comparisons are stable and explainable:
the what-if report shows each term, not just the total.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.metrics.series import TimeSeries

if TYPE_CHECKING:  # pragma: no cover
    from repro.capacity.whatif import BranchOutcome


def slo_violation_time(
    latencies: TimeSeries,
    t0: float,
    t1: float,
    slo_latency_s: float,
    bucket_s: float = 5.0,
) -> float:
    """Seconds of ``[t0, t1)`` whose bucketed mean latency exceeds the SLO.

    Buckets with no completed request do not count: with a closed-loop
    emulator an empty bucket means clients are thinking, not suffering.
    """
    window = latencies.window(t0, t1)
    violating = sum(
        1 for _, v in window.bucket_mean(bucket_s) if v > slo_latency_s
    )
    return violating * bucket_s


@dataclass(frozen=True)
class CostBreakdown:
    """One candidate's score, term by term."""

    node_hours: float
    node_cost: float
    reconfig_count: int
    reconfig_cost: float
    slo_violation_s: float
    slo_cost: float

    @property
    def total(self) -> float:
        return self.node_cost + self.reconfig_cost + self.slo_cost

    def to_record(self) -> dict:
        return {
            "node_hours": round(self.node_hours, 6),
            "node_cost": round(self.node_cost, 6),
            "reconfig_count": self.reconfig_count,
            "reconfig_cost": round(self.reconfig_cost, 6),
            "slo_violation_s": round(self.slo_violation_s, 6),
            "slo_cost": round(self.slo_cost, 6),
            "total": round(self.total, 6),
        }


@dataclass(frozen=True)
class CostModel:
    """Linear pricing of a branch outcome."""

    node_hour_cost: float = 1.0
    reconfig_cost: float = 0.25
    slo_violation_cost_per_s: float = 0.05
    slo_latency_s: float = 0.5
    #: score assigned to an infeasible candidate (pool exhausted)
    infeasible_cost: float = float("inf")
    #: per-type hourly prices for heterogeneous fleets (``repro.market``:
    #: sorted ``(instance_type, hourly_price)`` pairs, from
    #: :func:`repro.market.catalog.price_book`); None = the flat
    #: ``node_hour_cost`` rate of the paper's uniform pool
    price_book: tuple[tuple[str, float], ...] | None = None

    def node_hour_cost_for(self, instance_type: str | None) -> float:
        """Hourly price of one node: looked up in the price book when the
        node is typed, else the uniform flat rate."""
        if self.price_book is not None and instance_type is not None:
            for name, price in self.price_book:
                if name == instance_type:
                    return price
            raise KeyError(f"instance type {instance_type!r} not in price book")
        return self.node_hour_cost

    def price_node_seconds(self, seconds_by_type: dict[str, float]) -> float:
        """Total cost of per-type node-seconds (on-demand prices)."""
        return sum(
            self.node_hour_cost_for(name or None) * seconds / 3600.0
            for name, seconds in seconds_by_type.items()
        )

    def score(
        self,
        outcome: "BranchOutcome",
        current_app: int,
        current_db: int,
    ) -> CostBreakdown:
        """Price one branch outcome against the current configuration."""
        reconfigs = abs(outcome.candidate.app_replicas - current_app) + abs(
            outcome.candidate.db_replicas - current_db
        )
        if not outcome.feasible:
            return CostBreakdown(
                node_hours=float("nan"),
                node_cost=self.infeasible_cost,
                reconfig_count=reconfigs,
                reconfig_cost=reconfigs * self.reconfig_cost,
                slo_violation_s=float("nan"),
                slo_cost=0.0,
            )
        node_hours = outcome.node_seconds / 3600.0
        return CostBreakdown(
            node_hours=node_hours,
            node_cost=node_hours * self.node_hour_cost,
            reconfig_count=reconfigs,
            reconfig_cost=reconfigs * self.reconfig_cost,
            slo_violation_s=outcome.slo_violation_s,
            slo_cost=outcome.slo_violation_s * self.slo_violation_cost_per_s,
        )
