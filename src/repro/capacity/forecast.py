"""Load forecasters.

Each forecaster consumes an irregular stream of ``(t, value)`` observations
(client population, tier CPU, request rate — anything the sensors already
measure) and extrapolates it over a horizon.  The design mirrors the
sensors' spatial/temporal averaging style: bounded history, O(1) or O(n)
arithmetic, no hidden state, and byte-for-byte determinism — the what-if
engine relies on two identical observation streams producing identical
forecasts.

Three predictors cover the paper's workload shapes:

* :class:`EwmaForecaster` — exponentially weighted level; flat forecast.
  Right for noisy steady plateaus (Table 1's constant load).
* :class:`LinearTrendForecaster` — least-squares slope over a recent
  window.  Right for the §5.2 staircase ramp: during the climb it predicts
  the threshold crossing one-to-two inhibition windows early.
* :class:`SeasonalForecaster` — per-phase averages over a fixed period
  with a level offset, for periodic (diurnal-style) workloads.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Optional

ForecastSeries = list[tuple[float, float]]


class Forecaster:
    """Base class: bounded observation history + horizon extrapolation."""

    name = "base"

    def __init__(self, history_s: float = 600.0) -> None:
        if history_s <= 0:
            raise ValueError("history span must be positive")
        self.history_s = history_s
        self._samples: deque[tuple[float, float]] = deque()
        self.observations = 0

    # ------------------------------------------------------------------
    def observe(self, t: float, value: float) -> None:
        """Record one observation (monotone non-decreasing ``t``)."""
        if self._samples and t < self._samples[-1][0]:
            raise ValueError(
                f"non-monotonic observation ({t} after {self._samples[-1][0]})"
            )
        self._samples.append((t, float(value)))
        self.observations += 1
        self._on_observe(t, float(value))
        cutoff = t - self.history_s
        while self._samples and self._samples[0][0] < cutoff:
            self._samples.popleft()

    def _on_observe(self, t: float, value: float) -> None:
        """Hook for incremental state (EWMA level etc.)."""

    @property
    def last(self) -> Optional[tuple[float, float]]:
        return self._samples[-1] if self._samples else None

    # ------------------------------------------------------------------
    def predict(self, horizon_s: float, step_s: float = 15.0) -> ForecastSeries:
        """Forecast ``(t, value)`` points over ``(now, now + horizon]``.

        Empty when nothing has been observed yet.  Values are clamped to
        be non-negative (a client population cannot go below zero).
        """
        if horizon_s <= 0 or step_s <= 0:
            raise ValueError("horizon and step must be positive")
        if not self._samples:
            return []
        t0 = self._samples[-1][0]
        steps = max(1, math.ceil(horizon_s / step_s - 1e-9))
        return [
            (t0 + k * step_s, max(0.0, self._value_at(t0 + k * step_s)))
            for k in range(1, steps + 1)
        ]

    def predicted_peak(self, horizon_s: float, step_s: float = 15.0) -> float:
        """Highest forecast value over the horizon (NaN when unobserved)."""
        series = self.predict(horizon_s, step_s)
        if not series:
            return float("nan")
        return max(v for _, v in series)

    def _value_at(self, t: float) -> float:
        raise NotImplementedError


class EwmaForecaster(Forecaster):
    """Exponentially weighted moving average; forecasts the current level.

    The decay is continuous-time (``tau_s`` is the time constant), so
    irregular observation spacing is handled correctly.
    """

    name = "ewma"

    def __init__(self, tau_s: float = 60.0, history_s: float = 600.0) -> None:
        super().__init__(history_s)
        if tau_s <= 0:
            raise ValueError("time constant must be positive")
        self.tau_s = tau_s
        self._level: Optional[float] = None
        self._last_t: Optional[float] = None

    def _on_observe(self, t: float, value: float) -> None:
        if self._level is None or self._last_t is None:
            self._level = value
        else:
            weight = 1.0 - math.exp(-(t - self._last_t) / self.tau_s)
            self._level += weight * (value - self._level)
        self._last_t = t

    @property
    def level(self) -> float:
        return self._level if self._level is not None else float("nan")

    def _value_at(self, t: float) -> float:
        assert self._level is not None
        return self._level


class LinearTrendForecaster(Forecaster):
    """Least-squares linear extrapolation over a recent fit window."""

    name = "trend"

    def __init__(self, window_s: float = 180.0, history_s: float = 600.0) -> None:
        super().__init__(max(history_s, window_s))
        if window_s <= 0:
            raise ValueError("fit window must be positive")
        self.window_s = window_s

    def _fit(self) -> tuple[float, float]:
        """(intercept at the last observation time, slope per second)."""
        t_last = self._samples[-1][0]
        pts = [(t - t_last, v) for t, v in self._samples if t >= t_last - self.window_s]
        if len(pts) < 2:
            return self._samples[-1][1], 0.0
        n = float(len(pts))
        sx = sum(x for x, _ in pts)
        sy = sum(y for _, y in pts)
        sxx = sum(x * x for x, _ in pts)
        sxy = sum(x * y for x, y in pts)
        denom = n * sxx - sx * sx
        if denom == 0.0:  # all samples at one instant
            return pts[-1][1], 0.0
        slope = (n * sxy - sx * sy) / denom
        intercept = (sy - slope * sx) / n
        return intercept, slope

    def _value_at(self, t: float) -> float:
        t_last = self._samples[-1][0]
        intercept, slope = self._fit()
        return intercept + slope * (t - t_last)


class SeasonalForecaster(Forecaster):
    """Periodic predictor: per-phase bucket averages plus a level offset.

    The period is divided into ``buckets`` phase bins; each observation
    updates its bin's running mean.  A forecast for time ``t`` is the bin
    mean at ``t``'s phase, shifted by the difference between the most
    recent observation and its own bin mean — so a workload running hotter
    than its historical shape forecasts proportionally hotter.
    """

    name = "seasonal"

    def __init__(
        self,
        period_s: float = 3600.0,
        buckets: int = 24,
        history_s: Optional[float] = None,
    ) -> None:
        super().__init__(history_s if history_s is not None else 4 * period_s)
        if period_s <= 0 or buckets < 1:
            raise ValueError("need a positive period and at least one bucket")
        self.period_s = period_s
        self.buckets = buckets
        self._sums = [0.0] * buckets
        self._counts = [0] * buckets

    def _bucket(self, t: float) -> int:
        phase = (t % self.period_s) / self.period_s
        return min(self.buckets - 1, int(phase * self.buckets))

    def _bucket_mean(self, b: int) -> Optional[float]:
        if self._counts[b] == 0:
            return None
        return self._sums[b] / self._counts[b]

    def _on_observe(self, t: float, value: float) -> None:
        b = self._bucket(t)
        self._sums[b] += value
        self._counts[b] += 1

    def _value_at(self, t: float) -> float:
        t_last, v_last = self._samples[-1]
        mean = self._bucket_mean(self._bucket(t))
        if mean is None:
            return v_last  # unseen phase: hold the level
        last_mean = self._bucket_mean(self._bucket(t_last))
        offset = v_last - last_mean if last_mean is not None else 0.0
        return mean + offset


#: forecaster registry for CLI/config selection
FORECASTERS = {
    cls.name: cls
    for cls in (EwmaForecaster, LinearTrendForecaster, SeasonalForecaster)
}


def make_forecaster(name: str, **kwargs) -> Forecaster:
    """Instantiate a forecaster by registry name (``ewma``/``trend``/
    ``seasonal``)."""
    try:
        cls = FORECASTERS[name]
    except KeyError:
        raise ValueError(
            f"unknown forecaster {name!r} (have: {sorted(FORECASTERS)})"
        ) from None
    return cls(**kwargs)
