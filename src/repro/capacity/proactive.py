"""The proactive capacity manager.

A third autonomic manager that runs *alongside* the paper's reactive
threshold loops: every planning period it forecasts the client load over a
horizon, projects what that load would do to each tier's smoothed CPU, and
— when a threshold crossing is predicted — forks the simulation through
the :class:`~repro.capacity.whatif.WhatIfEngine` to compare candidate
replica configurations before committing one.  Chosen actions are routed
through the very same machinery the reactive loops use: the shared
:class:`~repro.jade.control_loop.InhibitionLock` (a proactive grow
inhibits reactive churn, and vice versa), the tier actuators, and — inside
them — the arbitration manager.  Every step is traced (forecast issued,
what-if evaluated, proactive decision), so a timeline shows *why* capacity
arrived before the threshold crossing the reactive loop would have waited
for.

The utilization projection is the planner's linear model
(:mod:`repro.jade.planner`): with fixed replicas, tier utilization scales
with offered load, so ``U_pred = U_now * L_peak / L_now``.  It is only a
*trigger filter* — the actual grow/shrink choice is made on simulated
branch outcomes (or directly on the projection when ``use_whatif`` is
off).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, Optional

from repro.capacity.cost import CostModel
from repro.capacity.forecast import Forecaster, make_forecaster
from repro.capacity.snapshot import SystemSnapshot
from repro.capacity.whatif import Candidate, WhatIfEngine
from repro.obs.events import (
    DecisionAction,
    DecisionReason,
    ForecastIssued,
    ProactiveDecision,
    WhatIfEvaluated,
)
from repro.simulation.kernel import PeriodicTask, SimKernel

if TYPE_CHECKING:  # pragma: no cover
    from repro.jade.actuators import TierManager
    from repro.jade.control_loop import InhibitionLock


@dataclass
class ProactiveConfig:
    """Knobs of the proactive planning loop."""

    plan_period_s: float = 15.0
    horizon_s: float = 120.0
    forecast_step_s: float = 15.0
    #: branch warmup before the measurement window (must cover replica
    #: forcing: install + start + DB sync)
    branch_warmup_s: float = 60.0
    forecaster: str = "trend"
    forecaster_kwargs: dict = field(default_factory=dict)
    #: a predicted utilization >= margin * max_threshold arms the planner
    grow_margin: float = 0.95
    #: a predicted utilization <= margin * min_threshold arms a shrink
    shrink_margin: float = 0.90
    #: minimum simulated time between what-if evaluations (they are
    #: expensive: one branch simulation per candidate)
    min_eval_interval_s: float = 60.0
    #: evaluate candidates on forked branch simulations; when off, act
    #: directly on the analytic projection (cheap, less informed)
    use_whatif: bool = True
    #: how far from the current configuration candidates may stray
    max_candidate_delta: int = 1
    #: cost model scoring candidate branches (None = CostModel defaults)
    cost_model: Optional[CostModel] = None
    #: fan candidate branches out over the process pool (off by default:
    #: a proactive manager may itself live inside a pooled experiment)
    whatif_parallel: bool = False
    whatif_workers: Optional[int] = None
    #: memoize warmed-branch outcomes in the shared ResultCache so a
    #: repeated decision under unchanged conditions replays nothing
    whatif_cache: bool = False
    #: dominance pruning: stop branches proven worse than the incumbent
    whatif_prune: bool = False


class ProactiveManager:
    """Forecast -> what-if -> act, ahead of the reactive loops."""

    def __init__(
        self,
        kernel: SimKernel,
        app_tier: "TierManager",
        db_tier: "TierManager",
        inhibition: "InhibitionLock",
        load_provider: Callable[[], float],
        snapshot_source: Callable[[], SystemSnapshot],
        app_thresholds: tuple[float, float],
        db_thresholds: tuple[float, float],
        config: Optional[ProactiveConfig] = None,
        cost_model: Optional[CostModel] = None,
        engine: Optional[WhatIfEngine] = None,
        name: str = "proactive",
    ) -> None:
        self.kernel = kernel
        self.app_tier = app_tier
        self.db_tier = db_tier
        self.inhibition = inhibition
        self.load_provider = load_provider
        self.snapshot_source = snapshot_source
        #: (max_threshold, min_threshold) per tier — the reactive loops'
        #: own bands, so the two managers agree on what "too hot" means
        self.app_thresholds = app_thresholds
        self.db_thresholds = db_thresholds
        self.config = config or ProactiveConfig()
        cfg = self.config
        self.cost_model = cost_model or cfg.cost_model or CostModel()
        if engine is None:
            from repro.runner.cache import ResultCache

            engine = WhatIfEngine(
                horizon_s=cfg.horizon_s,
                warmup_s=cfg.branch_warmup_s,
                step_s=cfg.forecast_step_s,
                cost_model=self.cost_model,
                parallel=cfg.whatif_parallel,
                max_workers=cfg.whatif_workers,
                cache=ResultCache() if cfg.whatif_cache else None,
                prune=cfg.whatif_prune,
            )
        self.engine = engine
        self.forecaster: Forecaster = make_forecaster(
            cfg.forecaster, **cfg.forecaster_kwargs
        )
        self.name = name
        #: optional decision tracer (set by the assembled system)
        self.tracer = None
        #: last smoothed CPU reading per tier label ("app"/"db"), fed by
        #: the probe subscriptions the assembled system wires up
        self._tier_cpu: dict[str, float] = {}
        self._task: Optional[PeriodicTask] = None
        self._last_eval_t = float("-inf")
        self.forecasts_issued = 0
        self.evaluations = 0
        self.grows_triggered = 0
        self.shrinks_triggered = 0
        self.decisions_suppressed = 0

    # -- probe subscriptions (same reading contract as the reactors) -------
    def cpu_listener(self, tier_label: str) -> Callable:
        """A listener recording the tier's smoothed CPU (subscribe it to
        the tier's :class:`~repro.jade.sensors.CpuProbe`)."""

        def listen(reading) -> None:
            self._tier_cpu[tier_label] = reading.smoothed

        return listen

    # -- lifecycle ---------------------------------------------------------
    def on_start(self, component=None) -> None:
        if self._task is None:
            self._task = self.kernel.every(self.config.plan_period_s, self._plan)

    def on_stop(self, component=None) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    @property
    def running(self) -> bool:
        return self._task is not None

    # ------------------------------------------------------------------
    def _project(self, tier_label: str, load: float, peak: float) -> float:
        """Predicted tier utilization at the forecast peak (NaN when the
        tier has no reading yet)."""
        current = self._tier_cpu.get(tier_label, float("nan"))
        if current != current or load <= 0.0:
            return float("nan")
        return current * (peak / load)

    def _plan(self) -> None:
        cfg = self.config
        now = self.kernel.now
        load = float(self.load_provider())
        self.forecaster.observe(now, load)
        forecast = self.forecaster.predict(cfg.horizon_s, cfg.forecast_step_s)
        if not forecast:
            return
        peak = max(v for _, v in forecast)
        trough = min(v for _, v in forecast)
        self.forecasts_issued += 1
        forecast_seq = None
        if self.tracer is not None:
            forecast_seq = self.tracer.emit(
                ForecastIssued(
                    now,
                    source=self.name,
                    model=self.forecaster.name,
                    horizon_s=cfg.horizon_s,
                    current=load,
                    predicted_peak=peak,
                )
            )
        app_hot = self._armed_grow(self.app_thresholds, "app", load, peak)
        db_hot = self._armed_grow(self.db_thresholds, "db", load, peak)
        app_cold = self._armed_shrink(
            self.app_thresholds, "app", load, trough, self.app_tier
        )
        db_cold = self._armed_shrink(
            self.db_thresholds, "db", load, trough, self.db_tier
        )
        if not (app_hot or db_hot or app_cold or db_cold):
            return
        if not cfg.use_whatif:
            self._act_on_projection(
                app_hot, db_hot, app_cold, db_cold, peak, forecast_seq
            )
            return
        if now - self._last_eval_t < cfg.min_eval_interval_s:
            return
        self._last_eval_t = now
        self._evaluate_and_act(forecast, peak, forecast_seq)

    def _armed_grow(
        self, thresholds: tuple[float, float], label: str, load: float, peak: float
    ) -> bool:
        projected = self._project(label, load, peak)
        return projected == projected and projected >= (
            self.config.grow_margin * thresholds[0]
        )

    def _armed_shrink(
        self,
        thresholds: tuple[float, float],
        label: str,
        load: float,
        trough: float,
        tier: "TierManager",
    ) -> bool:
        if tier.replica_count <= 1:
            return False
        projected = self._project(label, load, trough)
        return projected == projected and projected <= (
            self.config.shrink_margin * thresholds[1]
        )

    # ------------------------------------------------------------------
    def _evaluate_and_act(self, forecast, peak: float, forecast_seq) -> None:
        snapshot = self.snapshot_source()
        candidates = self._candidates(snapshot)
        self.evaluations += 1
        outcomes = self.engine.evaluate(snapshot, forecast, candidates)
        best = self.engine.best(outcomes)
        if self.tracer is not None:
            whatif_seq = self.tracer.emit(
                WhatIfEvaluated(
                    self.kernel.now,
                    source=self.name,
                    candidates=len(outcomes),
                    horizon_s=self.config.horizon_s,
                    best=best.candidate.label,
                    best_cost=best.cost.total,
                    infeasible=sum(1 for o in outcomes if not o.feasible),
                    cause=forecast_seq,
                )
            )
        else:
            whatif_seq = None
        self._steer(
            best.candidate.app_replicas - snapshot.app_replicas,
            best.candidate.db_replicas - snapshot.db_replicas,
            peak,
            cause=whatif_seq,
        )

    def _candidates(self, snapshot: SystemSnapshot) -> list[Candidate]:
        from repro.capacity.whatif import default_candidates

        return default_candidates(snapshot, self.config.max_candidate_delta)

    def _act_on_projection(
        self,
        app_hot: bool,
        db_hot: bool,
        app_cold: bool,
        db_cold: bool,
        peak: float,
        cause,
    ) -> None:
        self._steer(
            (1 if app_hot else 0) - (1 if app_cold and not app_hot else 0),
            (1 if db_hot else 0) - (1 if db_cold and not db_hot else 0),
            peak,
            cause=cause,
        )

    def _steer(self, app_delta: int, db_delta: int, peak: float, cause) -> None:
        for tier, delta in ((self.app_tier, app_delta), (self.db_tier, db_delta)):
            if delta == 0:
                continue
            self._actuate(tier, delta, peak, cause)

    def _actuate(self, tier: "TierManager", delta: int, peak: float, cause) -> None:
        action = DecisionAction.GROW if delta > 0 else DecisionAction.SHRINK
        trigger = (
            DecisionReason.PREDICTED_ABOVE_MAX
            if delta > 0
            else DecisionReason.PREDICTED_BELOW_MIN
        )
        if not self.inhibition.try_acquire(self.name):
            self.decisions_suppressed += 1
            self._emit(
                tier, action, False, DecisionReason.INHIBITED, peak, cause
            )
            return
        seq = self._emit(tier, action, True, trigger, peak, cause)
        if self.tracer is not None and seq is not None:
            self.tracer.push_cause(seq)
        try:
            ok = tier.grow() if delta > 0 else tier.shrink()
        finally:
            if self.tracer is not None and seq is not None:
                self.tracer.pop_cause()
        if ok:
            if delta > 0:
                self.grows_triggered += 1
            else:
                self.shrinks_triggered += 1
        else:
            self.decisions_suppressed += 1
            self._emit(
                tier, action, False, DecisionReason.ACTUATOR_BUSY, peak, seq or cause
            )

    def _emit(
        self, tier, action: str, executed: bool, reason: str, peak: float, cause
    ) -> Optional[int]:
        if self.tracer is None:
            return None
        return self.tracer.emit(
            ProactiveDecision(
                self.kernel.now,
                source=self.name,
                tier=tier.tier_name,
                action=action,
                executed=executed,
                reason=reason,
                predicted=peak,
                replicas=tier.replica_count,
                cause=cause,
            )
        )
