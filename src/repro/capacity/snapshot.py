"""Point-in-time capture of a managed system.

A what-if fork does not copy the live object graph (client sessions are
mid-generator and unpicklable); it captures the *observable* state the
branch needs — replica counts, client population, pool headroom, hardware
parameters, and the experiment seed — and the engine rebuilds a
deterministic branch system from it.  Capturing is read-only by
construction, which is what makes the parent-non-mutation guarantee of the
what-if engine trivial to uphold.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.workload.calibration import Calibration

if TYPE_CHECKING:  # pragma: no cover
    from repro.jade.system import ManagedSystem


def _last_tier_cpu(system: "ManagedSystem", tier: str) -> float:
    series = system.collector.tier_cpu.get(tier)
    last = series.last() if series is not None else None
    return last[1] if last is not None else float("nan")


@dataclass(frozen=True)
class SystemSnapshot:
    """Everything a branch simulation needs to start from 'here'."""

    t: float
    seed: int
    clients: int
    app_replicas: int
    db_replicas: int
    free_nodes: int
    pool_nodes: int
    node_speed: float
    thrashing: bool
    app_cpu: float                  # last smoothed tier CPU (NaN if unmeasured)
    db_cpu: float
    inhibition_free_at: float       # -inf when no lock applies
    calibration: Calibration = field(compare=False)

    @classmethod
    def capture(
        cls, system: "ManagedSystem", inhibition=None
    ) -> "SystemSnapshot":
        """Read the current state of ``system`` (no mutation)."""
        cfg = system.config
        free_at = float("-inf")
        if inhibition is None:
            inhibition = getattr(system.optimizer, "inhibition", None)
        if inhibition is not None:
            free_at = inhibition.free_at
        return cls(
            t=system.kernel.now,
            seed=cfg.seed,
            clients=system.emulator.active_clients,
            app_replicas=system.app_tier.replica_count,
            db_replicas=system.db_tier.replica_count,
            free_nodes=system.cluster.free_count,
            pool_nodes=cfg.pool_nodes,
            node_speed=cfg.node_speed,
            thrashing=cfg.thrashing,
            app_cpu=_last_tier_cpu(system, "application"),
            db_cpu=_last_tier_cpu(system, "database"),
            inhibition_free_at=free_at,
            calibration=cfg.calibration,
        )

    def to_record(self) -> dict:
        """Flat JSON-friendly dict (calibration elided — it is part of the
        experiment config, not of the observable state)."""
        return {
            "t": self.t,
            "seed": self.seed,
            "clients": self.clients,
            "app_replicas": self.app_replicas,
            "db_replicas": self.db_replicas,
            "free_nodes": self.free_nodes,
            "pool_nodes": self.pool_nodes,
            "node_speed": self.node_speed,
        }
