"""The what-if engine: deterministic sim-fork evaluation of candidates.

Given a :class:`~repro.capacity.snapshot.SystemSnapshot` and a load
forecast, the engine *forks* the simulation: for each candidate replica
configuration it builds a fresh branch system (same seed, same hardware
and calibration, same pool size), forces the candidate's replica counts,
replays the forecast horizon, and measures what the paper's figures
measure — latency, per-tier utilization, SLO-violation time — plus the
node-seconds the candidate holds.

Two properties are load-bearing and tested:

* **Determinism** — a branch is reconstructed purely from the snapshot and
  forecast; evaluating the same fork twice yields *byte-identical*
  reports (:meth:`WhatIfEngine.report`), whether the branches run
  serially in-process, fan out over the process pool, or resolve from
  the result cache.
* **Parent isolation** — the engine only reads the snapshot; the parent
  run's kernel, collector and RNG streams are never touched, so a run
  with what-if evaluations in the middle finishes with metrics identical
  to one without.

The fork is a *state projection*, not an object-graph copy: live client
sessions are mid-generator (unpicklable and uncopyable), so the branch
restarts a fresh closed-loop population at the snapshot's observed size
and lets it warm up for ``warmup_s`` before the measurement window opens.

Because the projection is a value, a branch is a *pure function* of its
:class:`BranchSpec` — which buys the three speedups of this module:

* **parallel fan-out** — specs pickle across the
  :func:`~repro.runner.parallel.fanout_map` process pool, so a
  C-candidate decision costs roughly one branch of wall-clock;
* **warmed-branch memoization** — every candidate sharing a
  (snapshot-fingerprint, forecast) pair shares :func:`warm_fingerprint`;
  branch outcomes are content-addressed in the
  :class:`~repro.runner.cache.ResultCache`, so a repeated decision (the
  proactive manager re-planning under unchanged conditions, a re-run
  benchmark session) never replays the warmup — it unpickles;
* **dominance pruning** — with a cost model, the incumbent candidate is
  evaluated first and its total cost becomes a bound; other branches
  compute a provable lower bound on their final cost at checkpoints and
  stop early once they cannot beat the incumbent (node-seconds are exact
  upfront — branch replicas are fixed — and SLO-violation time only
  grows), so pruning can never change the selected candidate.
"""

from __future__ import annotations

import hashlib
import json
import math
from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional, Sequence

from repro.capacity.cost import CostBreakdown, CostModel, slo_violation_time
from repro.capacity.forecast import ForecastSeries
from repro.capacity.snapshot import SystemSnapshot
from repro.runner.cache import ResultCache, describe_config
from repro.runner.parallel import default_workers, fanout_map
from repro.workload.calibration import Calibration
from repro.workload.profiles import PiecewiseProfile

if TYPE_CHECKING:  # pragma: no cover
    from repro.jade.system import ManagedSystem

#: nodes outside the resizable tiers (the PLB and C-JDBC balancers)
BALANCER_NODES = 2


@dataclass(frozen=True)
class Candidate:
    """One replica configuration to evaluate."""

    app_replicas: int
    db_replicas: int

    def __post_init__(self) -> None:
        if self.app_replicas < 1 or self.db_replicas < 1:
            raise ValueError("candidate replica counts must be >= 1")

    @property
    def label(self) -> str:
        return f"app{self.app_replicas}/db{self.db_replicas}"


def default_candidates(
    snapshot: SystemSnapshot, max_delta: int = 1
) -> list[Candidate]:
    """The neighbourhood of the current configuration: stay, grow either
    or both tiers, shrink either tier (one step each, deterministic
    order)."""
    base_app, base_db = snapshot.app_replicas, snapshot.db_replicas
    deltas = [(0, 0)]
    for d in range(1, max_delta + 1):
        deltas += [(d, 0), (0, d), (d, d), (-d, 0), (0, -d)]
    seen: set[tuple[int, int]] = set()
    out = []
    for da, db in deltas:
        app = max(1, base_app + da)
        dbr = max(1, base_db + db)
        if (app, dbr) in seen:
            continue
        seen.add((app, dbr))
        out.append(Candidate(app, dbr))
    return out


@dataclass(frozen=True)
class BranchSpec:
    """Everything one branch simulation depends on — and nothing else.

    A spec is a pure value: picklable (it crosses the process pool) and
    canonically describable (it addresses the result cache).  It projects
    the snapshot down to the fields a branch actually reads — replica
    targets, client population, hardware, seed — and normalizes the
    forecast to offsets from the snapshot instant, so two decisions taken
    at different wall-clock times under identical conditions share cache
    entries.
    """

    seed: int
    clients: int
    pool_nodes: int
    node_speed: float
    thrashing: bool
    calibration: Calibration
    #: forecast as (seconds after the snapshot, predicted clients)
    forecast: tuple[tuple[float, float], ...]
    candidate: Candidate
    #: the parent configuration (reconfiguration pricing + incumbent id)
    base_app: int
    base_db: int
    horizon_s: float
    warmup_s: float
    latency_bucket_s: float
    slo_latency_s: float
    #: dominance pruning: stop once the branch's cost lower bound exceeds
    #: this (None = run the full horizon)
    prune_bound: Optional[float] = None
    prune_check_s: float = 15.0
    #: cost model used for the in-branch lower bound (only when pruning)
    cost_model: Optional[CostModel] = None


def warm_fingerprint(spec: BranchSpec) -> str:
    """Identity of the warmed branch state a spec replays into.

    Hashes exactly the fields shared by every candidate of one decision —
    the snapshot projection, the normalized forecast, and the warmup
    window — so all candidates of a (snapshot, forecast) pair map to one
    fingerprint, and a repeated decision under unchanged conditions maps
    to the same one.  The branch cache key refines this with the
    candidate and measurement parameters.
    """
    shared = {
        "seed": spec.seed,
        "clients": spec.clients,
        "pool_nodes": spec.pool_nodes,
        "node_speed": spec.node_speed,
        "thrashing": spec.thrashing,
        "calibration": json.loads(describe_config(spec.calibration)),
        "forecast": [list(point) for point in spec.forecast],
        "warmup_s": spec.warmup_s,
        "horizon_s": spec.horizon_s,
    }
    blob = json.dumps(shared, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclass
class BranchOutcome:
    """What one candidate did over the forecast horizon."""

    candidate: Candidate
    feasible: bool = True
    error: str = ""
    latency_mean_s: float = float("nan")
    latency_p95_s: float = float("nan")
    slo_violation_s: float = float("nan")
    throughput_rps: float = float("nan")
    app_cpu_mean: float = float("nan")
    db_cpu_mean: float = float("nan")
    node_seconds: float = float("nan")
    completed: int = 0
    failed: int = 0
    #: dominance pruning stopped this branch before the full horizon (its
    #: recorded cost is a certified lower bound that already exceeds the
    #: incumbent's total, so it can never be the selected candidate)
    pruned: bool = False
    #: how much of the horizon was actually measured
    measured_horizon_s: float = float("nan")
    cost: Optional[CostBreakdown] = field(default=None)

    def to_record(self) -> dict:
        """Round-stable flat dict; byte-identical across identical forks."""
        record = {
            "candidate": self.candidate.label,
            "app_replicas": self.candidate.app_replicas,
            "db_replicas": self.candidate.db_replicas,
            "feasible": self.feasible,
            "error": self.error,
            "latency_mean_s": round(self.latency_mean_s, 6),
            "latency_p95_s": round(self.latency_p95_s, 6),
            "slo_violation_s": round(self.slo_violation_s, 6),
            "throughput_rps": round(self.throughput_rps, 6),
            "app_cpu_mean": round(self.app_cpu_mean, 6),
            "db_cpu_mean": round(self.db_cpu_mean, 6),
            "node_seconds": round(self.node_seconds, 6),
            "completed": self.completed,
            "failed": self.failed,
            "pruned": self.pruned,
            "measured_horizon_s": round(self.measured_horizon_s, 6),
        }
        if self.cost is not None:
            record["cost"] = self.cost.to_record()
        return record


# ----------------------------------------------------------------------
# The branch worker: a pure function of its spec (pool entry point)
# ----------------------------------------------------------------------
def _spec_profile(spec: BranchSpec) -> PiecewiseProfile:
    """Branch time runs from 0: hold the snapshot load through the
    warmup, then replay the forecast over the horizon."""
    points: list[tuple[float, int]] = [(0.0, int(spec.clients))]
    for offset_t, value in spec.forecast:
        offset = spec.warmup_s + max(0.0, offset_t)
        if offset >= spec.warmup_s + spec.horizon_s:
            break
        points.append((offset, max(0, round(value))))
    return PiecewiseProfile(points, duration_s=spec.warmup_s + spec.horizon_s)


def _settle(branch: "ManagedSystem", tier, step_s: float = 1.0) -> None:
    """Advance the branch kernel until the tier's in-flight
    reconfiguration finishes (install + start + sync take simulated
    time that must elapse inside the warmup)."""
    while tier.busy:
        branch.kernel.run(until=branch.kernel.now + step_s)


def _force_replicas(branch: "ManagedSystem", candidate: Candidate) -> bool:
    """Grow the branch's tiers to the candidate's counts before the
    measurement window; False when the pool cannot host the candidate."""
    for tier, target in (
        (branch.app_tier, candidate.app_replicas),
        (branch.db_tier, candidate.db_replicas),
    ):
        while tier.replica_count < target:
            if not tier.grow():
                return False
            _settle(branch, tier)
            if tier.grow_failures:
                return False
    return True


def _measure(
    branch: "ManagedSystem",
    outcome: BranchOutcome,
    spec: BranchSpec,
    t0: float,
    t1: float,
) -> None:
    col = branch.collector
    window = col.latencies.window(t0, t1)
    values = window.values
    if len(values):
        import numpy as np

        outcome.latency_mean_s = float(values.mean())
        outcome.latency_p95_s = float(np.percentile(values, 95))
    outcome.slo_violation_s = slo_violation_time(
        col.latencies,
        t0,
        t1,
        spec.slo_latency_s,
        bucket_s=spec.latency_bucket_s,
    )
    outcome.throughput_rps = len(values) / (t1 - t0)
    outcome.completed = int(len(values))
    outcome.failed = int(len(col.failures.window(t0, t1)))
    app_cpu = col.tier_cpu.get("application")
    db_cpu = col.tier_cpu.get("database")
    if app_cpu is not None:
        outcome.app_cpu_mean = app_cpu.window(t0, t1).mean()
    if db_cpu is not None:
        outcome.db_cpu_mean = db_cpu.window(t0, t1).mean()
    node_seconds = BALANCER_NODES * (t1 - t0)
    for series in col.tier_replicas.values():
        node_seconds += series.integral(t0, t1)
    outcome.node_seconds = node_seconds
    outcome.measured_horizon_s = t1 - t0


def _full_horizon_node_seconds(
    branch: "ManagedSystem", spec: BranchSpec, t0: float, t: float
) -> float:
    """Exact node-seconds over the *full* measurement window, known at
    any checkpoint ``t``: the branch is unmanaged, so replica counts are
    constant after forcing and the remainder extrapolates linearly."""
    end = spec.warmup_s + spec.horizon_s
    node_seconds = BALANCER_NODES * (end - t0)
    for series in branch.collector.tier_replicas.values():
        node_seconds += series.integral(t0, t)
        node_seconds += series.value_at(t) * (end - t)
    return node_seconds


def _cost_lower_bound(
    branch: "ManagedSystem", spec: BranchSpec, t: float
) -> tuple[float, float]:
    """(lower bound on the branch's final total cost, complete-bucket SLO
    violation so far).

    Sound because every term is monotone or exact: node cost is exact
    upfront (constant replicas), reconfiguration cost is exact, and the
    bucketed SLO-violation time over *complete* buckets can only grow as
    the horizon extends.
    """
    model = spec.cost_model
    assert model is not None
    t0 = spec.warmup_s
    # Bucket edges are absolute (multiples of bucket_s from 0, see
    # TimeSeries.bucket_mean): only buckets whose right edge is behind the
    # checkpoint have their final sample set, so cut on the last edge.
    t_complete = max(
        t0, math.floor(t / spec.latency_bucket_s + 1e-9) * spec.latency_bucket_s
    )
    violation = slo_violation_time(
        branch.collector.latencies,
        t0,
        t_complete,
        spec.slo_latency_s,
        bucket_s=spec.latency_bucket_s,
    )
    reconfigs = abs(spec.candidate.app_replicas - spec.base_app) + abs(
        spec.candidate.db_replicas - spec.base_db
    )
    node_hours = _full_horizon_node_seconds(branch, spec, t0, t) / 3600.0
    bound = (
        node_hours * model.node_hour_cost
        + reconfigs * model.reconfig_cost
        + violation * model.slo_violation_cost_per_s
    )
    return bound, violation


def evaluate_branch(spec: BranchSpec) -> BranchOutcome:
    """Run one candidate branch to completion (or to its pruning point).

    Module-level and side-effect free so it can serve as the process-pool
    entry point; the returned outcome is deterministic in ``spec`` alone,
    which is what makes parallel, serial and cached evaluation
    byte-identical.
    """
    from repro.jade.system import ExperimentConfig, ManagedSystem

    config = ExperimentConfig(
        seed=spec.seed,
        managed=False,
        profile=_spec_profile(spec),
        pool_nodes=spec.pool_nodes,
        node_speed=spec.node_speed,
        thrashing=spec.thrashing,
        calibration=spec.calibration,
        sample_nodes=False,
        tail_s=0.0,
    )
    branch = ManagedSystem(config)
    outcome = BranchOutcome(spec.candidate)
    if not _force_replicas(branch, spec.candidate):
        outcome.feasible = False
        outcome.error = "no-free-node"
        return outcome
    end = spec.warmup_s + spec.horizon_s
    if spec.prune_bound is None or spec.cost_model is None:
        branch.run(duration_s=end)
        _measure(branch, outcome, spec, spec.warmup_s, end)
        return outcome

    # Segmented run with dominance checks.  The segmentation itself is
    # invisible (the kernel processes the same events in the same order);
    # only an actual early exit changes what the record measures.
    for probe in branch._passive_probes:
        probe.on_start()
    branch.emulator.start()
    branch.kernel.run(until=spec.warmup_s)
    t = spec.warmup_s
    pruned_at: Optional[float] = None
    while t < end:
        t_next = min(end, t + spec.prune_check_s)
        branch.kernel.run(until=t_next)
        t = t_next
        if t >= end:
            break
        bound, _ = _cost_lower_bound(branch, spec, t)
        if bound > spec.prune_bound:
            pruned_at = t
            break
    branch.emulator.stop()
    if pruned_at is None:
        _measure(branch, outcome, spec, spec.warmup_s, end)
        return outcome
    # Pruned: record partial measurements, but price the candidate on its
    # certified lower bound — full-horizon node-seconds plus the
    # complete-bucket violation so far — so a later cost_model.score()
    # reproduces a total that provably exceeds the incumbent's.
    _, violation = _cost_lower_bound(branch, spec, pruned_at)
    _measure(branch, outcome, spec, spec.warmup_s, pruned_at)
    outcome.pruned = True
    outcome.node_seconds = _full_horizon_node_seconds(
        branch, spec, spec.warmup_s, pruned_at
    )
    outcome.slo_violation_s = violation
    return outcome


class WhatIfEngine:
    """Builds and runs branch simulations for candidate configurations.

    ``parallel=True`` fans candidate branches out over the
    :mod:`repro.runner` process pool; ``cache`` memoizes warmed-branch
    outcomes content-addressed in a :class:`ResultCache`; ``prune=True``
    evaluates the incumbent first and stops dominated branches early.
    All three are off by default (the PR-2 serial semantics) and none of
    them changes a single byte of :meth:`report` for the candidates that
    run to completion — pruning is the only knob that changes records,
    and only for candidates it can prove are not selectable.
    """

    def __init__(
        self,
        horizon_s: float = 120.0,
        warmup_s: float = 60.0,
        step_s: float = 15.0,
        cost_model: Optional[CostModel] = None,
        latency_bucket_s: float = 5.0,
        parallel: bool = False,
        max_workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        prune: bool = False,
        prune_check_s: float = 15.0,
    ) -> None:
        if horizon_s <= 0 or warmup_s <= 0:
            raise ValueError("horizon and warmup must be positive")
        if prune_check_s <= 0:
            raise ValueError("prune check interval must be positive")
        self.horizon_s = horizon_s
        self.warmup_s = warmup_s
        self.step_s = step_s
        self.cost_model = cost_model
        self.latency_bucket_s = latency_bucket_s
        self.parallel = parallel
        self.max_workers = max_workers or default_workers()
        self.cache = cache
        self.prune = prune
        self.prune_check_s = prune_check_s
        self.branches_run = 0
        self.evaluations = 0
        self.cache_hits = 0
        self.cache_misses = 0
        self.branches_pruned = 0
        #: warm fingerprint of the last evaluation's branch state
        self.last_warm_fingerprint: Optional[str] = None

    # ------------------------------------------------------------------
    def branch_spec(
        self,
        snapshot: SystemSnapshot,
        forecast: ForecastSeries,
        candidate: Candidate,
    ) -> BranchSpec:
        """Project (snapshot, forecast, candidate) down to the picklable
        value a branch is a pure function of."""
        return BranchSpec(
            seed=snapshot.seed,
            clients=int(snapshot.clients),
            pool_nodes=snapshot.pool_nodes,
            node_speed=snapshot.node_speed,
            thrashing=snapshot.thrashing,
            calibration=snapshot.calibration,
            forecast=tuple((t - snapshot.t, float(v)) for t, v in forecast),
            candidate=candidate,
            base_app=snapshot.app_replicas,
            base_db=snapshot.db_replicas,
            horizon_s=self.horizon_s,
            warmup_s=self.warmup_s,
            latency_bucket_s=self.latency_bucket_s,
            slo_latency_s=(
                self.cost_model.slo_latency_s if self.cost_model else 0.5
            ),
            prune_check_s=self.prune_check_s,
        )

    def evaluate(
        self,
        snapshot: SystemSnapshot,
        forecast: ForecastSeries,
        candidates: Optional[Sequence[Candidate]] = None,
    ) -> list[BranchOutcome]:
        """Run one branch per candidate; returns outcomes in candidate
        order, scored by the cost model when one is configured."""
        if candidates is None:
            candidates = default_candidates(snapshot)
        self.evaluations += 1
        specs = [
            self.branch_spec(snapshot, forecast, candidate)
            for candidate in candidates
        ]
        self.last_warm_fingerprint = (
            warm_fingerprint(specs[0]) if specs else None
        )
        outcomes: list[Optional[BranchOutcome]] = [None] * len(specs)
        rest = list(range(len(specs)))
        bound: Optional[float] = None
        if self.prune and self.cost_model is not None and len(specs) > 1:
            incumbent = self._incumbent_index(candidates, snapshot)
            outcome = self._evaluate_specs([specs[incumbent]])[0]
            outcomes[incumbent] = outcome
            rest.remove(incumbent)
            score = self.cost_model.score(
                outcome, snapshot.app_replicas, snapshot.db_replicas
            )
            if outcome.feasible and math.isfinite(score.total):
                bound = score.total
        if bound is not None:
            rest_specs = [
                replace(
                    specs[i], prune_bound=bound, cost_model=self.cost_model
                )
                for i in rest
            ]
        else:
            rest_specs = [specs[i] for i in rest]
        for i, outcome in zip(rest, self._evaluate_specs(rest_specs)):
            outcomes[i] = outcome
        result = [o for o in outcomes if o is not None]
        self.branches_pruned += sum(1 for o in result if o.pruned)
        if self.cost_model is not None:
            for outcome in result:
                outcome.cost = self.cost_model.score(
                    outcome, snapshot.app_replicas, snapshot.db_replicas
                )
        return result

    @staticmethod
    def _incumbent_index(
        candidates: Sequence[Candidate], snapshot: SystemSnapshot
    ) -> int:
        """The pruning bound's source: the stay-as-you-are candidate when
        present, else the first (deterministic either way)."""
        for i, candidate in enumerate(candidates):
            if (
                candidate.app_replicas == snapshot.app_replicas
                and candidate.db_replicas == snapshot.db_replicas
            ):
                return i
        return 0

    def _evaluate_specs(
        self, specs: Sequence[BranchSpec]
    ) -> list[BranchOutcome]:
        """Cache-aware, order-preserving fan-out of branch workers."""
        outcomes: dict[int, BranchOutcome] = {}
        pending: list[tuple[int, BranchSpec, Optional[str]]] = []
        for i, spec in enumerate(specs):
            if self.cache is not None:
                key = self.cache.key_for(spec)
                hit = self.cache.load(key)
                if hit is not None:
                    self.cache_hits += 1
                    outcomes[i] = hit
                    continue
                self.cache_misses += 1
                pending.append((i, spec, key))
            else:
                pending.append((i, spec, None))
        if pending:
            fresh = fanout_map(
                evaluate_branch,
                [spec for _, spec, _ in pending],
                max_workers=self.max_workers,
                parallel=self.parallel,
            )
            for (i, spec, key), outcome in zip(pending, fresh):
                self.branches_run += 1
                if self.cache is not None and key is not None:
                    self.cache.store(key, outcome, config=spec)
                outcomes[i] = outcome
        return [outcomes[i] for i in range(len(specs))]

    def best(self, outcomes: Sequence[BranchOutcome]) -> BranchOutcome:
        """Lowest total cost; ties break towards fewer replicas, then the
        stable candidate order (deterministic).  Pruned outcomes carry a
        certified lower bound strictly above the incumbent's total, so
        they rank below it without special-casing."""
        feasible = [o for o in outcomes if o.feasible]
        if not feasible:
            raise ValueError("no feasible candidate")
        if self.cost_model is None:
            raise ValueError("ranking candidates requires a cost model")
        return min(
            feasible,
            key=lambda o: (
                o.cost.total,
                o.candidate.app_replicas + o.candidate.db_replicas,
                o.candidate.label,
            ),
        )

    def report(self, outcomes: Sequence[BranchOutcome]) -> str:
        """Canonical JSON for the outcome list — the byte-identical
        artifact the determinism guarantee is stated over."""
        return json.dumps(
            [o.to_record() for o in outcomes], sort_keys=True, indent=2
        )


def run_to_fork(system: "ManagedSystem", t: float) -> SystemSnapshot:
    """Start a freshly-built system's moving parts, advance simulated time
    to ``t``, and capture the fork snapshot.

    Convenience for the CLI/examples: the parent is left mid-run (managers
    and emulator active) so callers can inspect it, but :meth:`ManagedSystem.run`
    must not be called on it afterwards — it would restart the managers.

    **Precondition — a freshly built system.**  ``run_to_fork`` performs
    the manager/emulator start-up itself, so the system passed in must
    never have been advanced or started: construct ``ManagedSystem(config)``
    and hand it over without calling ``run()``, ``kernel.run()`` or
    ``emulator.start()`` first.  Anything else would double-start the
    periodic control loops and corrupt the run; the guard below rejects
    it with an explicit error instead.
    """
    if (
        system.kernel.now > 0.0
        or system.kernel.events_processed > 0
        or system.emulator._task is not None
    ):
        raise ValueError(
            "run_to_fork needs a freshly built system: it starts the managers "
            "and client emulator itself before advancing to the fork point, "
            "so the system must not have been run or started. Build a new "
            "ManagedSystem(config) and pass it here without calling run(), "
            "kernel.run() or emulator.start() first."
        )
    cfg = system.config
    if system.optimizer is not None:
        system.optimizer.start()
    if system.recovery is not None:
        system.recovery.start()
    if system.proactive is not None:
        system.proactive.on_start()
    if cfg.sample_nodes:
        system._sampling_task = system.kernel.every(1.0, system._sample_nodes)
    for probe in system._passive_probes:
        probe.on_start()
    system.emulator.start()
    system.kernel.run(until=t)
    return SystemSnapshot.capture(system)
