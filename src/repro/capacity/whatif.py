"""The what-if engine: deterministic sim-fork evaluation of candidates.

Given a :class:`~repro.capacity.snapshot.SystemSnapshot` and a load
forecast, the engine *forks* the simulation: for each candidate replica
configuration it builds a fresh branch system (same seed, same hardware
and calibration, same pool size), forces the candidate's replica counts,
replays the forecast horizon, and measures what the paper's figures
measure — latency, per-tier utilization, SLO-violation time — plus the
node-seconds the candidate holds.

Two properties are load-bearing and tested:

* **Determinism** — a branch is reconstructed purely from the snapshot and
  forecast; evaluating the same fork twice yields *byte-identical*
  reports (:meth:`WhatIfEngine.report`).
* **Parent isolation** — the engine only reads the snapshot; the parent
  run's kernel, collector and RNG streams are never touched, so a run
  with what-if evaluations in the middle finishes with metrics identical
  to one without.

The fork is a *state projection*, not an object-graph copy: live client
sessions are mid-generator (unpicklable and uncopyable), so the branch
restarts a fresh closed-loop population at the snapshot's observed size
and lets it warm up for ``warmup_s`` before the measurement window opens.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional, Sequence

from repro.capacity.cost import CostBreakdown, CostModel, slo_violation_time
from repro.capacity.forecast import ForecastSeries
from repro.capacity.snapshot import SystemSnapshot
from repro.workload.profiles import PiecewiseProfile

if TYPE_CHECKING:  # pragma: no cover
    from repro.jade.system import ManagedSystem

#: nodes outside the resizable tiers (the PLB and C-JDBC balancers)
BALANCER_NODES = 2


@dataclass(frozen=True)
class Candidate:
    """One replica configuration to evaluate."""

    app_replicas: int
    db_replicas: int

    def __post_init__(self) -> None:
        if self.app_replicas < 1 or self.db_replicas < 1:
            raise ValueError("candidate replica counts must be >= 1")

    @property
    def label(self) -> str:
        return f"app{self.app_replicas}/db{self.db_replicas}"


def default_candidates(
    snapshot: SystemSnapshot, max_delta: int = 1
) -> list[Candidate]:
    """The neighbourhood of the current configuration: stay, grow either
    or both tiers, shrink either tier (one step each, deterministic
    order)."""
    base_app, base_db = snapshot.app_replicas, snapshot.db_replicas
    deltas = [(0, 0)]
    for d in range(1, max_delta + 1):
        deltas += [(d, 0), (0, d), (d, d), (-d, 0), (0, -d)]
    seen: set[tuple[int, int]] = set()
    out = []
    for da, db in deltas:
        app = max(1, base_app + da)
        dbr = max(1, base_db + db)
        if (app, dbr) in seen:
            continue
        seen.add((app, dbr))
        out.append(Candidate(app, dbr))
    return out


@dataclass
class BranchOutcome:
    """What one candidate did over the forecast horizon."""

    candidate: Candidate
    feasible: bool = True
    error: str = ""
    latency_mean_s: float = float("nan")
    latency_p95_s: float = float("nan")
    slo_violation_s: float = float("nan")
    throughput_rps: float = float("nan")
    app_cpu_mean: float = float("nan")
    db_cpu_mean: float = float("nan")
    node_seconds: float = float("nan")
    completed: int = 0
    failed: int = 0
    cost: Optional[CostBreakdown] = field(default=None)

    def to_record(self) -> dict:
        """Round-stable flat dict; byte-identical across identical forks."""
        record = {
            "candidate": self.candidate.label,
            "app_replicas": self.candidate.app_replicas,
            "db_replicas": self.candidate.db_replicas,
            "feasible": self.feasible,
            "error": self.error,
            "latency_mean_s": round(self.latency_mean_s, 6),
            "latency_p95_s": round(self.latency_p95_s, 6),
            "slo_violation_s": round(self.slo_violation_s, 6),
            "throughput_rps": round(self.throughput_rps, 6),
            "app_cpu_mean": round(self.app_cpu_mean, 6),
            "db_cpu_mean": round(self.db_cpu_mean, 6),
            "node_seconds": round(self.node_seconds, 6),
            "completed": self.completed,
            "failed": self.failed,
        }
        if self.cost is not None:
            record["cost"] = self.cost.to_record()
        return record


class WhatIfEngine:
    """Builds and runs branch simulations for candidate configurations."""

    def __init__(
        self,
        horizon_s: float = 120.0,
        warmup_s: float = 60.0,
        step_s: float = 15.0,
        cost_model: Optional[CostModel] = None,
        latency_bucket_s: float = 5.0,
    ) -> None:
        if horizon_s <= 0 or warmup_s <= 0:
            raise ValueError("horizon and warmup must be positive")
        self.horizon_s = horizon_s
        self.warmup_s = warmup_s
        self.step_s = step_s
        self.cost_model = cost_model
        self.latency_bucket_s = latency_bucket_s
        self.branches_run = 0
        self.evaluations = 0

    # ------------------------------------------------------------------
    def evaluate(
        self,
        snapshot: SystemSnapshot,
        forecast: ForecastSeries,
        candidates: Optional[Sequence[Candidate]] = None,
    ) -> list[BranchOutcome]:
        """Run one branch per candidate; returns outcomes in candidate
        order, scored by the cost model when one is configured."""
        if candidates is None:
            candidates = default_candidates(snapshot)
        self.evaluations += 1
        outcomes = [
            self._run_branch(snapshot, forecast, candidate)
            for candidate in candidates
        ]
        if self.cost_model is not None:
            for outcome in outcomes:
                outcome.cost = self.cost_model.score(
                    outcome, snapshot.app_replicas, snapshot.db_replicas
                )
        return outcomes

    def best(self, outcomes: Sequence[BranchOutcome]) -> BranchOutcome:
        """Lowest total cost; ties break towards fewer replicas, then the
        stable candidate order (deterministic)."""
        feasible = [o for o in outcomes if o.feasible]
        if not feasible:
            raise ValueError("no feasible candidate")
        if self.cost_model is None:
            raise ValueError("ranking candidates requires a cost model")
        return min(
            feasible,
            key=lambda o: (
                o.cost.total,
                o.candidate.app_replicas + o.candidate.db_replicas,
                o.candidate.label,
            ),
        )

    def report(self, outcomes: Sequence[BranchOutcome]) -> str:
        """Canonical JSON for the outcome list — the byte-identical
        artifact the determinism guarantee is stated over."""
        return json.dumps(
            [o.to_record() for o in outcomes], sort_keys=True, indent=2
        )

    # ------------------------------------------------------------------
    def _branch_profile(self, snapshot: SystemSnapshot, forecast: ForecastSeries):
        """Branch time runs from 0: hold the snapshot load through the
        warmup, then replay the forecast over the horizon."""
        points: list[tuple[float, int]] = [(0.0, int(snapshot.clients))]
        for t, value in forecast:
            offset = self.warmup_s + max(0.0, t - snapshot.t)
            if offset >= self.warmup_s + self.horizon_s:
                break
            points.append((offset, max(0, round(value))))
        return PiecewiseProfile(
            points, duration_s=self.warmup_s + self.horizon_s
        )

    def _run_branch(
        self,
        snapshot: SystemSnapshot,
        forecast: ForecastSeries,
        candidate: Candidate,
    ) -> BranchOutcome:
        from repro.jade.system import ExperimentConfig, ManagedSystem

        config = ExperimentConfig(
            seed=snapshot.seed,
            managed=False,
            profile=self._branch_profile(snapshot, forecast),
            pool_nodes=snapshot.pool_nodes,
            node_speed=snapshot.node_speed,
            thrashing=snapshot.thrashing,
            calibration=snapshot.calibration,
            sample_nodes=False,
            tail_s=0.0,
        )
        branch = ManagedSystem(config)
        self.branches_run += 1
        outcome = BranchOutcome(candidate)
        if not self._force_replicas(branch, candidate):
            outcome.feasible = False
            outcome.error = "no-free-node"
            return outcome
        end = self.warmup_s + self.horizon_s
        branch.run(duration_s=end)
        self._measure(branch, outcome, self.warmup_s, end)
        return outcome

    def _force_replicas(self, branch: "ManagedSystem", candidate: Candidate) -> bool:
        """Grow the branch's tiers to the candidate's counts before the
        measurement window; False when the pool cannot host the candidate."""
        for tier, target in (
            (branch.app_tier, candidate.app_replicas),
            (branch.db_tier, candidate.db_replicas),
        ):
            while tier.replica_count < target:
                if not tier.grow():
                    return False
                self._settle(branch, tier)
                if tier.grow_failures:
                    return False
        return True

    @staticmethod
    def _settle(branch: "ManagedSystem", tier, step_s: float = 1.0) -> None:
        """Advance the branch kernel until the tier's in-flight
        reconfiguration finishes (install + start + sync take simulated
        time that must elapse inside the warmup)."""
        while tier.busy:
            branch.kernel.run(until=branch.kernel.now + step_s)

    def _measure(
        self, branch: "ManagedSystem", outcome: BranchOutcome, t0: float, t1: float
    ) -> None:
        col = branch.collector
        window = col.latencies.window(t0, t1)
        values = window.values
        if len(values):
            import numpy as np

            outcome.latency_mean_s = float(values.mean())
            outcome.latency_p95_s = float(np.percentile(values, 95))
        outcome.slo_violation_s = slo_violation_time(
            col.latencies,
            t0,
            t1,
            self.cost_model.slo_latency_s if self.cost_model else 0.5,
            bucket_s=self.latency_bucket_s,
        )
        outcome.throughput_rps = len(values) / (t1 - t0)
        outcome.completed = int(len(values))
        outcome.failed = int(len(col.failures.window(t0, t1)))
        app_cpu = col.tier_cpu.get("application")
        db_cpu = col.tier_cpu.get("database")
        if app_cpu is not None:
            outcome.app_cpu_mean = app_cpu.window(t0, t1).mean()
        if db_cpu is not None:
            outcome.db_cpu_mean = db_cpu.window(t0, t1).mean()
        node_seconds = BALANCER_NODES * (t1 - t0)
        for series in col.tier_replicas.values():
            node_seconds += series.integral(t0, t1)
        outcome.node_seconds = node_seconds


def run_to_fork(system: "ManagedSystem", t: float) -> SystemSnapshot:
    """Start a freshly-built system's moving parts, advance simulated time
    to ``t``, and capture the fork snapshot.

    Convenience for the CLI/examples: the parent is left mid-run (managers
    and emulator active) so callers can inspect it, but :meth:`ManagedSystem.run`
    must not be called on it afterwards — it would restart the managers.
    """
    if system.kernel.now > 0.0:
        raise ValueError("run_to_fork needs a freshly built system")
    cfg = system.config
    if system.optimizer is not None:
        system.optimizer.start()
    if system.recovery is not None:
        system.recovery.start()
    if system.proactive is not None:
        system.proactive.on_start()
    if cfg.sample_nodes:
        system._sampling_task = system.kernel.every(1.0, system._sample_nodes)
    for probe in system._passive_probes:
        probe.on_start()
    system.emulator.start()
    system.kernel.run(until=t)
    return SystemSnapshot.capture(system)
