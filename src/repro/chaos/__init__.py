"""Chaos engineering subsystem (extension).

The paper's self-recovery experiments inject one clean fail-stop crash.
Real clusters fail in richer ways — stragglers, gray failures, network
partitions, correlated rack outages — and an autonomic manager is only as
good as its behaviour under those shapes.  This package turns the single
scripted crash into a reproducible resilience test harness:

* :mod:`repro.chaos.faults` — composable, seeded fault models
  (:class:`FaultSpec`, applied by :class:`ChaosInjector`): crash,
  fail-slow, gray failure, partition, added latency, correlated rack
  outage, Poisson crash streams;
* :mod:`repro.chaos.campaign` — :class:`ChaosCampaign`, a declarative,
  picklable schedule of faults that runs through the cached parallel
  :class:`~repro.runner.parallel.ExperimentRunner` (``repro chaos``);
* :mod:`repro.chaos.detectors` — :class:`PhiAccrualDetector`, a
  progress-based failure detector that catches gray and fail-slow
  failures the ``up``-flag heartbeat misses;
* :mod:`repro.chaos.scorecard` — per-campaign MTTR, availability,
  goodput and SLO-violation-under-fault with multi-seed confidence
  intervals (recorded by ``benchmarks/bench_chaos.py``).
"""

from repro.chaos.campaign import (
    PRESETS,
    ChaosCampaign,
    campaign_config,
)
from repro.chaos.detectors import PhiAccrualDetector
from repro.chaos.faults import ChaosInjector, FaultSpec
from repro.chaos.scorecard import (
    render_scorecard,
    score_campaign,
    score_run,
    scorecard_json,
)

__all__ = [
    "ChaosCampaign",
    "ChaosInjector",
    "FaultSpec",
    "PRESETS",
    "PhiAccrualDetector",
    "campaign_config",
    "render_scorecard",
    "score_campaign",
    "score_run",
    "scorecard_json",
]
