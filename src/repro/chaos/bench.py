"""The ``"chaos"`` section of BENCH_engine.json (shared logic).

Runs the crash, fail-slow and correlated campaigns across seeds and
records MTTR / detection latency / availability with 95 % confidence
intervals, plus the gray-failure detection comparison (the legacy
``up``-flag heartbeat misses a crawling replica; the phi-accrual
detector repairs it).

Lives inside the package (not ``benchmarks/``) so ``repro bench`` can
import it from an installed tree; ``benchmarks/bench_chaos.py`` is the
CLI/pytest wrapper.
"""

from __future__ import annotations

import dataclasses
from typing import Sequence

from repro.chaos import PRESETS, campaign_config, score_campaign

#: campaigns whose MTTR the committed report tracks with CIs
MTTR_CAMPAIGNS = ("crash", "fail-slow", "correlated")


def _runs(runner, campaign, seeds, clients, duration_s):
    runs = runner.run_seeds(
        lambda seed: campaign_config(
            campaign, seed=seed, clients=clients, duration_s=duration_s
        ),
        seeds,
        prefix=f"chaos-{campaign.name}-{campaign.detector}",
    )
    return [runs[s] for s in seeds]


def run_chaos_section(
    seeds: Sequence[int] = (1, 2, 3),
    clients: int = 60,
    duration_s: float = 420.0,
    parallel: bool = True,
    use_cache: bool = False,
) -> dict:
    """The ``"chaos"`` section of BENCH_engine.json."""
    from repro.runner import ExperimentRunner, ResultCache

    runner = ExperimentRunner(
        cache=ResultCache() if use_cache else None, parallel=parallel
    )
    seeds = tuple(seeds)
    campaigns = {}
    for name in MTTR_CAMPAIGNS:
        campaign = PRESETS[name]()
        card = score_campaign(
            campaign, _runs(runner, campaign, seeds, clients, duration_s)
        )
        agg = card["aggregate"]
        campaigns[name] = {
            "detector": campaign.detector,
            "mttr_s": agg["mttr_mean_s"],
            "detect_s": agg["detect_mean_s"],
            "availability": agg["availability"],
            "goodput_rps": agg["goodput_rps"],
            "disruptions": sum(r["disruptions"] for r in card["per_seed"]),
            "repairs": sum(r["repairs_completed"] for r in card["per_seed"]),
            "unrepaired": sum(r["unrepaired"] for r in card["per_seed"]),
        }

    gray = PRESETS["gray"]()
    arms = {}
    for detector in ("legacy", "phi"):
        campaign = dataclasses.replace(gray, detector=detector)
        card = score_campaign(
            campaign, _runs(runner, campaign, seeds, clients, duration_s)
        )
        arms[detector] = {
            "repairs": sum(r["repairs_completed"] for r in card["per_seed"]),
            "detections": sum(r["detections"] for r in card["per_seed"]),
            "detect_s": card["aggregate"]["detect_mean_s"],
            "goodput_rps": card["aggregate"]["goodput_rps"],
            "availability": card["aggregate"]["availability"],
        }
    return {
        "seeds": list(seeds),
        "clients": clients,
        "duration_s": duration_s,
        "campaigns": campaigns,
        "gray_detection": {
            **arms,
            "phi_catches_gray": (
                arms["legacy"]["repairs"] == 0 and arms["phi"]["repairs"] > 0
            ),
        },
    }


def render_section(section: dict) -> str:
    lines = [
        f"Chaos campaigns: {section['clients']} clients x "
        f"{section['duration_s']:.0f}s, seeds "
        f"{', '.join(str(s) for s in section['seeds'])}",
        "",
        f"{'campaign':<12s} {'detector':<8s} {'MTTR (s)':>16s} "
        f"{'detect (s)':>14s} {'avail (%)':>10s} {'repairs':>8s}",
    ]
    for name, c in section["campaigns"].items():
        mttr, det = c["mttr_s"], c["detect_s"]
        lines.append(
            f"{name:<12s} {c['detector']:<8s} "
            f"{mttr['mean']:8.1f} +/- {mttr['ci95']:4.1f} "
            f"{det['mean']:8.1f} +/- {det['ci95']:3.1f} "
            f"{c['availability']['mean'] * 100:10.2f} "
            f"{c['repairs']:>4d}/{c['disruptions']:d}"
        )
    g = section["gray_detection"]
    lines += [
        "",
        "Gray failure (replica answers heartbeats, serves at a crawl):",
        f"  legacy heartbeat : {g['legacy']['repairs']} repairs, "
        f"{g['legacy']['detections']} detections, "
        f"goodput {g['legacy']['goodput_rps']['mean']:.2f} req/s",
        f"  phi-accrual      : {g['phi']['repairs']} repairs, "
        f"{g['phi']['detections']} detections "
        f"(latency {g['phi']['detect_s']['mean']:.1f} s), "
        f"goodput {g['phi']['goodput_rps']['mean']:.2f} req/s",
        f"  phi catches what legacy misses: {g['phi_catches_gray']}",
    ]
    return "\n".join(lines)


def check_section(section: dict) -> None:
    """The load-bearing assertions shared by pytest and --smoke."""
    n_seeds = len(section["seeds"])
    for name in MTTR_CAMPAIGNS:
        c = section["campaigns"][name]
        assert c["unrepaired"] == 0, f"{name}: unrepaired faults"
        assert c["mttr_s"]["n"] == n_seeds
        assert 0.0 < c["mttr_s"]["mean"] < 120.0
        assert c["availability"]["mean"] > 0.9
    g = section["gray_detection"]
    assert g["phi_catches_gray"], "phi detector failed to catch gray failure"
    assert g["phi"]["goodput_rps"]["mean"] > g["legacy"]["goodput_rps"]["mean"]
