"""Declarative chaos campaigns.

A :class:`ChaosCampaign` is a frozen, picklable value — a named tuple of
:class:`~repro.chaos.faults.FaultSpec` plus detector/topology knobs — so
it rides inside :class:`~repro.jade.system.ExperimentConfig` through the
content-addressed :class:`~repro.runner.cache.ResultCache` and the
process-pool :class:`~repro.runner.parallel.ExperimentRunner` unchanged.
The same campaign + seed therefore yields a byte-identical scorecard
whether it runs serially, in a pool worker, or resolves from the cache
(test-enforced, like the what-if parallel==serial byte-identity).

``PRESETS`` holds the named campaigns the CLI, benchmark and CI smoke
use; :func:`campaign_config` packs a campaign into a runnable config
(steady load, self-recovery on, self-optimization off so every ``grow``
in the log is a repair).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.chaos import faults as F
from repro.chaos.faults import FaultSpec


@dataclass(frozen=True)
class ChaosCampaign:
    """A named, seeded schedule of faults.

    ``detector`` selects the failure-detection path for self-recovery:
    ``"legacy"`` is the paper's ``running``/``node.up`` heartbeat,
    ``"phi"`` adds the progress-based
    :class:`~repro.chaos.detectors.PhiAccrualDetector` (required to
    catch gray/fail-slow/partition faults).  ``racks`` sets the
    correlated-failure topology: node *i* lives in rack ``i % racks``.
    """

    name: str
    faults: tuple[FaultSpec, ...] = field(default_factory=tuple)
    detector: str = "legacy"
    racks: int = 3
    phi_threshold: float = 4.0
    failfast_ticks: int = 3

    def __post_init__(self) -> None:
        object.__setattr__(self, "faults", tuple(self.faults))
        if self.detector not in ("legacy", "phi"):
            raise ValueError(f"unknown detector {self.detector!r}")
        if self.racks < 1:
            raise ValueError("racks must be >= 1")
        for spec in self.faults:
            if not isinstance(spec, FaultSpec):
                raise TypeError("faults must be FaultSpec instances")


# ----------------------------------------------------------------------
# Preset campaigns (the CLI's --campaign choices)
# ----------------------------------------------------------------------
def crash_campaign(at_s: float = 180.0) -> ChaosCampaign:
    """The classic scenario: one fail-stop DB replica crash."""
    return ChaosCampaign("crash", (F.crash(at_s, target="db"),))


def fail_slow_campaign(
    at_s: float = 180.0, duration_s: float = 240.0, factor: float = 0.01
) -> ChaosCampaign:
    """A DB replica serves at ``factor`` speed; phi-accrual repairs it.

    The default factor is severe (100x) on purpose: an adaptive
    accrual detector only suspects *stalls* — inter-completion gaps
    many multiples of the learned mean.  Moderate slowdowns keep
    feeding the EWMA and read as a capacity problem (the
    self-optimization manager's job), not a failure.
    """
    return ChaosCampaign(
        "fail-slow",
        (F.fail_slow(at_s, duration_s, factor=factor, target="db"),),
        detector="phi",
    )


def gray_campaign(
    at_s: float = 180.0, duration_s: float = 600.0, factor: float = 0.005
) -> ChaosCampaign:
    """A DB replica answers heartbeats while serving at a crawl."""
    return ChaosCampaign(
        "gray",
        (F.gray(at_s, duration_s, factor=factor, target="db"),),
        detector="phi",
    )


def partition_campaign(
    at_s: float = 180.0, duration_s: float = 300.0
) -> ChaosCampaign:
    """An app replica is cut off the LAN; its work fails fast."""
    return ChaosCampaign(
        "partition",
        (F.partition(at_s, duration_s, target="app"),),
        detector="phi",
    )


def latency_campaign(
    at_s: float = 180.0, duration_s: float = 120.0, extra_s: float = 0.05
) -> ChaosCampaign:
    """The switch degrades: +``extra_s`` on every LAN message."""
    return ChaosCampaign(
        "latency", (F.extra_latency(at_s, duration_s, extra_s),)
    )


def correlated_campaign(at_s: float = 180.0, racks: int = 3) -> ChaosCampaign:
    """One rack dies: every replica node in the victim's rack crashes."""
    return ChaosCampaign(
        "correlated", (F.correlated(at_s, target="any"),), racks=racks
    )


def poisson_campaign(mtbf_s: float = 240.0) -> ChaosCampaign:
    """Random crashes with exponential inter-arrivals across both tiers."""
    return ChaosCampaign("poisson", (F.poisson(mtbf_s, target="any"),))


def spot_campaign(
    at_s: float = 180.0, notice_s: float = 120.0
) -> ChaosCampaign:
    """A scheduled spot-market reclaim of a DB replica's node: drained
    within the notice window, crashed at the deadline (``repro.market``)."""
    return ChaosCampaign(
        "spot", (F.spot_interruption(at_s, notice_s=notice_s, target="db"),)
    )


PRESETS = {
    "crash": crash_campaign,
    "fail-slow": fail_slow_campaign,
    "gray": gray_campaign,
    "partition": partition_campaign,
    "latency": latency_campaign,
    "correlated": correlated_campaign,
    "poisson": poisson_campaign,
    "spot": spot_campaign,
}


def campaign_config(
    campaign: ChaosCampaign,
    seed: int = 1,
    clients: int = 120,
    duration_s: float = 600.0,
    cohort: int = 1,
):
    """Pack a campaign into a runnable :class:`ExperimentConfig`.

    Self-recovery on, self-optimization off: with the optimizer quiet,
    every ``grow`` in the reconfiguration log is a repair, which is what
    the scorecard's MTTR extraction counts on.
    """
    from repro.jade.system import ExperimentConfig
    from repro.workload.profiles import ConstantProfile

    return ExperimentConfig(
        profile=ConstantProfile(clients, duration_s),
        seed=seed,
        managed=False,
        recovery=True,
        cohort=cohort,
        chaos=campaign,
    )
