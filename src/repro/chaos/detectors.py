"""Progress-based failure detection (phi-accrual).

The legacy :class:`~repro.jade.sensors.HeartbeatSensor` asks "does the
process answer?" — ``server.running and node.up``.  Gray and fail-slow
nodes answer every such probe while serving at a crawl, so the
self-recovery manager never repairs them.  Following Hayashibara et al.'s
phi-accrual idea, this detector instead watches *service progress*
(request completions as implicit heartbeats) and accrues suspicion
as the time since the last completion stretches past the server's own
historical inter-completion interval:

    phi = log10-scaled accrual = 0.4343 * elapsed / mean_interval

A server with queued work (``pending > 0``) whose phi crosses the
threshold is suspected — regardless of what the liveness flag says.  A
second rule catches network-isolated nodes, whose work *fails fast*
instead of stalling: errors advancing while completions stand still for
``failfast_ticks`` consecutive checks is equally damning.

Both rules are scoped by *node-local* evidence, so a healthy app server
stalled behind a failed database is not collaterally repaired: phi only
accrues while CPU work is visibly stuck on the server's own node
(``active_jobs > 0``), and fail-fast only fires while the node's own CPU
completion counter is frozen (an isolated node accepts no work; a server
merely relaying downstream errors keeps burning local CPU).

Suspicions are pushed to subscribers (the self-recovery manager routes
them into the repair path) and, when tracing is on, emitted as
:class:`~repro.obs.events.DetectorSuspected` events.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.obs.events import DetectorSuspected
from repro.simulation.kernel import PeriodicTask, SimKernel

#: 1/ln(10): converts "elapsed in units of the mean interval" to the
#: log10-scaled phi of the accrual-detector literature
_PHI_SCALE = 0.4343

SuspicionListener = Callable[[object, float, str], None]


class PhiAccrualDetector:
    """Completions-as-heartbeats failure detector over a set of servers.

    ``servers_provider`` is the same callable the heartbeat sensor uses;
    anything with ``served``/``failures``/``pending`` counters (weighted
    request counts) is watchable.  Servers that are plainly dead
    (``running`` False or node down) are left to the legacy heartbeat —
    this detector exists for the failures that path cannot see.
    """

    def __init__(
        self,
        kernel: SimKernel,
        servers_provider,
        period_s: float = 1.0,
        threshold: float = 4.0,
        min_interval_s: float = 1.0,
        failfast_ticks: int = 3,
        ewma_alpha: float = 0.2,
        name: str = "phi-detector",
    ) -> None:
        if period_s <= 0:
            raise ValueError("period must be positive")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        if failfast_ticks < 1:
            raise ValueError("failfast_ticks must be >= 1")
        self.kernel = kernel
        self.servers_provider = servers_provider
        self.period_s = period_s
        self.threshold = threshold
        self.min_interval_s = min_interval_s
        self.failfast_ticks = failfast_ticks
        self.ewma_alpha = ewma_alpha
        self.name = name
        self.suspicions = 0
        #: optional decision tracer (set by the assembled system)
        self.tracer = None
        self._listeners: list[SuspicionListener] = []
        self._state: dict[int, dict] = {}
        self._task: Optional[PeriodicTask] = None

    def subscribe(self, listener: SuspicionListener) -> None:
        """``listener(server, phi, reason)`` on every new suspicion."""
        self._listeners.append(listener)

    # -- lifecycle (same contract as the sensors) ----------------------
    def on_start(self, component=None) -> None:
        if self._task is None:
            self._task = self.kernel.every(self.period_s, self._check)

    def on_stop(self, component=None) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    @property
    def running(self) -> bool:
        return self._task is not None

    # ------------------------------------------------------------------
    def phi(self, server: object) -> float:
        """Current suspicion level for ``server`` (0.0 if unknown/healthy)."""
        st = self._state.get(id(server))
        if st is None or getattr(server, "pending", 0) <= 0:
            return 0.0
        elapsed = self.kernel.now - st["last_progress"]
        return _PHI_SCALE * elapsed / max(st["mean"], self.min_interval_s)

    def _check(self) -> None:
        now = self.kernel.now
        seen = set()
        for server in self.servers_provider():
            node = getattr(server, "node", None)
            if not getattr(server, "running", True) or (
                node is not None and not node.up
            ):
                continue  # plainly dead: the heartbeat sensor's job
            sid = id(server)
            seen.add(sid)
            served = getattr(server, "served", 0)
            failures = getattr(server, "failures", 0)
            pending = getattr(server, "pending", 0)
            cpu = getattr(node, "cpu", None)
            cpu_done = getattr(cpu, "completed", None) if cpu is not None else None
            st = self._state.get(sid)
            if st is None:
                # First observation seeds the anchor (cf. the utilization
                # sampler: no delta yet, no judgement yet).
                self._state[sid] = {
                    "served": served,
                    "failures": failures,
                    "cpu_done": cpu_done,
                    "last_progress": now,
                    "mean": self.min_interval_s,
                    "streak": 0,
                    "suspected": False,
                }
                continue
            # Node-local evidence: is CPU work stuck on *this* node?  A
            # server stalled behind a broken downstream dependency keeps
            # completing its own CPU slices, so both gates stay open only
            # when the node itself stopped making progress.
            cpu_stuck = cpu_done is None or (
                st["cpu_done"] is not None and cpu_done <= st["cpu_done"]
            )
            node_busy = cpu is None or cpu.active_jobs > 0
            if served > st["served"]:
                # Progress: update the learned inter-completion interval.
                interval = now - st["last_progress"]
                alpha = self.ewma_alpha
                st["mean"] = (1.0 - alpha) * st["mean"] + alpha * interval
                st["last_progress"] = now
                st["streak"] = 0
                st["suspected"] = False
            elif failures > st["failures"]:
                # Errors without completions: fail-fast evidence — but
                # only if the node's own CPU is frozen too (an isolated
                # node accepts no work; a relay of downstream errors
                # still burns local cycles).
                st["streak"] = st["streak"] + 1 if cpu_stuck else 0
            elif pending <= 0:
                # Idle with an empty queue: no evidence either way.
                st["last_progress"] = now
                st["streak"] = 0
            st["served"] = served
            st["failures"] = failures
            st["cpu_done"] = cpu_done
            if st["suspected"]:
                continue
            elapsed = now - st["last_progress"]
            phi = _PHI_SCALE * elapsed / max(st["mean"], self.min_interval_s)
            if st["streak"] >= self.failfast_ticks:
                st["suspected"] = True
                self._suspect(server, node, phi, "fail-fast")
            elif pending > 0 and node_busy and cpu_stuck and phi >= self.threshold:
                st["suspected"] = True
                self._suspect(server, node, phi, "phi")
        # Forget servers that left the managed set (repaired/removed).
        if len(self._state) > len(seen):
            self._state = {
                sid: st for sid, st in self._state.items() if sid in seen
            }

    def _suspect(self, server, node, phi: float, reason: str) -> None:
        self.suspicions += 1
        if self.tracer is not None:
            self.tracer.emit(
                DetectorSuspected(
                    self.kernel.now,
                    detector=self.name,
                    server=getattr(server, "name", repr(server)),
                    node=node.name if node is not None else "",
                    phi=phi,
                    reason=reason,
                )
            )
        for listener in list(self._listeners):
            listener(server, phi, reason)
