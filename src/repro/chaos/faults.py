"""Fault-model library.

A :class:`FaultSpec` is a frozen, picklable description of one fault — a
pure value, like :class:`~repro.capacity.whatif.BranchSpec`, so campaigns
containing them flow through ``describe_config`` and the process-pool
runner unchanged.  The :class:`ChaosInjector` interprets specs against a
live :class:`~repro.jade.system.ManagedSystem`:

========== =============================================================
kind       effect
========== =============================================================
crash      fail-stop: ``node.crash()`` (the classic scenario)
slow       fail-slow: CPU degraded to ``severity`` of nominal speed for
           ``duration_s`` (heartbeats keep passing)
gray       like ``slow`` but with a crawl-level factor: the node answers
           every liveness check while serving essentially nothing
partition  the victim node is network-isolated (``node.isolate()``, LAN
           partition recorded); in-flight work is lost, heartbeats pass
latency    LAN-wide: ``severity`` seconds added to every message delay
correlated one rack dies: every replica node in the victim's rack group
           (``index % campaign.racks``) crashes together
poisson    a crash stream with exponential inter-arrivals (``mtbf_s``)
           over the target tier, starting at ``at_s``
spot-      a spot-market reclaim (``repro.market``): the victim node gets
interrupt. an interruption notice; its replicas are drained through the
           recovery manager immediately (repair now, on a fresh node)
           and the node is crashed when the ``duration_s`` notice
           expires.  Victims on spot-bought nodes are preferred; on a
           uniform pool any replica node stands in.
========== =============================================================

Victims are chosen at fire time (``pick`` = newest/oldest/random replica
of the ``target`` tier) from the injector's dedicated seeded RNG stream,
so a campaign is deterministic per seed yet composes with whatever the
managers did in the meantime.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.obs.events import FaultCleared, FaultInjected
from repro.simulation.kernel import Event

KINDS = (
    "crash",
    "slow",
    "gray",
    "partition",
    "latency",
    "correlated",
    "poisson",
    "spot-interruption",
)
TARGETS = ("app", "db", "any")
PICKS = ("newest", "oldest", "random")

#: fault kinds that disable a replica and should end in a repair
DISRUPTIVE = (
    "crash",
    "slow",
    "gray",
    "partition",
    "correlated",
    "spot-interruption",
)


@dataclass(frozen=True)
class FaultSpec:
    """One declarative fault (see the module table for semantics)."""

    kind: str
    at_s: float = 0.0
    #: transient faults (slow/gray/partition/latency) clear after this;
    #: 0 means the fault is permanent (or instantaneous, for crashes)
    duration_s: float = 0.0
    #: slow/gray: delivered fraction of CPU speed; latency: added seconds
    severity: float = 1.0
    target: str = "db"
    pick: str = "newest"
    #: poisson only: mean time between crashes
    mtbf_s: float = 0.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}")
        if self.target not in TARGETS:
            raise ValueError(f"unknown target {self.target!r}")
        if self.pick not in PICKS:
            raise ValueError(f"unknown pick {self.pick!r}")
        if self.at_s < 0 or self.duration_s < 0:
            raise ValueError("fault times must be >= 0")
        if self.severity <= 0 and self.kind in ("slow", "gray"):
            raise ValueError("degradation severity must be positive")
        if self.kind == "latency" and self.severity < 0:
            raise ValueError("added latency must be >= 0")
        if self.kind == "poisson" and self.mtbf_s <= 0:
            raise ValueError("poisson faults need mtbf_s > 0")


# ----------------------------------------------------------------------
# Spec constructors (readable campaign definitions)
# ----------------------------------------------------------------------
def crash(at_s: float, target: str = "db", pick: str = "newest") -> FaultSpec:
    return FaultSpec("crash", at_s=at_s, target=target, pick=pick)


def fail_slow(
    at_s: float,
    duration_s: float,
    factor: float = 0.25,
    target: str = "db",
    pick: str = "newest",
) -> FaultSpec:
    return FaultSpec(
        "slow", at_s=at_s, duration_s=duration_s, severity=factor,
        target=target, pick=pick,
    )


def gray(
    at_s: float,
    duration_s: float,
    factor: float = 0.005,
    target: str = "db",
    pick: str = "newest",
) -> FaultSpec:
    return FaultSpec(
        "gray", at_s=at_s, duration_s=duration_s, severity=factor,
        target=target, pick=pick,
    )


def partition(
    at_s: float, duration_s: float, target: str = "app", pick: str = "newest"
) -> FaultSpec:
    return FaultSpec(
        "partition", at_s=at_s, duration_s=duration_s, target=target, pick=pick
    )


def extra_latency(at_s: float, duration_s: float, extra_s: float) -> FaultSpec:
    return FaultSpec(
        "latency", at_s=at_s, duration_s=duration_s, severity=extra_s
    )


def correlated(at_s: float, target: str = "any", pick: str = "random") -> FaultSpec:
    return FaultSpec("correlated", at_s=at_s, target=target, pick=pick)


def poisson(mtbf_s: float, at_s: float = 0.0, target: str = "any") -> FaultSpec:
    return FaultSpec("poisson", at_s=at_s, target=target, mtbf_s=mtbf_s)


def spot_interruption(
    at_s: float,
    notice_s: float = 120.0,
    target: str = "db",
    pick: str = "newest",
) -> FaultSpec:
    """A spot reclaim with the cloud's classic 2-minute notice
    (``duration_s`` holds the notice window)."""
    return FaultSpec(
        "spot-interruption", at_s=at_s, duration_s=notice_s,
        target=target, pick=pick,
    )


# ----------------------------------------------------------------------
# Injector
# ----------------------------------------------------------------------
class ChaosInjector:
    """Applies a :class:`~repro.chaos.campaign.ChaosCampaign` to a live
    system.

    Every applied fault is recorded three ways: a plain-data entry in
    :attr:`events` (what :class:`~repro.runner.results.ChaosStats`
    carries across process boundaries), a ``[chaos] ...`` line in the
    metrics collector's reconfiguration log, and — when tracing is on —
    a :class:`~repro.obs.events.FaultInjected` trace event.
    """

    def __init__(self, system, campaign, rng) -> None:
        self.system = system
        self.kernel = system.kernel
        self.campaign = campaign
        self.rng = rng
        self.collector = system.collector
        #: optional decision tracer (set by the assembled system)
        self.tracer = None
        self.faults_injected = 0
        #: plain-data fault log: {"t", "fault", "node", "tier", "detail"}
        self.events: list[dict] = []
        self._scheduled: list[Event] = []
        self._active_isolations = 0
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for spec in self.campaign.faults:
            if spec.kind == "poisson":
                self._arm_poisson(spec)
            else:
                self._scheduled.append(
                    self.kernel.schedule_at(spec.at_s, self._fire, spec)
                )

    def stop(self) -> None:
        """Cancel every pending injection and clearance."""
        for event in self._scheduled:
            event.cancel()
        self._scheduled.clear()

    # ------------------------------------------------------------------
    def _candidates(self, target: str) -> list[tuple]:
        tiers = {
            "app": [self.system.app_tier],
            "db": [self.system.db_tier],
            "any": [self.system.app_tier, self.system.db_tier],
        }[target]
        out = []
        for tier in tiers:
            for record in tier.replicas:
                if record.node.up and not record.node.isolated:
                    out.append((tier.tier_name, record))
        return out

    def _pick(self, spec: FaultSpec, candidates: list[tuple]) -> tuple:
        if spec.pick == "newest":
            return candidates[-1]
        if spec.pick == "oldest":
            return candidates[0]
        return candidates[int(self.rng.integers(len(candidates)))]

    def _record(
        self, fault: str, node: str, tier: str = "", detail: str = "",
        count: bool = True,
    ) -> None:
        t = self.kernel.now
        if count:
            self.faults_injected += 1
        self.events.append(
            {"t": t, "fault": fault, "node": node, "tier": tier, "detail": detail}
        )
        self.collector.record_reconfiguration(
            t, f"[chaos] {fault} {node or 'lan'}" + (f" ({detail})" if detail else "")
        )
        if self.tracer is not None:
            self.tracer.emit(
                FaultInjected(t, fault=fault, target=node or "lan",
                              tier=tier, detail=detail)
            )

    def _cleared(self, fault: str, target: str) -> None:
        if self.tracer is not None:
            self.tracer.emit(FaultCleared(self.kernel.now, fault=fault, target=target))

    def _clear_at(self, delay: float, fn, *args) -> None:
        self._scheduled.append(self.kernel.schedule(delay, fn, *args))

    # ------------------------------------------------------------------
    def _fire(self, spec: FaultSpec) -> None:
        candidates = self._candidates(spec.target)
        if spec.kind == "latency":
            self._apply_latency(spec)
            return
        if spec.kind == "spot-interruption":
            # Prefer genuinely spot-bought victims (heterogeneous fleet);
            # on a uniform pool any replica node stands in for one.
            spot_candidates = [
                (tn, r)
                for tn, r in candidates
                if getattr(r.node, "market", "on-demand") == "spot"
            ]
            if spot_candidates:
                candidates = spot_candidates
        if not candidates:
            # Nothing eligible (tier empty / everything already faulted):
            # log the attempt so the scorecard can report it.
            self.events.append(
                {"t": self.kernel.now, "fault": spec.kind, "node": "",
                 "tier": "", "detail": "no-eligible-victim"}
            )
            return
        tier_name, record = self._pick(spec, candidates)
        node = record.node
        if spec.kind == "crash":
            self._record("crash", node.name, tier_name)
            node.crash()
        elif spec.kind in ("slow", "gray"):
            detail = f"factor={spec.severity:g}"
            if spec.duration_s > 0:
                detail += f" for {spec.duration_s:g}s"
            self._record(spec.kind, node.name, tier_name, detail)
            node.degrade(spec.severity)
            if spec.duration_s > 0:
                self._clear_at(
                    spec.duration_s, self._restore_node, spec.kind, node
                )
        elif spec.kind == "partition":
            detail = f"for {spec.duration_s:g}s" if spec.duration_s > 0 else ""
            self._record("partition", node.name, tier_name, detail)
            others = [
                n for n in self.system.involved_nodes() if n is not node
            ]
            self.system.lan.partition([node], others)
            node.isolate()
            self._active_isolations += 1
            if spec.duration_s > 0:
                self._clear_at(spec.duration_s, self._heal_node, node)
        elif spec.kind == "correlated":
            self._fire_correlated(spec, tier_name, record, candidates)
        elif spec.kind == "spot-interruption":
            self._fire_spot(spec, tier_name, record)

    def _fire_spot(self, spec: FaultSpec, tier_name: str, record) -> None:
        """Drain-then-crash: the disruption is recorded at notice time
        (that is when the replica leaves service); the reclaim itself is
        logged as non-disruptive so MTTR is not double-counted."""
        node = record.node
        self._record(
            "spot-interruption", node.name, tier_name,
            f"notice={spec.duration_s:g}s",
        )
        engine = getattr(self.system, "market", None)
        if engine is not None:
            # Heterogeneous fleet: the market engine owns the whole
            # notice/drain/reclaim sequence (and the provision ledger).
            engine.interrupt(node, source="chaos")
            return
        if self.tracer is not None:
            from repro.obs.events import InterruptionNotice

            self.tracer.emit(InterruptionNotice(
                self.kernel.now, node=node.name,
                instance_type=getattr(node.instance, "name", "") or "",
                deadline=self.kernel.now + spec.duration_s,
                price=0.0, source="chaos",
            ))
        recovery = getattr(self.system, "recovery", None)
        if recovery is not None:
            server = getattr(record.component.content, "server", None)
            if server is not None:
                recovery.handle_interruption(server)
        self._clear_at(spec.duration_s, self._reclaim_spot, node)

    def _reclaim_spot(self, node) -> None:
        # The notice at _fire_spot already counted this fault.
        self._record("spot-reclaim", node.name, count=False)
        if node.up:
            node.crash()
        self.system.cluster.discard(node)

    def _fire_correlated(self, spec, tier_name, record, candidates) -> None:
        racks = max(1, self.campaign.racks)
        rack_of = {
            n.name: i % racks for i, n in enumerate(self.system.nodes)
        }
        victim_rack = rack_of.get(record.node.name, 0)
        doomed = [
            (tn, r)
            for tn, r in candidates
            if rack_of.get(r.node.name, -1) == victim_rack
        ]
        for tn, r in doomed:
            self._record("correlated", r.node.name, tn, f"rack={victim_rack}")
            r.node.crash()

    def _apply_latency(self, spec: FaultSpec) -> None:
        detail = f"extra={spec.severity:g}s"
        if spec.duration_s > 0:
            detail += f" for {spec.duration_s:g}s"
        self._record("latency", "", "", detail)
        self.system.lan.set_extra_latency(spec.severity)
        if spec.duration_s > 0:
            self._clear_at(spec.duration_s, self._restore_latency)

    # -- clearances ----------------------------------------------------
    def _restore_node(self, fault: str, node) -> None:
        if node.up:
            node.restore()
        self._cleared(fault, node.name)

    def _heal_node(self, node) -> None:
        node.heal()
        self._active_isolations -= 1
        if self._active_isolations <= 0:
            self.system.lan.heal()
        self._cleared("partition", node.name)

    def _restore_latency(self) -> None:
        self.system.lan.set_extra_latency(0.0)
        self._cleared("latency", "lan")

    # -- poisson stream ------------------------------------------------
    def _arm_poisson(self, spec: FaultSpec, first: Optional[bool] = True) -> None:
        delay = float(self.rng.exponential(spec.mtbf_s))
        at = (spec.at_s if first else self.kernel.now) + delay
        self._scheduled.append(
            self.kernel.schedule_at(at, self._fire_poisson, spec)
        )

    def _fire_poisson(self, spec: FaultSpec) -> None:
        candidates = self._candidates(spec.target)
        if candidates:
            tier_name, record = candidates[int(self.rng.integers(len(candidates)))]
            self._record("crash", record.node.name, tier_name, "poisson")
            record.node.crash()
        self._arm_poisson(spec, first=False)
