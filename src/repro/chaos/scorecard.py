"""Resilience scorecard.

Turns finished campaign runs into the numbers a resilience story is told
with: MTTR (fault injection → replacement replica active), detection
latency, availability (completed / attempted requests), goodput and SLO
violation time under fault — per seed, then aggregated across seeds with
95 % confidence intervals (the same mean/ci95 convention as
``BENCH_engine.json``).

Everything here is a pure function of :class:`CompletedRun` plain data
(the chaos event log, the recovery manager's detection log and the
collector's reconfiguration log), so the scorecard of a cached or
pool-worker run is byte-identical to a serial one —
:func:`scorecard_json` canonicalizes (sorted keys, rounded floats) to
make that testable.
"""

from __future__ import annotations

import json
import math
from typing import Optional, Sequence

from repro.capacity.cost import slo_violation_time
from repro.chaos.faults import DISRUPTIVE


def _stats(values: Sequence[float]) -> dict[str, float]:
    clean = [v for v in values if v == v]  # drop NaNs (no repair observed)
    if not clean:
        return {"mean": float("nan"), "ci95": 0.0, "n": 0}
    mean = sum(clean) / len(clean)
    if len(clean) > 1:
        var = sum((v - mean) ** 2 for v in clean) / (len(clean) - 1)
        ci = 1.96 * math.sqrt(var) / math.sqrt(len(clean))
    else:
        ci = 0.0
    return {"mean": mean, "ci95": ci, "n": len(clean)}


def _repairs_by_node(collector) -> dict[str, list[tuple[float, str, float]]]:
    """Completed repairs per tier as ``(start_t, failed_node, done_t)``.

    A repair episode leaves two lines in the reconfiguration log: a
    ``repair: <name> failed on <node>`` start (naming the *faulted* node)
    and, later, a ``grow: <name> active on <node>`` completion (naming the
    *replacement* node).  The tier's ``busy`` flag serializes grows, so
    within a tier the k-th repair start pairs FIFO with the earliest
    unused grow completion after it — this holds even when the recovery
    manager's retry loop re-issues a grow without a fresh repair line.
    With self-optimization off (``campaign_config``), every ``grow: ...
    active`` entry is such a repair completion.
    """
    starts: dict[str, list[tuple[float, str]]] = {}
    completions: dict[str, list[float]] = {}
    for t, desc in collector.reconfigurations:
        if not desc.startswith("["):
            continue
        tier = desc[1 : desc.index("]")]
        if "repair: " in desc and " failed on " in desc:
            node = desc[desc.index(" failed on ") + len(" failed on ") :]
            starts.setdefault(tier, []).append((t, node))
        elif "grow:" in desc and " active on " in desc:
            completions.setdefault(tier, []).append(t)
    repairs: dict[str, list[tuple[float, str, float]]] = {}
    for tier, tier_starts in starts.items():
        pool = completions.get(tier, [])
        used: set[int] = set()
        for start_t, node in tier_starts:
            for i, done_t in enumerate(pool):
                if i not in used and done_t > start_t:
                    used.add(i)
                    repairs.setdefault(tier, []).append((start_t, node, done_t))
                    break
    return repairs


def _match(
    fault_t: float,
    node: str,
    pool: list[tuple[float, str, float]],
    used: set[int],
) -> Optional[float]:
    """Completion time of the earliest unused repair *of this node* whose
    start is at/after ``fault_t``.  Matching by node is what keeps a
    Poisson stream hitting the same node repeatedly paired correctly:
    each repair goes to the earliest unrepaired fault on that node, never
    to a concurrent fault elsewhere in the tier."""
    for i, (start_t, repair_node, done_t) in enumerate(pool):
        if i not in used and repair_node == node and start_t >= fault_t:
            used.add(i)
            return done_t
    return None


def score_run(run, slo_latency_s: float = 0.5) -> dict:
    """Per-run scorecard of one campaign execution (a :class:`CompletedRun`
    — or any object exposing ``config``/``collector``/``chaos``)."""
    chaos = run.chaos
    if chaos is None:
        raise ValueError("run has no chaos campaign attached")
    col = run.collector
    duration = run.config.profile.duration_s

    disruptions = [
        e for e in chaos.events if e["fault"] in DISRUPTIVE and e["node"]
    ]
    repairs = _repairs_by_node(col)
    detections = sorted(chaos.detections, key=lambda d: d["t"])

    mttrs: list[float] = []
    detect_latencies: list[float] = []
    used_repairs: dict[str, set[int]] = {}
    used_detections: set[int] = set()
    unrepaired = 0
    for event in sorted(disruptions, key=lambda e: e["t"]):
        tier = event["tier"]
        repaired_t = _match(
            event["t"],
            event["node"],
            repairs.get(tier, []),
            used_repairs.setdefault(tier, set()),
        )
        if repaired_t is None:
            unrepaired += 1
        else:
            mttrs.append(repaired_t - event["t"])
        for i, det in enumerate(detections):
            if i not in used_detections and det["tier"] == tier and det["t"] >= event["t"]:
                used_detections.add(i)
                detect_latencies.append(det["t"] - event["t"])
                break

    completed = col.completed_requests
    failed = col.failed_requests
    attempted = completed + failed
    return {
        "seed": run.config.seed,
        "faults_injected": chaos.faults_injected,
        "disruptions": len(disruptions),
        "repairs_completed": len(mttrs),
        "unrepaired": unrepaired,
        "mttr_mean_s": _mean_or_nan(mttrs),
        "mttr_max_s": max(mttrs) if mttrs else float("nan"),
        "detect_mean_s": _mean_or_nan(detect_latencies),
        "detections": len(detections),
        # NaN, not 1.0, when the outage killed every arrival: "nobody got
        # through" must not score as perfect availability.  _stats drops
        # NaNs from the CI aggregation and the renderer prints n/a.
        "availability": completed / attempted if attempted else float("nan"),
        "goodput_rps": col.throughput(0.0, duration),
        "slo_violation_s": slo_violation_time(
            col.latencies, 0.0, duration, slo_latency_s
        ),
        "failed_requests": failed,
        "completed_requests": completed,
    }


def _mean_or_nan(values: list[float]) -> float:
    return sum(values) / len(values) if values else float("nan")


#: per-seed metrics aggregated with mean/ci95 across seeds
AGGREGATED = (
    "mttr_mean_s",
    "detect_mean_s",
    "availability",
    "goodput_rps",
    "slo_violation_s",
)


def score_campaign(
    campaign, runs: Sequence, slo_latency_s: float = 0.5
) -> dict:
    """Multi-seed scorecard: per-seed rows plus mean/ci95 aggregates."""
    per_seed = [score_run(r, slo_latency_s) for r in runs]
    aggregate = {
        metric: _stats([row[metric] for row in per_seed])
        for metric in AGGREGATED
    }
    aggregate["repairs_completed"] = _stats(
        [float(row["repairs_completed"]) for row in per_seed]
    )
    return {
        "campaign": campaign.name,
        "detector": campaign.detector,
        "slo_latency_s": slo_latency_s,
        "seeds": [row["seed"] for row in per_seed],
        "per_seed": per_seed,
        "aggregate": aggregate,
    }


# ----------------------------------------------------------------------
# Canonical serialization (byte-identity) and rendering
# ----------------------------------------------------------------------
def _canonical(value):
    if isinstance(value, dict):
        return {k: _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, float):
        if value != value:
            return None  # NaN is not valid JSON; canonicalize to null
        return round(value, 9)
    return value


def scorecard_json(scorecard: dict) -> str:
    """Canonical JSON: sorted keys, floats rounded to 9 decimals, NaN →
    null.  Two runs of the same campaign + seeds — serial, parallel or
    cache-resolved — must produce byte-identical output."""
    return json.dumps(_canonical(scorecard), indent=2, sort_keys=True) + "\n"


def render_scorecard(scorecard: dict) -> list[str]:
    """Human-readable scorecard block for the CLI."""
    agg = scorecard["aggregate"]

    def fmt(metric: str, scale: float = 1.0, unit: str = "") -> str:
        s = agg[metric]
        if s["n"] == 0 or s["mean"] != s["mean"]:
            return "n/a"
        return f"{s['mean'] * scale:.2f} ± {s['ci95'] * scale:.2f}{unit}"

    lines = [
        f"Campaign '{scorecard['campaign']}' "
        f"(detector: {scorecard['detector']}, "
        f"seeds: {', '.join(str(s) for s in scorecard['seeds'])})",
        f"  MTTR                : {fmt('mttr_mean_s', unit=' s')}",
        f"  detection latency   : {fmt('detect_mean_s', unit=' s')}",
        f"  availability        : {fmt('availability', scale=100.0, unit=' %')}",
        f"  goodput             : {fmt('goodput_rps', unit=' req/s')}",
        f"  SLO violation       : {fmt('slo_violation_s', unit=' s')} "
        f"(SLO {scorecard['slo_latency_s'] * 1000:.0f} ms)",
    ]
    total_disruptions = sum(r["disruptions"] for r in scorecard["per_seed"])
    total_repairs = sum(r["repairs_completed"] for r in scorecard["per_seed"])
    total_unrepaired = sum(r["unrepaired"] for r in scorecard["per_seed"])
    lines.append(
        f"  repairs             : {total_repairs}/{total_disruptions} faults"
        + (f" ({total_unrepaired} unrepaired)" if total_unrepaired else "")
    )
    return lines
