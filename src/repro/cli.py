"""Command-line interface.

Run the paper's experiments without writing code::

    python -m repro ramp --managed            # Figures 5/6/7/9 run
    python -m repro ramp --static             # Figure 8 baseline
    python -m repro ramp --proactive          # forecast-driven capacity manager
    python -m repro steady --clients 80       # Table 1 operating point
    python -m repro recovery                  # crash + repair scenario
    python -m repro chaos --campaign gray --detector phi   # fault campaign
    python -m repro market --scenario spot-heavy           # heterogeneous fleet
    python -m repro whatif --at 400           # fork mid-ramp, compare candidates
    python -m repro ramp --managed --csv out.csv   # export the series

Every command prints a summary and (optionally) writes the collected time
series as CSV for external plotting.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import Optional

from repro.jade.system import ExperimentConfig, ManagedSystem
from repro.workload.profiles import ConstantProfile, RampProfile


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--seed", type=int, default=1, help="experiment seed")
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="time compression of the scenario (0.5 = half duration)",
    )
    parser.add_argument(
        "--csv", metavar="FILE", default=None, help="write time series as CSV"
    )
    parser.add_argument(
        "--trace",
        metavar="FILE",
        default=None,
        help="dump the decision trace as JSONL (render with `repro trace FILE`)",
    )


def _add_scaling(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--cohort",
        type=int,
        default=1,
        metavar="K",
        help="emulate clients in batches of K (one simulated process stands "
        "for K identical browsers; lets the ramp run at 100k+ users)",
    )
    parser.add_argument(
        "--hardware-scale",
        type=float,
        default=None,
        metavar="H",
        help="scale node speed/memory and the thrashing knee by H "
        "(default: the cohort size, i.e. weak scaling)",
    )
    _add_fluid(parser)


def _add_fluid(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--fluid",
        action="store_true",
        help="replace per-cohort request events with the fluid flow "
        "engine (mean-field ODE per tick; the control loops see the "
        "same CPU/metrics signals)",
    )
    parser.add_argument(
        "--fluid-threshold",
        type=int,
        default=0,
        metavar="N",
        help="with --fluid, run discrete cohorts below N emulated users "
        "and the fluid engine at or above (0 = always fluid)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Jade reproduction: autonomic management experiments",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    ramp = sub.add_parser("ramp", help="the §5.2 workload ramp (80→500→80)")
    mode = ramp.add_mutually_exclusive_group()
    mode.add_argument(
        "--managed", action="store_true", default=True, help="Jade active (default)"
    )
    mode.add_argument(
        "--static",
        action="store_true",
        help="no Jade: fixed 1 Tomcat + 1 MySQL (Figure 8)",
    )
    ramp.add_argument("--peak", type=int, default=500, help="peak client count")
    ramp.add_argument(
        "--proactive",
        action="store_true",
        help="run the forecast-driven capacity manager alongside the "
        "reactive loops",
    )
    _add_scaling(ramp)
    _add_common(ramp)

    steady = sub.add_parser("steady", help="constant load (Table 1 protocol)")
    steady.add_argument("--clients", type=int, default=80)
    steady.add_argument("--duration", type=float, default=300.0)
    steady.add_argument(
        "--no-jade", action="store_true", help="run without the managers"
    )
    steady.add_argument(
        "--proactive",
        action="store_true",
        help="run the forecast-driven capacity manager alongside the "
        "reactive loops",
    )
    _add_scaling(steady)
    _add_common(steady)

    recovery = sub.add_parser("recovery", help="DB replica crash + self-repair")
    recovery.add_argument("--clients", type=int, default=120)
    recovery.add_argument("--crash-at", type=float, default=300.0)
    _add_common(recovery)

    from repro.chaos.campaign import PRESETS

    chaos = sub.add_parser(
        "chaos",
        help="run a fault-injection campaign and print the resilience "
        "scorecard (MTTR, detection latency, availability, goodput, SLO)",
    )
    chaos.add_argument(
        "--campaign", default="crash", choices=sorted(PRESETS),
        help="named campaign preset (default: crash)",
    )
    chaos.add_argument(
        "--detector", choices=("legacy", "phi"), default=None,
        help="override the campaign's failure-detection path "
        "(legacy heartbeat vs phi-accrual progress detector)",
    )
    chaos.add_argument(
        "--seeds", default="1,2,3", metavar="LIST",
        help="comma-separated seeds; CIs aggregate across them "
        "(default 1,2,3)",
    )
    chaos.add_argument("--clients", type=int, default=120)
    chaos.add_argument(
        "--duration", type=float, default=600.0,
        help="simulated seconds per run (default 600)",
    )
    chaos.add_argument(
        "--slo", type=float, default=0.5, metavar="SEC",
        help="latency SLO for the violation-time metric (default 0.5 s)",
    )
    chaos.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the canonical scorecard JSON (byte-stable across "
        "serial/parallel/cached execution)",
    )
    chaos.add_argument(
        "--events", action="store_true",
        help="print the per-seed fault and detection event logs",
    )
    chaos.add_argument(
        "--serial", action="store_true", help="run seeds in-process"
    )
    chaos.add_argument(
        "--no-cache", action="store_true", help="bypass the result cache"
    )
    chaos.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="process-pool width for the seed fan-out",
    )

    from repro.deploy.scenario import PRESETS as DEPLOY_PRESETS
    from repro.deploy.scenario import STRATEGIES

    deploy = sub.add_parser(
        "deploy",
        help="push a new server version through a bounce strategy with "
        "canary analysis and SLO-gated automatic rollback",
    )
    deploy.add_argument(
        "--scenario", default="clean-push", choices=sorted(DEPLOY_PRESETS),
        help="named deployment scenario (default: clean-push)",
    )
    deploy.add_argument(
        "--strategy", choices=STRATEGIES, default=None,
        help="override the scenario's bounce strategy "
        "(brutal | upthendown | crossover | downthenup)",
    )
    deploy.add_argument(
        "--seeds", default="1,2,3", metavar="LIST",
        help="comma-separated seeds; CIs aggregate across them "
        "(default 1,2,3)",
    )
    deploy.add_argument("--clients", type=int, default=120)
    deploy.add_argument(
        "--duration", type=float, default=540.0,
        help="simulated seconds per run (default 540)",
    )
    deploy.add_argument(
        "--slo", type=float, default=0.5, metavar="SEC",
        help="latency SLO for the violation-time metric (default 0.5 s)",
    )
    deploy.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the canonical scorecard JSON (byte-stable across "
        "serial/parallel/cached execution)",
    )
    deploy.add_argument(
        "--events", action="store_true",
        help="print the per-seed deployment event logs and capacity "
        "timeline",
    )
    deploy.add_argument(
        "--serial", action="store_true", help="run seeds in-process"
    )
    deploy.add_argument(
        "--no-cache", action="store_true", help="bypass the result cache"
    )
    deploy.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="process-pool width for the seed fan-out",
    )

    from repro.market.scenario import PRESETS as MARKET_PRESETS

    market = sub.add_parser(
        "market",
        help="run the ramp on a heterogeneous spot/on-demand fleet and "
        "print the fleet-cost scorecard (savings vs the uniform pool)",
    )
    market.add_argument(
        "--scenario", default="spot-heavy", choices=sorted(MARKET_PRESETS),
        help="named market scenario preset (default: spot-heavy)",
    )
    market.add_argument(
        "--compare", action="store_true",
        help="what-if over every preset fleet mix (plus the uniform "
        "baseline) and rank the SLO-feasible mixes by cost",
    )
    market.add_argument(
        "--seeds", default="1,2,3", metavar="LIST",
        help="comma-separated seeds; CIs aggregate across them "
        "(default 1,2,3)",
    )
    market.add_argument(
        "--peak", type=int, default=500, help="ramp peak client count"
    )
    market.add_argument(
        "--scale", type=float, default=0.15,
        help="time compression of the ramp runs (default 0.15)",
    )
    market.add_argument(
        "--slo", type=float, default=0.5, metavar="SEC",
        help="latency SLO for the violation-time metric (default 0.5 s)",
    )
    market.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the canonical scorecard JSON (byte-stable across "
        "serial/parallel/cached execution)",
    )
    market.add_argument(
        "--events", action="store_true",
        help="print the per-seed rebalance and interruption logs",
    )
    market.add_argument(
        "--serial", action="store_true", help="run seeds in-process"
    )
    market.add_argument(
        "--no-cache", action="store_true", help="bypass the result cache"
    )
    market.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="process-pool width for the seed fan-out",
    )

    whatif = sub.add_parser(
        "whatif",
        help="fork the ramp mid-run and compare candidate replica "
        "configurations over a forecast horizon",
    )
    whatif.add_argument(
        "--at", type=float, default=400.0, metavar="T",
        help="simulated time of the fork point (default 400s)",
    )
    whatif.add_argument("--peak", type=int, default=500, help="peak client count")
    whatif.add_argument(
        "--horizon", type=float, default=120.0, help="forecast horizon (s)"
    )
    whatif.add_argument(
        "--warmup", type=float, default=60.0,
        help="branch warmup before the measurement window (s)",
    )
    whatif.add_argument(
        "--model",
        choices=("ewma", "trend", "seasonal"),
        default="trend",
        help="load forecaster (default: trend)",
    )
    whatif.add_argument(
        "--max-delta", type=int, default=1,
        help="how far candidates may stray from the current configuration",
    )
    whatif.add_argument(
        "--slo", type=float, default=0.5, metavar="SEC",
        help="latency SLO priced by the cost model (default 0.5 s)",
    )
    whatif.add_argument(
        "--report", metavar="FILE", default=None,
        help="write the canonical candidate-outcome JSON report",
    )
    whatif.add_argument("--seed", type=int, default=1, help="experiment seed")
    whatif.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="time compression of the scenario (0.5 = half duration)",
    )
    whatif.add_argument(
        "--serial", action="store_true",
        help="evaluate candidate branches in-process instead of fanning "
        "out over the process pool",
    )
    whatif.add_argument(
        "--no-cache", action="store_true",
        help="bypass the warmed-branch result cache (every branch computes)",
    )
    whatif.add_argument(
        "--prune", action="store_true",
        help="dominance pruning: stop branches that provably cannot beat "
        "the incumbent candidate (never changes the winner)",
    )
    whatif.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="process-pool width for the candidate fan-out",
    )

    sweep = sub.add_parser(
        "sweep",
        help="grid fan-out: seeds x scales x replica policies x cohort "
        "sizes through the parallel cached runner",
    )
    sweep.add_argument(
        "--seeds", default="1,2", metavar="LIST",
        help="comma-separated seeds (default 1,2)",
    )
    sweep.add_argument(
        "--scales", default="0.1", metavar="LIST",
        help="comma-separated time-compression factors (default 0.1)",
    )
    sweep.add_argument(
        "--policies", default="static,managed", metavar="LIST",
        help="comma-separated replica policies out of static, managed, "
        "proactive (default static,managed)",
    )
    sweep.add_argument(
        "--cohorts", default="1", metavar="LIST",
        help="comma-separated client cohort sizes (default 1)",
    )
    sweep.add_argument(
        "--peak", type=int, default=500, help="ramp peak client count"
    )
    sweep.add_argument(
        "--fleet", default="uniform", metavar="LIST",
        help="comma-separated fleet policies: 'uniform' (the paper's flat "
        "pool) and/or market presets such as on-demand, balanced, "
        "spot-heavy (default uniform)",
    )
    _add_fluid(sweep)
    sweep.add_argument(
        "--regions", default="1", metavar="LIST", dest="regions",
        help="comma-separated region counts; cells with more than one "
        "region run as a federation under the global load balancer "
        "(default 1)",
    )
    sweep.add_argument(
        "--controllers", default="default", metavar="LIST",
        help="comma-separated control-loop policy plugins: 'default' "
        "(each cell's legacy reactor) and/or PolicyConfig strings such "
        "as queue-model, adaptive-threshold, 'forecast:lead_s=90' "
        "(default default)",
    )
    sweep.add_argument(
        "--csv", metavar="FILE", default=None,
        help="write one row per grid cell as CSV",
    )
    sweep.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the full sweep result (spec + rows + cache) as JSON",
    )
    sweep.add_argument(
        "--serial", action="store_true", help="run cells in-process"
    )
    sweep.add_argument(
        "--no-cache", action="store_true", help="bypass the result cache"
    )
    sweep.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="process-pool width for the cell fan-out",
    )

    from repro.federation.spec import PRESETS as FED_PRESETS

    federate = sub.add_parser(
        "federate",
        help="run N regional clusters in lockstep epochs under the "
        "global load balancer (one worker process per region)",
    )
    federate.add_argument(
        "--scenario", default="global-ramp", choices=sorted(FED_PRESETS),
        help="named federation preset (default: global-ramp)",
    )
    federate.add_argument(
        "--regions", type=int, default=None, metavar="N",
        help="region count (default: the scenario's own)",
    )
    federate.add_argument(
        "--scale", type=float, default=0.3,
        help="time-compression factor for every region (default 0.3)",
    )
    federate.add_argument("--seed", type=int, default=1)
    federate.add_argument(
        "--peak", type=int, default=None,
        help="per-region peak client count (default: the scenario's own)",
    )
    federate.add_argument(
        "--epoch", type=float, default=None, metavar="SEC",
        help="override the epoch barrier period (simulated seconds)",
    )
    federate.add_argument(
        "--events", action="store_true",
        help="print the per-epoch routing log (weights, spill, "
        "evacuations)",
    )
    federate.add_argument(
        "--json", metavar="FILE", default=None,
        help="write the canonical federation scorecard JSON "
        "(byte-stable across serial/parallel execution)",
    )
    federate.add_argument(
        "--trace-dir", metavar="DIR", default=None,
        help="write one region-tagged decision trace JSONL per region",
    )
    federate.add_argument(
        "--serial", action="store_true",
        help="run regions in-process (results are byte-identical to "
        "parallel)",
    )
    federate.add_argument(
        "--no-cache", action="store_true", help="bypass the result cache"
    )

    tune = sub.add_parser(
        "tune",
        help="autotune controller parameters: grid/random search over "
        "thresholds, windows and inhibition through the cached runner, "
        "scored on SLO violation + node-hours + reconfigurations",
    )
    tune.add_argument(
        "--app-max", default="0.7,0.8", metavar="LIST",
        help="app-tier grow thresholds (default 0.7,0.8)",
    )
    tune.add_argument(
        "--app-min", default="0.38,0.45", metavar="LIST",
        help="app-tier shrink thresholds (default 0.38,0.45)",
    )
    tune.add_argument(
        "--db-max", default="0.65,0.75", metavar="LIST",
        help="db-tier grow thresholds (default 0.65,0.75)",
    )
    tune.add_argument(
        "--db-min", default="0.4,0.45", metavar="LIST",
        help="db-tier shrink thresholds (default 0.4,0.45)",
    )
    tune.add_argument(
        "--windows", default="1.0", metavar="LIST",
        help="moving-average window scales (default 1.0)",
    )
    tune.add_argument(
        "--inhibitions", default="30,60", metavar="LIST",
        help="inhibition periods in seconds (default 30,60)",
    )
    tune.add_argument(
        "--controllers", default="default", metavar="LIST",
        help="comma-separated policy plugins to cross with the grid "
        "(default default)",
    )
    tune.add_argument(
        "--seeds", default="1,2,3", metavar="LIST",
        help="comma-separated seeds per cell (default 1,2,3)",
    )
    tune.add_argument(
        "--scale", type=float, default=0.15,
        help="time compression of the ramp cells (default 0.15)",
    )
    tune.add_argument(
        "--samples", type=int, default=0, metavar="N",
        help="random-search subsample of the grid (0 = full grid)",
    )
    tune.add_argument(
        "--chaos", default="", metavar="CAMPAIGN",
        help="also score MTTR under this chaos preset (e.g. crash)",
    )
    tune.add_argument(
        "--top", type=int, default=10, metavar="N",
        help="ranked cells to print (default 10)",
    )
    tune.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the winning cell as a tuned config "
        "(e.g. configs/tuned_policy.json)",
    )
    tune.add_argument(
        "--report", metavar="FILE", default=None,
        help="write the full ranked report as JSON",
    )
    tune.add_argument(
        "--serial", action="store_true", help="run cells in-process"
    )
    tune.add_argument(
        "--no-cache", action="store_true", help="bypass the result cache"
    )
    tune.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="process-pool width for the cell fan-out",
    )

    cache = sub.add_parser(
        "cache", help="inspect or clean the on-disk result cache"
    )
    cache.add_argument(
        "action", choices=("stats", "clear", "prune"),
        help="stats: entry count and footprint; clear: delete everything; "
        "prune: evict least-recently-used entries down to the size cap",
    )
    cache.add_argument(
        "--dir", default=None, metavar="PATH",
        help="cache directory (default $REPRO_CACHE_DIR or "
        "~/.cache/repro-jade)",
    )

    bench = sub.add_parser(
        "bench",
        help="engine benchmark: micro scenarios + multi-seed ramp pair "
        "through the parallel cached runner",
    )
    bench.add_argument(
        "--out", metavar="FILE", default=None,
        help="write the benchmark report JSON (e.g. BENCH_engine.json)",
    )
    bench.add_argument(
        "--check", metavar="FILE", default=None,
        help="perf-smoke mode: compare fresh micro timings against a "
        "committed report; exit 1 on regression",
    )
    bench.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed slowdown fraction in --check mode (default 0.25)",
    )
    bench.add_argument(
        "--seeds", type=int, default=3, metavar="N",
        help="replicate the ramp pair over seeds 1..N (default 3)",
    )
    bench.add_argument(
        "--scale", type=float, default=0.15,
        help="time compression of the ramp runs (default 0.15)",
    )
    bench.add_argument(
        "--rounds", type=int, default=10,
        help="best-of rounds for the micro scenarios (default 10)",
    )
    bench.add_argument(
        "--serial", action="store_true", help="run experiments in-process"
    )
    bench.add_argument(
        "--no-cache", action="store_true", help="bypass the result cache"
    )
    from repro.runner.bench import SECTIONS

    bench.add_argument(
        "--micro-only", action="store_true",
        help="run only the micro scenarios (skip every registry section)",
    )
    bench.add_argument(
        "--skip", action="append", default=[], choices=sorted(SECTIONS),
        metavar="SECTION",
        help="skip one report section (repeatable; choices: "
        f"{', '.join(SECTIONS)})",
    )
    _add_fluid(bench)
    bench.add_argument(
        "--check-whatif", metavar="FILE", default=None,
        help="perf-smoke mode: validate the committed whatif section and "
        "run a 2-candidate parallel decision + 2x2 sweep shard live; "
        "exit 1 on failure",
    )
    bench.add_argument(
        "--whatif-candidates", type=int, default=8, metavar="N",
        help="candidate count for the what-if decision benchmark (default 8)",
    )

    trace = sub.add_parser(
        "trace", help="render a JSONL decision trace as a causal timeline"
    )
    trace.add_argument("file", help="trace file written by --trace")
    trace.add_argument(
        "--all",
        action="store_true",
        help="include probe readings (high-frequency; hidden by default)",
    )
    trace.add_argument(
        "--tail", type=int, default=None, metavar="N", help="show only the last N events"
    )

    return parser


def _print_summary(system: ManagedSystem) -> None:
    summary = system.summary()
    col = system.collector
    print("\nSummary")
    print(f"  completed requests : {summary['completed']:.0f}")
    print(f"  failed requests    : {summary['failed']:.0f}")
    print(f"  throughput         : {summary['throughput_rps']:.2f} req/s")
    print(f"  mean latency       : {summary['latency_mean_ms']:.1f} ms")
    print(f"  p95 latency        : {summary['latency_p95_ms']:.1f} ms")
    print(f"  node CPU / memory  : {summary['node_cpu_mean'] * 100:.1f} % / "
          f"{summary['node_mem_mean'] * 100:.1f} %")
    print(
        f"  peak replicas      : app x{int(summary['app_replicas_max'])}, "
        f"db x{int(summary['db_replicas_max'])}"
    )
    if col.reconfigurations:
        print("\nReconfigurations")
        for t, desc in col.reconfigurations:
            print(f"  t={t:8.1f}s  {desc}")
    fluid_stats = getattr(system.emulator, "fluid_stats", None)
    if fluid_stats is not None:
        stats = fluid_stats()
        print(
            f"\nFluid engine: {stats['ticks']} flow ticks, "
            f"{stats['completions']:,.0f} completions, "
            f"{stats['handoffs_to_fluid']} handoffs to fluid / "
            f"{stats['handoffs_to_discrete']} back to discrete "
            f"(threshold {stats['threshold']}, "
            f"peak fluid population {stats['peak_fluid_population']:,})"
        )
    proactive = getattr(system, "proactive", None)
    if proactive is not None:
        print(
            f"\nProactive manager: {proactive.forecasts_issued} forecasts, "
            f"{proactive.evaluations} what-if evaluations, "
            f"{proactive.grows_triggered} grows / "
            f"{proactive.shrinks_triggered} shrinks triggered "
            f"({proactive.decisions_suppressed} suppressed)"
        )


def _write_csv(
    system: ManagedSystem, path: str, extra: Optional[dict] = None
) -> None:
    from repro.metrics.export import write_csv, write_json

    rows = write_csv(system.collector, path)
    print(f"\n{rows} series rows written to {path}")
    if path.endswith(".csv"):
        json_path = path[:-4] + ".json"
        write_json(
            system.collector,
            json_path,
            horizon_s=system.config.profile.duration_s,
            tracer=system.tracer,
            seed=system.config.seed,
            extra=extra,
        )
        print(f"Summary report written to {json_path}")


def _print_trace_note(system: ManagedSystem) -> None:
    tracer = system.tracer
    if tracer is None:
        return
    summary = tracer.summary()
    print(
        f"\nDecision trace: {summary['events']} events "
        f"({summary['decisions_suppressed']} decisions suppressed, "
        f"{summary['reconfigurations']['count']} reconfigurations)"
    )
    if tracer.sink_path:
        print(f"  written to {tracer.sink_path} "
              f"(render with: repro trace {tracer.sink_path})")


def _run(config: ExperimentConfig, csv_path: Optional[str]) -> ManagedSystem:
    system = ManagedSystem(config)
    duration = config.profile.duration_s
    print(
        f"Running {duration:.0f} s of simulated time "
        f"(seed {config.seed}, managed={config.managed}, "
        f"recovery={bool(config.recovery)})..."
    )
    system.run()
    _print_summary(system)
    _print_trace_note(system)
    if csv_path:
        _write_csv(system, csv_path)
    return system


def cmd_ramp(args: argparse.Namespace) -> int:
    # With cohorts the ramp keeps the paper's 3600 s trapezoid: base and
    # step size scale with the cohort factor, so `--peak 100000 --cohort
    # 200` is the 80->500->80 scenario with every client replaced by 200.
    profile = RampProfile(
        base=80 * args.cohort,
        peak=args.peak,
        step_clients=21 * args.cohort,
        warmup_s=300.0 * args.scale,
        step_period_s=60.0 * args.scale,
        cooldown_s=300.0 * args.scale,
    )
    hs = args.hardware_scale if args.hardware_scale is not None else float(args.cohort)
    config = ExperimentConfig(
        profile=profile, seed=args.seed, managed=not args.static,
        proactive=args.proactive, trace_jsonl=args.trace,
        cohort=args.cohort, hardware_scale=hs,
        fluid=args.fluid, fluid_threshold=args.fluid_threshold,
    )
    _run(config, args.csv)
    return 0


def cmd_steady(args: argparse.Namespace) -> int:
    hs = args.hardware_scale if args.hardware_scale is not None else float(args.cohort)
    config = ExperimentConfig(
        profile=ConstantProfile(args.clients, args.duration * args.scale),
        seed=args.seed,
        managed=not args.no_jade,
        proactive=args.proactive,
        trace_jsonl=args.trace,
        cohort=args.cohort,
        hardware_scale=hs,
        fluid=args.fluid,
        fluid_threshold=args.fluid_threshold,
    )
    _run(config, args.csv)
    return 0


def cmd_whatif(args: argparse.Namespace) -> int:
    from repro.capacity import CostModel, WhatIfEngine, make_forecaster, run_to_fork
    from repro.capacity.whatif import default_candidates

    profile = RampProfile(
        peak=args.peak,
        warmup_s=300.0 * args.scale,
        step_period_s=60.0 * args.scale,
        cooldown_s=300.0 * args.scale,
    )
    config = ExperimentConfig(profile=profile, seed=args.seed, managed=True)
    system = ManagedSystem(config)
    print(
        f"Running the managed ramp to the fork point t={args.at:.0f}s "
        f"(seed {args.seed})..."
    )
    snapshot = run_to_fork(system, args.at)
    print(
        f"Fork: {snapshot.clients} clients, app x{snapshot.app_replicas}, "
        f"db x{snapshot.db_replicas}, {snapshot.free_nodes} free nodes"
    )

    forecaster = make_forecaster(args.model)
    for t, clients in system.collector.workload.changes:
        forecaster.observe(t, clients)
    forecast = forecaster.predict(args.horizon)
    peak = max(v for _, v in forecast)
    print(
        f"Forecast [{args.model}]: load {snapshot.clients} -> "
        f"peak {peak:.0f} over {args.horizon:.0f}s"
    )

    from repro.runner.cache import ResultCache

    engine = WhatIfEngine(
        horizon_s=args.horizon,
        warmup_s=args.warmup,
        cost_model=CostModel(slo_latency_s=args.slo),
        parallel=not args.serial,
        max_workers=args.workers,
        cache=None if args.no_cache else ResultCache(),
        prune=args.prune,
    )
    candidates = default_candidates(snapshot, args.max_delta)
    print(f"Evaluating {len(candidates)} candidates "
          f"({args.warmup:.0f}s warmup + {args.horizon:.0f}s horizon each)...")
    outcomes = engine.evaluate(snapshot, forecast, candidates)
    best = engine.best(outcomes)
    if engine.cache is not None or engine.branches_pruned:
        print(
            f"  {engine.branches_run} branches run, "
            f"{engine.cache_hits} cache hits, "
            f"{engine.branches_pruned} pruned"
        )

    print(f"\n{'candidate':<12s} {'p95 (ms)':>9s} {'SLO viol':>9s} "
          f"{'node-h':>7s} {'cost':>8s}")
    for outcome in outcomes:
        if not outcome.feasible:
            print(f"{outcome.candidate.label:<12s} infeasible: {outcome.error}")
            continue
        marker = "  <- best" if outcome is best else ""
        print(
            f"{outcome.candidate.label:<12s} "
            f"{outcome.latency_p95_s * 1000:9.1f} "
            f"{outcome.slo_violation_s:8.0f}s "
            f"{outcome.cost.node_hours:7.3f} "
            f"{outcome.cost.total:8.3f}{marker}"
        )
    if args.report:
        with open(args.report, "w") as fh:
            fh.write(engine.report(outcomes))
        print(f"\nCandidate report written to {args.report}")
    return 0


def _recovery_metrics(system: ManagedSystem, crash_t: float) -> dict:
    """Detection latency, MTTR and availability of a single-crash run,
    extracted from the reconfiguration log (same parse as
    ``benchmarks/bench_recovery.py``)."""
    col = system.collector
    detect_t = repaired_t = None
    for t, desc in col.reconfigurations:
        if detect_t is None and t >= crash_t and "detected failure" in desc:
            detect_t = t
        if repaired_t is None and t > crash_t and "grow:" in desc and "active" in desc:
            repaired_t = t
    completed = col.completed_requests
    attempted = completed + col.failed_requests
    return {
        "crash_at_s": crash_t,
        "detect_latency_s": (
            detect_t - crash_t if detect_t is not None else float("nan")
        ),
        "mttr_s": (
            repaired_t - crash_t if repaired_t is not None else float("nan")
        ),
        # NaN (not 1.0) when no request got through — same convention as
        # the chaos scorecard: a total outage is not perfect availability.
        "availability": completed / attempted if attempted else float("nan"),
    }


def cmd_recovery(args: argparse.Namespace) -> int:
    duration = max(900.0 * args.scale, args.crash_at + 300.0)
    config = ExperimentConfig(
        profile=ConstantProfile(args.clients, duration),
        seed=args.seed,
        managed=False,
        recovery=True,
        trace_jsonl=args.trace,
    )
    system = ManagedSystem(config)
    system.db_tier.grow()
    system.kernel.run(until=60.0)
    victim = system.db_tier.replicas[-1]
    print(
        f"Scheduling crash of {victim.node.name} "
        f"({victim.component.name}) at t={args.crash_at:.0f} s"
    )
    system.kernel.schedule_at(args.crash_at, victim.node.crash)
    system.run()
    _print_summary(system)
    metrics = _recovery_metrics(system, args.crash_at)
    print("\nRecovery")
    print(
        f"  detection latency  : {metrics['detect_latency_s']:.1f} s"
        if metrics["detect_latency_s"] == metrics["detect_latency_s"]
        else "  detection latency  : n/a (failure not detected)"
    )
    print(
        f"  MTTR               : {metrics['mttr_s']:.1f} s"
        if metrics["mttr_s"] == metrics["mttr_s"]
        else "  MTTR               : n/a (replica not repaired)"
    )
    print(
        f"  availability       : {metrics['availability'] * 100:.2f} %"
        if metrics["availability"] == metrics["availability"]
        else "  availability       : n/a (no requests attempted)"
    )
    _print_trace_note(system)
    controller = system.cjdbc.content.controller
    backends = controller.enabled_backends()
    digests = {b.server.state_digest for b in backends}
    print(
        f"\nBackends after repair: {[b.name for b in backends]} "
        f"(digests identical: {len(digests) == 1})"
    )
    if args.csv:
        _write_csv(system, args.csv, extra={"recovery": metrics})
    return 0


def cmd_chaos(args: argparse.Namespace) -> int:
    import dataclasses

    from repro.chaos import (
        PRESETS,
        campaign_config,
        render_scorecard,
        score_campaign,
        scorecard_json,
    )
    from repro.runner import ExperimentRunner, ResultCache

    campaign = PRESETS[args.campaign]()
    if args.detector is not None:
        campaign = dataclasses.replace(campaign, detector=args.detector)
    seeds = tuple(int(s) for s in args.seeds.split(",") if s.strip())
    if not seeds:
        print("error: --seeds is empty", file=sys.stderr)
        return 2
    print(
        f"Campaign '{campaign.name}' (detector: {campaign.detector}): "
        f"{len(campaign.faults)} fault spec(s), "
        f"{args.clients} clients x {args.duration:.0f}s, "
        f"seeds {', '.join(str(s) for s in seeds)}..."
    )
    runner = ExperimentRunner(
        max_workers=args.workers,
        cache=None if args.no_cache else ResultCache(),
        parallel=not args.serial,
    )
    runs = runner.run_seeds(
        lambda seed: campaign_config(
            campaign, seed=seed, clients=args.clients, duration_s=args.duration
        ),
        seeds,
        prefix=f"chaos-{campaign.name}",
    )
    if runner.cache is not None:
        print(
            f"  cache: {runner.cache.hits} hits / {runner.cache.misses} misses"
        )
    scorecard = score_campaign(
        campaign, [runs[s] for s in seeds], slo_latency_s=args.slo
    )
    print()
    for line in render_scorecard(scorecard):
        print(line)
    if args.events:
        for seed in seeds:
            chaos = runs[seed].chaos
            print(f"\nSeed {seed} events")
            for event in chaos.events:
                where = event["node"] or "lan"
                detail = f" {event['detail']}" if event["detail"] else ""
                print(
                    f"  t={event['t']:7.1f}s  inject {event['fault']} on "
                    f"{where}{detail}"
                )
            for det in chaos.detections:
                print(
                    f"  t={det['t']:7.1f}s  detect {det['component']} "
                    f"[{det['tier']}] via {det['reason']}"
                )
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(scorecard_json(scorecard))
        print(f"\nScorecard written to {args.json}")
    return 0


def cmd_deploy(args: argparse.Namespace) -> int:
    from repro.deploy import (
        PRESETS,
        deploy_config,
        render_scorecard,
        score_scenario,
        scorecard_json,
        with_strategy,
    )
    from repro.runner import ExperimentRunner, ResultCache

    scenario = PRESETS[args.scenario]()
    if args.strategy is not None:
        scenario = with_strategy(scenario, args.strategy)
    seeds = tuple(int(s) for s in args.seeds.split(",") if s.strip())
    if not seeds:
        print("error: --seeds is empty", file=sys.stderr)
        return 2
    print(
        f"Deployment '{scenario.name}' ({scenario.version.label} via "
        f"{scenario.strategy}, canary={'on' if scenario.canary else 'off'}): "
        f"{args.clients} clients x {args.duration:.0f}s, "
        f"seeds {', '.join(str(s) for s in seeds)}..."
    )
    runner = ExperimentRunner(
        max_workers=args.workers,
        cache=None if args.no_cache else ResultCache(),
        parallel=not args.serial,
    )
    runs = runner.run_seeds(
        lambda seed: deploy_config(
            scenario, seed=seed, clients=args.clients, duration_s=args.duration
        ),
        seeds,
        prefix=f"deploy-{scenario.name}",
    )
    if runner.cache is not None:
        print(
            f"  cache: {runner.cache.hits} hits / {runner.cache.misses} misses"
        )
    scorecard = score_scenario(
        scenario, [runs[s] for s in seeds], slo_latency_s=args.slo
    )
    print()
    for line in render_scorecard(scorecard):
        print(line)
    if args.events:
        for seed in seeds:
            stats = runs[seed].deploy
            print(f"\nSeed {seed} events")
            for event in stats.events:
                detail = ", ".join(
                    f"{k}={v}" for k, v in sorted(event.items())
                    if k not in ("t", "kind")
                )
                suffix = f" ({detail})" if detail else ""
                print(f"  t={event['t']:7.1f}s  {event['kind']}{suffix}")
            for t, serving, total in stats.capacity:
                print(
                    f"  t={t:7.1f}s  capacity {serving}/{total} serving"
                )
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(scorecard_json(scorecard))
        print(f"\nScorecard written to {args.json}")
    return 0


def cmd_market(args: argparse.Namespace) -> int:
    from dataclasses import replace

    from repro.market.costs import (
        render_scorecard,
        score_scenario,
        scorecard_json,
    )
    from repro.market.scenario import PRESETS, market_config
    from repro.market.whatif import evaluate_mixes, render_mixes
    from repro.runner import ExperimentRunner, ResultCache

    seeds = tuple(int(s) for s in args.seeds.split(",") if s.strip())
    if not seeds:
        print("error: --seeds is empty", file=sys.stderr)
        return 2
    runner = ExperimentRunner(
        max_workers=args.workers,
        cache=None if args.no_cache else ResultCache(),
        parallel=not args.serial,
    )

    if args.compare:
        scenarios = [make() for _, make in sorted(PRESETS.items())]
        print(
            f"Comparing {len(scenarios)} fleet mixes + uniform baseline "
            f"over seeds {', '.join(str(s) for s in seeds)}..."
        )
        table = evaluate_mixes(
            scenarios,
            seeds=seeds,
            peak=args.peak,
            scale=args.scale,
            slo_latency_s=args.slo,
            runner=runner,
        )
        if runner.cache is not None:
            print(
                f"  cache: {runner.cache.hits} hits / "
                f"{runner.cache.misses} misses"
            )
        print()
        for line in render_mixes(table):
            print(line)
        if args.json:
            import json as _json

            with open(args.json, "w") as fh:
                _json.dump(table, fh, indent=2, default=float)
                fh.write("\n")
            print(f"\nComparison written to {args.json}")
        return 0

    scenario = PRESETS[args.scenario]()
    print(
        f"Scenario '{scenario.name}' (policy: {scenario.policy}, "
        f"od floor {scenario.on_demand_floor:.0%}, "
        f"hazard {scenario.interruption_hazard_per_hour:g}/h): "
        f"ramp to {args.peak} at scale {args.scale:g}, "
        f"seeds {', '.join(str(s) for s in seeds)}..."
    )
    labelled = {
        f"{scenario.name}-s{seed}": market_config(
            scenario, seed=seed, peak=args.peak, scale=args.scale
        )
        for seed in seeds
    }
    # uniform baseline arms for the cost comparison context
    for seed in seeds:
        labelled[f"uniform-s{seed}"] = replace(
            market_config(scenario, seed=seed, peak=args.peak, scale=args.scale),
            market=None,
        )
    runs = runner.run_many(labelled)
    if runner.cache is not None:
        print(
            f"  cache: {runner.cache.hits} hits / {runner.cache.misses} misses"
        )
    scorecard = score_scenario(
        scenario,
        [runs[f"{scenario.name}-s{s}"] for s in seeds],
        slo_latency_s=args.slo,
    )
    uniform_card = score_scenario(
        None,
        [runs[f"uniform-s{s}"] for s in seeds],
        slo_latency_s=args.slo,
        uniform=True,
    )
    print()
    for line in render_scorecard(scorecard):
        print(line)
    uni_slo = uniform_card["aggregate"]["slo_violation_s"]["mean"]
    print(
        f"  uniform-pool SLO    : {uni_slo:.2f} s "
        f"(delta {scorecard['aggregate']['slo_violation_s']['mean'] - uni_slo:+.2f} s)"
    )
    if args.events:
        for seed in seeds:
            stats = runs[f"{scenario.name}-s{seed}"].market
            print(f"\nSeed {seed} events")
            for entry in stats.rebalances:
                print(
                    f"  t={entry['t']:7.1f}s  rebalance [{entry['action']}] "
                    f"{entry['detail']} (target {entry['target']:.1f} vCPU)"
                )
            for entry in stats.interruptions:
                print(
                    f"  t={entry['t']:7.1f}s  interruption {entry['node']} "
                    f"({entry['source']}, reclaim at t={entry['deadline']:.1f}s)"
                )
    if args.json:
        with open(args.json, "w") as fh:
            fh.write(scorecard_json(scorecard))
        print(f"\nScorecard written to {args.json}")
    return 0


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.runner import (
        ExperimentRunner,
        ResultCache,
        SweepSpec,
        run_sweep,
        write_sweep_csv,
        write_sweep_json,
    )

    def parse_list(raw: str, conv):
        return tuple(conv(item) for item in raw.split(",") if item.strip())

    spec = SweepSpec(
        seeds=parse_list(args.seeds, int),
        scales=parse_list(args.scales, float),
        policies=parse_list(args.policies, str),
        cohorts=parse_list(args.cohorts, int),
        peak=args.peak,
        fleets=parse_list(args.fleet, str),
        fluid=args.fluid,
        fluid_threshold=args.fluid_threshold,
        regions=parse_list(args.regions, int),
        controllers=parse_list(args.controllers, str),
    )
    cells = spec.grid()
    print(
        f"Sweeping {len(cells)} cells: {len(spec.policies)} policies x "
        f"{len(spec.seeds)} seeds x {len(spec.scales)} scales x "
        f"{len(spec.cohorts)} cohorts x {len(spec.fleets)} fleets x "
        f"{len(spec.regions)} region counts x "
        f"{len(spec.controllers)} controllers..."
    )
    runner = ExperimentRunner(
        max_workers=args.workers,
        cache=None if args.no_cache else ResultCache(),
        parallel=not args.serial,
    )
    result = run_sweep(spec, runner)
    print(
        f"{len(result.rows)} rows in {result.elapsed_s:.1f}s "
        f"({len(result.rows) / max(result.elapsed_s, 1e-9):.1f} rows/s)"
    )
    if result.cache is not None:
        print(
            f"  cache: {result.cache['hits']} hits / "
            f"{result.cache['misses']} misses ({result.cache['dir']})"
        )
    header = (
        f"{'cell':<32s} {'thr (rps)':>9s} {'p95 (ms)':>9s} {'repl':>9s} "
        f"{'cost':>8s}"
    )
    print("\n" + header)
    for row in result.rows:
        print(
            f"{row['label']:<32s} {row['throughput_rps']:9.2f} "
            f"{row['latency_p95_ms']:9.1f} "
            f"{'x' + str(int(row['app_replicas_max'])) + '/' + str(int(row['db_replicas_max'])):>9s} "
            f"{row['fleet_cost']:8.3f}"
        )
    if args.csv:
        write_sweep_csv(result.rows, args.csv)
        print(f"\nSweep rows written to {args.csv}")
    if args.json:
        write_sweep_json(result, args.json)
        print(f"Sweep result written to {args.json}")
    return 0


def cmd_tune(args: argparse.Namespace) -> int:
    import json as _json
    from pathlib import Path

    from repro.policy.tune import (
        TuneSpec,
        render_report,
        run_tune,
        write_tuned_config,
    )
    from repro.runner import ExperimentRunner, ResultCache

    def parse_list(raw: str, conv):
        return tuple(conv(item) for item in raw.split(",") if item.strip())

    spec = TuneSpec(
        app_max=parse_list(args.app_max, float),
        app_min=parse_list(args.app_min, float),
        db_max=parse_list(args.db_max, float),
        db_min=parse_list(args.db_min, float),
        window_scales=parse_list(args.windows, float),
        inhibitions=parse_list(args.inhibitions, float),
        controllers=parse_list(args.controllers, str),
        seeds=parse_list(args.seeds, int),
        scale=args.scale,
        samples=args.samples,
        chaos=args.chaos,
    )
    cells = spec.grid()
    runs_per_cell = len(spec.seeds) * (2 if spec.chaos else 1)
    print(
        f"Tuning {len(cells)} cells x {len(spec.seeds)} seeds "
        f"({len(cells) * runs_per_cell} runs)..."
    )
    runner = ExperimentRunner(
        max_workers=args.workers,
        cache=None if args.no_cache else ResultCache(),
        parallel=not args.serial,
    )
    report = run_tune(spec, runner=runner)
    print(render_report(report, top=args.top))
    if args.out:
        write_tuned_config(report, args.out)
        print(f"\ntuned config written to {args.out}")
    if args.report:
        Path(args.report).write_text(
            _json.dumps(report, indent=2, default=float) + "\n"
        )
        print(f"full report written to {args.report}")
    return 0


def cmd_federate(args: argparse.Namespace) -> int:
    import dataclasses
    import time as _time

    from repro.federation.coordinator import run_federation
    from repro.federation.spec import PRESETS as FED_PRESETS
    from repro.runner import ResultCache

    factory = FED_PRESETS[args.scenario]
    kwargs = {"scale": args.scale, "seed": args.seed}
    if args.regions is not None:
        kwargs["regions"] = args.regions
    if args.peak is not None:
        kwargs["peak"] = args.peak
    spec = factory(**kwargs)
    if args.epoch is not None:
        spec = dataclasses.replace(spec, epoch_s=args.epoch)
    print(
        f"Federation '{spec.name}': {len(spec.regions)} regions x "
        f"{spec.epochs} epochs (epoch {spec.epoch_s:g}s, seed {spec.seed})"
    )
    t0 = _time.perf_counter()
    result = run_federation(
        spec,
        parallel=not args.serial,
        cache=None if args.no_cache else ResultCache(),
        trace_dir=args.trace_dir,
    )
    elapsed = _time.perf_counter() - t0
    header = (
        f"{'region':<12s} {'completed':>9s} {'failed':>7s} {'thr':>7s} "
        f"{'p95 ms':>8s} {'repl':>7s} {'weight':>7s} {'spill':>6s}"
    )
    print("\n" + header)
    for name, region in sorted(result.regions.items()):
        summary = region.run.summary()
        final_weight = (
            region.updates_applied[-1].weight
            if region.updates_applied
            else 1.0
        )
        spill_peak = max(
            (u.spill_clients for u in region.updates_applied), default=0
        )
        repl = (
            f"x{int(summary['app_replicas_max'])}"
            f"/{int(summary['db_replicas_max'])}"
        )
        print(
            f"{name:<12s} {summary['completed']:9.0f} "
            f"{summary['failed']:7.0f} {summary['throughput_rps']:7.2f} "
            f"{summary['latency_p95_ms']:8.1f} {repl:>7s} "
            f"{final_weight:7.2f} {spill_peak:6d}"
        )
    rollup = result.summary()
    print(
        f"{'GLOBAL':<12s} {rollup['completed']:9.0f} "
        f"{rollup['failed']:7.0f} {rollup['throughput_rps']:7.2f} "
        f"{rollup['latency_p95_ms']:8.1f}"
    )
    print(
        f"\nmode {result.mode}, {result.updates_routed} updates routed, "
        f"{result.events_processed} kernel events, {elapsed:.2f}s wall "
        f"(critical path {result.critical_path_s():.2f}s)"
    )
    if args.events:
        print("\nepoch routing log:")
        updates = sorted(
            (u for r in result.regions.values() for u in r.updates_applied),
            key=lambda u: (u.epoch, u.region),
        )
        for u in updates:
            spill = f" +{u.spill_clients} spill" if u.spill_clients else ""
            print(
                f"  epoch {u.epoch:>3d} {u.region:<12s} "
                f"weight {u.weight:.2f}{spill}"
                f"{'  [' + u.reason + ']' if u.reason != 'routing' else ''}"
            )
    if args.trace_dir:
        print(f"per-region traces in {args.trace_dir}/")
    if args.json:
        payload = {
            "scenario": spec.name,
            "seed": spec.seed,
            "topology": spec.topology(),
            "regions": {
                name: region.scorecard()
                for name, region in sorted(result.regions.items())
            },
            "global": rollup,
        }
        with open(args.json, "w") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True, default=float)
            fh.write("\n")
        print(f"Canonical scorecard written to {args.json}")
    return 0


def cmd_cache(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.runner.cache import ResultCache

    cache = ResultCache(Path(args.dir) if args.dir else None)
    if args.action == "stats":
        stats = cache.stats()
        print(f"cache dir : {stats['dir']}")
        print(f"entries   : {stats['entries']}")
        print(
            f"size      : {stats['bytes'] / 1024 / 1024:.1f} MiB "
            f"(cap {stats['max_bytes'] / 1024 / 1024:.0f} MiB)"
            if stats["max_bytes"]
            else f"size      : {stats['bytes'] / 1024 / 1024:.1f} MiB (no cap)"
        )
    elif args.action == "clear":
        removed = cache.clear()
        print(f"removed {removed} entries from {cache.root}")
    else:  # prune
        evicted = cache.prune()
        print(
            f"evicted {len(evicted)} least-recently-used entries from "
            f"{cache.root}"
        )
    return 0


def cmd_bench(args: argparse.Namespace) -> int:
    from repro.runner.bench import check_against, check_whatif, run_bench

    if args.check or args.check_whatif:
        ok = True
        lines: list[str] = []
        if args.check:
            micro_ok, micro_lines = check_against(
                args.check, tolerance=args.tolerance, rounds=args.rounds
            )
            ok = ok and micro_ok
            lines += micro_lines
        if args.check_whatif:
            whatif_ok, whatif_lines = check_whatif(args.check_whatif)
            ok = ok and whatif_ok
            lines += whatif_lines
        print("\n".join(lines))
        print("perf-smoke:", "PASS" if ok else "FAIL")
        return 0 if ok else 1

    from repro.runner.bench import SECTIONS

    skip = set(SECTIONS) if args.micro_only else set(args.skip)
    report = run_bench(
        out_path=args.out,
        seeds=tuple(range(1, args.seeds + 1)),
        scale=args.scale,
        rounds=args.rounds,
        parallel=not args.serial,
        use_cache=not args.no_cache,
        skip=skip,
        whatif_candidates=args.whatif_candidates,
        fluid=args.fluid,
        fluid_threshold=args.fluid_threshold,
    )
    micro = report["micro"]
    print("Micro scenarios (best of {}):".format(args.rounds))
    print(
        "  kernel 10k events : {:.2f} ms  ({:,.0f} events/s, {:.2f}x baseline)".format(
            micro["kernel_10k_events"]["best_s"] * 1e3,
            micro["kernel_10k_events"]["events_per_s"],
            micro["kernel_10k_events"]["speedup_vs_baseline"],
        )
    )
    print(
        "  PS-CPU 5k jobs    : {:.2f} ms  ({:,.0f} jobs/s, {:.2f}x baseline)".format(
            micro["ps_cpu_5k_jobs"]["best_s"] * 1e3,
            micro["ps_cpu_5k_jobs"]["jobs_per_s"],
            micro["ps_cpu_5k_jobs"]["speedup_vs_baseline"],
        )
    )
    if "ramp" in report:
        ramp = report["ramp"]
        print(
            f"\nRamp pair x{len(ramp['seeds'])} seeds (scale {ramp['scale']}): "
            f"{ramp['parallel_elapsed_s']:.1f}s elapsed "
            f"(serial estimate {ramp['serial_estimate_s']:.1f}s)"
        )
        for arm, stats in ramp["arms"].items():
            thr = stats["throughput_rps"]
            lat = stats["latency_mean_ms"]
            print(
                f"  {arm:<8s} throughput {thr['mean']:.2f} +/- {thr['ci95']:.2f} "
                f"req/s, latency {lat['mean']:.1f} +/- {lat['ci95']:.1f} ms"
            )
        if "cache" in ramp:
            c = ramp["cache"]
            print(
                f"  cache: cold {c['cold']['hits']} hits / "
                f"{c['cold']['misses']} misses, warm {c['warm']['hits']} hits "
                f"/ {c['warm']['misses']} misses ({c['dir']})"
            )
    if "whatif" in report:
        w = report["whatif"]
        print(
            f"\nWhat-if {w['candidates']}-candidate decision: "
            f"serial {w['serial_s']:.2f}s, parallel cold "
            f"{w['parallel_cold_s']:.2f}s ({w['speedup_parallel']:.2f}x), "
            f"memoized {w['memoized_s']:.3f}s ({w['speedup_memoized']:.1f}x); "
            f"byte-identical: {w['byte_identical']}, winner {w['winner']}"
        )
    if "sweep" in report:
        s = report["sweep"]
        print(
            f"Sweep {s['spec']['cells']} cells: cold "
            f"{s['cold']['rows_per_s']:.1f} rows/s, warm "
            f"{s['warm']['rows_per_s']:.0f} rows/s (cache-resolved)"
        )
    for name, module in (
        ("chaos", "repro.chaos.bench"),
        ("deploy", "repro.deploy.bench"),
        ("market", "repro.market.bench"),
        ("fluid", "repro.workload.fluid_bench"),
    ):
        if name in report:
            import importlib

            render = importlib.import_module(module).render_section
            print()
            print(render(report[name]))
    if args.out:
        print(f"\nReport written to {args.out}")
    return 0


def cmd_trace(args: argparse.Namespace) -> int:
    from repro.obs.timeline import render_timeline_file

    try:
        print(render_timeline_file(args.file, include_probes=args.all, tail=args.tail))
    except BrokenPipeError:  # timeline piped into head/less and truncated
        sys.stderr.close()
    return 0


def main(argv: Optional[list[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "ramp": cmd_ramp,
        "steady": cmd_steady,
        "recovery": cmd_recovery,
        "chaos": cmd_chaos,
        "deploy": cmd_deploy,
        "market": cmd_market,
        "whatif": cmd_whatif,
        "sweep": cmd_sweep,
        "tune": cmd_tune,
        "federate": cmd_federate,
        "cache": cmd_cache,
        "bench": cmd_bench,
        "trace": cmd_trace,
    }
    try:
        return handlers[args.command](args)
    except OSError as exc:
        # Unreadable trace file, unwritable --trace/--csv sink, ...
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
