"""Simulated cluster substrate.

The paper's experiments ran on a 9-node x86/Linux cluster on a 100 Mbps LAN.
This package simulates that substrate: :class:`~repro.cluster.node.Node`
(CPU + memory + per-node filesystem), a
:class:`~repro.cluster.allocator.ClusterManager` allocating nodes from a free
pool, a :class:`~repro.cluster.installer.SoftwareInstallationService`
installing packaged software onto nodes, a simple LAN model and a failure
injector used by the self-recovery experiments.
"""

from repro.cluster.allocator import ClusterManager, NoFreeNodeError
from repro.cluster.failures import FailureInjector
from repro.cluster.filesystem import FileNotFound, NodeFilesystem
from repro.cluster.installer import Package, SoftwareInstallationService
from repro.cluster.network import Lan
from repro.cluster.node import Node, NodeDown, make_nodes

__all__ = [
    "ClusterManager",
    "FailureInjector",
    "FileNotFound",
    "Lan",
    "NoFreeNodeError",
    "Node",
    "NodeDown",
    "NodeFilesystem",
    "Package",
    "SoftwareInstallationService",
    "make_nodes",
]
