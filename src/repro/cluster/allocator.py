"""Cluster Manager: node-pool allocation.

The paper's *Cluster Manager* component "is responsible for the allocation
of nodes (from a pool of available nodes) which will host the replicated
servers of each tier" (§3.3).  Actuators call :meth:`ClusterManager.allocate`
when a tier must grow and :meth:`ClusterManager.release` when it shrinks, so
hardware is only held while needed — the resource-saving argument of §1.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.cluster.node import Node


class NoFreeNodeError(RuntimeError):
    """The free pool is empty (or no node matches the predicate)."""


class AllocationRecord:
    """Bookkeeping for one allocation (who holds which node since when)."""

    __slots__ = ("node", "owner", "since")

    def __init__(self, node: Node, owner: str, since: float):
        self.node = node
        self.owner = owner
        self.since = since


class ClusterManager:
    """Allocates nodes from a free pool, FIFO by default."""

    def __init__(self, nodes: Iterable[Node]) -> None:
        self._free: list[Node] = list(nodes)
        names = [n.name for n in self._free]
        if len(set(names)) != len(names):
            raise ValueError("duplicate node names in pool")
        self._allocated: dict[str, AllocationRecord] = {}
        self.allocations_total = 0
        self.releases_total = 0

    # ------------------------------------------------------------------
    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def allocated_count(self) -> int:
        return len(self._allocated)

    def free_nodes(self) -> list[Node]:
        return list(self._free)

    def allocated_nodes(self) -> list[Node]:
        return [rec.node for rec in self._allocated.values()]

    def owner_of(self, node: Node) -> Optional[str]:
        rec = self._allocated.get(node.name)
        return rec.owner if rec else None

    # ------------------------------------------------------------------
    def allocate(
        self,
        owner: str,
        predicate: Optional[Callable[[Node], bool]] = None,
    ) -> Node:
        """Take a node from the free pool for ``owner``.

        ``predicate`` can restrict eligible nodes (e.g. only up nodes, or a
        minimum CPU speed).  Crashed nodes are never handed out.  Raises
        :class:`NoFreeNodeError` when nothing matches.
        """
        for i, node in enumerate(self._free):
            if not node.up:
                continue
            if predicate is not None and not predicate(node):
                continue
            del self._free[i]
            self._allocated[node.name] = AllocationRecord(
                node, owner, node.kernel.now
            )
            self.allocations_total += 1
            return node
        raise NoFreeNodeError(
            f"no free node for {owner!r} (pool={len(self._free)})"
        )

    def release(self, node: Node) -> None:
        """Return a node to the free pool.  Releasing an unallocated node is
        an error (double-release bugs should not pass silently)."""
        rec = self._allocated.pop(node.name, None)
        if rec is None:
            raise ValueError(f"node {node.name} is not allocated")
        self.releases_total += 1
        self._free.append(node)

    def discard(self, node: Node) -> None:
        """Drop a crashed node from the manager entirely (it will never be
        allocated again).  Works whether the node was free or allocated."""
        self._allocated.pop(node.name, None)
        self._free = [n for n in self._free if n.name != node.name]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ClusterManager(free={len(self._free)}, "
            f"allocated={len(self._allocated)})"
        )
