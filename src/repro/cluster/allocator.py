"""Cluster Manager: node-pool allocation.

The paper's *Cluster Manager* component "is responsible for the allocation
of nodes (from a pool of available nodes) which will host the replicated
servers of each tier" (§3.3).  Actuators call :meth:`ClusterManager.allocate`
when a tier must grow and :meth:`ClusterManager.release` when it shrinks, so
hardware is only held while needed — the resource-saving argument of §1.

Beyond the paper: the pool is no longer necessarily uniform or fixed.  A
:class:`~repro.market.allocator.FleetAllocator` may stock it with nodes of
different instance types bought on different markets (:mod:`repro.market`),
via :meth:`ClusterManager.add_node`, and the manager keeps a per-owner
held-seconds ledger so cost reports can attribute spend to tiers instead
of only pool totals.
"""

from __future__ import annotations

from typing import Callable, Iterable, Optional

from repro.cluster.node import Node


class NoFreeNodeError(RuntimeError):
    """The free pool is empty (or no node matches the predicate)."""


class AllocationRecord:
    """Bookkeeping for one allocation (who holds which node since when)."""

    __slots__ = ("node", "owner", "since")

    def __init__(self, node: Node, owner: str, since: float):
        self.node = node
        self.owner = owner
        self.since = since


class ClusterManager:
    """Allocates nodes from a free pool, FIFO by default."""

    def __init__(self, nodes: Iterable[Node]) -> None:
        self._free: list[Node] = list(nodes)
        names = [n.name for n in self._free]
        if len(set(names)) != len(names):
            raise ValueError("duplicate node names in pool")
        self._allocated: dict[str, AllocationRecord] = {}
        self.allocations_total = 0
        self.releases_total = 0
        #: closed (released/discarded) held time, per owner, in node-seconds
        self._held_closed: dict[str, float] = {}

    # ------------------------------------------------------------------
    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def allocated_count(self) -> int:
        return len(self._allocated)

    def free_nodes(self) -> list[Node]:
        return list(self._free)

    def allocated_nodes(self) -> list[Node]:
        return [rec.node for rec in self._allocated.values()]

    def owner_of(self, node: Node) -> Optional[str]:
        rec = self._allocated.get(node.name)
        return rec.owner if rec else None

    # ------------------------------------------------------------------
    def allocate(
        self,
        owner: str,
        predicate: Optional[Callable[[Node], bool]] = None,
    ) -> Node:
        """Take a node from the free pool for ``owner``.

        ``predicate`` can restrict eligible nodes (e.g. only up nodes, or a
        minimum CPU speed).  Crashed nodes are never handed out.  Raises
        :class:`NoFreeNodeError` when nothing matches.
        """
        for i, node in enumerate(self._free):
            if not node.up:
                continue
            if predicate is not None and not predicate(node):
                continue
            del self._free[i]
            self._allocated[node.name] = AllocationRecord(
                node, owner, node.kernel.now
            )
            self.allocations_total += 1
            return node
        up = sum(1 for n in self._free if n.up)
        raise NoFreeNodeError(
            f"no free node for {owner!r}: free={len(self._free)} "
            f"(up={up}), allocated={len(self._allocated)}, "
            f"predicate={'yes' if predicate is not None else 'no'}"
        )

    def release(self, node: Node) -> None:
        """Return a node to the free pool.  Releasing an unallocated node is
        an error (double-release bugs should not pass silently)."""
        rec = self._allocated.pop(node.name, None)
        if rec is None:
            raise ValueError(f"node {node.name} is not allocated")
        self._close_held(rec)
        self.releases_total += 1
        self._free.append(node)

    def discard(self, node: Node) -> None:
        """Drop a crashed node from the manager entirely (it will never be
        allocated again).  Works whether the node was free or allocated."""
        rec = self._allocated.pop(node.name, None)
        if rec is not None:
            self._close_held(rec)
        self._free = [n for n in self._free if n.name != node.name]

    def add_node(self, node: Node) -> None:
        """Stock the free pool with a newly provisioned node (fleet
        allocators buy capacity at runtime; the paper's fixed pool is the
        special case where this is never called)."""
        if node.name in self._allocated or any(
            n.name == node.name for n in self._free
        ):
            raise ValueError(f"node {node.name} already in pool")
        self._free.append(node)

    # ------------------------------------------------------------------
    # Held-time ledger (cost attribution per owner)
    # ------------------------------------------------------------------
    def _close_held(self, rec: AllocationRecord) -> None:
        held = rec.node.kernel.now - rec.since
        if held > 0:
            self._held_closed[rec.owner] = (
                self._held_closed.get(rec.owner, 0.0) + held
            )

    def node_seconds_by_owner(self) -> dict[str, float]:
        """Total node-seconds held per owner: closed allocations plus the
        accrued time of allocations still live right now."""
        totals = dict(self._held_closed)
        for rec in self._allocated.values():
            held = rec.node.kernel.now - rec.since
            if held > 0:
                totals[rec.owner] = totals.get(rec.owner, 0.0) + held
        return totals

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ClusterManager(free={len(self._free)}, "
            f"allocated={len(self._allocated)})"
        )
