"""Failure injection.

Used by the self-recovery experiments (the paper's Fig. 3 shows a
self-recovery manager alongside self-optimization; the repair algorithm is
the one of Bouchenak et al., SRDS 2005).  Supports deterministic one-shot
crashes and a Poisson crash process over a set of nodes.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.cluster.node import Node
from repro.simulation.kernel import PeriodicTask, SimKernel


class FailureInjector:
    """Schedules node crashes."""

    def __init__(self, kernel: SimKernel, rng: Optional[np.random.Generator] = None):
        self.kernel = kernel
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.crashes_injected = 0
        self._poisson_tasks: list[PeriodicTask] = []

    def crash_at(self, node: Node, time: float) -> None:
        """Crash ``node`` at absolute simulated ``time``."""
        self.kernel.schedule_at(time, self._crash, node)

    def crash_after(self, node: Node, delay: float) -> None:
        """Crash ``node`` after ``delay`` seconds."""
        self.kernel.schedule(delay, self._crash, node)

    def _crash(self, node: Node) -> None:
        if node.up:
            self.crashes_injected += 1
            node.crash()

    def poisson_crashes(
        self,
        nodes: Sequence[Node],
        mtbf_s: float,
        victim_filter: Optional[Callable[[Node], bool]] = None,
        check_period_s: float = 1.0,
    ) -> PeriodicTask:
        """Crash a uniformly-random eligible node with exponential
        inter-arrival times of mean ``mtbf_s``.

        Implemented as a Bernoulli approximation evaluated every
        ``check_period_s`` (exact in the limit of small periods).  Returns
        the periodic task so callers can cancel the process.
        """
        if mtbf_s <= 0:
            raise ValueError("mtbf must be positive")
        p = 1.0 - float(np.exp(-check_period_s / mtbf_s))
        nodes = list(nodes)

        def maybe_crash() -> None:
            if self.rng.random() >= p:
                return
            candidates = [
                n
                for n in nodes
                if n.up and (victim_filter is None or victim_filter(n))
            ]
            if not candidates:
                return
            victim = candidates[int(self.rng.integers(len(candidates)))]
            self._crash(victim)

        task = self.kernel.every(check_period_s, maybe_crash)
        self._poisson_tasks.append(task)
        return task

    def stop(self) -> None:
        """Cancel all ongoing random crash processes."""
        for task in self._poisson_tasks:
            task.cancel()
        self._poisson_tasks.clear()
