"""Failure injection.

Used by the self-recovery experiments (the paper's Fig. 3 shows a
self-recovery manager alongside self-optimization; the repair algorithm is
the one of Bouchenak et al., SRDS 2005).  Supports deterministic one-shot
crashes and a Poisson crash process over a set of nodes.  Richer fault
shapes (fail-slow, gray, partitions, correlated outages) live in
:mod:`repro.chaos`.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

import numpy as np

from repro.cluster.node import Node
from repro.simulation.kernel import Event, SimKernel


class PoissonCrashProcess:
    """Cancellable handle for one self-rescheduling Poisson crash stream."""

    __slots__ = ("_next_event", "cancelled")

    def __init__(self) -> None:
        self._next_event: Optional[Event] = None
        self.cancelled = False

    def cancel(self) -> None:
        """Stop the stream; the already-scheduled arrival never fires."""
        self.cancelled = True
        if self._next_event is not None:
            self._next_event.cancel()
            self._next_event = None


class FailureInjector:
    """Schedules node crashes."""

    def __init__(self, kernel: SimKernel, rng: Optional[np.random.Generator] = None):
        self.kernel = kernel
        self.rng = rng if rng is not None else np.random.default_rng(0)
        self.crashes_injected = 0
        self._one_shots: list[Event] = []
        self._poisson_processes: list[PoissonCrashProcess] = []

    def crash_at(self, node: Node, time: float) -> None:
        """Crash ``node`` at absolute simulated ``time``."""
        self._one_shots.append(self.kernel.schedule_at(time, self._crash, node))

    def crash_after(self, node: Node, delay: float) -> None:
        """Crash ``node`` after ``delay`` seconds."""
        self._one_shots.append(self.kernel.schedule(delay, self._crash, node))

    def _crash(self, node: Node) -> None:
        if node.up:
            self.crashes_injected += 1
            node.crash()

    def poisson_crashes(
        self,
        nodes: Sequence[Node],
        mtbf_s: float,
        victim_filter: Optional[Callable[[Node], bool]] = None,
    ) -> PoissonCrashProcess:
        """Crash a uniformly-random eligible node with exponential
        inter-arrival times of mean ``mtbf_s``.

        Sampling is *exact*: each arrival draws its inter-arrival delay
        from ``rng.exponential(mtbf_s)`` and self-reschedules through
        ``kernel.schedule`` — no per-tick Bernoulli approximation, no
        periodic wake-ups between arrivals.

        RNG stream semantics: the injector's generator is consumed in
        arrival order — one ``exponential`` draw when an arrival is
        scheduled (the first at creation, each next when the previous
        fires), then one ``integers`` draw per arrival that finds at
        least one eligible victim.  An arrival with no eligible victim
        consumes no victim draw.

        Returns a :class:`PoissonCrashProcess` so callers can cancel the
        stream (``stop`` cancels all of them).
        """
        if mtbf_s <= 0:
            raise ValueError("mtbf must be positive")
        nodes = list(nodes)
        process = PoissonCrashProcess()

        def fire() -> None:
            if process.cancelled:  # defensive: cancel() tombstones anyway
                return
            candidates = [
                n
                for n in nodes
                if n.up and (victim_filter is None or victim_filter(n))
            ]
            if candidates:
                victim = candidates[int(self.rng.integers(len(candidates)))]
                self._crash(victim)
            arm()

        def arm() -> None:
            delay = float(self.rng.exponential(mtbf_s))
            process._next_event = self.kernel.schedule(delay, fire)

        arm()
        self._poisson_processes.append(process)
        return process

    def stop(self) -> None:
        """Cancel everything still pending: the random crash processes and
        any not-yet-fired one-shot ``crash_at``/``crash_after`` events."""
        for process in self._poisson_processes:
            process.cancel()
        self._poisson_processes.clear()
        for event in self._one_shots:
            event.cancel()
        self._one_shots.clear()
