"""Per-node simulated filesystem.

The paper's central claim is that wrappers hide *proprietary configuration
files* (``httpd.conf``, ``worker.properties``...) behind a uniform component
interface.  To exercise that claim for real, every simulated node carries a
tiny filesystem; wrappers write genuine config-file text into it and legacy
servers parse their configuration back *only* from these files on start.
"""

from __future__ import annotations

from typing import Iterator


class FileNotFound(KeyError):
    """Raised when reading or deleting a path that does not exist."""


def _normalize(path: str) -> str:
    if not path or not path.startswith("/"):
        raise ValueError(f"paths must be absolute, got {path!r}")
    parts = [p for p in path.split("/") if p]
    return "/" + "/".join(parts)


class NodeFilesystem:
    """A flat path → text mapping with a directory-listing convenience."""

    def __init__(self) -> None:
        self._files: dict[str, str] = {}

    def write(self, path: str, content: str) -> None:
        """Create or overwrite the file at ``path``."""
        self._files[_normalize(path)] = content

    def read(self, path: str) -> str:
        """Return the content of ``path``; raise :class:`FileNotFound`."""
        path = _normalize(path)
        try:
            return self._files[path]
        except KeyError:
            raise FileNotFound(path) from None

    def exists(self, path: str) -> bool:
        return _normalize(path) in self._files

    def delete(self, path: str) -> None:
        path = _normalize(path)
        try:
            del self._files[path]
        except KeyError:
            raise FileNotFound(path) from None

    def listdir(self, prefix: str) -> list[str]:
        """Paths under ``prefix`` (inclusive of nested directories)."""
        prefix = _normalize(prefix)
        if not prefix.endswith("/"):
            prefix += "/"
        return sorted(p for p in self._files if p.startswith(prefix))

    def remove_tree(self, prefix: str) -> int:
        """Delete every file under ``prefix``; returns number removed."""
        victims = self.listdir(prefix)
        for path in victims:
            del self._files[path]
        return len(victims)

    def __len__(self) -> int:
        return len(self._files)

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._files))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"NodeFilesystem({len(self._files)} files)"
