"""Software Installation Service.

"A Software Installation Service component allows retrieving the
encapsulated software resources involved in the multi-tier J2EE application
(e.g., Apache Web server software, MySQL database server software, etc.) and
installing them on nodes of the cluster." (§3.3)

Packages live in a repository; installing one copies its files into the
target node's filesystem and takes simulated time (fixed setup cost plus the
LAN transfer time of the package archive).  The installation delay is part
of the reconfiguration latency visible in Figure 5's step timing.
"""

from __future__ import annotations

from typing import Mapping, Optional

from repro.cluster.network import Lan
from repro.cluster.node import Node, NodeDown
from repro.simulation.kernel import SimKernel
from repro.simulation.process import Signal


class Package:
    """An installable software archive."""

    def __init__(
        self,
        name: str,
        version: str,
        size_mb: float = 10.0,
        setup_time_s: float = 2.0,
        files: Optional[Mapping[str, str]] = None,
        footprint_mb: float = 32.0,
    ) -> None:
        if size_mb < 0 or setup_time_s < 0 or footprint_mb < 0:
            raise ValueError("package metrics must be >= 0")
        self.name = name
        self.version = version
        self.size_mb = size_mb
        self.setup_time_s = setup_time_s
        self.files = dict(files or {})
        self.footprint_mb = footprint_mb

    @property
    def install_root(self) -> str:
        return f"/opt/{self.name}-{self.version}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Package({self.name}-{self.version}, {self.size_mb} MB)"


class PackageNotFound(KeyError):
    """Requested package is not in the repository."""


class SoftwareInstallationService:
    """Installs repository packages onto cluster nodes."""

    def __init__(self, kernel: SimKernel, lan: Optional[Lan] = None) -> None:
        self.kernel = kernel
        self.lan = lan
        self._repository: dict[str, Package] = {}
        self._installed: dict[str, set[str]] = {}  # node name -> package names
        self.installs_total = 0

    # ------------------------------------------------------------------
    # Repository
    # ------------------------------------------------------------------
    def register(self, package: Package) -> None:
        """Publish a package in the repository (replaces same-name entry)."""
        self._repository[package.name] = package

    def lookup(self, name: str) -> Package:
        try:
            return self._repository[name]
        except KeyError:
            raise PackageNotFound(name) from None

    @property
    def repository(self) -> dict[str, Package]:
        return dict(self._repository)

    # ------------------------------------------------------------------
    # Installation
    # ------------------------------------------------------------------
    def install(self, name: str, node: Node) -> Signal:
        """Install package ``name`` onto ``node``.

        Returns a :class:`Signal` that fires with the package once the
        install completes (setup + transfer time later).  Installing an
        already-installed package completes after the setup time only
        (idempotent refresh).  Fails the signal if the node is down.
        """
        package = self.lookup(name)
        done = Signal(self.kernel)
        if not node.up:
            done.fail(NodeDown(node.name))
            return done
        delay = package.setup_time_s
        if not self.is_installed(name, node):
            delay += self.lan.transfer_time(package.size_mb) if self.lan else 0.0
        self.kernel.schedule(delay, self._finish_install, package, node, done)
        return done

    def _finish_install(self, package: Package, node: Node, done: Signal) -> None:
        if not node.up:
            done.fail(NodeDown(node.name))
            return
        root = package.install_root
        node.fs.write(f"{root}/.installed", f"{package.name} {package.version}\n")
        for rel_path, content in package.files.items():
            node.fs.write(f"{root}/{rel_path.lstrip('/')}", content)
        node.register_footprint(f"pkg:{package.name}", package.footprint_mb)
        self._installed.setdefault(node.name, set()).add(package.name)
        self.installs_total += 1
        done.succeed(package)

    def uninstall(self, name: str, node: Node) -> None:
        """Immediately remove a package's files and footprint from a node."""
        package = self.lookup(name)
        node.fs.remove_tree(package.install_root)
        node.unregister_footprint(f"pkg:{package.name}")
        self._installed.get(node.name, set()).discard(name)

    def is_installed(self, name: str, node: Node) -> bool:
        return name in self._installed.get(node.name, set())

    def installed_on(self, node: Node) -> set[str]:
        return set(self._installed.get(node.name, set()))
