"""LAN model.

The paper's cluster is "connected through a 100 Mbps Ethernet LAN".  We model
it as a uniform-latency switch: a fixed per-message latency and a shared-link
bandwidth used for bulk transfers (software installation, database state
synchronization).  This is deliberately simple — the paper's bottleneck is
CPU, not the network — but it makes reconfiguration latencies (install +
sync) non-zero and tunable.
"""

from __future__ import annotations

from typing import Iterable


def _names(group: Iterable) -> frozenset[str]:
    """Normalize a group of nodes (or node names) to a name set."""
    return frozenset(getattr(member, "name", member) for member in group)


class Lan:
    """Uniform switched LAN.

    Chaos hooks: ``set_extra_latency`` models a degraded switch (the added
    delay applies to every message and transfer until cleared), and
    ``partition``/``reachable``/``heal`` keep partition bookkeeping so
    experiments can both cut groups apart and query the current topology.
    """

    def __init__(
        self,
        latency_s: float = 0.0002,
        bandwidth_mbps: float = 100.0,
        name: str = "lan0",
    ) -> None:
        if latency_s < 0:
            raise ValueError("latency must be >= 0")
        if bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        self.latency_s = latency_s
        self.bandwidth_mbps = bandwidth_mbps
        self.name = name
        self.messages_total = 0
        self.bytes_total = 0.0
        #: chaos: additional per-message/transfer delay (degraded switch)
        self.extra_latency_s = 0.0
        self._partitions: list[tuple[frozenset[str], frozenset[str]]] = []

    def message_delay(self, payload_kb: float = 1.0) -> float:
        """One-way delay for a small message of ``payload_kb`` kilobytes."""
        if payload_kb < 0:
            raise ValueError("payload must be >= 0")
        self.messages_total += 1
        self.bytes_total += payload_kb * 1024.0
        # 100 Mbps = 12.5 MB/s = 12800 KB/s
        return (
            self.latency_s
            + self.extra_latency_s
            + payload_kb / (self.bandwidth_mbps * 128.0)
        )

    def transfer_time(self, size_mb: float) -> float:
        """Time to ship a bulk payload of ``size_mb`` megabytes."""
        if size_mb < 0:
            raise ValueError("size must be >= 0")
        self.bytes_total += size_mb * 1024.0 * 1024.0
        return (
            self.latency_s
            + self.extra_latency_s
            + size_mb * 8.0 / self.bandwidth_mbps
        )

    # ------------------------------------------------------------------
    # Chaos hooks
    # ------------------------------------------------------------------
    def set_extra_latency(self, extra_s: float) -> None:
        """Add ``extra_s`` to every delay (0 restores the healthy switch)."""
        if extra_s < 0:
            raise ValueError("extra latency must be >= 0")
        self.extra_latency_s = extra_s

    def partition(self, group_a: Iterable, group_b: Iterable) -> None:
        """Cut ``group_a`` from ``group_b`` (nodes or node names)."""
        a, b = _names(group_a), _names(group_b)
        if a & b:
            raise ValueError("partition groups must be disjoint")
        self._partitions.append((a, b))

    def reachable(self, a, b) -> bool:
        """Can ``a`` talk to ``b`` under the current partitions?"""
        name_a = getattr(a, "name", a)
        name_b = getattr(b, "name", b)
        for left, right in self._partitions:
            if (name_a in left and name_b in right) or (
                name_a in right and name_b in left
            ):
                return False
        return True

    def heal(self) -> None:
        """Remove every partition."""
        self._partitions.clear()

    @property
    def partitioned(self) -> bool:
        return bool(self._partitions)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Lan({self.bandwidth_mbps} Mbps, {self.latency_s * 1e3:.2f} ms)"
