"""LAN model.

The paper's cluster is "connected through a 100 Mbps Ethernet LAN".  We model
it as a uniform-latency switch: a fixed per-message latency and a shared-link
bandwidth used for bulk transfers (software installation, database state
synchronization).  This is deliberately simple — the paper's bottleneck is
CPU, not the network — but it makes reconfiguration latencies (install +
sync) non-zero and tunable.
"""

from __future__ import annotations


class Lan:
    """Uniform switched LAN."""

    def __init__(
        self,
        latency_s: float = 0.0002,
        bandwidth_mbps: float = 100.0,
        name: str = "lan0",
    ) -> None:
        if latency_s < 0:
            raise ValueError("latency must be >= 0")
        if bandwidth_mbps <= 0:
            raise ValueError("bandwidth must be positive")
        self.latency_s = latency_s
        self.bandwidth_mbps = bandwidth_mbps
        self.name = name
        self.messages_total = 0
        self.bytes_total = 0.0

    def message_delay(self, payload_kb: float = 1.0) -> float:
        """One-way delay for a small message of ``payload_kb`` kilobytes."""
        if payload_kb < 0:
            raise ValueError("payload must be >= 0")
        self.messages_total += 1
        self.bytes_total += payload_kb * 1024.0
        # 100 Mbps = 12.5 MB/s = 12800 KB/s
        return self.latency_s + payload_kb / (self.bandwidth_mbps * 128.0)

    def transfer_time(self, size_mb: float) -> float:
        """Time to ship a bulk payload of ``size_mb`` megabytes."""
        if size_mb < 0:
            raise ValueError("size must be >= 0")
        self.bytes_total += size_mb * 1024.0 * 1024.0
        return self.latency_s + size_mb * 8.0 / self.bandwidth_mbps

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Lan({self.bandwidth_mbps} Mbps, {self.latency_s * 1e3:.2f} ms)"
