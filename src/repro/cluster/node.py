"""Simulated cluster node.

A node bundles a CPU resource (processor-sharing by default), a simple
memory model, a filesystem and a registry of the server processes running on
it.  Memory is accounted as::

    used = base_os + sum(static footprints) + per_job * active_cpu_jobs

which reproduces Table 1's observation: deploying Jade's management
components on every node adds a small *static* memory footprint but no
per-request CPU cost.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cluster.filesystem import NodeFilesystem
from repro.simulation.kernel import SimKernel
from repro.simulation.resources import (
    CapacityModel,
    CpuJob,
    CpuResource,
    PsCpu,
    constant_capacity,
)


class NodeDown(RuntimeError):
    """Raised when using a crashed node, and delivered to aborted jobs."""


class NodeIsolated(RuntimeError):
    """Delivered to jobs lost on a network-partitioned node.

    Unlike :class:`NodeDown` the node itself is healthy — it keeps
    answering heartbeats (``up`` stays True) — but work sent to it is
    lost until the partition heals."""


class Node:
    """One machine of the simulated cluster."""

    def __init__(
        self,
        kernel: SimKernel,
        name: str,
        cpu_speed: float = 1.0,
        capacity_model: CapacityModel = constant_capacity,
        memory_mb: float = 1024.0,
        base_os_mb: float = 96.0,
        per_job_mb: float = 1.5,
        cpu_factory: Optional[Callable[..., CpuResource]] = None,
        instance: Optional[object] = None,
        market: str = "on-demand",
    ) -> None:
        self.kernel = kernel
        self.name = name
        #: typed capacity/price profile when bought from a heterogeneous
        #: market (an :class:`~repro.market.catalog.InstanceType`); None
        #: for the paper's uniform pool
        self.instance = instance
        #: which market the node was bought on ("on-demand" or "spot");
        #: spot nodes can receive interruption notices
        self.market = market
        factory = cpu_factory or PsCpu
        self.cpu: CpuResource = factory(
            kernel, speed=cpu_speed, capacity_model=capacity_model, name=f"{name}.cpu"
        )
        self.memory_mb = memory_mb
        self.base_os_mb = base_os_mb
        self.per_job_mb = per_job_mb
        self.fs = NodeFilesystem()
        self.up = True
        #: network-partitioned: heartbeats still answer but work is lost
        self.isolated = False
        self._footprints: dict[str, float] = {}
        self._crash_listeners: list[Callable[["Node"], None]] = []
        # Utilization sampling bookkeeping (used by probes).
        self._last_busy = 0.0
        self._last_busy_t = kernel.now

    # ------------------------------------------------------------------
    # CPU
    # ------------------------------------------------------------------
    def run_job(self, demand: float, tag: object = None, weight: int = 1) -> CpuJob:
        """Submit CPU work of ``demand`` seconds (at unit speed) and return
        the job; ``job.done`` fires on completion.  ``weight`` batches that
        many identical requests into one job (see
        :class:`~repro.simulation.resources.CpuJob`)."""
        if not self.up:
            raise NodeDown(self.name)
        job = CpuJob(self.kernel, demand, tag=tag, weight=weight)
        if self.isolated:
            # The caller cannot tell an isolated node from a healthy one
            # (that is the point of a partition): the job is accepted and
            # fails asynchronously, like a timed-out RPC.  Callbacks added
            # after this fire via the kernel (see Signal.add_callback).
            job.done.fail(NodeIsolated(self.name))
            return job
        self.cpu.submit(job)
        return job

    def degrade(self, factor: float) -> None:
        """Fail-slow hook: deliver only ``factor`` of nominal CPU speed."""
        self.cpu.set_degradation(factor)

    def restore(self) -> None:
        """Clear any fail-slow degradation (back to full speed)."""
        self.cpu.set_degradation(1.0)

    # ------------------------------------------------------------------
    # Network partition (gray from the heartbeat's point of view)
    # ------------------------------------------------------------------
    def isolate(self) -> None:
        """Partition the node: in-flight work is lost, new work fails, but
        the node still answers heartbeats (``up`` stays True)."""
        if not self.up or self.isolated:
            return
        self.isolated = True
        self.cpu.abort_all(NodeIsolated(self.name))

    def heal(self) -> None:
        """Reconnect an isolated node."""
        self.isolated = False

    def cpu_utilization_since_last_sample(self) -> float:
        """Fraction of time the CPU was busy since the previous call.

        This is the raw signal a :class:`~repro.jade.sensors.CpuProbe`
        samples once per second.  The first call measures since node
        creation.  Returns 0.0 for a zero-length interval.
        """
        now = self.kernel.now
        busy = self.cpu.busy_time()
        span = now - self._last_busy_t
        delta = busy - self._last_busy
        self._last_busy = busy
        self._last_busy_t = now
        if span <= 0.0:
            return 0.0
        return min(1.0, delta / span)

    # ------------------------------------------------------------------
    # Memory
    # ------------------------------------------------------------------
    def register_footprint(self, name: str, mb: float) -> None:
        """Account ``mb`` of static memory for a named consumer (a server
        binary, a Jade management component...)."""
        if mb < 0:
            raise ValueError("footprint must be >= 0")
        self._footprints[name] = mb

    def unregister_footprint(self, name: str) -> None:
        self._footprints.pop(name, None)

    def memory_used_mb(self) -> float:
        static = self.base_os_mb + sum(self._footprints.values())
        dynamic = self.per_job_mb * self.cpu.active_jobs
        return min(self.memory_mb, static + dynamic)

    def memory_utilization(self) -> float:
        """Memory used as a fraction of total node memory."""
        return self.memory_used_mb() / self.memory_mb

    @property
    def footprints(self) -> dict[str, float]:
        return dict(self._footprints)

    # ------------------------------------------------------------------
    # Failure
    # ------------------------------------------------------------------
    def on_crash(self, listener: Callable[["Node"], None]) -> None:
        """Register a callback fired when the node crashes."""
        self._crash_listeners.append(listener)

    def crash(self) -> None:
        """Fail the node: abort all in-flight CPU work, drop state, notify.

        Idempotent (crashing a dead node is a no-op).
        """
        if not self.up:
            return
        self.up = False
        self.cpu.abort_all(NodeDown(self.name))
        for listener in list(self._crash_listeners):
            listener(self)

    def reboot(self) -> None:
        """Bring a crashed node back with empty filesystem and memory (a
        replacement machine in practice)."""
        if self.up:
            return
        self.up = True
        self.isolated = False
        self.cpu.set_degradation(1.0)
        self.fs = NodeFilesystem()
        self._footprints.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "up" if self.up else "DOWN"
        return f"<Node {self.name} {state} jobs={self.cpu.active_jobs}>"


def make_nodes(
    kernel: SimKernel,
    count: int,
    prefix: str = "node",
    **node_kwargs,
) -> list[Node]:
    """Convenience: build ``count`` identical nodes named ``prefix{i}``."""
    return [Node(kernel, f"{prefix}{i}", **node_kwargs) for i in range(1, count + 1)]
