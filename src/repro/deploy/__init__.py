"""Zero-downtime deployments (extension).

Versioned server configurations pushed through four bounce strategies
(:mod:`repro.deploy.bounce`), judged by a canary controller and rolled
back automatically when the new version violates its SLO deltas
(:mod:`repro.deploy.canary`), scored per seed with confidence intervals
(:mod:`repro.deploy.scorecard`).

The paper's managed system can grow, shrink and repair a tier — but its
lifecycle story ends there.  This package closes the loop on the other
reconfiguration every clustered application lives with: shipping a new
server configuration without dropping the site, and un-shipping it when
the push was bad.
"""

from repro.deploy.bounce import BounceOperation
from repro.deploy.canary import CanaryController, DeployManager
from repro.deploy.scenario import (
    PRESETS,
    STRATEGIES,
    DeployScenario,
    deploy_config,
    with_strategy,
)
from repro.deploy.scorecard import (
    render_scorecard,
    score_run,
    score_scenario,
    scorecard_json,
    violation_seconds,
)
from repro.deploy.versions import (
    ServerVersion,
    apply_version,
    clear_version,
    version_label,
)

__all__ = [
    "BounceOperation",
    "CanaryController",
    "DeployManager",
    "DeployScenario",
    "PRESETS",
    "STRATEGIES",
    "ServerVersion",
    "apply_version",
    "clear_version",
    "deploy_config",
    "render_scorecard",
    "score_run",
    "score_scenario",
    "scorecard_json",
    "version_label",
    "violation_seconds",
    "with_strategy",
]
