"""The ``"deploy"`` section of BENCH_engine.json (shared logic).

Two headline claims, asserted by the CI deploy-smoke job:

* **bad push** — the canary catches a regression (4x demand, 30 % 500s)
  and rolls back automatically; post-rollback goodput is within 5 % of
  the pre-push steady state.
* **clean bounce** — the ``crossover`` strategy keeps SLO violation
  seconds strictly below ``brutal`` during a clean fleet bounce (and
  never drops below one serving replica, where brutal blacks out).

Lives inside the package (not ``benchmarks/``) so ``repro bench`` can
import it from an installed tree; ``benchmarks/bench_deploy.py`` is the
CLI/pytest wrapper.
"""

from __future__ import annotations

from typing import Sequence

from repro.deploy.scenario import PRESETS, deploy_config, with_strategy
from repro.deploy.scorecard import score_scenario


def _runs(runner, scenario, seeds, clients, duration_s):
    runs = runner.run_seeds(
        lambda seed: deploy_config(
            scenario, seed=seed, clients=clients, duration_s=duration_s
        ),
        seeds,
        prefix=f"deploy-{scenario.name}-{scenario.strategy}",
    )
    return [runs[s] for s in seeds]


def run_deploy_section(
    seeds: Sequence[int] = (1, 2, 3),
    clients: int = 120,
    duration_s: float = 540.0,
    parallel: bool = True,
    use_cache: bool = False,
) -> dict:
    """The ``"deploy"`` section of BENCH_engine.json."""
    from repro.runner import ExperimentRunner, ResultCache

    runner = ExperimentRunner(
        cache=ResultCache() if use_cache else None, parallel=parallel
    )
    seeds = tuple(seeds)

    bad = PRESETS["bad-push"]()
    bad_card = score_scenario(bad, _runs(runner, bad, seeds, clients, duration_s))

    clean = PRESETS["clean-bounce"]()
    arms = {}
    for strategy in ("crossover", "brutal"):
        scenario = with_strategy(clean, strategy)
        arms[strategy] = score_scenario(
            scenario, _runs(runner, scenario, seeds, clients, duration_s)
        )

    return {
        "seeds": list(seeds),
        "clients": clients,
        "duration_s": duration_s,
        "bad_push": bad_card,
        "clean_bounce": arms,
        "headline": {
            "rollbacks": sum(
                1 for v in bad_card["verdicts"] if v == "rolled-back"
            ),
            "runs": len(seeds),
            "rollback_latency_s": bad_card["aggregate"]["rollback_latency_s"],
            "goodput_ratio": bad_card["aggregate"]["goodput_ratio"],
            "crossover_slo_violation_s": arms["crossover"]["aggregate"][
                "bounce_slo_violation_s"
            ],
            "brutal_slo_violation_s": arms["brutal"]["aggregate"][
                "bounce_slo_violation_s"
            ],
            "crossover_min_serving": arms["crossover"]["aggregate"]["min_serving"],
            "brutal_blackout_s": arms["brutal"]["aggregate"]["blackout_s"],
        },
    }


def render_section(section: dict) -> str:
    h = section["headline"]
    lines = [
        f"Deployments: {section['clients']} clients x "
        f"{section['duration_s']:.0f}s, seeds "
        f"{', '.join(str(s) for s in section['seeds'])}",
        "",
        f"bad push (canary):    {h['rollbacks']}/{h['runs']} rolled back, "
        f"latency {h['rollback_latency_s']['mean']:.1f} +/- "
        f"{h['rollback_latency_s']['ci95']:.1f} s, "
        f"post/pre goodput {h['goodput_ratio']['mean'] * 100:.1f} %",
        "clean bounce (SLO violation s, min serving):",
        f"  crossover : {h['crossover_slo_violation_s']['mean']:6.1f} s   "
        f"min {h['crossover_min_serving']['mean']:.1f} replicas",
        f"  brutal    : {h['brutal_slo_violation_s']['mean']:6.1f} s   "
        f"blackout {h['brutal_blackout_s']['mean']:.1f} s",
    ]
    return "\n".join(lines)


def check_section(section: dict) -> None:
    """The load-bearing assertions shared by pytest, --smoke and CI."""
    h = section["headline"]
    assert h["rollbacks"] == h["runs"], (
        f"bad push not always rolled back: {h['rollbacks']}/{h['runs']}"
    )
    assert h["rollback_latency_s"]["mean"] < 120.0, "rollback too slow"
    for row in section["bad_push"]["per_seed"]:
        assert abs(row["goodput_ratio"] - 1.0) <= 0.05, (
            f"seed {row['seed']}: post-rollback goodput "
            f"{row['goodput_ratio'] * 100:.1f} % of pre-push"
        )
    crossover = h["crossover_slo_violation_s"]["mean"]
    brutal = h["brutal_slo_violation_s"]["mean"]
    assert crossover < brutal, (
        f"crossover SLO violation ({crossover:.1f} s) not below "
        f"brutal ({brutal:.1f} s)"
    )
    assert h["crossover_min_serving"]["mean"] >= 3.0, (
        "crossover dipped below the fleet size"
    )
    assert h["brutal_blackout_s"]["mean"] > 0.0, (
        "brutal bounce did not black out (model drifted?)"
    )
