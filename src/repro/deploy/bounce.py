"""Bounce strategies.

A *bounce* moves the replicas of a tier from one server version to
another.  The four strategies are kernel processes composed from the
existing actuator vocabulary — Fractal lifecycle/binding controllers,
:class:`~repro.jade.rolling.RollingRebind`, and the tier manager's
grow/shrink sequences — trading blackout risk against spare-node demand
(see :data:`~repro.deploy.scenario.STRATEGIES` for the ladder).

Replicas being bounced are quarantined in ``TierManager.maintenance`` so
the heartbeat sensor does not mistake a deliberately stopped server for
a crash and "repair" it mid-bounce.  The ``observe`` callback is invoked
after every capacity-changing step: it is how the deploy manager records
capacity-in-flight (serving/total) for the scorecard's blackout and
minimum-capacity numbers.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.deploy.versions import (
    ServerVersion,
    apply_version,
    clear_version,
    version_label,
)
from repro.jade.rolling import RollingRebind
from repro.simulation.process import Process, Signal, sleep, wait

#: retry budget for grow/shrink sequencing (seconds of 1 s polls); hitting
#: it means the pool stayed exhausted or the tier stayed busy for this
#: long — the bounce gives up rather than spin forever
_RETRY_BUDGET = 120


class BounceOperation:
    """One bounce of a tier to ``version`` (None = back to stable).

    ``limit`` restricts the pass to the first N stale replicas — how the
    canary phase bounces only the canary cohort.  ``done`` fires when the
    pass ends (``completed`` distinguishes success from an abort or a
    failed grow); killing :attr:`process` mid-pass lifts every quarantine
    via the ``finally`` below, so an aborted bounce never leaves the
    heartbeat sensor blind to a replica.
    """

    def __init__(
        self,
        kernel,
        tier,
        version: Optional[ServerVersion],
        strategy: str,
        rng=None,
        settle_s: float = 2.0,
        limit: Optional[int] = None,
        observe: Optional[Callable[[], None]] = None,
        event: Optional[Callable[[str], None]] = None,
    ) -> None:
        self.kernel = kernel
        self.tier = tier
        self.version = version
        self.strategy = strategy
        self.rng = rng
        self.settle_s = settle_s
        self.limit = limit
        self.observe = observe
        self.event = event
        self.done = Signal(kernel)
        self.completed = False
        self.error: Optional[str] = None
        self.bounced = 0
        self.process: Optional[Process] = None
        self._quarantined: set[str] = set()

    # ------------------------------------------------------------------
    def start(self) -> "BounceOperation":
        self.process = Process(
            self.kernel, self._run(), name=f"bounce-{self.strategy}"
        )
        return self

    def _run(self):
        try:
            yield from getattr(self, f"_run_{self.strategy}")()
            self.completed = True
        except RuntimeError as exc:
            # A failed grow/shrink (pool exhausted, tier wedged) ends the
            # bounce; the deploy manager reads ``error`` off the result.
            self.error = str(exc)
            if self.event is not None:
                self.event(f"bounce-failed: {exc}")
        finally:
            for name in list(self._quarantined):
                self._unquarantine(name)
            if not self.done.fired:
                self.done.succeed(self)

    # ------------------------------------------------------------------
    # Shared mechanics
    # ------------------------------------------------------------------
    def _targets(self) -> list:
        """Stale replicas: those not already on the target version."""
        label = version_label(self.version)
        stale = [
            r for r in self.tier.replicas if version_label(r.version) != label
        ]
        return stale[: self.limit] if self.limit is not None else stale

    def _apply(self, record) -> None:
        if self.version is None:
            clear_version(record)
        else:
            apply_version(record, self.version, rng=self.rng)

    def _quarantine(self, name: str) -> None:
        self.tier.maintenance.add(name)
        self._quarantined.add(name)

    def _unquarantine(self, name: str) -> None:
        self.tier.maintenance.discard(name)
        self._quarantined.discard(name)

    def _observe(self) -> None:
        if self.observe is not None:
            self.observe()

    def _bounce_in_place(self, record):
        """Stop/swap/start one replica where it sits, via RollingRebind
        (re-pins its static bindings while down, applies the version in
        the outage window, waits out the restart)."""
        component = record.component
        self._quarantine(component.name)
        try:
            template = self.tier.bindings_template
            if template:
                rebind = RollingRebind(
                    self.kernel,
                    [component],
                    template[0][0],
                    [target for _, target in template],
                    settle_s=0.0,
                    on_stopped=lambda c: self._apply(record),
                )
                rebind.start()
                yield wait(rebind.done)
            else:
                component.stop()
                self._apply(record)
                yield sleep(getattr(component.content, "startup_time_s", 1.0))
                component.start()
        finally:
            self._unquarantine(component.name)
        self.bounced += 1
        self._observe()

    def _grow_versioned(self):
        """Grow one replica stamped with the target version; returns the
        new record once it is active."""
        prior = {r.component.name for r in self.tier.replicas}
        self.tier.current_version = self.version
        try:
            for _ in range(_RETRY_BUDGET):
                if self.tier.grow():
                    break
                yield sleep(1.0)
            else:
                raise RuntimeError(
                    f"{self.tier.tier_name}: grow never started"
                )
            while self.tier.busy:
                yield sleep(1.0)
        finally:
            self.tier.current_version = None
        new = [
            r for r in self.tier.replicas if r.component.name not in prior
        ]
        if not new:
            raise RuntimeError(f"{self.tier.tier_name}: grow failed")
        self.bounced += 1
        return new[-1]

    def _shrink_record(self, record):
        for _ in range(_RETRY_BUDGET):
            if self.tier.shrink(record=record):
                break
            yield sleep(1.0)
        else:
            raise RuntimeError(f"{self.tier.tier_name}: shrink never started")
        while self.tier.busy:
            yield sleep(1.0)

    # ------------------------------------------------------------------
    # Strategies
    # ------------------------------------------------------------------
    def _run_brutal(self):
        """Stop every stale replica at once, swap versions, restart all
        after one startup wait.  The whole tier blacks out (the balancer
        fails requests fast: "no live backend") — the baseline the other
        strategies are measured against."""
        targets = self._targets()
        if not targets:
            return
        for record in targets:
            self._quarantine(record.component.name)
        try:
            for record in targets:
                record.component.stop()
                self._apply(record)
            self._observe()  # the blackout, on the capacity timeline
            startup = max(
                getattr(r.component.content, "startup_time_s", 1.0)
                for r in targets
            )
            yield sleep(startup)
            for record in targets:
                record.component.start()
                self.bounced += 1
        finally:
            for record in targets:
                self._unquarantine(record.component.name)
        self._observe()

    def _run_downthenup(self):
        """Rolling in-place restart, one replica at a time: capacity dips
        by one replica per step, never to zero."""
        for record in self._targets():
            yield from self._bounce_in_place(record)
            if self.settle_s > 0:
                yield sleep(self.settle_s)

    def _run_crossover(self):
        """Grow one new-version replica, retire one stale replica, repeat:
        serving capacity never drops below the fleet size (needs one spare
        node)."""
        for old in self._targets():
            yield from self._grow_versioned()
            self._observe()
            yield from self._shrink_record(old)
            self._observe()
            if self.settle_s > 0:
                yield sleep(self.settle_s)

    def _run_upthendown(self):
        """Grow the full new-version fleet first, then retire every stale
        replica: capacity only ever grows during the swap (needs N spare
        nodes)."""
        targets = self._targets()
        for _ in targets:
            yield from self._grow_versioned()
            self._observe()
        for old in targets:
            yield from self._shrink_record(old)
            self._observe()
