"""Canary analysis and the deploy manager.

:class:`DeployManager` is the autonomic deployment loop: grow the fleet,
bounce a canary cohort to the new version, let the
:class:`CanaryController` compare it against the stable fleet over a
decision window, then either promote (bounce the rest of the fleet with
the scenario's strategy) or roll back (bounce the canaries back to
stable).  It shares the reactive loops' inhibition lock — a deployment
inhibits threshold churn exactly like any other reconfiguration — and
emits typed tracer events (:class:`~repro.obs.events.DeployStarted`,
:class:`~repro.obs.events.CanaryVerdict`,
:class:`~repro.obs.events.RollbackTriggered`) so a verdict is explainable
after the fact.

Traffic routing: the load balancer spreads load uniformly over live
replicas, so bouncing ``canary_replicas`` of ``fleet`` to the new
version routes that fraction of traffic through it — no balancer
changes needed.  Measurement taps sit on the servers themselves
(``LegacyServer.request_observer``), so the cohorts are attributed
exactly, not statistically.
"""

from __future__ import annotations

from typing import Optional

from repro.deploy.bounce import BounceOperation
from repro.deploy.scenario import DeployScenario
from repro.deploy.versions import version_label
from repro.obs.events import CanaryVerdict, DeployStarted, RollbackTriggered
from repro.simulation.process import Process, sleep, wait

#: how long the fleet pre-grow may take before the manager proceeds with
#: whatever capacity it has (the deployment must not stall forever)
_GROW_BUDGET = 120


class CanaryController:
    """Measures canary vs stable cohorts at the servers and rules.

    ``measure`` is a kernel-process generator: it installs per-server
    request observers, sleeps out the decision window, removes them, and
    returns the verdict dict (also kept on :attr:`verdict`).
    """

    def __init__(self, kernel, tier, scenario: DeployScenario) -> None:
        self.kernel = kernel
        self.tier = tier
        self.scenario = scenario
        self.verdict: Optional[dict] = None

    def _tap(self, bucket: list) -> object:
        # bucket = [ok_weight, fail_weight, latency_weight_sum]
        kernel = self.kernel

        def tap(request, ok: bool) -> None:
            weight = getattr(request, "weight", 1)
            if ok:
                bucket[0] += weight
                issued = getattr(request, "issued_at", None)
                if issued is not None:
                    bucket[2] += (kernel.now - issued) * weight
            else:
                bucket[1] += weight

        return tap

    def measure(self):
        sc = self.scenario
        label = sc.version.label
        cohorts = {"canary": [0, 0, 0.0], "stable": [0, 0, 0.0]}
        tapped = []
        for record in self.tier.replicas:
            server = getattr(record.component.content, "server", None)
            if server is None:
                continue
            side = (
                "canary" if version_label(record.version) == label else "stable"
            )
            server.request_observer = self._tap(cohorts[side])
            tapped.append(server)
        try:
            yield sleep(sc.window_s)
        finally:
            for server in tapped:
                server.request_observer = None

        def rates(bucket):
            ok, fail, lat = bucket
            total = ok + fail
            err = fail / total if total else float("nan")
            latency = lat / ok if ok else float("nan")
            return total, err, latency

        canary_n, canary_err, canary_lat = rates(cohorts["canary"])
        stable_n, stable_err, stable_lat = rates(cohorts["stable"])
        if canary_n == 0:
            # Fail safe: a canary nobody reached proves nothing — never
            # promote on the absence of evidence.
            promoted, reason = False, "no-canary-traffic"
        elif canary_err - (stable_err if stable_err == stable_err else 0.0) > sc.max_error_delta:
            promoted, reason = False, "error-delta"
        elif (
            canary_lat == canary_lat
            and stable_lat == stable_lat
            and stable_lat > 0.0
            and canary_lat / stable_lat > sc.max_latency_factor
        ):
            promoted, reason = False, "latency-factor"
        else:
            promoted, reason = True, "slo-ok"
        self.verdict = {
            "promoted": promoted,
            "reason": reason,
            "canary_requests": canary_n,
            "stable_requests": stable_n,
            "canary_error_rate": canary_err,
            "stable_error_rate": stable_err,
            "canary_latency_s": canary_lat,
            "stable_latency_s": stable_lat,
        }
        return self.verdict


class DeployManager:
    """Executes one :class:`DeployScenario` against a live system."""

    def __init__(self, system, scenario: DeployScenario, rng, lock=None) -> None:
        self.system = system
        self.kernel = system.kernel
        self.scenario = scenario
        self.rng = rng
        self.collector = system.collector
        self.tier = system.app_tier
        if lock is None:
            from repro.jade.control_loop import InhibitionLock

            lock = InhibitionLock(self.kernel, system.config.inhibition_s)
        self.lock = lock
        #: optional decision tracer (set by the assembled system)
        self.tracer = None
        self.canary = CanaryController(self.kernel, self.tier, scenario)
        #: plain-data deploy log: {"t", "kind", ...detail}
        self.events: list[dict] = []
        #: capacity-in-flight timeline: [t, serving, total] on every change
        self.capacity: list[list] = []
        #: "promoted" | "rolled-back" | None (still running / aborted)
        self.verdict: Optional[str] = None
        self.verdict_reason = ""
        self.canary_metrics: dict = {}
        self.started_t = float("nan")
        self.verdict_t = float("nan")
        self.completed_t = float("nan")
        self._process: Optional[Process] = None
        self._sampler = None
        self._started = False

    # ------------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        self._process = Process(self.kernel, self._run(), name="deploy")
        # The 1 s sampler catches capacity changes the explicit observe
        # hooks between bounce steps would miss (e.g. a crash mid-bounce).
        self._sampler = self.kernel.every(1.0, self._observe)

    def stop(self) -> None:
        if self._sampler is not None:
            self._sampler.cancel()
            self._sampler = None
        if self._process is not None and self._process.alive:
            self._process.kill()

    # ------------------------------------------------------------------
    def serving_replicas(self) -> int:
        """Replicas actually able to serve right now."""
        count = 0
        for record in self.tier.replicas:
            server = getattr(record.component.content, "server", None)
            if server is not None and server.running and record.node.up:
                count += 1
        return count

    def _observe(self) -> None:
        serving = self.serving_replicas()
        total = len(self.tier.replicas)
        if self.capacity and self.capacity[-1][1:] == [serving, total]:
            return
        self.capacity.append([self.kernel.now, serving, total])

    def _event(self, kind: str, **detail) -> None:
        t = self.kernel.now
        self.events.append({"t": t, "kind": kind, **detail})
        text = ", ".join(f"{k}={v}" for k, v in detail.items())
        self.collector.record_reconfiguration(
            t, f"[deploy] {kind}" + (f" ({text})" if text else "")
        )

    def _bounce(self, version, strategy: str, limit: Optional[int] = None):
        op = BounceOperation(
            self.kernel,
            self.tier,
            version,
            strategy,
            rng=self.rng,
            settle_s=self.scenario.settle_s,
            limit=limit,
            observe=self._observe,
            event=lambda desc: self._event("bounce-error", detail=desc),
        )
        op.start()
        yield wait(op.done)
        return op

    def _acquire_lock(self, who: str):
        """Try to take the shared inhibition lock (bounded wait: a wedged
        optimizer must not stall the deployment forever)."""
        for _ in range(10):
            if self.lock.try_acquire(who):
                return
            yield sleep(max(1.0, self.lock.free_at - self.kernel.now))

    # ------------------------------------------------------------------
    def _run(self):
        sc = self.scenario
        tier = self.tier
        # 1. Pre-grow the fleet (the paper's initial deployment is a
        #    single Tomcat; a deployment story needs a fleet).
        for _ in range(_GROW_BUDGET):
            if len(tier.replicas) >= sc.fleet:
                break
            if not tier.busy:
                tier.grow()
            yield sleep(1.0)
        while tier.busy:
            yield sleep(1.0)
        self._observe()
        if self.kernel.now < sc.start_at_s:
            yield sleep(sc.start_at_s - self.kernel.now)

        # 2. Announce and inhibit the reactive loops.
        self.started_t = self.kernel.now
        self._event(
            "deploy-started",
            scenario=sc.name,
            version=sc.version.label,
            strategy=sc.strategy,
        )
        if self.tracer is not None:
            self.tracer.emit(
                DeployStarted(
                    self.kernel.now,
                    scenario=sc.name,
                    version=sc.version.label,
                    strategy=sc.strategy,
                    tier=tier.tier_name,
                    replicas=len(tier.replicas),
                )
            )
        yield from self._acquire_lock("deploy")

        if sc.canary:
            # 3. Bounce the canary cohort in place and judge it.
            yield from self._bounce(
                sc.version, "downthenup", limit=sc.canary_replicas
            )
            yield sleep(sc.warmup_s)
            verdict = yield from self.canary.measure()
            self.verdict_t = self.kernel.now
            self.canary_metrics = dict(verdict)
            self._event(
                "canary-verdict",
                promoted=verdict["promoted"],
                reason=verdict["reason"],
            )
            verdict_seq = None
            if self.tracer is not None:
                verdict_seq = self.tracer.emit(
                    CanaryVerdict(
                        self.kernel.now,
                        scenario=sc.name,
                        version=sc.version.label,
                        promoted=verdict["promoted"],
                        reason=verdict["reason"],
                        canary_error_rate=verdict["canary_error_rate"],
                        stable_error_rate=verdict["stable_error_rate"],
                        canary_latency_s=verdict["canary_latency_s"],
                        stable_latency_s=verdict["stable_latency_s"],
                    )
                )
            if verdict["promoted"]:
                # 4a. Promote: bounce the rest of the fleet.
                self.verdict = "promoted"
                self.verdict_reason = verdict["reason"]
                yield from self._acquire_lock("deploy-promote")
                yield from self._bounce(sc.version, sc.strategy)
            else:
                # 4b. Roll back: bounce the canaries back to stable.
                self.verdict = "rolled-back"
                self.verdict_reason = verdict["reason"]
                self._event("rollback-triggered", reason=verdict["reason"])
                if self.tracer is not None:
                    self.tracer.emit(
                        RollbackTriggered(
                            self.kernel.now,
                            scenario=sc.name,
                            version=sc.version.label,
                            reason=verdict["reason"],
                            cause=verdict_seq,
                        )
                    )
                yield from self._acquire_lock("deploy-rollback")
                yield from self._bounce(None, "downthenup")
        else:
            # Pure bounce: no canary phase, the whole fleet moves.
            self.verdict_t = self.kernel.now
            self.verdict = "promoted"
            self.verdict_reason = "no-canary"
            yield from self._bounce(sc.version, sc.strategy)

        self.completed_t = self.kernel.now
        self._observe()
        self._event("deploy-completed", verdict=self.verdict)
