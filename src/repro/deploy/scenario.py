"""Declarative deployment scenarios.

A :class:`DeployScenario` is a frozen, picklable value — version, bounce
strategy and canary knobs — so it rides inside
:class:`~repro.jade.system.ExperimentConfig` through the content-addressed
:class:`~repro.runner.cache.ResultCache` and the process-pool
:class:`~repro.runner.parallel.ExperimentRunner` unchanged.  The same
scenario + seed therefore yields a byte-identical deploy scorecard whether
it runs serially, in a pool worker, or resolves from the cache
(test-enforced, like the chaos scorecard byte-identity).

``PRESETS`` holds the named scenarios the CLI, benchmark and CI smoke
use; :func:`deploy_config` packs a scenario into a runnable config
(steady load by default, self-optimization off so the fleet only changes
when the deploy manager moves it).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.deploy.versions import ServerVersion

#: bounce strategies, in increasing order of spare-capacity demand:
#: ``brutal``     — stop every stale replica at once, swap, restart (full
#:                  blackout for one startup; needs no spare node)
#: ``downthenup`` — rolling in-place restart, one replica at a time
#:                  (capacity dips by one; needs no spare node)
#: ``crossover``  — grow one new-version replica, then retire one stale
#:                  replica, repeatedly (capacity never dips; one spare)
#: ``upthendown`` — grow the whole new-version fleet, then retire every
#:                  stale replica (capacity only grows; N spare nodes)
STRATEGIES = ("brutal", "upthendown", "crossover", "downthenup")


@dataclass(frozen=True)
class DeployScenario:
    """One deployment: what to push, how to bounce, how to judge it."""

    name: str
    version: ServerVersion
    strategy: str = "crossover"
    #: application-tier replicas the deploy manager grows to before the
    #: push (the paper's initial deployment is a single Tomcat)
    fleet: int = 3
    #: simulated time at which the deployment begins (late enough that
    #: the pre-push goodput window sits in client steady state)
    start_at_s: float = 180.0
    #: run the canary analysis before fleet-wide promotion?  False = a
    #: pure bounce of the whole fleet (how strategies are compared)
    canary: bool = True
    #: replicas bounced to the new version for the canary phase; the
    #: routed traffic fraction is ``canary_replicas / fleet`` (the load
    #: balancer spreads load uniformly over live replicas)
    canary_replicas: int = 1
    #: settle time after the canary bounce before measurement starts
    warmup_s: float = 15.0
    #: canary decision window (both cohorts measured at the servers)
    window_s: float = 45.0
    #: promotion fails if canary error rate exceeds stable by this much
    max_error_delta: float = 0.05
    #: promotion fails if canary mean latency exceeds stable by this factor
    max_latency_factor: float = 1.5
    #: pause between per-replica bounce steps
    settle_s: float = 2.0

    def __post_init__(self) -> None:
        if not isinstance(self.version, ServerVersion):
            raise TypeError("version must be a ServerVersion")
        if self.strategy not in STRATEGIES:
            raise ValueError(f"unknown strategy {self.strategy!r}")
        if self.fleet < 2:
            raise ValueError("fleet must be >= 2")
        if not 1 <= self.canary_replicas < self.fleet:
            raise ValueError("canary_replicas must be in [1, fleet)")
        if self.start_at_s <= 0.0:
            raise ValueError("start_at_s must be positive")
        if self.warmup_s < 0 or self.window_s <= 0 or self.settle_s < 0:
            raise ValueError("deploy times must be >= 0 (window > 0)")


# ----------------------------------------------------------------------
# Preset scenarios (the CLI's --scenario choices)
# ----------------------------------------------------------------------
def clean_push(strategy: str = "crossover") -> DeployScenario:
    """A performance-neutral push: the canary passes and the fleet is
    bounced to the new version with ``strategy``."""
    return DeployScenario(
        "clean-push", ServerVersion("v2"), strategy=strategy
    )


def bad_push() -> DeployScenario:
    """A regression shipped: the new version quadruples service demand
    and 500s 30 % of requests.  The canary must catch it and roll back
    before the fleet is touched."""
    return DeployScenario(
        "bad-push",
        ServerVersion("v2-bad", demand_factor=4.0, error_rate=0.3),
        strategy="crossover",
    )


def clean_bounce(strategy: str = "crossover") -> DeployScenario:
    """A pure fleet bounce (no canary) of a neutral version — the arm
    used to compare bounce strategies' capacity-in-flight."""
    return DeployScenario(
        "clean-bounce", ServerVersion("v2"), strategy=strategy, canary=False
    )


def flash_crowd() -> DeployScenario:
    """A clean bounce that collides with a workload spike: the client
    population doubles shortly after the bounce begins (wired by
    :func:`deploy_config`)."""
    return DeployScenario(
        "flash-crowd", ServerVersion("v2"), strategy="crossover", canary=False
    )


def crash_mid_bounce() -> DeployScenario:
    """A rolling bounce during which a database replica crashes: the
    self-recovery manager repairs the DB while the deploy manager keeps
    bouncing the app tier (wired by :func:`deploy_config`)."""
    return DeployScenario(
        "crash-mid-bounce",
        ServerVersion("v2"),
        strategy="downthenup",
        canary=False,
    )


PRESETS = {
    "clean-push": clean_push,
    "bad-push": bad_push,
    "clean-bounce": clean_bounce,
    "flash-crowd": flash_crowd,
    "crash-mid-bounce": crash_mid_bounce,
}


def with_strategy(scenario: DeployScenario, strategy: str) -> DeployScenario:
    """The same scenario bounced with a different strategy."""
    return replace(scenario, strategy=strategy)


def deploy_config(
    scenario: DeployScenario,
    seed: int = 1,
    clients: int = 120,
    duration_s: float = 540.0,
    cohort: int = 1,
):
    """Pack a scenario into a runnable :class:`ExperimentConfig`.

    Self-optimization off: the application fleet only changes when the
    deploy manager moves it, which is what the deploy scorecard's
    capacity timeline counts on.  The ``flash-crowd`` and
    ``crash-mid-bounce`` scenarios wire their extra workload spike /
    chaos campaign here, so the whole experiment stays a pure value.
    """
    from repro.jade.system import ExperimentConfig
    from repro.workload.profiles import ConstantProfile, PiecewiseProfile

    profile = ConstantProfile(clients, duration_s)
    chaos = None
    recovery = False
    if scenario.name == "flash-crowd":
        t = scenario.start_at_s
        profile = PiecewiseProfile(
            [(0.0, clients), (t + 10.0, clients * 2), (t + 80.0, clients)],
            duration_s,
        )
    elif scenario.name == "crash-mid-bounce":
        from repro.chaos import faults as F
        from repro.chaos.campaign import ChaosCampaign

        chaos = ChaosCampaign(
            "crash-mid-bounce",
            (F.crash(scenario.start_at_s + 15.0, target="db"),),
        )
        recovery = True
    return ExperimentConfig(
        profile=profile,
        seed=seed,
        managed=False,
        recovery=recovery,
        cohort=cohort,
        pool_nodes=12,
        chaos=chaos,
        deploy=scenario,
    )
