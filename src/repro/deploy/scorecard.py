"""Deployment scorecard.

Turns finished deploy runs into the numbers a zero-downtime story is
told with: pre/post goodput (did the system come back to steady state?),
rollback latency (bad push detected → stable again), capacity-in-flight
(minimum serving replicas, blackout seconds) and SLO violation time over
the bounce window — per seed, then aggregated across seeds with 95 %
confidence intervals.

Everything here is a pure function of :class:`CompletedRun` plain data
(the deploy manager's event/capacity logs and the collector), so the
scorecard of a cached or pool-worker run is byte-identical to a serial
one — :func:`scorecard_json` (shared with the chaos scorecard)
canonicalizes to make that testable.

The bounce-window SLO accounting is *failure-aware*, unlike
:func:`~repro.capacity.cost.slo_violation_time`: a ``brutal`` bounce's
blackout produces fast failures, not slow completions, so a bucket
counts as violating when its mean latency exceeds the SLO **or** any
request failed in it.  Without that, a total blackout would score as
zero violation seconds.
"""

from __future__ import annotations

import math
from typing import Sequence

from repro.chaos.scorecard import _stats, scorecard_json  # noqa: F401 (re-export)


def violation_seconds(
    collector, t0: float, t1: float, slo_latency_s: float, bucket_s: float = 5.0
) -> float:
    """Seconds of [t0, t1) in buckets whose mean latency exceeds the SLO
    or in which at least one request failed (see module docstring)."""
    if t1 <= t0:
        return 0.0
    sums: dict[int, float] = {}
    counts: dict[int, int] = {}
    for t, v in collector.latencies.window(t0, t1):
        b = int((t - t0) // bucket_s)
        sums[b] = sums.get(b, 0.0) + v
        counts[b] = counts.get(b, 0) + 1
    bad = {b for b in sums if sums[b] / counts[b] > slo_latency_s}
    for t, _w in collector.failures.window(t0, t1):
        bad.add(int((t - t0) // bucket_s))
    return len(bad) * bucket_s


def _serving_steps(capacity, t0: float, t1: float) -> list[tuple[float, float, int]]:
    """The capacity timeline as (start, end, serving) steps clipped to
    [t0, t1]."""
    if t1 <= t0:
        return []
    serving = None
    start = t0
    steps: list[tuple[float, float, int]] = []
    for t, s, _total in capacity:
        if t <= t0:
            serving = s
            continue
        if t >= t1:
            break
        if serving is not None:
            steps.append((start, t, serving))
        start = t
        serving = s
    if serving is not None:
        steps.append((start, t1, serving))
    return steps


def score_run(run, slo_latency_s: float = 0.5) -> dict:
    """Per-run scorecard of one deploy execution (a :class:`CompletedRun`
    — or any object exposing ``config``/``collector``/``deploy``)."""
    dep = run.deploy
    if dep is None:
        raise ValueError("run has no deploy scenario attached")
    col = run.collector
    t_start, t_done = dep.started_t, dep.completed_t
    finished = t_start == t_start and t_done == t_done

    # Windows wide enough (90 s / 150 s) that closed-loop client noise
    # stays well inside the 5 % goodput-recovery gate per seed.
    pre_goodput = (
        col.throughput(max(0.0, t_start - 90.0), t_start) if finished else float("nan")
    )
    post_goodput = (
        col.throughput(t_done + 10.0, t_done + 160.0) if finished else float("nan")
    )
    goodput_ratio = (
        post_goodput / pre_goodput
        if finished and pre_goodput > 0.0
        else float("nan")
    )

    steps = _serving_steps(dep.capacity, t_start, t_done) if finished else []
    min_serving = min((s for _a, _b, s in steps), default=float("nan"))
    blackout_s = math.fsum(b - a for a, b, s in steps if s == 0)

    return {
        "seed": run.config.seed,
        "scenario": dep.scenario,
        "strategy": dep.strategy,
        "version": dep.version,
        "verdict": dep.verdict,
        "reason": dep.reason,
        "deploy_duration_s": (t_done - t_start) if finished else float("nan"),
        "rollback_latency_s": (
            (t_done - t_start)
            if finished and dep.verdict == "rolled-back"
            else float("nan")
        ),
        "pre_goodput_rps": pre_goodput,
        "post_goodput_rps": post_goodput,
        "goodput_ratio": goodput_ratio,
        "min_serving": min_serving,
        "blackout_s": blackout_s if finished else float("nan"),
        "bounce_slo_violation_s": (
            violation_seconds(col, t_start, t_done, slo_latency_s)
            if finished
            else float("nan")
        ),
        "canary_error_rate": dep.canary.get("canary_error_rate", float("nan")),
        "stable_error_rate": dep.canary.get("stable_error_rate", float("nan")),
        "completed_requests": col.completed_requests,
        "failed_requests": col.failed_requests,
    }


#: per-seed metrics aggregated with mean/ci95 across seeds
AGGREGATED = (
    "deploy_duration_s",
    "rollback_latency_s",
    "goodput_ratio",
    "pre_goodput_rps",
    "post_goodput_rps",
    "min_serving",
    "blackout_s",
    "bounce_slo_violation_s",
)


def score_scenario(scenario, runs: Sequence, slo_latency_s: float = 0.5) -> dict:
    """Multi-seed scorecard: per-seed rows plus mean/ci95 aggregates."""
    per_seed = [score_run(r, slo_latency_s) for r in runs]
    aggregate = {
        metric: _stats([row[metric] for row in per_seed])
        for metric in AGGREGATED
    }
    return {
        "scenario": scenario.name,
        "strategy": scenario.strategy,
        "version": scenario.version.label,
        "canary": scenario.canary,
        "slo_latency_s": slo_latency_s,
        "seeds": [row["seed"] for row in per_seed],
        "verdicts": [row["verdict"] for row in per_seed],
        "per_seed": per_seed,
        "aggregate": aggregate,
    }


def render_scorecard(scorecard: dict) -> list[str]:
    """Human-readable scorecard block for the CLI."""
    agg = scorecard["aggregate"]

    def fmt(metric: str, scale: float = 1.0, unit: str = "") -> str:
        s = agg[metric]
        if s["n"] == 0 or s["mean"] != s["mean"]:
            return "n/a"
        return f"{s['mean'] * scale:.2f} ± {s['ci95'] * scale:.2f}{unit}"

    verdicts = scorecard["verdicts"]
    lines = [
        f"Deploy '{scorecard['scenario']}' -> {scorecard['version']} "
        f"({scorecard['strategy']}"
        + (", canary" if scorecard["canary"] else ", no canary")
        + f"; seeds: {', '.join(str(s) for s in scorecard['seeds'])})",
        "  verdicts            : "
        + ", ".join(str(v) for v in verdicts),
        f"  deploy duration     : {fmt('deploy_duration_s', unit=' s')}",
        f"  rollback latency    : {fmt('rollback_latency_s', unit=' s')}",
        f"  goodput post/pre    : {fmt('goodput_ratio', scale=100.0, unit=' %')}",
        f"  min serving replicas: {fmt('min_serving')}",
        f"  blackout            : {fmt('blackout_s', unit=' s')}",
        f"  SLO violation       : {fmt('bounce_slo_violation_s', unit=' s')} "
        f"(SLO {scorecard['slo_latency_s'] * 1000:.0f} ms, bounce window)",
    ]
    return lines
