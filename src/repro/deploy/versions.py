"""Versioned server configurations.

A :class:`ServerVersion` is a frozen, picklable description of one pushed
server configuration — a pure value, like
:class:`~repro.chaos.faults.FaultSpec`, so scenarios carrying one flow
through ``describe_config`` and the process-pool runner unchanged.

The performance model of a push reuses the chaos degradation hooks: a
version with ``demand_factor > 1`` makes every request on that replica
cost proportionally more CPU (implemented as ``node.degrade(1 /
demand_factor)`` — the same mechanism as a fail-slow fault, seen from the
opposite direction: the *software* got slower, not the hardware), and a
version with ``error_rate > 0`` makes the server 500 that fraction of
admitted requests (``LegacyServer.fault_rate``).  The stable baseline is
the absence of a version: ``ReplicaRecord.version is None``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional


@dataclass(frozen=True)
class ServerVersion:
    """One pushed server configuration and its behavioural deltas."""

    label: str
    #: multiplier on the effective service demand of every request served
    #: by a replica running this version (1.0 = performance-neutral push)
    demand_factor: float = 1.0
    #: probability an admitted request fails with a 500 (a bad push's
    #: servlet bug); 0.0 = clean push
    error_rate: float = 0.0

    def __post_init__(self) -> None:
        if not self.label:
            raise ValueError("version label must be non-empty")
        if self.demand_factor <= 0.0:
            raise ValueError("demand_factor must be positive")
        if not 0.0 <= self.error_rate < 1.0:
            raise ValueError("error_rate must be in [0, 1)")


def version_label(version: Optional[ServerVersion]) -> Optional[str]:
    """The label of ``version``, or None for the stable baseline."""
    return None if version is None else version.label


def apply_version(record, version: ServerVersion, rng=None) -> None:
    """Install ``version``'s effects on a (stopped or running) replica.

    ``rng`` supplies the per-request error draws (the deploy subsystem's
    seeded stream); without one an ``error_rate > 0`` version raises, so
    a misconfigured wiring fails loudly instead of silently shipping a
    clean push.
    """
    if version.demand_factor != 1.0:
        record.node.degrade(1.0 / version.demand_factor)
    else:
        record.node.restore()
    server = getattr(record.component.content, "server", None)
    if server is not None:
        server.version_label = version.label
        server.fault_rate = version.error_rate
        if version.error_rate > 0.0:
            if rng is None:
                raise ValueError(
                    f"version {version.label!r} has error_rate > 0 but no rng"
                )
            server.fault_rng = lambda: float(rng.random())
        else:
            server.fault_rng = None
    record.version = version


def clear_version(record) -> None:
    """Roll a replica back to the stable baseline (undo every effect)."""
    record.node.restore()
    server = getattr(record.component.content, "server", None)
    if server is not None:
        server.version_label = None
        server.fault_rate = 0.0
        server.fault_rng = None
    record.version = None
