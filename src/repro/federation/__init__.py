"""Sharded multi-cluster federation: N regions, one kernel each.

The paper's Jade manager supervises a single cluster; its sequels push
toward grid-scale, multi-site deployments.  This package shards the
simulation the same way a real control plane would shard the system:
each *region* is a full :class:`~repro.jade.system.ManagedSystem` — its
own kernel, RNG streams, workload, and control loops — and regions
interact **only** through typed messages exchanged at epoch barriers:

* regions advance in lockstep epochs (one adjust period by default);
* at each barrier every region flushes a :class:`RegionReport`
  (latency/capacity observed over the epoch);
* the coordinator's :class:`GlobalLoadBalancer` turns the reports into
  :class:`WeightUpdate` routing decisions (weights, spilled demand,
  evacuations), delivered before the next epoch.

Because a region's trajectory depends only on (its config, the inbound
messages per epoch) and routing is a pure function of the sorted
reports, serial and process-parallel execution are byte-identical per
region — the repo's parallel == serial discipline extended to
federations.  In parallel mode each region owns a persistent worker
process (one core per region), so wall-clock approaches
``max(region)`` instead of ``sum(regions)``.
"""

from repro.federation.messages import RegionReport, WeightUpdate
from repro.federation.routing import GlobalLoadBalancer, RoutedProfile
from repro.federation.spec import (
    PRESETS,
    FederationSpec,
    RegionSpec,
    region_seed,
)

__all__ = [
    "FederationSpec",
    "RegionSpec",
    "RegionReport",
    "WeightUpdate",
    "GlobalLoadBalancer",
    "RoutedProfile",
    "PRESETS",
    "region_seed",
]
