"""The ``federation`` section of BENCH_engine.json.

Headline: a 4-region federated Fig. 9 ramp runs at **near-linear
speedup** over executing the same 4 regions serially, with serial ==
parallel **byte-identical** per-region scorecards.

Speedup accounting (honest on any machine): the section records

* ``serial_elapsed_s`` / ``parallel_elapsed_s`` — measured wall-clock of
  both modes on the current machine, plus ``cores``;
* ``critical_path_s`` — the schedule-independent parallel cost from
  per-epoch CPU busy time measured inside each region's ``run_epoch``
  (busiest region per epoch + widest build/finish + coordinator
  routing);
* ``speedup`` = serial_elapsed / critical_path — the wall-clock ratio a
  machine with >= N cores achieves, deterministic by construction;
* ``speedup_measured`` = serial_elapsed / parallel_elapsed — what this
  machine actually got (≈1x on a single-core runner, approaching
  ``speedup`` as cores >= regions).

The committed gate asserts ``byte_identical`` and ``speedup >= 3.0`` on
4 regions.  The section also runs the two cross-region scenarios — a
2-region evacuation (the global LB drains the hit region and spills its
projected demand to the survivor) and a 3-region follow-the-sun cycle
(the demand peak walks around the federation) — and snapshots the
shared process pool's reuse counters (the spawn-overhead satellite).
"""

from __future__ import annotations

import os
import time

from repro.federation.coordinator import run_federation
from repro.federation.spec import evacuation, follow_the_sun, global_ramp
from repro.runner.cache import ResultCache
from repro.runner.parallel import pool_stats

#: committed-gate floors (4-region full section)
MIN_SPEEDUP = 3.0
#: smoke floor (2-region CI gate; shared runners jitter the per-epoch
#: busy maxima, so the floor sits well under the ~1.6x typically seen)
SMOKE_MIN_SPEEDUP = 1.3


# ----------------------------------------------------------------------
def _speedup_block(spec, use_cache: bool) -> dict:
    cache = ResultCache() if use_cache else None
    t0 = time.perf_counter()
    serial = run_federation(spec, parallel=False, cache=None)
    serial_elapsed = time.perf_counter() - t0
    t0 = time.perf_counter()
    parallel = run_federation(spec, parallel=True, cache=cache)
    parallel_elapsed = time.perf_counter() - t0
    critical_path = serial.critical_path_s()
    region_busy = {
        name: {
            "build_s": r.build_s,
            "epochs_busy_s": sum(r.epoch_busy_s),
            "finish_s": r.finish_s,
        }
        for name, r in sorted(serial.regions.items())
    }
    return {
        "regions": len(spec.regions),
        "epochs": spec.epochs,
        "epoch_s": spec.epoch_s,
        "seed": spec.seed,
        "serial_elapsed_s": serial_elapsed,
        "parallel_elapsed_s": parallel_elapsed,
        "parallel_mode": parallel.mode,
        "cores": os.cpu_count(),
        "critical_path_s": critical_path,
        "coordinator_busy_s": serial.coordinator_busy_s,
        "speedup": serial_elapsed / critical_path,
        "speedup_measured": serial_elapsed / parallel_elapsed,
        "byte_identical": (
            serial.scorecards_json() == parallel.scorecards_json()
        ),
        "updates_routed": serial.updates_routed,
        "region_busy": region_busy,
        "global": serial.summary(),
    }


def _evacuation_block(scale: float, seed: int) -> dict:
    spec = evacuation(regions=2, scale=scale, seed=seed)
    result = run_federation(spec, parallel=False)
    hit = spec.regions[0].name
    survivor = spec.regions[1].name
    hit_updates = result.regions[hit].updates_applied
    survivor_updates = result.regions[survivor].updates_applied
    drained = any(
        u.weight == 0.0 and u.reason == "evacuation" for u in hit_updates
    )
    spill_peak = max(
        (u.spill_clients for u in survivor_updates), default=0
    )
    hit_reports = result.regions[hit].reports
    drained_clients = hit_reports[-1].active_clients if hit_reports else -1
    return {
        "hit_region": hit,
        "survivor": survivor,
        "evacuate_at_s": spec.regions[0].evacuate_at_s,
        "drained": drained,
        "hit_final_active_clients": drained_clients,
        "survivor_spill_peak": spill_peak,
        "survivor_completed": result.regions[survivor].run.summary()[
            "completed"
        ],
        "global": result.summary(),
    }


def _follow_the_sun_block(scale: float, seed: int) -> dict:
    spec = follow_the_sun(regions=3, scale=scale, seed=seed)
    result = run_federation(spec, parallel=False)
    peak_epochs = {}
    for name, region in sorted(result.regions.items()):
        actives = [r.active_clients for r in region.reports]
        peak_epochs[name] = int(max(range(len(actives)), key=actives.__getitem__))
    return {
        "regions": len(spec.regions),
        "peak_epoch_by_region": peak_epochs,
        "distinct_peaks": len(set(peak_epochs.values())),
        "global": result.summary(),
    }


# ----------------------------------------------------------------------
def run_federation_section(
    seed: int = 1,
    scale: float = 0.3,
    regions: int = 4,
    use_cache: bool = False,
    smoke: bool = False,
    parallel: bool = True,  # accepted for registry symmetry; both modes
) -> dict:  # always run (the comparison *is* the benchmark)
    """Build the BENCH_engine ``federation`` block."""
    if smoke:
        regions, scale = 2, min(scale, 0.1)
    spec = global_ramp(regions=regions, scale=scale, seed=seed)
    section = _speedup_block(spec, use_cache)
    section["scale"] = scale
    section["smoke"] = smoke
    section["evacuation"] = _evacuation_block(min(scale, 0.2), seed)
    section["follow_the_sun"] = _follow_the_sun_block(min(scale, 0.2), seed)
    section["pool"] = pool_stats()
    return section


def render_section(section: dict) -> str:
    lines = [
        "federation: "
        f"{section['regions']} regions x {section['epochs']} epochs "
        f"(epoch {section['epoch_s']:.0f}s, seed {section['seed']})",
        f"  serial   {section['serial_elapsed_s']:.2f}s wall",
        f"  parallel {section['parallel_elapsed_s']:.2f}s wall "
        f"({section['cores']} core(s), mode {section['parallel_mode']})",
        f"  critical path {section['critical_path_s']:.2f}s "
        f"-> speedup {section['speedup']:.2f}x on >= "
        f"{section['regions']} cores "
        f"(measured here: {section['speedup_measured']:.2f}x)",
        f"  byte-identical scorecards: {section['byte_identical']}",
        f"  evacuation: drained={section['evacuation']['drained']} "
        f"spill_peak={section['evacuation']['survivor_spill_peak']} "
        f"hit_final_clients="
        f"{section['evacuation']['hit_final_active_clients']}",
        f"  follow-the-sun: peak epochs "
        f"{section['follow_the_sun']['peak_epoch_by_region']}",
        f"  shared pool: {section['pool']['created']} created, "
        f"{section['pool']['reused']} reused "
        f"(~{section['pool']['est_spawn_saved_s'] * 1e3:.0f} ms spawn "
        "saved)",
    ]
    return "\n".join(lines)


def check_section(section: dict) -> None:
    """The federation gate (committed report and CI smoke)."""
    floor = SMOKE_MIN_SPEEDUP if section["smoke"] else MIN_SPEEDUP
    assert section["byte_identical"] is True, (
        "serial and parallel federation scorecards diverged"
    )
    assert section["speedup"] >= floor, (
        f"critical-path speedup {section['speedup']:.2f}x below the "
        f"{floor:.1f}x floor"
    )
    evac = section["evacuation"]
    assert evac["drained"] is True, "hit region was never evacuated"
    assert evac["hit_final_active_clients"] == 0, (
        "evacuated region still had active clients at the end"
    )
    assert evac["survivor_spill_peak"] > 0, (
        "survivor absorbed no spilled demand"
    )
    fts = section["follow_the_sun"]
    assert fts["distinct_peaks"] >= 2, (
        "follow-the-sun peaks did not move across regions"
    )
