"""The federation coordinator: lockstep epochs, serial or one process
per region.

Both execution modes run the *same* protocol::

    start every region
    for each epoch k:
        deliver epoch-k weight updates (sorted, deterministic order)
        every region advances one epoch, flushes a RegionReport
        the GlobalLoadBalancer routes the sorted reports -> k+1 updates
    every region drains its tail and distills a RegionResult

A region's trajectory therefore depends only on (its config, the
inbound updates per epoch), and the updates are a pure function of the
sorted reports — so the serial loop and the process-parallel loop are
byte-identical per region (``RegionResult.scorecard_json``,
test-enforced).  Parallelism changes only who calls ``run_epoch``: in
parallel mode each region owns a **persistent worker process** for the
whole run (state lives worker-side; only frozen messages cross the
pipe), so N balanced regions approach ``1/N`` of the serial wall-clock
on N cores.

Because the sandbox the committed benchmark runs on may have fewer
cores than regions, :meth:`FederationResult.critical_path_s` also
computes the schedule-independent parallel cost from per-epoch CPU busy
time measured inside ``run_epoch``: ``max(region build) + Σ_k
max_region(busy_k) + max(region finish) + coordinator routing``.  The
bench records the measured wall-clock of both modes *and* this critical
path, which is what a ≥N-core machine achieves.
"""

from __future__ import annotations

import multiprocessing
import os
import time
from pathlib import Path
from typing import Optional

from repro.federation.messages import WeightUpdate, ordered
from repro.federation.region import RegionResult, RegionRuntime
from repro.federation.routing import GlobalLoadBalancer
from repro.federation.spec import FederationSpec
from repro.runner.cache import ResultCache


class FederationResult:
    """Picklable outcome of one federated run (all regions + routing)."""

    __slots__ = (
        "config",
        "mode",
        "regions",
        "updates_routed",
        "elapsed_s",
        "coordinator_busy_s",
        "events_processed",
        "wall_time_s",
        "market",
    )

    def __init__(
        self,
        config: FederationSpec,
        mode: str,
        regions: dict[str, RegionResult],
        updates_routed: int,
        elapsed_s: float,
        coordinator_busy_s: float,
    ) -> None:
        self.config = config
        self.mode = mode
        self.regions = regions
        self.updates_routed = updates_routed
        self.elapsed_s = elapsed_s
        self.coordinator_busy_s = coordinator_busy_s
        self.events_processed = sum(
            r.run.events_processed for r in regions.values()
        )
        self.wall_time_s = elapsed_s
        self.market = None  # duck-types CompletedRun for the sweep rows

    # ------------------------------------------------------------------
    def scorecards_json(self) -> dict[str, str]:
        """Per-region canonical scorecards (the byte-identity surface)."""
        return {
            name: result.scorecard_json()
            for name, result in sorted(self.regions.items())
        }

    def critical_path_s(self) -> float:
        """Schedule-independent parallel cost: the busiest region per
        epoch, plus the widest build/finish, plus routing."""
        results = list(self.regions.values())
        path = max(r.build_s for r in results)
        epochs = max(len(r.epoch_busy_s) for r in results)
        for k in range(epochs):
            path += max(
                r.epoch_busy_s[k] if k < len(r.epoch_busy_s) else 0.0
                for r in results
            )
        path += max(r.finish_s for r in results)
        return path + self.coordinator_busy_s

    def summary(self) -> dict[str, float]:
        """Global rollup in the standard run-summary schema (sums for
        counters, completion-weighted means for latency, max replicas)."""
        summaries = [r.run.summary() for r in self.regions.values()]
        completed = sum(s["completed"] for s in summaries)
        failed = sum(s["failed"] for s in summaries)

        def weighted(field: str) -> float:
            if completed <= 0:
                return 0.0
            return (
                sum(s[field] * s["completed"] for s in summaries) / completed
            )

        n = len(summaries)
        return {
            "completed": completed,
            "failed": failed,
            "throughput_rps": sum(s["throughput_rps"] for s in summaries),
            "latency_mean_ms": weighted("latency_mean_ms"),
            "latency_p95_ms": weighted("latency_p95_ms"),
            "app_replicas_max": max(s["app_replicas_max"] for s in summaries),
            "db_replicas_max": max(s["db_replicas_max"] for s in summaries),
            "node_cpu_mean": sum(s["node_cpu_mean"] for s in summaries) / n,
            "node_mem_mean": sum(s["node_mem_mean"] for s in summaries) / n,
        }

    @property
    def fleet_cost(self) -> float:
        """Uniform-pool cost summed over the regional pools."""
        from repro.market.costs import uniform_fleet_cost

        return sum(
            uniform_fleet_cost(r.run.config) for r in self.regions.values()
        )


# ----------------------------------------------------------------------
# The epoch protocol, shared by both modes
# ----------------------------------------------------------------------
def _make_balancer(spec: FederationSpec) -> GlobalLoadBalancer:
    return GlobalLoadBalancer(
        regions=[r.name for r in spec.regions],
        adaptive=spec.adaptive_routing,
        min_weight=spec.min_weight,
        max_weight=spec.max_weight,
        gain=spec.routing_gain,
        latency_floor_s=spec.latency_floor_s,
        evacuate_at_s={
            r.name: r.evacuate_at_s
            for r in spec.regions
            if r.evacuate_at_s is not None
        },
    )


def _trace_path(trace_dir: Optional[str], name: str) -> Optional[str]:
    if trace_dir is None:
        return None
    path = Path(trace_dir)
    path.mkdir(parents=True, exist_ok=True)
    return str(path / f"{name}.jsonl")


def _run_serial(
    spec: FederationSpec, trace_dir: Optional[str]
) -> FederationResult:
    t_wall = time.perf_counter()
    runtimes = [
        RegionRuntime(spec, region, _trace_path(trace_dir, region.name))
        for region in spec.regions
    ]
    for runtime in runtimes:
        runtime.start()
    balancer = _make_balancer(spec)
    base_profiles = {r.name: r.profile for r in spec.regions}
    pending: list[WeightUpdate] = []
    coordinator_busy = 0.0
    for epoch in range(spec.epochs):
        reports = {}
        for runtime in runtimes:
            runtime.apply(pending)
            report, _busy = runtime.run_epoch(epoch)
            reports[runtime.name] = report
        if epoch + 1 < spec.epochs:
            t0 = time.process_time()
            mid = min((epoch + 1.5) * spec.epoch_s, spec.horizon_s)
            pending = ordered(
                balancer.route(epoch, reports, base_profiles, mid)
            )
            coordinator_busy += time.process_time() - t0
    results = {rt.name: rt.finish_result() for rt in runtimes}
    return FederationResult(
        config=spec,
        mode="serial",
        regions=results,
        updates_routed=balancer.updates_issued,
        elapsed_s=time.perf_counter() - t_wall,
        coordinator_busy_s=coordinator_busy,
    )


# ----------------------------------------------------------------------
# Parallel mode: one persistent worker process per region
# ----------------------------------------------------------------------
def _region_worker(conn, spec, region, trace_jsonl) -> None:
    """Worker entry point (module-level: picklable under spawn).  Owns
    the region for the whole run; only frozen messages cross the pipe."""
    os.environ["REPRO_POOL_WORKER"] = "1"  # nested fan-outs stay in-process
    try:
        runtime = RegionRuntime(spec, region, trace_jsonl)
        runtime.start()
        conn.send(("ready", runtime.build_s))
        while True:
            msg = conn.recv()
            if msg[0] == "epoch":
                _, epoch, updates = msg
                runtime.apply(updates)
                report, busy = runtime.run_epoch(epoch)
                conn.send(("report", report, busy))
            elif msg[0] == "finish":
                conn.send(("result", runtime.finish_result()))
                return
            else:  # pragma: no cover - protocol guard
                raise RuntimeError(f"unknown message {msg[0]!r}")
    except BaseException as exc:  # surface the crash to the coordinator
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
        raise
    finally:
        conn.close()


def _recv(conn, name: str):
    msg = conn.recv()
    if msg[0] == "error":
        raise RuntimeError(f"region {name} worker failed: {msg[1]}")
    return msg


def _mp_context():
    try:
        return multiprocessing.get_context("fork")
    except ValueError:  # pragma: no cover - non-fork platforms
        return multiprocessing.get_context()


def _run_parallel(
    spec: FederationSpec, trace_dir: Optional[str]
) -> FederationResult:
    ctx = _mp_context()
    t_wall = time.perf_counter()
    workers = []
    for region in spec.regions:
        parent_conn, child_conn = ctx.Pipe()
        proc = ctx.Process(
            target=_region_worker,
            args=(
                child_conn,
                spec,
                region,
                _trace_path(trace_dir, region.name),
            ),
            daemon=True,
            name=f"region-{region.name}",
        )
        proc.start()
        child_conn.close()
        workers.append((region.name, proc, parent_conn))
    try:
        for name, _proc, conn in workers:
            _recv(conn, name)  # ("ready", build_s)
        balancer = _make_balancer(spec)
        base_profiles = {r.name: r.profile for r in spec.regions}
        pending: list[WeightUpdate] = []
        coordinator_busy = 0.0
        for epoch in range(spec.epochs):
            for _name, _proc, conn in workers:
                conn.send(("epoch", epoch, pending))
            reports = {}
            for name, _proc, conn in workers:  # regions compute in parallel
                _tag, report, _busy = _recv(conn, name)
                reports[name] = report
            if epoch + 1 < spec.epochs:
                t0 = time.process_time()
                mid = min((epoch + 1.5) * spec.epoch_s, spec.horizon_s)
                pending = ordered(
                    balancer.route(epoch, reports, base_profiles, mid)
                )
                coordinator_busy += time.process_time() - t0
        results = {}
        for _name, _proc, conn in workers:
            conn.send(("finish",))
        for name, _proc, conn in workers:
            _tag, result = _recv(conn, name)
            results[name] = result
        for _name, proc, conn in workers:
            conn.close()
            proc.join(timeout=30.0)
    except BaseException:
        for _name, proc, _conn in workers:
            if proc.is_alive():
                proc.terminate()
        raise
    return FederationResult(
        config=spec,
        mode="parallel",
        regions=results,
        updates_routed=balancer.updates_issued,
        elapsed_s=time.perf_counter() - t_wall,
        coordinator_busy_s=coordinator_busy,
    )


# ----------------------------------------------------------------------
def run_federation(
    spec: FederationSpec,
    parallel: bool = True,
    cache: Optional[ResultCache] = None,
    trace_dir: Optional[str] = None,
) -> FederationResult:
    """Run a federation (cache-aware entry point).

    ``parallel`` picks the persistent-worker mode; results are
    byte-identical either way, so the cache is keyed on the spec alone
    (plus its :meth:`~FederationSpec.topology`, via the cache's key
    derivation).  Tracing bypasses the cache — trace sinks are a side
    effect a cache hit would skip.
    """
    key = None
    if cache is not None and trace_dir is None:
        key = cache.key_for(spec)
        hit = cache.load(key)
        if hit is not None:
            return hit
    if parallel and len(spec.regions) >= 2 and not os.environ.get(
        "REPRO_RUNNER_SERIAL"
    ):
        result = _run_parallel(spec, trace_dir)
    else:
        result = _run_serial(spec, trace_dir)
    if key is not None and cache is not None:
        cache.store(key, result, config=spec)
    return result
