"""Typed cross-region channel messages.

The only way state crosses a region boundary is one of these frozen,
picklable dataclasses, flushed at an epoch barrier and routed by the
coordinator.  Determinism rests on two properties enforced here:

* messages carry the epoch they belong to, so delivery order within an
  epoch is a pure sort — :func:`ordered` sorts by (epoch, origin region
  name, type name) and the coordinator always applies that order;
* every field is a value (no object references), so pickling a message
  to a worker process preserves it bit-for-bit.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class RegionReport:
    """What a region tells the coordinator at an epoch barrier: demand,
    capacity, and the latency it observed over the epoch window."""

    epoch: int
    region: str
    t: float  #: simulated time of the barrier
    active_clients: int
    app_replicas: int
    db_replicas: int
    free_nodes: int
    completed: int  #: requests completed during the epoch
    failed: int  #: requests failed during the epoch
    latency_mean_s: float  #: mean latency over the epoch (0 if idle)
    latency_p95_s: float  #: p95 latency over the epoch (0 if idle)
    available: bool = True  #: False once the region is evacuated


@dataclass(frozen=True)
class WeightUpdate:
    """A routing decision for one region, effective at epoch ``epoch``:
    scale the region's base demand by ``weight`` and add
    ``spill_clients`` redirected from evacuated regions."""

    epoch: int
    region: str
    weight: float
    spill_clients: int = 0
    reason: str = "routing"  #: "routing" | "evacuation"


def ordered(messages):
    """Deterministic delivery order: (epoch, origin, type name).

    Regions may finish an epoch in any wall-clock order in parallel
    mode; sorting before delivery makes the routed schedule identical
    to the serial one.
    """
    return sorted(
        messages, key=lambda m: (m.epoch, m.region, type(m).__name__)
    )
