"""One region of a federation: a full ManagedSystem driven epoch by epoch.

:class:`RegionRuntime` owns the region's :class:`ManagedSystem` and
walks it through the epoch protocol the coordinator speaks:

* :meth:`start` — build managers, start the emulator (the lifecycle
  split on :class:`~repro.jade.system.ManagedSystem` this PR adds);
* :meth:`apply` — absorb the inbound :class:`WeightUpdate` at a barrier
  (the only mutation a region ever receives from outside);
* :meth:`run_epoch` — advance the kernel one epoch and flush the
  outbound :class:`RegionReport` (latency/capacity over the window);
* :meth:`finish_result` — drain the tail and distill a picklable
  :class:`RegionResult`.

``run_epoch`` measures its own CPU busy time (``time.process_time``),
so serial and parallel execution report the same per-epoch cost model
and the bench's critical-path accounting is mode-independent.
"""

from __future__ import annotations

import dataclasses
import json
import time
from typing import Optional

import numpy as np

from repro.federation.messages import RegionReport, WeightUpdate
from repro.federation.spec import FederationSpec, RegionSpec, build_region_config
from repro.runner.results import CompletedRun


class RegionResult:
    """Everything the analysis reads from one finished region (picklable:
    rides worker pipes and the result cache)."""

    __slots__ = (
        "name",
        "run",
        "reports",
        "updates_applied",
        "epoch_busy_s",
        "build_s",
        "finish_s",
    )

    def __init__(
        self,
        name: str,
        run: CompletedRun,
        reports: list[RegionReport],
        updates_applied: list[WeightUpdate],
        epoch_busy_s: list[float],
        build_s: float,
        finish_s: float,
    ) -> None:
        self.name = name
        self.run = run
        self.reports = reports
        self.updates_applied = updates_applied
        self.epoch_busy_s = epoch_busy_s
        self.build_s = build_s
        self.finish_s = finish_s

    # ------------------------------------------------------------------
    def scorecard(self) -> dict:
        """Simulation-only outcome (no wall-clock), the byte-identity
        surface: serial and parallel runs must render this identically."""
        return {
            "region": self.name,
            "seed": self.run.config.seed,
            "summary": self.run.summary(),
            "events_processed": self.run.events_processed,
            "reports": [dataclasses.asdict(r) for r in self.reports],
            "updates": [dataclasses.asdict(u) for u in self.updates_applied],
        }

    def scorecard_json(self) -> str:
        """Canonical rendering (sorted keys, fixed separators) — compared
        byte-for-byte across execution modes by the tests."""
        return json.dumps(
            self.scorecard(), sort_keys=True, separators=(",", ":")
        )


class RegionRuntime:
    """The live, in-process side of one region (never crosses a pipe)."""

    def __init__(
        self,
        fed: FederationSpec,
        spec: RegionSpec,
        trace_jsonl: Optional[str] = None,
    ) -> None:
        from repro.jade.system import ManagedSystem

        self.fed = fed
        self.spec = spec
        self.name = spec.name
        t0 = time.process_time()
        self.config = build_region_config(fed, spec, trace_jsonl=trace_jsonl)
        self.system = ManagedSystem(self.config)
        if self.system.tracer is not None:
            self.system.tracer.region = self.name
        self.build_s = time.process_time() - t0
        self.profile = self.config.profile  # RoutedProfile
        self._wall0 = time.perf_counter()
        self._lat_idx = 0
        self._completed0 = 0
        self._failed0 = 0
        self.reports: list[RegionReport] = []
        self.updates_applied: list[WeightUpdate] = []
        self.epoch_busy_s: list[float] = []
        self.finish_s = 0.0

    # ------------------------------------------------------------------
    def start(self) -> None:
        t0 = time.process_time()
        self.system.start_all()
        self.build_s += time.process_time() - t0

    def apply(self, updates: list[WeightUpdate]) -> None:
        """Absorb this region's routing decision at the barrier (called
        between ``advance`` calls, so the workload change is atomic at
        the epoch boundary)."""
        for update in updates:
            if update.region != self.name:
                continue
            self.profile.apply(update)
            self.updates_applied.append(update)
            if self.system.tracer is not None:
                from repro.obs.events import EpochRouted

                self.system.tracer.emit(
                    EpochRouted(
                        self.system.kernel.now,
                        region=self.name,
                        epoch=update.epoch,
                        weight=update.weight,
                        spill_clients=update.spill_clients,
                        reason=update.reason,
                    )
                )

    def run_epoch(self, epoch: int) -> tuple[RegionReport, float]:
        """Advance one epoch; returns (outbound report, CPU busy s)."""
        t0 = time.process_time()
        end = min((epoch + 1) * self.fed.epoch_s, self.fed.horizon_s)
        self.system.advance(end)
        report = self._report(epoch, end)
        busy = time.process_time() - t0
        self.epoch_busy_s.append(busy)
        self.reports.append(report)
        return report, busy

    def _report(self, epoch: int, t: float) -> RegionReport:
        system = self.system
        col = system.collector
        window = col.latencies.tail_since(self._lat_idx)
        self._lat_idx = len(col.latencies)
        if window:
            values = np.asarray([v for _, v in window], dtype=np.float64)
            lat_mean = float(values.mean())
            lat_p95 = float(np.percentile(values, 95.0))
        else:
            lat_mean = lat_p95 = 0.0
        completed = col.completed_requests - self._completed0
        failed = col.failed_requests - self._failed0
        self._completed0 = col.completed_requests
        self._failed0 = col.failed_requests
        return RegionReport(
            epoch=epoch,
            region=self.name,
            t=t,
            active_clients=system.emulator.active_clients,
            app_replicas=len(system.app_tier.replicas),
            db_replicas=len(system.db_tier.replicas),
            free_nodes=system.cluster.free_count,
            completed=completed,
            failed=failed,
            latency_mean_s=lat_mean,
            latency_p95_s=lat_p95,
        )

    def finish_result(self) -> RegionResult:
        """Drain the tail, stop the managers, distill the result."""
        t0 = time.process_time()
        self.system.finish()
        self.finish_s = time.process_time() - t0
        run = CompletedRun.from_system(
            self.system, time.perf_counter() - self._wall0
        )
        return RegionResult(
            name=self.name,
            run=run,
            reports=self.reports,
            updates_applied=self.updates_applied,
            epoch_busy_s=self.epoch_busy_s,
            build_s=self.build_s,
            finish_s=self.finish_s,
        )
