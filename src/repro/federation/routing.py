"""Global load balancing: routed demand + the weight policy.

:class:`RoutedProfile` is the demand-side half of the cross-region
channel: it wraps a region's base :class:`WorkloadProfile` and exposes
the same ``clients_at`` interface the client emulator polls, scaled by
a routing ``weight`` and offset by ``spill_clients`` redirected from
evacuated regions.  Both knobs change **only** at epoch barriers (the
coordinator applies :class:`~repro.federation.messages.WeightUpdate`
between ``advance`` calls), so within an epoch a region's workload is a
pure function of its config — the invariant that makes serial and
parallel federation byte-identical.

:class:`GlobalLoadBalancer` is the policy: a pure, deterministic
function from one epoch's sorted :class:`RegionReport` set to the next
epoch's :class:`WeightUpdate` set.  Healthy regions get weights
proportional to a capacity/latency score (EWMA-smoothed, clamped);
evacuated regions get weight 0 and their projected base demand is
spilled to the survivors by largest-remainder apportionment.
"""

from __future__ import annotations

from typing import Mapping, Optional, Sequence

from repro.federation.messages import RegionReport, WeightUpdate
from repro.workload.profiles import WorkloadProfile


class RoutedProfile(WorkloadProfile):
    """A base demand curve scaled by the global LB's routing decisions."""

    def __init__(self, base: WorkloadProfile) -> None:
        self.base = base
        self.weight = 1.0
        self.spill_clients = 0

    def apply(self, update: WeightUpdate) -> None:
        self.weight = update.weight
        self.spill_clients = update.spill_clients

    def clients_at(self, t: float) -> int:
        if self.weight <= 0.0:
            return 0
        demand = int(round(self.base.clients_at(t) * self.weight))
        return demand + self.spill_clients

    @property
    def duration_s(self) -> float:
        return self.base.duration_s

    def peak(self) -> int:
        return self.base.peak()


class GlobalLoadBalancer:
    """Weighted routing on per-region latency/capacity reports.

    ``route`` is called once per epoch barrier with every region's
    report and returns one :class:`WeightUpdate` per region, effective
    next epoch.  All state (weight EWMAs, the evacuated set) lives here
    in the coordinator — regions never see each other directly.
    """

    def __init__(
        self,
        regions: Sequence[str],
        adaptive: bool = True,
        min_weight: float = 0.5,
        max_weight: float = 1.5,
        gain: float = 0.5,
        latency_floor_s: float = 0.05,
        evacuate_at_s: Optional[Mapping[str, float]] = None,
    ) -> None:
        self.regions = sorted(regions)
        self.adaptive = adaptive
        self.min_weight = min_weight
        self.max_weight = max_weight
        self.gain = gain
        self.latency_floor_s = latency_floor_s
        self.evacuate_at_s = dict(evacuate_at_s or {})
        self.weights = {name: 1.0 for name in self.regions}
        self.evacuated: set[str] = set()
        self.updates_issued = 0

    # ------------------------------------------------------------------
    def _score(self, report: RegionReport) -> float:
        """Capacity per unit latency: more replicas and headroom raise a
        region's share, observed slowness lowers it."""
        capacity = (
            report.app_replicas + report.db_replicas + 0.5 * report.free_nodes
        )
        latency = max(report.latency_p95_s, self.latency_floor_s)
        return capacity / latency

    def _projected_demand(
        self, base_profiles: Mapping[str, WorkloadProfile], name: str, t: float
    ) -> int:
        profile = base_profiles.get(name)
        return profile.clients_at(t) if profile is not None else 0

    # ------------------------------------------------------------------
    def route(
        self,
        epoch: int,
        reports: Mapping[str, RegionReport],
        base_profiles: Mapping[str, WorkloadProfile],
        next_epoch_mid_t: float,
    ) -> list[WeightUpdate]:
        """One epoch's routing decision (pure given the inputs).

        ``base_profiles`` supplies each region's unrouted demand curve so
        an evacuated region's load can be projected (at the midpoint of
        the next epoch) and spilled to the survivors.
        """
        for name in self.regions:
            deadline = self.evacuate_at_s.get(name)
            report = reports.get(name)
            if deadline is not None and next_epoch_mid_t >= deadline:
                self.evacuated.add(name)
            if report is not None and not report.available:
                self.evacuated.add(name)

        live = [name for name in self.regions if name not in self.evacuated]
        updates: list[WeightUpdate] = []

        # --- healthy regions: adaptive weights around 1.0 --------------
        scores = {
            name: self._score(reports[name])
            for name in live
            if name in reports
        }
        mean_score = (
            sum(scores.values()) / len(scores) if scores else 0.0
        )
        for name in live:
            if self.adaptive and mean_score > 0.0 and name in scores:
                target = scores[name] / mean_score
                target = min(self.max_weight, max(self.min_weight, target))
                smoothed = (
                    (1.0 - self.gain) * self.weights[name]
                    + self.gain * target
                )
            else:
                smoothed = 1.0
            self.weights[name] = smoothed

        # --- spill: evacuated demand apportioned to survivors ----------
        spilled_total = sum(
            self._projected_demand(base_profiles, name, next_epoch_mid_t)
            for name in sorted(self.evacuated)
        )
        spill = {name: 0 for name in live}
        if spilled_total > 0 and live:
            score_sum = sum(scores.get(name, 1.0) for name in live)
            shares = []
            for name in live:  # largest-remainder apportionment
                share = scores.get(name, 1.0) / score_sum * spilled_total
                shares.append((name, int(share), share - int(share)))
            assigned = sum(floor for _, floor, _ in shares)
            remainder = spilled_total - assigned
            for name, floor, _ in sorted(
                shares, key=lambda s: (-s[2], s[0])
            )[:remainder]:
                spill[name] = 1
            for name, floor, _ in shares:
                spill[name] += floor

        for name in self.regions:
            if name in self.evacuated:
                updates.append(
                    WeightUpdate(
                        epoch + 1, name, 0.0, 0, reason="evacuation"
                    )
                )
            else:
                updates.append(
                    WeightUpdate(
                        epoch + 1,
                        name,
                        self.weights[name],
                        spill.get(name, 0),
                    )
                )
        self.updates_issued += len(updates)
        return updates
