"""Federation topologies: region specs, seed sharding, scenario presets.

A :class:`FederationSpec` is a frozen, picklable value — like
:class:`~repro.chaos.campaign.ChaosCampaign` or the market scenarios —
so it rides through the content-addressed result cache and the process
pool unchanged.  Its :meth:`~FederationSpec.topology` method feeds the
cache key (region count + channel config), guaranteeing a federated run
can never alias a single-cluster entry.

Each region's RNG universe is sharded from the federation seed with the
same sha256 idiom :class:`~repro.simulation.rng.RngStreams` uses for
component streams: ``region_seed(seed, name)`` keys on the region *name*,
so adding a region never perturbs the others (test-enforced in
``tests/test_rng.py``).

``PRESETS`` holds the named cross-region scenarios the CLI, benchmark
and CI smoke use: a global Fig. 9 ramp sharded across regions, a
follow-the-sun diurnal cycle, a region evacuation, and a correlated
multi-region incident composed from the existing chaos fault specs.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Optional

from repro.chaos.campaign import ChaosCampaign
from repro.workload.profiles import (
    DiurnalProfile,
    RampProfile,
    WorkloadProfile,
)

#: canonical region names, in routing (alphabetical-friendly) order
REGION_NAMES = (
    "ap-east", "eu-west", "sa-south", "us-east",
    "us-west", "af-north", "me-central", "oc-south",
)


def region_seed(seed: int, name: str) -> int:
    """Shard the federation seed into one independent seed per region.

    Mirrors the :class:`~repro.simulation.rng.RngStreams` naming idiom:
    the region name is hashed, not its position, so region sets compose
    without perturbing each other's streams.
    """
    digest = hashlib.sha256(f"region:{seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "little")


@dataclass(frozen=True)
class RegionSpec:
    """One region: a name, its base demand curve, and local scenario
    ingredients (node pool size, an optional chaos campaign, an optional
    evacuation deadline after which the global LB drains it)."""

    name: str
    profile: WorkloadProfile
    pool_nodes: int = 7
    chaos: Optional[ChaosCampaign] = None
    evacuate_at_s: Optional[float] = None
    cohort: int = 1
    fluid: bool = False
    fluid_threshold: int = 0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("region needs a name")
        if self.pool_nodes < 2:
            raise ValueError("region pool needs >= 2 nodes")


@dataclass(frozen=True)
class FederationSpec:
    """N regions + the cross-region channel configuration."""

    name: str
    regions: tuple[RegionSpec, ...] = field(default_factory=tuple)
    seed: int = 1
    epoch_s: float = 60.0  #: barrier period (one adjust period)
    managed: bool = True
    proactive: bool = False
    adaptive_routing: bool = True
    min_weight: float = 0.5
    max_weight: float = 1.5
    routing_gain: float = 0.5
    latency_floor_s: float = 0.05

    def __post_init__(self) -> None:
        object.__setattr__(self, "regions", tuple(self.regions))
        if not self.regions:
            raise ValueError("federation needs at least one region")
        names = [r.name for r in self.regions]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate region names: {names}")
        if self.epoch_s <= 0:
            raise ValueError("epoch_s must be positive")
        durations = {r.profile.duration_s for r in self.regions}
        if len(durations) != 1:
            raise ValueError(
                "regions must share one workload horizon "
                f"(got {sorted(durations)})"
            )

    # ------------------------------------------------------------------
    @property
    def horizon_s(self) -> float:
        return self.regions[0].profile.duration_s

    @property
    def epochs(self) -> int:
        import math

        return max(1, math.ceil(self.horizon_s / self.epoch_s))

    def topology(self) -> dict:
        """The shard/channel shape folded into the result-cache key:
        region count + names + every channel knob."""
        return {
            "kind": "federation",
            "regions": len(self.regions),
            "names": [r.name for r in self.regions],
            "epoch_s": self.epoch_s,
            "adaptive_routing": self.adaptive_routing,
            "min_weight": self.min_weight,
            "max_weight": self.max_weight,
            "routing_gain": self.routing_gain,
            "latency_floor_s": self.latency_floor_s,
        }


def build_region_config(
    fed: FederationSpec,
    region: RegionSpec,
    trace_jsonl: Optional[str] = None,
):
    """Pack one region into a runnable :class:`ExperimentConfig`.

    The demand curve is wrapped in a
    :class:`~repro.federation.routing.RoutedProfile` so the coordinator
    can retarget it at epoch barriers; the seed is sharded by region
    name; self-recovery is armed automatically when the region carries a
    chaos campaign.
    """
    from repro.federation.routing import RoutedProfile
    from repro.jade.system import ExperimentConfig

    return ExperimentConfig(
        profile=RoutedProfile(region.profile),
        seed=region_seed(fed.seed, region.name),
        managed=fed.managed,
        proactive=fed.proactive,
        recovery=region.chaos is not None,
        chaos=region.chaos,
        pool_nodes=region.pool_nodes,
        cohort=region.cohort,
        hardware_scale=float(region.cohort),
        fluid=region.fluid,
        fluid_threshold=region.fluid_threshold,
        trace=trace_jsonl is not None,
        trace_jsonl=trace_jsonl,
        trace_run_id=f"{fed.name}-{region.name}",
    )


# ----------------------------------------------------------------------
# Scenario presets (the CLI's --scenario choices)
# ----------------------------------------------------------------------
def _ramp(scale: float, peak: int = 500) -> RampProfile:
    return RampProfile(
        base=80,
        peak=peak,
        step_clients=21,
        warmup_s=300.0 * scale,
        step_period_s=60.0 * scale,
        cooldown_s=300.0 * scale,
    )


def global_ramp(
    regions: int = 4, scale: float = 0.3, seed: int = 1, peak: int = 500,
    managed: bool = True, proactive: bool = False,
    fluid: bool = False, fluid_threshold: int = 0, cohort: int = 1,
) -> FederationSpec:
    """The §5.2 ramp in every region at once (the speedup benchmark:
    regions are balanced, so the critical path is one region)."""
    if not 1 <= regions <= len(REGION_NAMES):
        raise ValueError(f"regions must be 1..{len(REGION_NAMES)}")
    return FederationSpec(
        name="global-ramp",
        regions=tuple(
            RegionSpec(
                name,
                _ramp(scale, peak),
                cohort=cohort,
                fluid=fluid,
                fluid_threshold=fluid_threshold,
            )
            for name in REGION_NAMES[:regions]
        ),
        seed=seed,
        epoch_s=60.0 * scale,
        managed=managed,
        proactive=proactive,
    )


def follow_the_sun(
    regions: int = 4, scale: float = 0.3, seed: int = 1, peak: int = 500
) -> FederationSpec:
    """Diurnal load phase-shifted per region: daylight (and the demand
    peak) walks around the federation once over the scenario."""
    if not 1 <= regions <= len(REGION_NAMES):
        raise ValueError(f"regions must be 1..{len(REGION_NAMES)}")
    period = 3600.0 * scale
    return FederationSpec(
        name="follow-the-sun",
        regions=tuple(
            RegionSpec(
                name,
                DiurnalProfile(
                    base=80,
                    peak=peak,
                    period_s=period,
                    phase_s=i * period / regions,
                    duration_s=period,
                ),
            )
            for i, name in enumerate(REGION_NAMES[:regions])
        ),
        seed=seed,
        epoch_s=60.0 * scale,
    )


def evacuation(
    regions: int = 2, scale: float = 0.3, seed: int = 1, peak: int = 350
) -> FederationSpec:
    """Geo failover: the first region is hit by a correlated incident
    mid-ramp and evacuated — the global LB drains it (weight 0) and
    spills its projected demand to the survivors."""
    from repro.chaos import faults as F

    if regions < 2:
        raise ValueError("evacuation needs at least 2 regions")
    horizon = _ramp(scale, peak).duration_s
    evacuate_at = 0.4 * horizon
    incident = ChaosCampaign(
        "region-incident",
        (
            F.correlated(evacuate_at, target="any"),
            F.partition(evacuate_at, horizon - evacuate_at, target="app"),
        ),
        detector="phi",
    )
    specs = [
        RegionSpec(
            REGION_NAMES[0],
            _ramp(scale, peak),
            chaos=incident,
            evacuate_at_s=evacuate_at,
        )
    ]
    specs.extend(
        RegionSpec(name, _ramp(scale, peak))
        for name in REGION_NAMES[1:regions]
    )
    return FederationSpec(
        name="evacuation",
        regions=tuple(specs),
        seed=seed,
        epoch_s=60.0 * scale,
    )


def multi_region_incident(
    regions: int = 4, scale: float = 0.3, seed: int = 1, peak: int = 350
) -> FederationSpec:
    """Correlated multi-region incident: two regions degrade at the same
    instant (gray DB + fail-slow) without evacuating, so the adaptive
    router has to shift weight onto the healthy pair."""
    from repro.chaos import faults as F

    if regions < 3:
        raise ValueError("multi-region-incident needs at least 3 regions")
    horizon = _ramp(scale, peak).duration_s
    hit_at = 0.35 * horizon
    hit_for = 0.4 * horizon
    gray = ChaosCampaign(
        "gray-db",
        (F.gray(hit_at, hit_for, factor=0.005, target="db"),),
        detector="phi",
    )
    slow = ChaosCampaign(
        "slow-db",
        (F.fail_slow(hit_at, hit_for, factor=0.01, target="db"),),
        detector="phi",
    )
    campaigns = {REGION_NAMES[0]: gray, REGION_NAMES[1]: slow}
    return FederationSpec(
        name="multi-region-incident",
        regions=tuple(
            RegionSpec(
                name, _ramp(scale, peak), chaos=campaigns.get(name)
            )
            for name in REGION_NAMES[:regions]
        ),
        seed=seed,
        epoch_s=60.0 * scale,
    )


#: named federation scenarios: factory(regions=..., scale=..., seed=...)
PRESETS = {
    "global-ramp": global_ramp,
    "follow-the-sun": follow_the_sun,
    "evacuation": evacuation,
    "multi-region-incident": multi_region_incident,
}
