"""A Python implementation of the Fractal component model.

Fractal (Bruneton, Coupaye, Stefani — WCOP 2002) is the component model Jade
uses to wrap legacy software behind a uniform management interface.  This
package implements the subset the paper relies on, faithfully:

* primitive components (encapsulating an executable content object) and
  composite components (assemblies of sub-components);
* server / client interfaces with contingency (mandatory/optional) and
  cardinality (singleton/collection);
* primitive bindings between client and server interfaces, and composite
  bindings crossing node boundaries;
* the four controller kinds of §3.1: attribute, binding, content and
  life-cycle controllers (plus a name controller);
* an XML Architecture Description Language (§3.3) with a component-factory
  registry, interpreted at deployment time.
"""

from repro.fractal.adl import AdlError, AdlParser, ComponentFactoryRegistry, parse_adl
from repro.fractal.bindings import CompositeBinding
from repro.fractal.component import Component, Membrane
from repro.fractal.controllers import (
    AttributeController,
    BindingController,
    ContentController,
    LifecycleController,
    LifecycleState,
    NameController,
)
from repro.fractal.errors import (
    FractalError,
    IllegalBindingError,
    IllegalContentError,
    IllegalLifecycleError,
    NoSuchAttributeError,
    NoSuchInterfaceError,
)
from repro.fractal.interfaces import (
    CLIENT,
    COLLECTION,
    MANDATORY,
    OPTIONAL,
    SERVER,
    SINGLETON,
    Interface,
    InterfaceType,
)
from repro.fractal.introspection import (
    architecture_report,
    find_components,
    iter_components,
    verify_architecture,
)
from repro.fractal.views import build_view, software_view, topology_view

__all__ = [
    "AdlError",
    "AdlParser",
    "AttributeController",
    "BindingController",
    "CLIENT",
    "COLLECTION",
    "Component",
    "ComponentFactoryRegistry",
    "CompositeBinding",
    "ContentController",
    "FractalError",
    "IllegalBindingError",
    "IllegalContentError",
    "IllegalLifecycleError",
    "Interface",
    "InterfaceType",
    "LifecycleController",
    "LifecycleState",
    "MANDATORY",
    "Membrane",
    "NameController",
    "NoSuchAttributeError",
    "NoSuchInterfaceError",
    "OPTIONAL",
    "SERVER",
    "SINGLETON",
    "architecture_report",
    "build_view",
    "find_components",
    "iter_components",
    "parse_adl",
    "software_view",
    "topology_view",
    "verify_architecture",
]
