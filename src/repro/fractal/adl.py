"""Architecture Description Language (ADL).

"The architecture of an application is described using an Architecture
Description Language (ADL) ... This description is an XML document which
details the architectural structure of the application to deploy on the
cluster, e.g. which software resources compose the multi-tier J2EE
application, how many replicas are created for each tier, how are the tiers
bound together" (§3.3).

The ADL is *declarative*: :func:`parse_adl` produces an
:class:`ArchitectureDescription` (a tree of specs); the Jade deployment
service (:mod:`repro.jade.deployment`) interprets it against a component
factory registry, the Cluster Manager and the Software Installation Service.

Example document::

    <definition name="rubis-j2ee">
      <component name="web" composite="true">
        <component name="apache" type="apache" replicas="2" package="apache-httpd">
          <attribute name="port" value="80"/>
        </component>
      </component>
      <component name="tomcat" type="tomcat" replicas="2" package="tomcat"/>
      <binding client="apache.ajp" server="tomcat.ajp"/>
    </definition>
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Any, Callable, Iterator, Optional

from repro.fractal.component import Component


class AdlError(ValueError):
    """Malformed ADL document or unresolvable reference."""


class ComponentSpec:
    """Declarative description of one component (possibly replicated)."""

    def __init__(
        self,
        name: str,
        ctype: Optional[str] = None,
        composite: bool = False,
        replicas: int = 1,
        package: Optional[str] = None,
        virtual_node: Optional[str] = None,
        attributes: Optional[dict[str, str]] = None,
        children: Optional[list["ComponentSpec"]] = None,
    ) -> None:
        if replicas < 1:
            raise AdlError(f"component {name!r}: replicas must be >= 1")
        if composite and ctype is not None:
            raise AdlError(f"component {name!r}: composite cannot have a type")
        if not composite and ctype is None:
            raise AdlError(f"component {name!r}: primitive requires a type")
        self.name = name
        self.ctype = ctype
        self.composite = composite
        self.replicas = replicas
        self.package = package
        self.virtual_node = virtual_node
        self.attributes = dict(attributes or {})
        self.children = list(children or [])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "composite" if self.composite else self.ctype
        return f"ComponentSpec({self.name!r}, {kind}, x{self.replicas})"


class BindingSpec:
    """Declarative binding ``client component.interface`` → ``server``."""

    def __init__(self, client: str, server: str) -> None:
        for ref, label in ((client, "client"), (server, "server")):
            if ref.count(".") != 1:
                raise AdlError(
                    f"{label} reference {ref!r} must be 'component.interface'"
                )
        self.client = client
        self.server = server

    @property
    def client_component(self) -> str:
        return self.client.split(".")[0]

    @property
    def client_interface(self) -> str:
        return self.client.split(".")[1]

    @property
    def server_component(self) -> str:
        return self.server.split(".")[0]

    @property
    def server_interface(self) -> str:
        return self.server.split(".")[1]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"BindingSpec({self.client} -> {self.server})"


class ArchitectureDescription:
    """A parsed ADL document: component tree plus bindings."""

    def __init__(
        self,
        name: str,
        components: list[ComponentSpec],
        bindings: list[BindingSpec],
    ) -> None:
        self.name = name
        self.components = components
        self.bindings = bindings
        self._validate()

    def iter_specs(self) -> Iterator[ComponentSpec]:
        def walk(specs: list[ComponentSpec]) -> Iterator[ComponentSpec]:
            for spec in specs:
                yield spec
                yield from walk(spec.children)

        return walk(self.components)

    def spec(self, name: str) -> ComponentSpec:
        for s in self.iter_specs():
            if s.name == name:
                return s
        raise AdlError(f"no component spec named {name!r}")

    def _validate(self) -> None:
        names = [s.name for s in self.iter_specs()]
        dupes = {n for n in names if names.count(n) > 1}
        if dupes:
            raise AdlError(f"duplicate component names: {sorted(dupes)}")
        known = set(names)
        for b in self.bindings:
            for comp in (b.client_component, b.server_component):
                if comp not in known:
                    raise AdlError(
                        f"binding {b.client} -> {b.server} references "
                        f"unknown component {comp!r}"
                    )


class AdlParser:
    """Parses the XML ADL dialect into an :class:`ArchitectureDescription`."""

    def parse(self, text: str) -> ArchitectureDescription:
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise AdlError(f"invalid XML: {exc}") from exc
        if root.tag != "definition":
            raise AdlError(f"root element must be <definition>, got <{root.tag}>")
        name = root.get("name")
        if not name:
            raise AdlError("<definition> requires a name attribute")
        components = [
            self._parse_component(el) for el in root.findall("component")
        ]
        bindings = [self._parse_binding(el) for el in root.findall("binding")]
        return ArchitectureDescription(name, components, bindings)

    def _parse_component(self, el: ET.Element) -> ComponentSpec:
        name = el.get("name")
        if not name:
            raise AdlError("<component> requires a name attribute")
        composite = el.get("composite", "false").lower() in ("true", "1", "yes")
        replicas_raw = el.get("replicas", "1")
        try:
            replicas = int(replicas_raw)
        except ValueError:
            raise AdlError(
                f"component {name!r}: bad replicas value {replicas_raw!r}"
            ) from None
        attributes = {}
        for attr in el.findall("attribute"):
            aname, avalue = attr.get("name"), attr.get("value")
            if aname is None or avalue is None:
                raise AdlError(
                    f"component {name!r}: <attribute> requires name and value"
                )
            attributes[aname] = avalue
        vnode_el = el.find("virtual-node")
        virtual_node = vnode_el.get("name") if vnode_el is not None else None
        children = [self._parse_component(c) for c in el.findall("component")]
        if children and not composite:
            raise AdlError(f"component {name!r}: only composites nest components")
        return ComponentSpec(
            name=name,
            ctype=el.get("type"),
            composite=composite,
            replicas=replicas,
            package=el.get("package"),
            virtual_node=virtual_node,
            attributes=attributes,
            children=children,
        )

    def _parse_binding(self, el: ET.Element) -> BindingSpec:
        client, server = el.get("client"), el.get("server")
        if not client or not server:
            raise AdlError("<binding> requires client and server attributes")
        return BindingSpec(client, server)


def parse_adl(text: str) -> ArchitectureDescription:
    """Parse an ADL XML document (module-level convenience)."""
    return AdlParser().parse(text)


Factory = Callable[..., Component]


class ComponentFactoryRegistry:
    """Maps ADL ``type`` names to component factories.

    A factory is called as ``factory(name, attributes, **context)`` and must
    return a started-able :class:`Component`.  The deployment service passes
    context keys such as ``node`` (the allocated cluster node) and
    ``kernel``.
    """

    def __init__(self) -> None:
        self._factories: dict[str, Factory] = {}

    def register(self, type_name: str, factory: Factory) -> None:
        if type_name in self._factories:
            raise ValueError(f"factory for type {type_name!r} already registered")
        self._factories[type_name] = factory

    def create(
        self, type_name: str, name: str, attributes: dict[str, Any], **context: Any
    ) -> Component:
        try:
            factory = self._factories[type_name]
        except KeyError:
            raise AdlError(f"no factory registered for type {type_name!r}") from None
        return factory(name, attributes, **context)

    def known_types(self) -> list[str]:
        return sorted(self._factories)
