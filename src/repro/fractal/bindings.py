"""Composite bindings.

"A composite binding is a Fractal component that embodies a communication
path between an arbitrary number of component interfaces ... built out of a
set of primitive bindings and binding components (stubs, skeletons,
adapters, etc.)" (§3.1).

In this reproduction, management-layer invocations are local, so a composite
binding is mostly *structural*: it is a first-class component that sits on
the path, counts traffic and can model a network hop (useful to represent a
binding that crosses node boundaries in the legacy layer).  It exposes:

* a server interface ``in`` — callers invoke through it;
* a client interface ``out`` — bound to the real destination.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.cluster.network import Lan
from repro.fractal.component import Component
from repro.fractal.interfaces import CLIENT, MANDATORY, SERVER, Interface, InterfaceType


class _Forwarder:
    """Content of a composite binding: relays invocations in → out."""

    def __init__(self, lan: Optional[Lan], payload_kb: float) -> None:
        self.lan = lan
        self.payload_kb = payload_kb
        self.invocations = 0
        self.simulated_delay_total = 0.0
        self.component: Optional[Component] = None

    def attached(self, component: Component) -> None:
        self.component = component

    def __getattr__(self, method: str) -> Any:
        # Any non-hook method call arriving on the ``in`` server interface is
        # relayed through the ``out`` client interface.
        if method.startswith("_") or method.startswith("on_"):
            raise AttributeError(method)

        def relay(*args: Any, **kwargs: Any) -> Any:
            assert self.component is not None
            self.invocations += 1
            if self.lan is not None:
                self.simulated_delay_total += self.lan.message_delay(self.payload_kb)
            out = self.component.get_interface("out")
            return out.invoke(method, *args, **kwargs)

        return relay


class CompositeBinding:
    """Builds a binding component between a client and a server interface.

    Usage::

        cb = CompositeBinding("apache1-to-tomcat1", signature="ajp", lan=lan)
        cb.connect(apache1, "ajp", tomcat1.get_interface("ajp"))

    After :meth:`connect`, calls through ``apache1``'s ``ajp`` client
    interface traverse the binding component (counted, optionally delayed)
    before reaching ``tomcat1``.
    """

    def __init__(
        self,
        name: str,
        signature: str,
        lan: Optional[Lan] = None,
        payload_kb: float = 1.0,
    ) -> None:
        self.forwarder = _Forwarder(lan, payload_kb)
        self.component = Component(
            name,
            interface_types=[
                InterfaceType("in", signature, role=SERVER),
                InterfaceType("out", signature, role=CLIENT, contingency=MANDATORY),
            ],
            content=self.forwarder,
        )

    @property
    def invocations(self) -> int:
        return self.forwarder.invocations

    @property
    def in_interface(self) -> Interface:
        return self.component.get_interface("in")

    def connect(self, client: Component, itf_name: str, server: Interface) -> str:
        """Wire ``client.itf_name -> binding -> server`` and start the
        binding component.  Returns the instance name of the client-side
        binding."""
        self.component.bind("out", server)
        self.component.start()
        return client.bind(itf_name, self.in_interface)

    def disconnect(self, client: Component, instance_name: str) -> None:
        """Remove both primitive bindings and stop the binding component."""
        client.unbind(instance_name)
        self.component.stop()
        self.component.unbind("out")
