"""Fractal components and membranes.

A :class:`Component` is a run-time entity with a distinct identity, a set of
interfaces, and a *membrane* of controllers.  A **primitive** component
encapsulates an executable content object (in Jade: the wrapper around a
legacy program); a **composite** component is an assembly of sub-components
(in Jade: a tier, the whole J2EE infrastructure, or an autonomic manager).
"""

from __future__ import annotations

from typing import Any, Iterable, Optional

from repro.fractal.controllers import (
    AttributeController,
    BindingController,
    ContentController,
    LifecycleController,
    NameController,
)
from repro.fractal.errors import NoSuchInterfaceError
from repro.fractal.interfaces import Interface, InterfaceType


class Membrane:
    """The set of controllers attached to a component.

    Fractal allows arbitrary, user-defined controller classes; extra
    controllers can be attached under a name with :meth:`add`.
    """

    def __init__(self, component: "Component") -> None:
        self.name_controller = NameController(component)
        self.lifecycle_controller = LifecycleController(component)
        self.attribute_controller = AttributeController(component)
        self.binding_controller = BindingController(component)
        self.content_controller: Optional[ContentController] = None
        self._extra: dict[str, Any] = {}

    def add(self, name: str, controller: Any) -> None:
        self._extra[name] = controller

    def get(self, name: str) -> Any:
        builtin = {
            "name-controller": self.name_controller,
            "lifecycle-controller": self.lifecycle_controller,
            "attribute-controller": self.attribute_controller,
            "binding-controller": self.binding_controller,
            "content-controller": self.content_controller,
        }
        if name in builtin and builtin[name] is not None:
            return builtin[name]
        if name in self._extra:
            return self._extra[name]
        raise KeyError(name)


class Component:
    """A Fractal component (primitive or composite)."""

    def __init__(
        self,
        name: str,
        interface_types: Iterable[InterfaceType] = (),
        content: Any = None,
        composite: bool = False,
    ) -> None:
        if not name:
            raise ValueError("component name cannot be empty")
        self.name = name
        self.content = content
        self._composite = composite
        self.parent: Optional["Component"] = None
        #: composites holding this component as a *shared* sub-component
        #: (Fractal composition-with-sharing; used for the §3.2 alternate
        #: points of view, e.g. the per-node topology view)
        self.shared_parents: list["Component"] = []
        self._itypes: dict[str, InterfaceType] = {}
        self._interfaces: dict[str, Interface] = {}
        self.membrane = Membrane(self)
        if composite:
            self.membrane.content_controller = ContentController(self)
        for itype in interface_types:
            self.add_interface_type(itype)
        if content is not None and hasattr(content, "attached"):
            content.attached(self)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def is_composite(self) -> bool:
        return self._composite

    def is_primitive(self) -> bool:
        return not self._composite

    def add_interface_type(self, itype: InterfaceType) -> Interface:
        """Declare an interface on the component and instantiate it.

        Server interfaces delegate to the content object by default.
        """
        if itype.name in self._itypes:
            raise ValueError(
                f"{self.name} already has an interface named {itype.name!r}"
            )
        self._itypes[itype.name] = itype
        delegate = self.content if itype.is_server() else None
        itf = Interface(self, itype, delegate=delegate)
        self._interfaces[itype.name] = itf
        return itf

    def interface_type(self, name: str) -> Optional[InterfaceType]:
        return self._itypes.get(name)

    def interface_types(self) -> list[InterfaceType]:
        return list(self._itypes.values())

    def client_interface_types(self) -> list[InterfaceType]:
        return [t for t in self._itypes.values() if t.is_client()]

    def server_interface_types(self) -> list[InterfaceType]:
        return [t for t in self._itypes.values() if t.is_server()]

    def get_interface(self, name: str) -> Interface:
        try:
            return self._interfaces[name]
        except KeyError:
            raise NoSuchInterfaceError(self.name, name) from None

    def interfaces(self) -> dict[str, Interface]:
        return dict(self._interfaces)

    # ------------------------------------------------------------------
    # Controller shortcuts (the Fractal `getFcInterface("...")` idiom)
    # ------------------------------------------------------------------
    @property
    def name_controller(self) -> NameController:
        return self.membrane.name_controller

    @property
    def lifecycle_controller(self) -> LifecycleController:
        return self.membrane.lifecycle_controller

    @property
    def attribute_controller(self) -> AttributeController:
        return self.membrane.attribute_controller

    @property
    def binding_controller(self) -> BindingController:
        return self.membrane.binding_controller

    @property
    def content_controller(self) -> ContentController:
        cc = self.membrane.content_controller
        if cc is None:
            from repro.fractal.errors import IllegalContentError

            raise IllegalContentError(f"{self.name} is not a composite")
        return cc

    # ------------------------------------------------------------------
    # Management-friendly conveniences (the paper's §5.1 API style:
    # Apache1.stop(); Apache1.unbind("ajp-itf"); Apache1.bind(...); ...)
    # ------------------------------------------------------------------
    def start(self) -> None:
        self.lifecycle_controller.start()

    def stop(self) -> None:
        self.lifecycle_controller.stop()

    def bind(self, itf_name: str, server: Interface) -> str:
        return self.binding_controller.bind(itf_name, server)

    def unbind(self, itf_name: str) -> None:
        self.binding_controller.unbind(itf_name)

    def set_attr(self, name: str, value: Any) -> None:
        self.attribute_controller.set(name, value)

    def get_attr(self, name: str) -> Any:
        return self.attribute_controller.get(name)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "composite" if self._composite else "primitive"
        state = self.lifecycle_controller.state.value
        return f"<Component {self.name} [{kind}, {state}]>"
