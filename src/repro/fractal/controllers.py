"""Fractal controllers.

"In order to allow for well scoped dynamic reconfiguration, components in
Fractal can be endowed with controllers, which provide access to a component
internals" (§3.1).  We implement the four controller kinds the paper lists —
attribute, binding, content and life-cycle — plus a name controller.

Content objects (the wrapper implementations) may define optional hooks the
controllers invoke, which is where legacy-specific behaviour lives:

* ``on_start(component)`` / ``on_stop(component)`` — life-cycle controller;
* ``on_bind(component, name, server_itf)`` / ``on_unbind(component, name)``
  — binding controller;
* ``on_attribute_changed(component, name, value)`` — attribute controller.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any, Optional

from repro.fractal.errors import (
    IllegalBindingError,
    IllegalContentError,
    IllegalLifecycleError,
    NoSuchAttributeError,
    NoSuchInterfaceError,
)
from repro.fractal.interfaces import Interface

if TYPE_CHECKING:  # pragma: no cover
    from repro.fractal.component import Component


class LifecycleState(enum.Enum):
    STOPPED = "stopped"
    STARTED = "started"
    FAILED = "failed"


class Controller:
    """Base class: a controller belongs to one component's membrane."""

    def __init__(self, component: "Component") -> None:
        self.component = component

    def _hook(self, name: str, *args: Any) -> None:
        content = self.component.content
        fn = getattr(content, name, None)
        if fn is not None:
            fn(self.component, *args)


class NameController(Controller):
    """Exposes the component's distinct identity."""

    def get_name(self) -> str:
        return self.component.name

    def set_name(self, name: str) -> None:
        if not name:
            raise ValueError("component name cannot be empty")
        self.component.name = name


class LifecycleController(Controller):
    """Explicit control over component execution (start/stop/state).

    Starting requires every *mandatory* client interface to be bound
    (singleton: bound once; collection: at least one live binding) — the
    Fractal start-time consistency rule.  Starting a composite recursively
    starts its sub-components (children first, so servers come up before the
    balancers that point at them); stopping is the reverse.
    """

    def __init__(self, component: "Component") -> None:
        super().__init__(component)
        self._state = LifecycleState.STOPPED

    @property
    def state(self) -> LifecycleState:
        return self._state

    def is_started(self) -> bool:
        return self._state is LifecycleState.STARTED

    def start(self) -> None:
        if self._state is LifecycleState.STARTED:
            return  # idempotent, like re-running a start script
        if self._state is LifecycleState.FAILED:
            raise IllegalLifecycleError(
                f"{self.component.name}: cannot start a failed component; repair it"
            )
        self._check_mandatory_bindings()
        if self.component.is_composite():
            for sub in self.component.content_controller.sub_components():
                sub.lifecycle_controller.start()
        self._hook("on_start")
        self._state = LifecycleState.STARTED

    def stop(self) -> None:
        if self._state is LifecycleState.STOPPED:
            return
        if self._state is LifecycleState.FAILED:
            self._state = LifecycleState.STOPPED
            return
        self._hook("on_stop")
        if self.component.is_composite():
            for sub in reversed(self.component.content_controller.sub_components()):
                sub.lifecycle_controller.stop()
        self._state = LifecycleState.STOPPED

    def fail(self) -> None:
        """Mark the component failed (used by failure detection); the content
        is *not* consulted — the legacy process is assumed gone."""
        self._state = LifecycleState.FAILED

    def _check_mandatory_bindings(self) -> None:
        bc = self.component.binding_controller
        for itype in self.component.client_interface_types():
            if not itype.is_mandatory():
                continue
            if not bc.bound_instances(itype.name):
                raise IllegalLifecycleError(
                    f"{self.component.name}: mandatory client interface "
                    f"{itype.name!r} is unbound"
                )


class AttributeController(Controller):
    """Getter/setter access to the component's configurable properties.

    Attributes are declared with :meth:`declare`; setting one invokes the
    content hook, which is where wrappers rewrite the legacy configuration
    file (e.g. the Apache ``port`` attribute is reflected into
    ``httpd.conf`` — §3.2).
    """

    def __init__(self, component: "Component") -> None:
        super().__init__(component)
        self._attributes: dict[str, Any] = {}

    def declare(self, name: str, value: Any = None) -> None:
        """Declare an attribute with an initial value (no hook fired)."""
        self._attributes[name] = value

    def list_attributes(self) -> list[str]:
        return sorted(self._attributes)

    def has_attribute(self, name: str) -> bool:
        return name in self._attributes

    def get(self, name: str) -> Any:
        try:
            return self._attributes[name]
        except KeyError:
            raise NoSuchAttributeError(self.component.name, name) from None

    def set(self, name: str, value: Any) -> None:
        if name not in self._attributes:
            raise NoSuchAttributeError(self.component.name, name)
        self._attributes[name] = value
        self._hook("on_attribute_changed", name, value)

    def as_dict(self) -> dict[str, Any]:
        return dict(self._attributes)


class BindingController(Controller):
    """Binds/unbinds the component's client interfaces (§3.1).

    Singleton client interfaces hold one binding under the interface name;
    collection interfaces hold any number under suffixed instance names
    (``backends-0``, ``backends-1``...).  Binding a *static* interface while
    the component is started raises — the paper's wrappers stop Apache before
    rebinding it; interfaces created with ``dynamic=True`` (C-JDBC backends)
    may be rebound live.
    """

    def __init__(self, component: "Component") -> None:
        super().__init__(component)
        # instance name -> server Interface
        self._bindings: dict[str, Interface] = {}
        self._counter: dict[str, int] = {}

    # ------------------------------------------------------------------
    def list_bindings(self) -> dict[str, Interface]:
        return dict(self._bindings)

    def lookup(self, name: str) -> Optional[Interface]:
        """The server interface bound under ``name`` (instance name), or
        None."""
        return self._bindings.get(name)

    def bound_instances(self, itf_name: str) -> list[str]:
        """Instance names of live bindings of client interface
        ``itf_name``."""
        base = itf_name
        return sorted(
            n for n in self._bindings if n == base or n.startswith(base + "-")
        )

    def bound_servers(self, itf_name: str) -> list[Interface]:
        return [self._bindings[n] for n in self.bound_instances(itf_name)]

    # ------------------------------------------------------------------
    def bind(self, itf_name: str, server: Interface) -> str:
        """Bind client interface ``itf_name`` to ``server``.

        For collection interfaces ``itf_name`` may be the base name (an
        instance name is generated) or an explicit instance name.  Returns
        the instance name under which the binding is recorded.
        """
        base, _ = self._split(itf_name)
        itype = self._client_type(base)
        if not server.itype.is_server():
            raise IllegalBindingError(
                f"{server.qualified_name} is not a server interface"
            )
        if itype.signature != server.itype.signature:
            raise IllegalBindingError(
                f"signature mismatch: {self.component.name}.{base} is "
                f"{itype.signature!r}, {server.qualified_name} is "
                f"{server.itype.signature!r}"
            )
        self._check_dynamic(itype, "bind")
        if itype.is_collection():
            if itf_name == base:
                n = self._counter.get(base, 0)
                self._counter[base] = n + 1
                instance = f"{base}-{n}"
            else:
                instance = itf_name
            if instance in self._bindings:
                raise IllegalBindingError(
                    f"{self.component.name}.{instance} is already bound"
                )
        else:
            instance = base
            if instance in self._bindings:
                raise IllegalBindingError(
                    f"{self.component.name}.{instance} is already bound"
                )
        self._bindings[instance] = server
        client_itf = self.component.get_interface(base)
        if not itype.is_collection():
            client_itf.target = server
        self._hook("on_bind", instance, server)
        return instance

    def unbind(self, name: str) -> None:
        """Remove the binding recorded under instance name ``name``."""
        base, _ = self._split(name)
        itype = self._client_type(base)
        self._check_dynamic(itype, "unbind")
        if name not in self._bindings:
            raise IllegalBindingError(
                f"{self.component.name}.{name} is not bound"
            )
        self._hook("on_unbind", name)
        del self._bindings[name]
        if not itype.is_collection():
            self.component.get_interface(base).target = None

    def unbind_all(self, itf_name: str) -> int:
        """Unbind every instance of client interface ``itf_name``."""
        instances = self.bound_instances(itf_name)
        for name in instances:
            self.unbind(name)
        return len(instances)

    # ------------------------------------------------------------------
    def _split(self, name: str) -> tuple[str, Optional[str]]:
        """``backends-3`` -> (``backends``, ``3``) when ``backends`` is a
        known collection interface; otherwise the name is the base."""
        if "-" in name:
            base, suffix = name.rsplit("-", 1)
            try:
                itype = self._client_type(base)
            except NoSuchInterfaceError:
                pass
            else:
                if itype.is_collection():
                    return base, suffix
        return name, None

    def _client_type(self, base: str):
        itype = self.component.interface_type(base)
        if itype is None:
            raise NoSuchInterfaceError(self.component.name, base)
        if not itype.is_client():
            raise IllegalBindingError(
                f"{self.component.name}.{base} is a server interface; "
                "only client interfaces can be bound"
            )
        return itype

    def _check_dynamic(self, itype, op: str) -> None:
        lc = self.component.lifecycle_controller
        if lc.is_started() and not itype.dynamic:
            raise IllegalBindingError(
                f"cannot {op} static interface {self.component.name}."
                f"{itype.name} while started; stop the component first"
            )


class ContentController(Controller):
    """Lists, adds and removes sub-components of a composite (§3.1).

    Sub-components can be *added* at any time (that is how a replica joins
    the running J2EE composite) but can only be *removed* when stopped or
    failed, so a live server is never silently dropped from the
    architecture.
    """

    def __init__(self, component: "Component") -> None:
        super().__init__(component)
        self._subs: list["Component"] = []

    def sub_components(self) -> list["Component"]:
        return list(self._subs)

    def sub_component(self, name: str) -> "Component":
        for sub in self._subs:
            if sub.name == name:
                return sub
        raise IllegalContentError(
            f"{self.component.name} has no sub-component {name!r}"
        )

    def has_sub_component(self, name: str) -> bool:
        return any(sub.name == name for sub in self._subs)

    def add(self, sub: "Component", shared: bool = False) -> None:
        """Add ``sub`` to the composite.

        With ``shared=True`` the component may already live elsewhere: it
        becomes a *shared* sub-component (Fractal composition-with-sharing
        — how §3.2's alternative points of view, such as the per-node
        topology view, reference the same components as the middleware
        view).
        """
        if sub is self.component:
            raise IllegalContentError("a composite cannot contain itself")
        # Reject cycles: sub must not be an ancestor of this composite.
        ancestor = self.component.parent
        while ancestor is not None:
            if ancestor is sub:
                raise IllegalContentError(
                    f"adding {sub.name} into {self.component.name} creates a cycle"
                )
            ancestor = ancestor.parent
        if self.has_sub_component(sub.name):
            raise IllegalContentError(
                f"{self.component.name} already contains a component "
                f"named {sub.name!r}"
            )
        if shared:
            if self.component in sub.shared_parents:
                raise IllegalContentError(
                    f"{sub.name} is already shared into {self.component.name}"
                )
            self._subs.append(sub)
            sub.shared_parents.append(self.component)
            return
        if sub.parent is not None:
            raise IllegalContentError(
                f"{sub.name} is already contained in {sub.parent.name}"
            )
        self._subs.append(sub)
        sub.parent = self.component

    def remove(self, sub: "Component") -> None:
        if sub not in self._subs:
            raise IllegalContentError(
                f"{sub.name} is not a sub-component of {self.component.name}"
            )
        if self.component in sub.shared_parents:
            # Dropping a shared reference never touches the component's
            # life cycle: it keeps running in its primary composite.
            self._subs.remove(sub)
            sub.shared_parents.remove(self.component)
            return
        if sub.lifecycle_controller.is_started():
            raise IllegalContentError(
                f"cannot remove started component {sub.name}; stop it first"
            )
        self._subs.remove(sub)
        sub.parent = None
