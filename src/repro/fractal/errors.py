"""Fractal error hierarchy.

Mirrors the exception kinds of the Fractal API: interface lookup failures,
illegal binding / content / life-cycle operations and attribute errors all
have distinct types so management programs can react specifically.
"""

from __future__ import annotations


class FractalError(Exception):
    """Base class for all component-model errors."""


class NoSuchInterfaceError(FractalError):
    """The named interface does not exist on the component."""

    def __init__(self, component: str, interface: str):
        super().__init__(f"component {component!r} has no interface {interface!r}")
        self.component = component
        self.interface = interface


class NoSuchAttributeError(FractalError):
    """The named attribute is not exposed by the attribute controller."""

    def __init__(self, component: str, attribute: str):
        super().__init__(f"component {component!r} has no attribute {attribute!r}")
        self.component = component
        self.attribute = attribute


class IllegalBindingError(FractalError):
    """Binding operation violates the model (role, cardinality, state...)."""


class IllegalContentError(FractalError):
    """Content operation violates the model (cycles, non-composite...)."""


class IllegalLifecycleError(FractalError):
    """Life-cycle operation not permitted in the current state."""
