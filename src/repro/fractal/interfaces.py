"""Interface types and interface instances.

A Fractal component exposes *interfaces*: named access points supporting a
finite set of methods.  An :class:`InterfaceType` describes an interface
(name, signature, role, contingency, cardinality); an :class:`Interface` is
an instance of a type on a particular component.

* **Role** — ``SERVER`` interfaces accept incoming calls; ``CLIENT``
  interfaces emit outgoing calls and must be *bound* to a server interface
  before use.
* **Contingency** — a ``MANDATORY`` client interface must be bound for the
  component to start (checked by the life-cycle controller).
* **Cardinality** — a ``COLLECTION`` client interface accepts any number of
  simultaneous bindings (e.g. a load balancer's ``backends``); a
  ``SINGLETON`` accepts one.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Optional

from repro.fractal.errors import IllegalBindingError

if TYPE_CHECKING:  # pragma: no cover
    from repro.fractal.component import Component

SERVER = "server"
CLIENT = "client"
MANDATORY = "mandatory"
OPTIONAL = "optional"
SINGLETON = "singleton"
COLLECTION = "collection"


class InterfaceType:
    """Description of an interface: its name, signature and binding rules.

    ``signature`` is a free-form identifier (e.g. ``"ajp"`` or
    ``"jdbc.Driver"``); bindings are only legal between a client and a server
    interface carrying the *same* signature.  ``dynamic`` marks interfaces
    whose bindings may be changed while the component is started (the paper
    rebinds Apache only when stopped, but inserts C-JDBC backends live).
    """

    __slots__ = ("name", "signature", "role", "contingency", "cardinality", "dynamic")

    def __init__(
        self,
        name: str,
        signature: str,
        role: str = SERVER,
        contingency: str = MANDATORY,
        cardinality: str = SINGLETON,
        dynamic: bool = False,
    ) -> None:
        if role not in (SERVER, CLIENT):
            raise ValueError(f"bad role {role!r}")
        if contingency not in (MANDATORY, OPTIONAL):
            raise ValueError(f"bad contingency {contingency!r}")
        if cardinality not in (SINGLETON, COLLECTION):
            raise ValueError(f"bad cardinality {cardinality!r}")
        self.name = name
        self.signature = signature
        self.role = role
        self.contingency = contingency
        self.cardinality = cardinality
        self.dynamic = dynamic

    def is_client(self) -> bool:
        return self.role == CLIENT

    def is_server(self) -> bool:
        return self.role == SERVER

    def is_collection(self) -> bool:
        return self.cardinality == COLLECTION

    def is_mandatory(self) -> bool:
        return self.contingency == MANDATORY

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"InterfaceType({self.name!r}, sig={self.signature!r}, "
            f"{self.role}, {self.contingency}, {self.cardinality})"
        )


class Interface:
    """An interface instance on a component.

    Server interfaces dispatch :meth:`invoke` calls to a *delegate* (by
    default the component's content object).  Client interfaces forward
    :meth:`invoke` to the server interface they are bound to.
    """

    __slots__ = ("component", "itype", "name", "delegate", "target")

    def __init__(
        self,
        component: "Component",
        itype: InterfaceType,
        name: Optional[str] = None,
        delegate: Any = None,
    ) -> None:
        self.component = component
        self.itype = itype
        # Collection-interface instances get suffixed names (``backends-3``).
        self.name = name if name is not None else itype.name
        self.delegate = delegate
        self.target: Optional["Interface"] = None  # for singleton clients

    @property
    def qualified_name(self) -> str:
        return f"{self.component.name}.{self.name}"

    def invoke(self, method: str, *args: Any, **kwargs: Any) -> Any:
        """Call ``method`` through this interface.

        On a server interface the call lands on the delegate.  On a bound
        client interface the call is forwarded to the target server
        interface; calling through an unbound client raises
        :class:`IllegalBindingError` — exactly the error a legacy system
        would surface as a connection failure.
        """
        if self.itype.is_server():
            if self.delegate is None:
                raise IllegalBindingError(
                    f"server interface {self.qualified_name} has no delegate"
                )
            return getattr(self.delegate, method)(*args, **kwargs)
        if self.target is None:
            raise IllegalBindingError(
                f"client interface {self.qualified_name} is not bound"
            )
        return self.target.invoke(method, *args, **kwargs)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        bound = ""
        if self.itype.is_client():
            bound = f" -> {self.target.qualified_name}" if self.target else " (unbound)"
        return f"<Interface {self.qualified_name} [{self.itype.role}]{bound}>"
