"""Architecture introspection.

"The framework provides an introspection interface that allows observing
managed components" (§3.2): an administration program can walk the component
tree, inspect bindings and attributes, and check global consistency.  These
helpers implement that observation surface over any component hierarchy.
"""

from __future__ import annotations

from typing import Callable, Iterator

from repro.fractal.component import Component
from repro.fractal.controllers import LifecycleState


def iter_components(root: Component) -> Iterator[Component]:
    """Depth-first traversal of ``root`` and all nested sub-components.

    Components referenced through *sharing* are visited once (the first
    time they are reached).
    """
    seen: set[int] = set()

    def walk(comp: Component) -> Iterator[Component]:
        if id(comp) in seen:
            return
        seen.add(id(comp))
        yield comp
        if comp.is_composite():
            for sub in comp.content_controller.sub_components():
                yield from walk(sub)

    return walk(root)


def find_components(
    root: Component, predicate: Callable[[Component], bool]
) -> list[Component]:
    """All components in the hierarchy satisfying ``predicate``."""
    return [c for c in iter_components(root) if predicate(c)]


def find_by_name(root: Component, name: str) -> Component:
    """The unique component named ``name`` in the hierarchy (KeyError if
    absent or ambiguous)."""
    matches = find_components(root, lambda c: c.name == name)
    if not matches:
        raise KeyError(f"no component named {name!r} under {root.name}")
    if len(matches) > 1:
        raise KeyError(f"{len(matches)} components named {name!r} under {root.name}")
    return matches[0]


def architecture_report(root: Component, indent: str = "") -> str:
    """Human-readable tree of the architecture: components, states,
    attributes and bindings — the §3.2 'inspect the overall J2EE
    infrastructure' capability."""
    lines: list[str] = []
    visited: set[int] = set()

    def render(comp: Component, depth: int) -> None:
        pad = indent + "  " * depth
        kind = "composite" if comp.is_composite() else "primitive"
        state = comp.lifecycle_controller.state.value
        if id(comp) in visited:
            # A shared reference: point at it, do not expand again.
            lines.append(f"{pad}{comp.name} [shared ref]")
            return
        visited.add(id(comp))
        lines.append(f"{pad}{comp.name} [{kind}, {state}]")
        attrs = comp.attribute_controller.as_dict()
        if attrs:
            rendered = ", ".join(f"{k}={v!r}" for k, v in sorted(attrs.items()))
            lines.append(f"{pad}  attributes: {rendered}")
        for inst, server in sorted(comp.binding_controller.list_bindings().items()):
            lines.append(f"{pad}  {inst} -> {server.qualified_name}")
        if comp.is_composite():
            for sub in comp.content_controller.sub_components():
                render(sub, depth + 1)

    render(root, 0)
    return "\n".join(lines)


def verify_architecture(root: Component) -> list[str]:
    """Check global consistency; returns a list of violation descriptions
    (empty means the architecture is sound).

    Invariants checked:

    * parent/child links are mutually consistent;
    * component names are unique within a composite;
    * every *started* component has all mandatory client interfaces bound;
    * no binding dangles on a component in the FAILED state.
    """
    problems: list[str] = []
    for comp in iter_components(root):
        if comp.is_composite():
            names = [s.name for s in comp.content_controller.sub_components()]
            if len(set(names)) != len(names):
                problems.append(f"{comp.name}: duplicate sub-component names")
            for sub in comp.content_controller.sub_components():
                if sub.parent is not comp and comp not in sub.shared_parents:
                    problems.append(
                        f"{sub.name}: parent link points to "
                        f"{sub.parent.name if sub.parent else None}, "
                        f"expected {comp.name}"
                    )
        lc = comp.lifecycle_controller
        bc = comp.binding_controller
        if lc.state is LifecycleState.STARTED:
            for itype in comp.client_interface_types():
                if itype.is_mandatory() and not bc.bound_instances(itype.name):
                    problems.append(
                        f"{comp.name}: started with mandatory interface "
                        f"{itype.name!r} unbound"
                    )
        for inst, server in bc.list_bindings().items():
            if server.component.lifecycle_controller.state is LifecycleState.FAILED:
                problems.append(
                    f"{comp.name}.{inst}: bound to failed component "
                    f"{server.component.name}"
                )
    return problems
