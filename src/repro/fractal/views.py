"""Alternative architectural points of view (§3.2).

"Manage complex environments with different points of view.  For instance,
using appropriate composite components, it is possible to represent the
network topology, the configuration of the J2EE middleware, or the
configuration of an application on the J2EE middleware."

A *view* is a composite whose sub-components are **shared** references to
components that primarily live in the application hierarchy: the same
Apache component appears both under the ``j2ee`` middleware composite and
under its node's composite in the topology view.  Views are therefore
always consistent with the real architecture (they reference, never copy),
and an administration program can navigate whichever decomposition suits
its task.
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cluster.node import Node
from repro.fractal.component import Component
from repro.fractal.introspection import iter_components


def build_view(
    name: str,
    root: Component,
    group_of: Callable[[Component], Optional[str]],
) -> Component:
    """Build a view composite grouping the hierarchy's primitives.

    ``group_of`` maps a component to a group label (or None to leave it out
    of the view).  Each distinct label becomes a nested composite holding
    shared references, in first-encounter order.
    """
    view = Component(name, composite=True)
    groups: dict[str, Component] = {}
    for comp in iter_components(root):
        if comp.is_composite():
            continue
        label = group_of(comp)
        if label is None:
            continue
        group = groups.get(label)
        if group is None:
            group = Component(f"{name}:{label}", composite=True)
            groups[label] = group
            view.content_controller.add(group)
        group.content_controller.add(comp, shared=True)
    return view


def topology_view(root: Component, name: str = "topology") -> Component:
    """The network-topology point of view: one composite per cluster node,
    containing (shared) every component whose wrapper runs on that node."""

    def node_label(comp: Component) -> Optional[str]:
        node = getattr(comp.content, "node", None)
        return node.name if isinstance(node, Node) else None

    return build_view(name, root, node_label)


def software_view(root: Component, name: str = "software") -> Component:
    """The middleware point of view: one composite per wrapper kind
    (apache / tomcat / mysql / cjdbc / plb...)."""

    def kind_label(comp: Component) -> Optional[str]:
        content = comp.content
        if content is None:
            return None
        kind = type(content).__name__
        return kind.removesuffix("Wrapper").lower() if kind.endswith("Wrapper") else None

    return build_view(name, root, kind_label)
