"""Jade: the autonomic management layer (the paper's contribution).

* :mod:`~repro.jade.deployment` — interprets ADL descriptions using the
  Cluster Manager and the Software Installation Service (§3.3);
* :mod:`~repro.jade.sensors`, :mod:`~repro.jade.reactors`,
  :mod:`~repro.jade.actuators` — the three component kinds of a control
  loop (§3.4);
* :mod:`~repro.jade.control_loop` — assembles them into Fractal composite
  components ("Jade administrates itself");
* :mod:`~repro.jade.self_optimization` — the resizing manager evaluated in
  §5 (two loops: application tier and database tier);
* :mod:`~repro.jade.self_recovery` — the repair manager of Fig. 3;
* :mod:`~repro.jade.arbitration` — policy-conflict arbitration (the §7
  future-work item, implemented as an extension);
* :mod:`~repro.jade.system` — the managed-J2EE experiment harness that the
  benchmarks and examples drive.
"""

from repro.jade.actuators import TierManager
from repro.jade.arbitration import ArbitrationManager, Operation
from repro.jade.control_loop import ControlLoop, InhibitionLock
from repro.jade.deployment import DeploymentService
from repro.jade.latency_optimization import LatencyOptimizationManager, SloReactor
from repro.jade.manager_adl import (
    SELF_OPTIMIZATION_ADL,
    finalize_manager,
    management_factory_registry,
)
from repro.jade.planner import PlannerReactor
from repro.jade.reactors import (
    AdaptiveThresholdReactor,
    PolicyReactor,
    ThresholdReactor,
)
from repro.jade.rolling import RollingRebind, rolling_rebind
from repro.jade.self_optimization import SelfOptimizationManager
from repro.jade.self_recovery import SelfRecoveryManager
from repro.jade.sensors import (
    CpuProbe,
    CpuReading,
    HeartbeatSensor,
    LatencyReading,
    LatencySensor,
    UtilizationSampler,
)
from repro.jade.system import ExperimentConfig, ManagedSystem
from repro.jade.three_tier import ThreeTierSystem

__all__ = [
    "AdaptiveThresholdReactor",
    "ArbitrationManager",
    "ControlLoop",
    "CpuProbe",
    "CpuReading",
    "DeploymentService",
    "ExperimentConfig",
    "HeartbeatSensor",
    "InhibitionLock",
    "LatencyOptimizationManager",
    "LatencyReading",
    "LatencySensor",
    "ManagedSystem",
    "Operation",
    "PlannerReactor",
    "PolicyReactor",
    "RollingRebind",
    "SELF_OPTIMIZATION_ADL",
    "SelfOptimizationManager",
    "SelfRecoveryManager",
    "SloReactor",
    "ThreeTierSystem",
    "ThresholdReactor",
    "TierManager",
    "UtilizationSampler",
    "finalize_manager",
    "management_factory_registry",
    "rolling_rebind",
]
