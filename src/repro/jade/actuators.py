"""Actuators.

"Actuators represent the individual mechanisms necessary to implement
reconfiguration operations, e.g. allocating a new node to a cluster of
replicas, adding/removing a replica to the cluster of replicated servers,
updating connections between the tiers." (§3.4)

"Thanks to the uniform management interface provided by Jade, the actuators
are generic, since increasing or decreasing the number of replicas of an
application is implemented as adding or removing components in the
application structure." (§4.1)

:class:`TierManager` bundles those mechanisms for one replicated tier.  It
is generic: the same code resizes the Tomcat tier (bind/unbind on PLB's
``workers`` interface) and the MySQL tier (bind/unbind on C-JDBC's
``backends`` interface, where the wrapper performs the recovery-log
synchronization).  The paper's grow sequence — allocate node, install
software if necessary, reconcile state, integrate with the load balancer —
is implemented verbatim, with simulated durations.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from repro.cluster.allocator import ClusterManager, NoFreeNodeError
from repro.cluster.installer import SoftwareInstallationService
from repro.cluster.node import Node
from repro.fractal.component import Component
from repro.metrics.collector import MetricsCollector
from repro.obs.events import (
    NodeAllocated,
    NodeFailed,
    NodeReleased,
    ReconfigCompleted,
    ReconfigStarted,
)
from repro.simulation.kernel import SimKernel
from repro.simulation.process import Process, sleep, wait

ReadyCheck = Callable[["ReplicaRecord"], bool]


class ReplicaRecord:
    """One replica of a managed tier."""

    __slots__ = ("component", "node", "binding_instance", "version")

    def __init__(self, component: Component, node: Node, binding_instance: Optional[str]):
        self.component = component
        self.node = node
        self.binding_instance = binding_instance
        #: server configuration version (None = stable baseline; set by
        #: the deploy subsystem when the replica runs a pushed version)
        self.version = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Replica {self.component.name} on {self.node.name}>"


class TierManager:
    """Generic resize/repair actuator for one replicated tier."""

    def __init__(
        self,
        kernel: SimKernel,
        tier_name: str,
        composite: Component,
        balancer: Component,
        balancer_itf: str,
        replica_itf: str,
        factory: Callable[..., Component],
        cluster: ClusterManager,
        installer: Optional[SoftwareInstallationService] = None,
        package: Optional[str] = None,
        replica_attributes: Optional[dict[str, Any]] = None,
        bindings_template: Optional[list[tuple[str, Any]]] = None,
        factory_context: Optional[dict[str, Any]] = None,
        collector: Optional[MetricsCollector] = None,
        ready_check: Optional[ReadyCheck] = None,
        drain_delay_s: float = 1.0,
        arbitration: Optional[object] = None,
        name_prefix: Optional[str] = None,
    ) -> None:
        self.kernel = kernel
        self.tier_name = tier_name
        self.composite = composite
        self.balancer = balancer
        self.balancer_itf = balancer_itf
        self.replica_itf = replica_itf
        self.factory = factory
        self.cluster = cluster
        self.installer = installer
        self.package = package
        self.replica_attributes = dict(replica_attributes or {})
        self.bindings_template = list(bindings_template or [])
        self.factory_context = dict(factory_context or {})
        self.collector = collector
        self.ready_check = ready_check
        self.drain_delay_s = drain_delay_s
        self.arbitration = arbitration
        self.name_prefix = name_prefix or tier_name
        self.replicas: list[ReplicaRecord] = []
        self.busy = False
        #: optional decision tracer (set by the assembled system)
        self.tracer = None
        #: component names under a planned bounce: excluded from
        #: ``servers()``/``active_nodes()`` so the heartbeat sensor does
        #: not "repair" a replica the deploy subsystem stopped on purpose
        self.maintenance: set[str] = set()
        #: version stamped on replicas grown from now on (None = stable)
        self.current_version = None
        #: optional hook applied to each newly active replica record
        #: (the deploy subsystem installs the version's effects here)
        self.version_applier: Optional[Callable[[ReplicaRecord], None]] = None
        self._next_id = 1
        self.grows_completed = 0
        self.shrinks_completed = 0
        self.repairs_completed = 0
        self.grow_failures = 0
        #: callbacks fired when a reconfiguration completes (the control
        #: loop resets its moving average here: samples taken against the
        #: previous configuration no longer describe the system)
        self.on_reconfigured: list[Callable[[], None]] = []

    # ------------------------------------------------------------------
    @property
    def replica_count(self) -> int:
        return len(self.replicas)

    def nodes(self) -> list[Node]:
        return [r.node for r in self.replicas]

    def active_nodes(self) -> list[Node]:
        """Nodes of replicas that are actually serving (a database replica
        replaying the recovery log is excluded: its CPU is saturated by the
        synchronization, not by client load, and including it would bias the
        probe into re-triggering growth; replicas quarantined for a planned
        bounce are excluded for the same reason)."""
        records = [
            r for r in self.replicas if r.component.name not in self.maintenance
        ]
        if self.ready_check is None:
            return [r.node for r in records]
        return [r.node for r in records if self.ready_check(r)]

    def components(self) -> list[Component]:
        return [r.component for r in self.replicas]

    def servers(self) -> list[object]:
        """The legacy server behind each replica (for heartbeat sensors).
        Replicas under planned maintenance are skipped: a deliberately
        stopped server must not trip the failure detector into a spurious
        repair mid-bounce."""
        return [
            r.component.content.server
            for r in self.replicas
            if getattr(r.component.content, "server", None) is not None
            and r.component.name not in self.maintenance
        ]

    # ------------------------------------------------------------------
    def adopt(self, component: Component, node: Node, binding_instance: Optional[str]) -> None:
        """Register an initially-deployed replica with the manager."""
        if any(r.component is component for r in self.replicas):
            raise ValueError(f"{component.name} already managed")
        self.replicas.append(ReplicaRecord(component, node, binding_instance))
        self._next_id = max(self._next_id, len(self.replicas) + 1)
        self._record_count()

    # ------------------------------------------------------------------
    # Grow
    # ------------------------------------------------------------------
    def grow(self) -> bool:
        """Start adding one replica.  Returns False (and does nothing) if a
        reconfiguration is already running, arbitration denies the
        operation, or no node is free; True once the asynchronous sequence
        has started."""
        if self.busy:
            return False
        if self.arbitration is not None and not self.arbitration.request(
            "grow", self.tier_name
        ):
            return False
        try:
            node = self.cluster.allocate(f"tier:{self.tier_name}")
        except NoFreeNodeError:
            self.grow_failures += 1
            self._event("grow-failed: no free node")
            if self.tracer is not None:
                self.tracer.emit(
                    NodeFailed(
                        self.kernel.now,
                        node="",
                        owner=f"tier:{self.tier_name}",
                        reason="no-free-node",
                    )
                )
            return False
        self.busy = True
        start_seq = None
        if self.tracer is not None:
            self.tracer.emit(
                NodeAllocated(
                    self.kernel.now,
                    node=node.name,
                    owner=f"tier:{self.tier_name}",
                )
            )
            start_seq = self.tracer.emit(
                ReconfigStarted(
                    self.kernel.now,
                    tier=self.tier_name,
                    operation="grow",
                    replicas=self.replica_count,
                )
            )
        Process(
            self.kernel,
            self._grow_seq(node, start_seq, self.kernel.now),
            name=f"grow:{self.tier_name}",
        )
        return True

    def _grow_seq(self, node: Node, start_seq=None, start_t: float = 0.0):
        name = f"{self.name_prefix}{self._next_id}"
        self._next_id += 1
        self._event(f"grow: allocating {node.name} for {name}")
        try:
            # 1. Install the software if necessary (§4.1).
            if self.installer is not None and self.package is not None:
                yield wait(self.installer.install(self.package, node))
            # 2. Create and wire the replica component.
            component = self.factory(
                name, dict(self.replica_attributes), node=node, **self.factory_context
            )
            self.composite.content_controller.add(component)
            for itf_name, target in self.bindings_template:
                component.bind(itf_name, target)
            # 3. Start the legacy server (simulated start-script duration).
            startup = getattr(component.content, "startup_time_s", 1.0)
            yield sleep(startup)
            component.start()
            # 4. Integrate with the load balancer; for the database tier
            #    the wrapper triggers recovery-log state reconciliation.
            instance = self.balancer.bind(
                self.balancer_itf, component.get_interface(self.replica_itf)
            )
            record = ReplicaRecord(component, node, instance)
            record.version = self.current_version
            self.replicas.append(record)
            if record.version is not None and self.version_applier is not None:
                self.version_applier(record)
            # 5. Wait until the replica is actually serving (DB sync).
            if self.ready_check is not None:
                while not self.ready_check(record):
                    yield sleep(1.0)
            self.grows_completed += 1
            self._record_count()
            self._event(f"grow: {name} active on {node.name}")
            if self.tracer is not None:
                self.tracer.emit(
                    ReconfigCompleted(
                        self.kernel.now,
                        tier=self.tier_name,
                        operation="grow",
                        duration_s=self.kernel.now - start_t,
                        replica_delta=1,
                        replicas=self.replica_count,
                        cause=start_seq,
                    )
                )
            self._notify_reconfigured()
        except Exception as exc:  # noqa: BLE001 - surfaced as an event
            self.grow_failures += 1
            self._event(f"grow-failed: {exc}")
            try:
                self.cluster.release(node)
            except ValueError:
                pass
            if self.tracer is not None:
                self.tracer.emit(
                    NodeReleased(
                        self.kernel.now,
                        node=node.name,
                        owner=f"tier:{self.tier_name}",
                        cause=start_seq,
                    )
                )
                self.tracer.emit(
                    ReconfigCompleted(
                        self.kernel.now,
                        tier=self.tier_name,
                        operation="grow",
                        duration_s=self.kernel.now - start_t,
                        replica_delta=0,
                        replicas=self.replica_count,
                        ok=False,
                        error=str(exc),
                        cause=start_seq,
                    )
                )
        finally:
            self.busy = False
            if self.arbitration is not None:
                self.arbitration.complete("grow", self.tier_name)

    # ------------------------------------------------------------------
    # Shrink
    # ------------------------------------------------------------------
    def shrink(self, record: Optional[ReplicaRecord] = None) -> bool:
        """Start removing a replica — the most recently added one by
        default, or a specific ``record`` (how the deploy subsystem
        retires old-version replicas during a crossover bounce)."""
        if self.busy or len(self.replicas) <= 1:
            return False
        if record is not None and record not in self.replicas:
            return False
        if self.arbitration is not None and not self.arbitration.request(
            "shrink", self.tier_name
        ):
            return False
        self.busy = True
        before = self.replica_count
        if record is None:
            record = self.replicas.pop()
        else:
            self.replicas.remove(record)
        start_seq = None
        if self.tracer is not None:
            start_seq = self.tracer.emit(
                ReconfigStarted(
                    self.kernel.now,
                    tier=self.tier_name,
                    operation="shrink",
                    replicas=before,
                )
            )
        Process(
            self.kernel,
            self._shrink_seq(record, start_seq, self.kernel.now),
            name=f"shrink:{self.tier_name}",
        )
        return True

    def _shrink_seq(self, record: ReplicaRecord, start_seq=None, start_t: float = 0.0):
        name = record.component.name
        self._event(f"shrink: retiring {name}")
        try:
            # 1. Unbind from the load balancer (checkpoint for a DB replica).
            if record.binding_instance is not None:
                self.balancer.unbind(record.binding_instance)
            # 2. Let in-flight work drain, then stop the replica.
            yield sleep(self.drain_delay_s)
            record.component.stop()
            self.composite.content_controller.remove(record.component)
            # 3. Release the node if no longer used (software stays
            #    installed: "deploy the required software ... if necessary").
            self.cluster.release(record.node)
            self.shrinks_completed += 1
            self._record_count()
            self._event(f"shrink: {name} released {record.node.name}")
            if self.tracer is not None:
                self.tracer.emit(
                    NodeReleased(
                        self.kernel.now,
                        node=record.node.name,
                        owner=f"tier:{self.tier_name}",
                        cause=start_seq,
                    )
                )
                self.tracer.emit(
                    ReconfigCompleted(
                        self.kernel.now,
                        tier=self.tier_name,
                        operation="shrink",
                        duration_s=self.kernel.now - start_t,
                        replica_delta=-1,
                        replicas=self.replica_count,
                        cause=start_seq,
                    )
                )
            self._notify_reconfigured()
        finally:
            self.busy = False
            if self.arbitration is not None:
                self.arbitration.complete("shrink", self.tier_name)

    # ------------------------------------------------------------------
    # Repair (used by the self-recovery manager)
    # ------------------------------------------------------------------
    def repair(self, failed_component: Component) -> bool:
        """Replace a crashed replica: clean up the architecture, then grow
        back onto a fresh node."""
        record = next(
            (r for r in self.replicas if r.component is failed_component), None
        )
        if record is None:
            return False
        if self.arbitration is not None and not self.arbitration.request(
            "repair", self.tier_name
        ):
            return False
        self.replicas.remove(record)
        self._record_count()
        self._event(f"repair: {record.component.name} failed on {record.node.name}")
        failed_seq = None
        if self.tracer is not None:
            failed_seq = self.tracer.emit(
                NodeFailed(
                    self.kernel.now,
                    node=record.node.name,
                    owner=f"tier:{self.tier_name}",
                    reason="crashed",
                )
            )
        # Clean the management layer: mark failed, drop bindings, remove.
        record.component.lifecycle_controller.fail()
        if record.binding_instance is not None:
            try:
                self.balancer.unbind(record.binding_instance)
            except Exception:  # noqa: BLE001 - binding may be half-dead
                pass
        record.component.lifecycle_controller.stop()
        self.composite.content_controller.remove(record.component)
        self.cluster.discard(record.node)
        if self.arbitration is not None:
            self.arbitration.complete("repair", self.tier_name)
        if failed_seq is not None:
            # The replacement grow is caused by the node failure.
            self.tracer.push_cause(failed_seq)
            try:
                started = self.grow()
            finally:
                self.tracer.pop_cause()
        else:
            started = self.grow()
        if started:
            self.repairs_completed += 1
        return started

    # ------------------------------------------------------------------
    def _notify_reconfigured(self) -> None:
        for callback in list(self.on_reconfigured):
            callback()

    def _record_count(self) -> None:
        if self.collector is not None:
            self.collector.record_replicas(
                self.tier_name, self.kernel.now, self.replica_count
            )

    def _event(self, description: str) -> None:
        if self.collector is not None:
            self.collector.record_reconfiguration(
                self.kernel.now, f"[{self.tier_name}] {description}"
            )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<TierManager {self.tier_name} x{self.replica_count}>"
