"""Policy arbitration (extension).

§7: "we intend to work on the problem of conflicting autonomic policies.
Managers have their own goal and control loops and therefore require a way
to arbitrate potential conflicts."

This manager implements the conflicts that actually arise between the
self-recovery and self-optimization managers sharing tiers and a node pool:

* **repair preempts** — while a repair is active on a tier, optimization
  may neither grow nor shrink that tier (the repair's own grow must win the
  race for the last free node);
* **no shrink after repair** — for ``post_repair_cooldown_s`` after a
  repair completes on a tier, shrink decisions on it are denied (the CPU
  dip caused by the outage would otherwise trigger a bogus downsize);
* **one operation per tier** — overlapping operations on one tier are
  serialized.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.simulation.kernel import SimKernel

_PRIORITY = {"repair": 3, "grow": 2, "shrink": 1}


@dataclass
class Operation:
    """A granted management operation."""

    kind: str
    tier: str
    started_at: float


class ArbitrationManager:
    """Grants or denies management operations."""

    def __init__(
        self,
        kernel: SimKernel,
        post_repair_cooldown_s: float = 120.0,
    ) -> None:
        self.kernel = kernel
        self.post_repair_cooldown_s = post_repair_cooldown_s
        self._active: dict[str, Operation] = {}  # tier -> op
        self._last_repair_end: dict[str, float] = {}
        self.granted: list[Operation] = []
        self.denied: list[tuple[float, str, str, str]] = []  # (t, kind, tier, why)

    # ------------------------------------------------------------------
    def request(self, kind: str, tier: str) -> bool:
        """Ask permission to run ``kind`` on ``tier``."""
        if kind not in _PRIORITY:
            raise ValueError(f"unknown operation kind {kind!r}")
        now = self.kernel.now
        active = self._active.get(tier)
        if active is not None:
            if _PRIORITY[kind] > _PRIORITY[active.kind] and kind == "repair":
                # Repair preempts a pending optimization (the optimization
                # operation keeps running, but repair is also admitted: it
                # targets a *different* replica by construction).
                pass
            else:
                self._deny(kind, tier, f"{active.kind} already active")
                return False
        if kind == "shrink":
            last_repair = self._last_repair_end.get(tier)
            if last_repair is not None and now - last_repair < self.post_repair_cooldown_s:
                self._deny(kind, tier, "post-repair cooldown")
                return False
        op = Operation(kind, tier, now)
        self._active[tier] = op
        self.granted.append(op)
        return True

    def complete(self, kind: str, tier: str) -> None:
        """Report the end of a granted operation."""
        active = self._active.get(tier)
        if active is not None and active.kind == kind:
            del self._active[tier]
        if kind == "repair":
            self._last_repair_end[tier] = self.kernel.now

    # ------------------------------------------------------------------
    def active_operation(self, tier: str) -> Operation | None:
        return self._active.get(tier)

    def _deny(self, kind: str, tier: str, why: str) -> None:
        self.denied.append((self.kernel.now, kind, tier, why))
