"""Control-loop assembly.

"Each autonomic manager in Jade is based on a control loop that includes
sensor, actuator and analysis/decision components ... Sensors, Actuators
and Reactors are implemented as Fractal components, which allows reusing
and combining them to assemble specific autonomic managers.  Moreover,
this allows autonomic managers to be deployed and managed using the same
Jade framework (Jade administrates itself)." (§3.4)

:func:`ControlLoop.build` therefore wraps the sensor / reactor / actuator
content objects in primitive Fractal components, binds them
sensor→reactor→actuator, and nests them in a composite — the manager can
be introspected, stopped and restarted through the exact same uniform
interface as the managed J2EE servers.
"""

from __future__ import annotations

from typing import Optional

from repro.fractal.component import Component
from repro.fractal.interfaces import CLIENT, MANDATORY, SERVER, InterfaceType
from repro.jade.actuators import TierManager
from repro.jade.reactors import ThresholdReactor
from repro.jade.sensors import CpuProbe, CpuReading
from repro.obs.events import InhibitionAcquired, InhibitionRejected
from repro.simulation.kernel import SimKernel


class InhibitionLock:
    """Global reconfiguration inhibition (§5.2): once a reconfiguration is
    triggered by *any* loop, every loop is inhibited for ``duration_s``."""

    def __init__(self, kernel: SimKernel, duration_s: float = 60.0) -> None:
        if duration_s < 0:
            raise ValueError("duration must be >= 0")
        self.kernel = kernel
        self.duration_s = duration_s
        self._until = -1.0
        self.acquisitions = 0
        self.rejections = 0
        #: optional decision tracer (set by the assembled system)
        self.tracer = None

    def try_acquire(self, who: str = "") -> bool:
        """Acquire if free; holds for ``duration_s`` from now.  ``who``
        names the acquiring loop in the decision trace."""
        now = self.kernel.now
        if now < self._until:
            self.rejections += 1
            if self.tracer is not None:
                self.tracer.emit(
                    InhibitionRejected(now, by=who, free_at=self._until)
                )
            return False
        self._until = now + self.duration_s
        self.acquisitions += 1
        if self.tracer is not None:
            self.tracer.emit(InhibitionAcquired(now, by=who, until=self._until))
        return True

    @property
    def held(self) -> bool:
        return self.kernel.now < self._until

    @property
    def free_at(self) -> float:
        return self._until


class _SensorShell:
    """Content of a sensor component: forwards probe readings through the
    component's ``notify`` client interface."""

    def __init__(self, probe: CpuProbe) -> None:
        self.probe = probe
        self.component: Optional[Component] = None
        probe.subscribe(self._push)

    def attached(self, component: Component) -> None:
        self.component = component

    def on_start(self, component: Component) -> None:
        self.probe.on_start()

    def on_stop(self, component: Component) -> None:
        self.probe.on_stop()

    def _push(self, reading: CpuReading) -> None:
        assert self.component is not None
        if not self.component.lifecycle_controller.is_started():
            return
        self.component.get_interface("notify").invoke("on_reading", reading)


class _ReactorShell:
    """Content of a reactor component: receives readings on its ``readings``
    server interface and delegates decisions to the threshold logic."""

    def __init__(self, reactor: ThresholdReactor) -> None:
        self.reactor = reactor

    def on_reading(self, reading: CpuReading) -> None:
        self.reactor.on_reading(reading)


class _ActuatorShell:
    """Content of an actuator component exposing the generic resize
    operations of the tier manager."""

    def __init__(self, tier: TierManager) -> None:
        self.tier = tier

    def grow(self) -> bool:
        return self.tier.grow()

    def shrink(self) -> bool:
        return self.tier.shrink()

    def replica_count(self) -> int:
        return self.tier.replica_count


class _TierThroughInterface:
    """Adapter making the reactor actuate *through* the Fractal ``actuate``
    binding rather than by direct reference — the management operations
    really traverse the component architecture (and are therefore
    observable/rebindable like any other binding)."""

    def __init__(self, reactor_component: Component) -> None:
        self._component = reactor_component

    def _itf(self):
        return self._component.get_interface("actuate")

    def grow(self) -> bool:
        return self._itf().invoke("grow")

    def shrink(self) -> bool:
        return self._itf().invoke("shrink")

    @property
    def replica_count(self) -> int:
        return self._itf().invoke("replica_count")


class ControlLoop:
    """One assembled feedback loop (a composite Fractal component)."""

    def __init__(
        self,
        composite: Component,
        probe: CpuProbe,
        reactor: ThresholdReactor,
        tier: TierManager,
    ) -> None:
        self.composite = composite
        self.probe = probe
        self.reactor = reactor
        self.tier = tier

    @classmethod
    def build(
        cls,
        kernel: SimKernel,
        name: str,
        probe: CpuProbe,
        reactor: ThresholdReactor,
        tier: TierManager,
    ) -> "ControlLoop":
        """Assemble sensor → reactor → actuator components in a composite."""
        sensor_comp = Component(
            f"{name}-sensor",
            interface_types=[
                InterfaceType(
                    "notify", "readings", role=CLIENT, contingency=MANDATORY
                ),
            ],
            content=_SensorShell(probe),
        )
        reactor_comp = Component(
            f"{name}-reactor",
            interface_types=[
                InterfaceType("readings", "readings", role=SERVER),
                InterfaceType(
                    "actuate", "resize", role=CLIENT, contingency=MANDATORY
                ),
            ],
            content=_ReactorShell(reactor),
        )
        actuator_comp = Component(
            f"{name}-actuator",
            interface_types=[InterfaceType("resize", "resize", role=SERVER)],
            content=_ActuatorShell(tier),
        )
        sensor_comp.bind("notify", reactor_comp.get_interface("readings"))
        reactor_comp.bind("actuate", actuator_comp.get_interface("resize"))
        # Route the reactor's decisions through the actuate binding.
        reactor.tier = _TierThroughInterface(reactor_comp)
        # The loop's name identifies the reactor in decision traces.
        reactor.name = name
        # Reconfigurations invalidate the probe's history: samples taken
        # against the previous replica set no longer describe the system.
        reactor.probe = probe
        tier.on_reconfigured.append(probe.window.reset)
        composite = Component(name, composite=True)
        for sub in (sensor_comp, reactor_comp, actuator_comp):
            composite.content_controller.add(sub)
        return cls(composite, probe, reactor, tier)

    def start(self) -> None:
        self.composite.start()

    def stop(self) -> None:
        self.composite.stop()

    @property
    def running(self) -> bool:
        return self.composite.lifecycle_controller.is_started()


# Public aliases: the ADL-based manager deployment (repro.jade.manager_adl)
# builds the same shells around sensors/reactors/actuators.
SensorShell = _SensorShell
ReactorShell = _ReactorShell
ActuatorShell = _ActuatorShell
TierThroughInterface = _TierThroughInterface
