"""Deployment service.

"The deployment of an application is the interpretation of an ADL
description, using the Software Installation Service and the Cluster
Manager to deploy application's components on nodes." (§3.3)

:meth:`DeploymentService.deploy` turns an
:class:`~repro.fractal.adl.ArchitectureDescription` into a live component
hierarchy: it allocates one node per replica from the Cluster Manager,
triggers package installation, instantiates components through the factory
registry, expands ``replicas="N"`` specs into N components, and applies the
declared bindings (a binding whose server side is replicated fans out to
every replica — that is how an ADL wires a load balancer to its workers).
"""

from __future__ import annotations

from typing import Any, Optional

from repro.cluster.allocator import ClusterManager
from repro.cluster.installer import SoftwareInstallationService
from repro.cluster.network import Lan
from repro.cluster.node import Node
from repro.fractal.adl import (
    AdlError,
    ArchitectureDescription,
    ComponentFactoryRegistry,
    ComponentSpec,
)
from repro.fractal.component import Component
from repro.legacy.directory import Directory
from repro.simulation.kernel import SimKernel


class DeployedApplication:
    """The result of a deployment: the root composite plus lookup maps."""

    def __init__(self, root: Component, description: ArchitectureDescription):
        self.root = root
        self.description = description
        self.components: dict[str, list[Component]] = {}
        self.nodes: dict[str, Node] = {}  # component name -> its node

    def instances(self, spec_name: str) -> list[Component]:
        """All replicas deployed for an ADL component spec."""
        return list(self.components.get(spec_name, []))

    def instance(self, spec_name: str) -> Component:
        """The unique replica of a spec (raises if replicated)."""
        instances = self.instances(spec_name)
        if len(instances) != 1:
            raise KeyError(
                f"{spec_name!r} has {len(instances)} instances, expected 1"
            )
        return instances[0]

    def node_of(self, component: Component) -> Node:
        return self.nodes[component.name]

    def start(self) -> None:
        self.root.start()

    def stop(self) -> None:
        self.root.stop()


class DeploymentService:
    """Interprets ADL descriptions against the cluster."""

    def __init__(
        self,
        kernel: SimKernel,
        registry: ComponentFactoryRegistry,
        cluster: ClusterManager,
        directory: Directory,
        installer: Optional[SoftwareInstallationService] = None,
        lan: Optional[Lan] = None,
        extra_context: Optional[dict[str, Any]] = None,
    ) -> None:
        self.kernel = kernel
        self.registry = registry
        self.cluster = cluster
        self.directory = directory
        self.installer = installer
        self.lan = lan
        #: additional keyword context handed to every factory (used when
        #: deploying the administration software itself, whose factories
        #: need references to tiers, locks... — §3.3 deploys Jade's own
        #: managers through the same ADL pipeline)
        self.extra_context = dict(extra_context or {})

    # ------------------------------------------------------------------
    def deploy(self, description: ArchitectureDescription) -> DeployedApplication:
        """Instantiate the architecture.  Components are created and bound
        but *not* started; call :meth:`DeployedApplication.start`."""
        root = Component(description.name, composite=True)
        app = DeployedApplication(root, description)
        self._virtual_nodes: dict[str, Node] = {}
        for spec in description.components:
            self._deploy_spec(spec, root, app)
        for binding in description.bindings:
            self._apply_binding(binding, app)
        del self._virtual_nodes
        return app

    # ------------------------------------------------------------------
    def _deploy_spec(
        self, spec: ComponentSpec, parent: Component, app: DeployedApplication
    ) -> None:
        if spec.composite:
            composite = Component(spec.name, composite=True)
            parent.content_controller.add(composite)
            app.components.setdefault(spec.name, []).append(composite)
            for child in spec.children:
                self._deploy_spec(child, composite, app)
            return
        for i in range(spec.replicas):
            name = spec.name if spec.replicas == 1 else f"{spec.name}{i + 1}"
            node = self._node_for(spec, i)
            if self.installer is not None and spec.package is not None:
                # Fire the installation; the simulated install time elapses
                # as the kernel runs (before any server starts serving).
                self.installer.install(spec.package, node)
            component = self.registry.create(
                spec.ctype,
                name,
                dict(spec.attributes),
                kernel=self.kernel,
                node=node,
                directory=self.directory,
                lan=self.lan,
                **self.extra_context,
            )
            parent.content_controller.add(component)
            app.components.setdefault(spec.name, []).append(component)
            app.nodes[name] = node

    def _node_for(self, spec: ComponentSpec, replica_idx: int) -> Node:
        if spec.virtual_node is not None:
            key = f"{spec.virtual_node}:{replica_idx}"
            node = self._virtual_nodes.get(key)
            if node is None:
                node = self.cluster.allocate(f"vnode:{key}")
                self._virtual_nodes[key] = node
            return node
        return self.cluster.allocate(f"adl:{spec.name}[{replica_idx}]")

    # ------------------------------------------------------------------
    def _apply_binding(self, binding, app: DeployedApplication) -> None:
        clients = app.instances(binding.client_component)
        servers = app.instances(binding.server_component)
        if not clients or not servers:
            raise AdlError(
                f"binding {binding.client} -> {binding.server}: "
                "missing deployed instances"
            )
        for client in clients:
            itype = client.interface_type(binding.client_interface)
            if itype is None:
                raise AdlError(
                    f"{client.name} has no interface {binding.client_interface!r}"
                )
            if len(servers) > 1 and not itype.is_collection():
                raise AdlError(
                    f"binding {binding.client} -> {binding.server}: singleton "
                    f"client interface cannot bind {len(servers)} replicas"
                )
            for server in servers:
                client.bind(
                    binding.client_interface,
                    server.get_interface(binding.server_interface),
                )
