"""Latency-SLO self-optimization (extension).

§4.2 notes that "a sensor specific to optimization may provide an estimator
of the response-time to client requests" — the paper used CPU because "the
CPU was known to be the bottleneck resource".  This manager closes the loop
on what users actually feel instead: one :class:`SloReactor` watches the
smoothed end-to-end latency and, because latency is not attributable to a
single tier, *localizes* the bottleneck before actuating:

* SLO violated  → grow the tier whose nodes show the highest current CPU;
* latency far under the SLO → shrink the least-utilized over-provisioned
  tier.

The same inhibition/fresh-evidence machinery as the CPU loops prevents
oscillation.  Benchmarked against the CPU-threshold manager in
``benchmarks/bench_ext_latency_slo.py``.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.fractal.component import Component
from repro.jade.actuators import TierManager
from repro.jade.control_loop import InhibitionLock
from repro.jade.sensors import LatencyReading, LatencySensor, UtilizationSampler
from repro.metrics.collector import MetricsCollector
from repro.obs.events import DecisionAction
from repro.policy import LatencyBandPolicy, Policy, PolicyInputs
from repro.simulation.kernel import SimKernel


class SloReactor:
    """Latency-band policy on end-to-end latency with bottleneck
    localization.

    The *judgment* (is the smoothed latency out of band?) is delegated to
    a :class:`~repro.policy.LatencyBandPolicy` plugin; the localization —
    *which* tier grows or shrinks — stays here, because latency is not
    attributable to a single tier.
    """

    def __init__(
        self,
        kernel: SimKernel,
        tiers: Sequence[TierManager],
        inhibition: InhibitionLock,
        max_latency_s: float,
        min_latency_s: float,
        min_replicas: int = 1,
        warmup_samples: int = 5,
        fresh_samples_required: int = 30,
        policy: Optional[Policy] = None,
    ) -> None:
        if not tiers:
            raise ValueError("need at least one tier to manage")
        self.kernel = kernel
        self.tiers = list(tiers)
        self.inhibition = inhibition
        # LatencyBandPolicy validates the band (0 <= min < max).
        self.policy = policy or LatencyBandPolicy(
            max_latency_s=max_latency_s, min_latency_s=min_latency_s
        )
        self.policy_state = self.policy.initial_state()
        self.min_replicas = min_replicas
        self.warmup_samples = warmup_samples
        self.fresh_samples_required = fresh_samples_required
        self.sensor: Optional[LatencySensor] = None
        self._sampler = UtilizationSampler()
        self._samples_seen = 0
        self.grows_triggered = 0
        self.shrinks_triggered = 0
        self.decisions_suppressed = 0

    @property
    def max_latency_s(self) -> float:
        return self.policy.max_latency_s

    @property
    def min_latency_s(self) -> float:
        return self.policy.min_latency_s

    # ------------------------------------------------------------------
    def on_reading(self, reading: LatencyReading) -> None:
        self._samples_seen += 1
        if self._samples_seen < self.warmup_samples:
            return
        if (
            self.sensor is not None
            and self.sensor.window.sample_count < self.fresh_samples_required
            and self._samples_seen > self.fresh_samples_required
        ):
            return
        inputs = PolicyInputs(
            t=reading.t,
            smoothed=reading.smoothed,
            raw=reading.raw,
            node_count=reading.sample_count,
            replicas=sum(t.replica_count for t in self.tiers),
            min_replicas=self.min_replicas,
            max_replicas=None,
            tier="slo",
        )
        decision = self.policy.decide(inputs, self.policy_state)
        if decision.action == DecisionAction.GROW:
            self._grow_bottleneck()
        elif decision.action == DecisionAction.SHRINK:
            self._shrink_idlest()

    # ------------------------------------------------------------------
    def _tier_utilization(self, tier: TierManager) -> float:
        nodes = [n for n in tier.active_nodes() if n.up]
        if not nodes:
            return 0.0
        return sum(self._sampler.sample(n) for n in nodes) / len(nodes)

    def _grow_bottleneck(self) -> None:
        candidates = [t for t in self.tiers if not t.busy]
        if not candidates:
            self.decisions_suppressed += 1
            return
        bottleneck = max(candidates, key=self._tier_utilization)
        if not self.inhibition.try_acquire():
            self.decisions_suppressed += 1
            return
        if bottleneck.grow():
            self.grows_triggered += 1
            self._reset_evidence()
        else:
            self.decisions_suppressed += 1

    def _shrink_idlest(self) -> None:
        candidates = [
            t
            for t in self.tiers
            if not t.busy and t.replica_count > self.min_replicas
        ]
        if not candidates:
            return
        idlest = min(candidates, key=self._tier_utilization)
        if not self.inhibition.try_acquire():
            self.decisions_suppressed += 1
            return
        if idlest.shrink():
            self.shrinks_triggered += 1
            self._reset_evidence()
        else:
            self.decisions_suppressed += 1

    def _reset_evidence(self) -> None:
        if self.sensor is not None:
            self.sensor.window.reset()


class LatencyOptimizationManager:
    """One SLO loop over all managed tiers ("Jade administrates itself":
    the sensor and reactor are wrapped in a composite component like the
    CPU loops)."""

    def __init__(
        self,
        kernel: SimKernel,
        tiers: Sequence[TierManager],
        collector: MetricsCollector,
        max_latency_s: float = 0.5,
        min_latency_s: float = 0.06,
        window_s: float = 60.0,
        inhibition_s: float = 60.0,
    ) -> None:
        self.kernel = kernel
        self.inhibition = InhibitionLock(kernel, inhibition_s)
        self.sensor = LatencySensor(kernel, collector.latencies, window_s=window_s)
        self.reactor = SloReactor(
            kernel,
            tiers,
            self.inhibition,
            max_latency_s=max_latency_s,
            min_latency_s=min_latency_s,
            fresh_samples_required=min(30, max(1, int(window_s))),
        )
        self.reactor.sensor = self.sensor
        self.sensor.subscribe(self.reactor.on_reading)
        self.composite = Component("latency-slo-manager", composite=True)
        self.composite.content_controller.add(
            Component("slo-sensor", content=self.sensor)
        )
        self.composite.content_controller.add(
            Component("slo-reactor", content=self.reactor)
        )

    def start(self) -> None:
        self.composite.start()
        self.sensor.on_start()

    def stop(self) -> None:
        self.sensor.on_stop()
        self.composite.stop()
