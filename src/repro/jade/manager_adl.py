"""Deploying the administration software itself from ADL (§3.3).

"The autonomic administration software is also described using this ADL
and deployed in the same way.  However, this description of the
administration software is separated from that of the application."

This module registers factories for the management component types —
``cpu-sensor``, ``threshold-reactor``, ``resize-actuator`` — so a manager
like the self-optimization loops can be written as an ADL document and
interpreted by the ordinary :class:`~repro.jade.deployment.DeploymentService`
(Jade administrates itself).  The factories need more context than the
legacy wrappers (the tier managers to actuate, the shared inhibition
lock); the deployment service provides it through ``extra_context``.

Example document (see :data:`SELF_OPTIMIZATION_ADL`)::

    <definition name="self-optimization">
      <component name="db-sensor" type="cpu-sensor">
    <virtual-node name="jade"/>
        <attribute name="tier" value="database"/>
        <attribute name="window_s" value="90"/>
      </component>
      <component name="db-reactor" type="threshold-reactor">
    <virtual-node name="jade"/> ... </component>
      <component name="db-actuator" type="resize-actuator">
    <virtual-node name="jade"/> ... </component>
      <binding client="db-sensor.notify" server="db-reactor.readings"/>
      <binding client="db-reactor.actuate" server="db-actuator.resize"/>
    </definition>
"""

from __future__ import annotations

from typing import Any

from repro.fractal.adl import ComponentFactoryRegistry
from repro.fractal.component import Component
from repro.fractal.interfaces import CLIENT, MANDATORY, SERVER, InterfaceType
from repro.jade.actuators import TierManager
from repro.jade.control_loop import (
    ActuatorShell,
    InhibitionLock,
    ReactorShell,
    SensorShell,
    TierThroughInterface,
)
from repro.jade.reactors import AdaptiveThresholdReactor, ThresholdReactor
from repro.jade.sensors import CpuProbe

#: the paper's self-optimization manager, as an ADL document
SELF_OPTIMIZATION_ADL = """
<definition name="self-optimization-manager">
  <component name="app-sensor" type="cpu-sensor">
    <virtual-node name="jade"/>
    <attribute name="tier" value="application"/>
    <attribute name="window_s" value="60"/>
  </component>
  <component name="app-reactor" type="threshold-reactor">
    <virtual-node name="jade"/>
    <attribute name="tier" value="application"/>
    <attribute name="max_threshold" value="0.80"/>
    <attribute name="min_threshold" value="0.38"/>
  </component>
  <component name="app-actuator" type="resize-actuator">
    <virtual-node name="jade"/>
    <attribute name="tier" value="application"/>
  </component>
  <component name="db-sensor" type="cpu-sensor">
    <virtual-node name="jade"/>
    <attribute name="tier" value="database"/>
    <attribute name="window_s" value="90"/>
  </component>
  <component name="db-reactor" type="threshold-reactor">
    <virtual-node name="jade"/>
    <attribute name="tier" value="database"/>
    <attribute name="max_threshold" value="0.75"/>
    <attribute name="min_threshold" value="0.40"/>
  </component>
  <component name="db-actuator" type="resize-actuator">
    <virtual-node name="jade"/>
    <attribute name="tier" value="database"/>
  </component>
  <binding client="app-sensor.notify" server="app-reactor.readings"/>
  <binding client="app-reactor.actuate" server="app-actuator.resize"/>
  <binding client="db-sensor.notify" server="db-reactor.readings"/>
  <binding client="db-reactor.actuate" server="db-actuator.resize"/>
</definition>
"""


def _tier_from(attributes: dict[str, Any], tiers: dict[str, TierManager]) -> TierManager:
    name = attributes.get("tier")
    if name not in tiers:
        raise ValueError(
            f"unknown tier {name!r}; available: {sorted(tiers)}"
        )
    return tiers[name]


def make_cpu_sensor(
    name: str,
    attributes: dict[str, Any],
    *,
    kernel,
    tiers: dict[str, TierManager],
    calibration=None,
    **_: Any,
) -> Component:
    """Factory for ADL type ``cpu-sensor``."""
    tier = _tier_from(attributes, tiers)
    probe = CpuProbe(
        kernel,
        nodes_provider=tier.active_nodes,
        window_s=float(attributes.get("window_s", 60.0)),
        period_s=float(attributes.get("period_s", 1.0)),
        probe_demand_s=(
            calibration.probe_demand_s if calibration is not None else 0.0004
        ),
        name=name,
    )
    return Component(
        name,
        interface_types=[
            InterfaceType("notify", "readings", role=CLIENT, contingency=MANDATORY)
        ],
        content=SensorShell(probe),
    )


def make_threshold_reactor(
    name: str,
    attributes: dict[str, Any],
    *,
    kernel,
    tiers: dict[str, TierManager],
    inhibition: InhibitionLock,
    **_: Any,
) -> Component:
    """Factory for ADL type ``threshold-reactor`` (set ``adaptive=true``
    for the self-adjusting variant)."""
    tier = _tier_from(attributes, tiers)
    adaptive = str(attributes.get("adaptive", "false")).lower() in ("true", "1")
    cls = AdaptiveThresholdReactor if adaptive else ThresholdReactor
    window = float(attributes.get("window_s", 60.0))
    reactor = cls(
        kernel,
        tier,
        inhibition,
        max_threshold=float(attributes.get("max_threshold", 0.80)),
        min_threshold=float(attributes.get("min_threshold", 0.35)),
        min_replicas=int(attributes.get("min_replicas", 1)),
        fresh_samples_required=min(30, max(1, int(window))),
    )
    return Component(
        name,
        interface_types=[
            InterfaceType("readings", "readings", role=SERVER),
            InterfaceType("actuate", "resize", role=CLIENT, contingency=MANDATORY),
        ],
        content=ReactorShell(reactor),
    )


def make_resize_actuator(
    name: str,
    attributes: dict[str, Any],
    *,
    tiers: dict[str, TierManager],
    **_: Any,
) -> Component:
    """Factory for ADL type ``resize-actuator``."""
    tier = _tier_from(attributes, tiers)
    return Component(
        name,
        interface_types=[InterfaceType("resize", "resize", role=SERVER)],
        content=ActuatorShell(tier),
    )


def management_factory_registry() -> ComponentFactoryRegistry:
    """Registry for the administration software's component types."""
    registry = ComponentFactoryRegistry()
    registry.register("cpu-sensor", make_cpu_sensor)
    registry.register("threshold-reactor", make_threshold_reactor)
    registry.register("resize-actuator", make_resize_actuator)
    return registry


def finalize_manager(app) -> None:
    """Post-deployment wiring the ADL cannot express: route each reactor's
    decisions through its ``actuate`` binding and register the probe reset
    on reconfiguration (same as :meth:`ControlLoop.build`)."""
    from repro.fractal.introspection import iter_components

    for component in iter_components(app.root):
        content = component.content
        if isinstance(content, ReactorShell):
            reactor = content.reactor
            reactor.tier_manager = reactor.tier  # keep the raw handle
            actuate = component.binding_controller.lookup("actuate")
            if actuate is None:
                raise ValueError(f"{component.name}: actuate is unbound")
            shell = actuate.delegate
            assert isinstance(shell, ActuatorShell)
            reactor.probe = _find_probe_for(app, component)
            shell.tier.on_reconfigured.append(reactor.probe.window.reset)
            reactor.tier = TierThroughInterface(component)


def _find_probe_for(app, reactor_component) -> CpuProbe:
    """The probe of the sensor bound to this reactor."""
    from repro.fractal.introspection import iter_components

    for component in iter_components(app.root):
        content = component.content
        if isinstance(content, SensorShell):
            target = component.binding_controller.lookup("notify")
            if target is not None and target.component is reactor_component:
                return content.probe
    raise ValueError(f"no sensor feeds {reactor_component.name}")
