"""Model-based capacity planning (extension).

The paper's reactor is purely *reactive*: it waits for the smoothed CPU to
cross a threshold, then changes the replica count by one.  §7 announces
work on "improving the self-optimizing algorithm".  A classic improvement
is *model-based* control: from the measured per-tier utilization and the
current replica count, estimate the tier's total demand rate and compute
the replica count that would place utilization at a target value —
then jump straight there.

For a tier with ``k`` replicas at measured (smoothed) utilization ``U``,
the offered CPU demand rate is ``D = U * k`` replica-equivalents.  To run
at target utilization ``U*`` the tier needs ``k* = ceil(D / U*)`` replicas.
Unlike the threshold reactor, the planner:

* can add or remove **several** replicas in one decision (fast ramps);
* self-adjusts its operating point (no min/max band to hand-tune — only
  the target ``U*`` and a hysteresis margin to avoid churn).
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

from repro.jade.sensors import CpuReading
from repro.obs.events import Decision, DecisionAction, DecisionReason
from repro.simulation.kernel import SimKernel

if TYPE_CHECKING:  # pragma: no cover
    from repro.jade.control_loop import InhibitionLock


class PlannerReactor:
    """Compute-and-jump capacity planner for one tier.

    Drop-in replacement for :class:`~repro.jade.reactors.ThresholdReactor`
    in a control loop (same ``on_reading`` / ``tier`` / ``probe``
    contract).
    """

    def __init__(
        self,
        kernel: SimKernel,
        tier,
        inhibition: "InhibitionLock",
        target_utilization: float = 0.60,
        hysteresis: float = 0.12,
        min_replicas: int = 1,
        max_replicas: Optional[int] = None,
        warmup_samples: int = 5,
        fresh_samples_required: int = 30,
        name: str = "planner",
    ) -> None:
        if not 0.0 < target_utilization < 1.0:
            raise ValueError("target utilization must be in (0, 1)")
        if hysteresis < 0.0:
            raise ValueError("hysteresis must be >= 0")
        if min_replicas < 1:
            raise ValueError("min_replicas must be >= 1")
        self.kernel = kernel
        self.tier = tier
        self.inhibition = inhibition
        self.target_utilization = target_utilization
        self.hysteresis = hysteresis
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.warmup_samples = warmup_samples
        self.fresh_samples_required = fresh_samples_required
        self.name = name
        self.probe = None
        #: optional decision tracer (set by the assembled system)
        self.tracer = None
        self._samples_seen = 0
        self.grows_triggered = 0
        self.shrinks_triggered = 0
        self.decisions_suppressed = 0
        self.no_data_decisions = 0
        self.plans: list[tuple[float, int, int]] = []  # (t, from, to)

    # ------------------------------------------------------------------
    def desired_replicas(self, utilization: float, current: int) -> int:
        """The plan: replicas needed to hit the target utilization."""
        demand = utilization * current
        # The epsilon absorbs float noise (0.2*3/0.6 must be 1, not 2).
        k = max(
            self.min_replicas,
            math.ceil(demand / self.target_utilization - 1e-9),
        )
        if self.max_replicas is not None:
            k = min(k, self.max_replicas)
        return k

    def on_reading(self, reading: CpuReading) -> None:
        self._samples_seen += 1
        if self._samples_seen < self.warmup_samples:
            return
        if reading.smoothed != reading.smoothed:  # NaN
            # math.ceil(NaN) would raise below; an empty tier or reset
            # window is an explicit no-data non-decision instead.
            self.no_data_decisions += 1
            self._emit(DecisionAction.NONE, False, DecisionReason.NO_DATA, reading)
            return
        if (
            self.probe is not None
            and self.probe.window.sample_count < self.fresh_samples_required
        ):
            return
        current = self.tier.replica_count
        # Hysteresis: only act when utilization leaves the comfort band
        # around the target (prevents ping-pong at plan boundaries).
        low = self.target_utilization - self.hysteresis
        high = self.target_utilization + self.hysteresis
        if low <= reading.smoothed <= high:
            return
        desired = self.desired_replicas(reading.smoothed, current)
        if desired == current:
            return
        if not self.inhibition.try_acquire(self.name):
            self.decisions_suppressed += 1
            self._emit(
                DecisionAction.GROW if desired > current else DecisionAction.SHRINK,
                False,
                DecisionReason.INHIBITED,
                reading,
            )
            return
        self.plans.append((self.kernel.now, current, desired))
        action = DecisionAction.GROW if desired > current else DecisionAction.SHRINK
        reason = (
            DecisionReason.ABOVE_MAX if desired > current else DecisionReason.BELOW_MIN
        )
        seq = self._emit(action, True, reason, reading)
        if seq is not None:
            self.tracer.push_cause(seq)
        try:
            ok = self.tier.grow() if desired > current else self.tier.shrink()
        finally:
            if seq is not None:
                self.tracer.pop_cause()
        if ok:
            if desired > current:
                self.grows_triggered += 1
            else:
                self.shrinks_triggered += 1
        else:
            self.decisions_suppressed += 1
            self._emit(
                action, False, DecisionReason.ACTUATOR_BUSY, reading, cause=seq
            )

    def _emit(
        self,
        action: str,
        executed: bool,
        reason: str,
        reading: CpuReading,
        cause: Optional[int] = None,
    ) -> Optional[int]:
        if self.tracer is None:
            return None
        return self.tracer.emit(
            Decision(
                self.kernel.now,
                source=self.name,
                action=action,
                executed=executed,
                reason=reason,
                smoothed=reading.smoothed,
                replicas=self.tier.replica_count,
                cause=cause,
            )
        )
