"""Reactors (analysis/decision components).

"The decision logic implemented to trigger such a reconfiguration is based
on thresholds on CPU loads provided by sensors ... The objective is to keep
the CPU usage value between these two thresholds." (§4.1, §5.2)

The shared :class:`~repro.jade.control_loop.InhibitionLock` implements "in
order to prevent oscillations, a reconfiguration started by one of the
control loops inhibits any new reconfiguration for a short period (one
minute)".
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.jade.sensors import CpuReading
from repro.obs.events import Decision, DecisionAction, DecisionReason
from repro.simulation.kernel import SimKernel

if TYPE_CHECKING:  # pragma: no cover
    from repro.jade.actuators import TierManager
    from repro.jade.control_loop import InhibitionLock


class ThresholdReactor:
    """The paper's threshold trigger for one tier.

    * smoothed CPU > ``max_threshold`` → grow the tier by one replica;
    * smoothed CPU < ``min_threshold`` → shrink by one (never below
      ``min_replicas``).

    A decision is suppressed while the shared inhibition lock is held or
    while the actuator is still executing a previous reconfiguration.
    """

    def __init__(
        self,
        kernel: SimKernel,
        tier: "TierManager",
        inhibition: "InhibitionLock",
        max_threshold: float = 0.80,
        min_threshold: float = 0.35,
        min_replicas: int = 1,
        max_replicas: Optional[int] = None,
        warmup_samples: int = 5,
        fresh_samples_required: int = 30,
        name: str = "reactor",
    ) -> None:
        if not 0.0 <= min_threshold < max_threshold <= 1.0:
            raise ValueError(
                f"need 0 <= min < max <= 1, got ({min_threshold}, {max_threshold})"
            )
        if min_replicas < 1:
            raise ValueError("min_replicas must be >= 1")
        self.kernel = kernel
        self.tier = tier
        self.inhibition = inhibition
        self.name = name
        self.max_threshold = max_threshold
        self.min_threshold = min_threshold
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.warmup_samples = warmup_samples
        #: samples that must accumulate after a moving-average reset before
        #: the reactor decides again (fresh evidence about the *new*
        #: configuration)
        self.fresh_samples_required = fresh_samples_required
        #: the probe feeding this reactor (set by the control-loop
        #: assembly); when present, its moving average is reset whenever the
        #: tier reconfigures
        self.probe = None
        #: optional decision tracer (set by the assembled system)
        self.tracer = None
        self._samples_seen = 0
        self.grows_triggered = 0
        self.shrinks_triggered = 0
        self.decisions_suppressed = 0
        self.no_data_decisions = 0

    # -- the sensor pushes readings here -----------------------------------
    def on_reading(self, reading: CpuReading) -> None:
        self._samples_seen += 1
        if self._samples_seen < self.warmup_samples:
            return
        if reading.smoothed != reading.smoothed:  # NaN
            # An empty tier or a freshly-reset moving average yields NaN,
            # which would silently fail both threshold comparisons; make
            # the non-decision explicit instead.
            self.no_data_decisions += 1
            self._emit(
                DecisionAction.NONE, False, DecisionReason.NO_DATA, reading
            )
            return
        if (
            self.probe is not None
            and self.probe.window.sample_count < self.fresh_samples_required
        ):
            return
        if reading.smoothed > self.max_threshold:
            self._try_grow(reading)
        elif reading.smoothed < self.min_threshold:
            self._try_shrink(reading)

    # ------------------------------------------------------------------
    def _emit(
        self,
        action: str,
        executed: bool,
        reason: str,
        reading: CpuReading,
        cause: Optional[int] = None,
    ) -> Optional[int]:
        if self.tracer is None:
            return None
        return self.tracer.emit(
            Decision(
                self.kernel.now,
                source=self.name,
                action=action,
                executed=executed,
                reason=reason,
                smoothed=reading.smoothed,
                replicas=self.tier.replica_count,
                cause=cause,
            )
        )

    def _actuate(self, operation, action: str, reading: CpuReading) -> bool:
        """Emit the executed decision, then actuate under its causal scope
        (the actuator's ReconfigStarted/NodeAllocated events link back to
        the decision).  A rejected actuation is recorded as a follow-up
        suppressed decision caused by the retracted one."""
        seq = self._emit(action, True, (
            DecisionReason.ABOVE_MAX
            if action == DecisionAction.GROW
            else DecisionReason.BELOW_MIN
        ), reading)
        if seq is None:
            return operation()
        self.tracer.push_cause(seq)
        try:
            ok = operation()
        finally:
            self.tracer.pop_cause()
        if not ok:
            self._emit(
                action, False, DecisionReason.ACTUATOR_BUSY, reading, cause=seq
            )
        return ok

    def _try_grow(self, reading: CpuReading) -> None:
        if self.max_replicas is not None and self.tier.replica_count >= self.max_replicas:
            self.decisions_suppressed += 1
            self._emit(
                DecisionAction.GROW, False, DecisionReason.AT_CAP, reading
            )
            return
        if not self.inhibition.try_acquire(self.name):
            self.decisions_suppressed += 1
            self._emit(
                DecisionAction.GROW, False, DecisionReason.INHIBITED, reading
            )
            return
        if not self._actuate(self.tier.grow, DecisionAction.GROW, reading):
            self.decisions_suppressed += 1
            return
        self.grows_triggered += 1

    def _try_shrink(self, reading: CpuReading) -> None:
        if self.tier.replica_count <= self.min_replicas:
            # Symmetric with the at-cap path above: a shrink suppressed at
            # the replica floor counts (and is traced) too.
            self.decisions_suppressed += 1
            self._emit(
                DecisionAction.SHRINK, False, DecisionReason.AT_FLOOR, reading
            )
            return
        if not self.inhibition.try_acquire(self.name):
            self.decisions_suppressed += 1
            self._emit(
                DecisionAction.SHRINK, False, DecisionReason.INHIBITED, reading
            )
            return
        if not self._actuate(self.tier.shrink, DecisionAction.SHRINK, reading):
            self.decisions_suppressed += 1
            return
        self.shrinks_triggered += 1


class AdaptiveThresholdReactor(ThresholdReactor):
    """Extension (§7 future work: "improving the self-optimizing algorithm
    by setting incrementally and dynamically its parameters").

    Detects oscillation — a grow and a shrink within ``oscillation_window_s``
    of each other — and widens the dead band by lowering ``min_threshold``
    (down to ``min_floor``).  When no oscillation occurs for
    ``relax_after_s``, the band narrows back towards its initial width.
    """

    def __init__(
        self,
        *args,
        oscillation_window_s: float = 300.0,
        widen_step: float = 0.05,
        relax_after_s: float = 900.0,
        min_floor: float = 0.10,
        **kwargs,
    ) -> None:
        super().__init__(*args, **kwargs)
        self.oscillation_window_s = oscillation_window_s
        self.widen_step = widen_step
        self.relax_after_s = relax_after_s
        self.min_floor = min_floor
        self._initial_min = self.min_threshold
        self._last_grow_t: Optional[float] = None
        self._last_shrink_t: Optional[float] = None
        self._last_adapt_t = 0.0
        self.adaptations = 0

    def _try_grow(self, reading: CpuReading) -> None:
        before = self.grows_triggered
        super()._try_grow(reading)
        if self.grows_triggered > before:
            self._last_grow_t = self.kernel.now
            self._maybe_adapt()

    def _try_shrink(self, reading: CpuReading) -> None:
        before = self.shrinks_triggered
        super()._try_shrink(reading)
        if self.shrinks_triggered > before:
            self._last_shrink_t = self.kernel.now
            self._maybe_adapt()

    def _maybe_adapt(self) -> None:
        now = self.kernel.now
        if (
            self._last_grow_t is not None
            and self._last_shrink_t is not None
            and abs(self._last_grow_t - self._last_shrink_t) <= self.oscillation_window_s
        ):
            # Oscillating: widen the dead band.
            self.min_threshold = max(
                self.min_floor, self.min_threshold - self.widen_step
            )
            self._last_adapt_t = now
            self.adaptations += 1
            # Consume the pair so one oscillation adapts once.
            self._last_grow_t = None
            self._last_shrink_t = None
        elif (
            now - self._last_adapt_t > self.relax_after_s
            and self.min_threshold < self._initial_min
        ):
            self.min_threshold = min(
                self._initial_min, self.min_threshold + self.widen_step / 2.0
            )
            self._last_adapt_t = now
            self.adaptations += 1
