"""Reactors (analysis/decision components).

"The decision logic implemented to trigger such a reconfiguration is based
on thresholds on CPU loads provided by sensors ... The objective is to keep
the CPU usage value between these two thresholds." (§4.1, §5.2)

The shared :class:`~repro.jade.control_loop.InhibitionLock` implements "in
order to prevent oscillations, a reconfiguration started by one of the
control loops inhibits any new reconfiguration for a short period (one
minute)".

Since the policy-plugin refactor the *judgment* lives in
:mod:`repro.policy` plugins; the generic :class:`PolicyReactor` here owns
only the mechanics every loop shares — warm-up, NaN handling, the
fresh-evidence gate, the inhibition lock, actuation, tracing, counters.
:class:`ThresholdReactor` / :class:`AdaptiveThresholdReactor` are the
paper's reactors re-expressed as thin shells over the ``threshold`` /
``adaptive-threshold`` plugins, byte-identical to their pre-refactor
selves (enforced by ``tests/test_policy.py``).
"""

from __future__ import annotations

import dataclasses
from typing import TYPE_CHECKING, Optional

from repro.jade.sensors import CpuReading
from repro.obs.events import Decision, DecisionAction, DecisionReason, PolicyDecided
from repro.policy import (
    AdaptiveThresholdPolicy,
    Policy,
    PolicyDecision,
    PolicyInputs,
    ThresholdPolicy,
)
from repro.simulation.kernel import SimKernel

if TYPE_CHECKING:  # pragma: no cover
    from repro.jade.actuators import TierManager
    from repro.jade.control_loop import InhibitionLock


class PolicyReactor:
    """Generic analysis/decision component for one tier.

    Feeds every sensor reading through a :class:`repro.policy.Policy`
    plugin and executes its verdict:

    * ``grow``   → one replica added (never above ``max_replicas``);
    * ``shrink`` → one replica removed (never below ``min_replicas``);
    * ``hold``   → nothing.

    A decision is suppressed while the shared inhibition lock is held or
    while the actuator is still executing a previous reconfiguration.
    """

    def __init__(
        self,
        kernel: SimKernel,
        tier: "TierManager",
        inhibition: "InhibitionLock",
        policy: Policy,
        min_replicas: int = 1,
        max_replicas: Optional[int] = None,
        warmup_samples: int = 5,
        fresh_samples_required: int = 30,
        name: str = "reactor",
    ) -> None:
        if min_replicas < 1:
            raise ValueError("min_replicas must be >= 1")
        self.kernel = kernel
        self.tier = tier
        self.inhibition = inhibition
        self.name = name
        self.policy = policy
        self.policy_state = policy.initial_state()
        self.min_replicas = min_replicas
        self.max_replicas = max_replicas
        self.warmup_samples = warmup_samples
        #: samples that must accumulate after a moving-average reset before
        #: the reactor decides again (fresh evidence about the *new*
        #: configuration)
        self.fresh_samples_required = fresh_samples_required
        #: the probe feeding this reactor (set by the control-loop
        #: assembly); when present, its moving average is reset whenever the
        #: tier reconfigures
        self.probe = None
        #: optional decision tracer (set by the assembled system)
        self.tracer = None
        self._samples_seen = 0
        self.grows_triggered = 0
        self.shrinks_triggered = 0
        self.decisions_suppressed = 0
        self.no_data_decisions = 0

    # -- the sensor pushes readings here -----------------------------------
    def on_reading(self, reading: CpuReading) -> None:
        self._samples_seen += 1
        if self._samples_seen < self.warmup_samples:
            return
        if reading.smoothed != reading.smoothed:  # NaN
            # An empty tier or a freshly-reset moving average yields NaN,
            # which no policy can judge; make the non-decision explicit
            # instead of handing plugins a poisoned value.
            self.no_data_decisions += 1
            self._emit(
                DecisionAction.NONE, False, DecisionReason.NO_DATA, reading
            )
            return
        if (
            self.probe is not None
            and self.probe.window.sample_count < self.fresh_samples_required
        ):
            return
        inputs = PolicyInputs(
            t=reading.t,
            smoothed=reading.smoothed,
            raw=reading.raw,
            node_count=reading.node_count,
            replicas=self.tier.replica_count,
            min_replicas=self.min_replicas,
            max_replicas=self.max_replicas,
            tier=self.name,
        )
        decision = self.policy.decide(inputs, self.policy_state)
        if decision.is_hold:
            return
        # The policy verdict is recorded as a sibling of the Decision that
        # follows (not its causal parent): the established causal chain
        # reconfig-completed -> reconfig-started -> decision stays intact
        # for every existing trace consumer.
        self._emit_policy(decision, inputs)
        if decision.action == DecisionAction.GROW:
            self._try_grow(reading, decision)
        elif decision.action == DecisionAction.SHRINK:
            self._try_shrink(reading, decision)

    # ------------------------------------------------------------------
    def _emit_policy(
        self, decision: PolicyDecision, inputs: PolicyInputs
    ) -> Optional[int]:
        if self.tracer is None:
            return None
        return self.tracer.emit(
            PolicyDecided(
                self.kernel.now,
                source=self.name,
                policy=self.policy.name,
                action=decision.action,
                reason=decision.reason,
                inputs_digest=inputs.digest(),
            )
        )

    def _emit(
        self,
        action: str,
        executed: bool,
        reason: str,
        reading: CpuReading,
        cause: Optional[int] = None,
    ) -> Optional[int]:
        if self.tracer is None:
            return None
        return self.tracer.emit(
            Decision(
                self.kernel.now,
                source=self.name,
                action=action,
                executed=executed,
                reason=reason,
                smoothed=reading.smoothed,
                replicas=self.tier.replica_count,
                cause=cause,
            )
        )

    def _actuate(
        self, operation, action: str, reason: str, reading: CpuReading
    ) -> bool:
        """Emit the executed decision, then actuate under its causal scope
        (the actuator's ReconfigStarted/NodeAllocated events link back to
        the decision).  A rejected actuation is recorded as a follow-up
        suppressed decision caused by the retracted one."""
        seq = self._emit(action, True, reason, reading)
        if seq is None:
            return operation()
        self.tracer.push_cause(seq)
        try:
            ok = operation()
        finally:
            self.tracer.pop_cause()
        if not ok:
            self._emit(
                action, False, DecisionReason.ACTUATOR_BUSY, reading, cause=seq
            )
        return ok

    def _try_grow(self, reading: CpuReading, decision: PolicyDecision) -> None:
        if self.max_replicas is not None and self.tier.replica_count >= self.max_replicas:
            self.decisions_suppressed += 1
            self._emit(
                DecisionAction.GROW, False, DecisionReason.AT_CAP, reading
            )
            return
        if not self.inhibition.try_acquire(self.name):
            self.decisions_suppressed += 1
            self._emit(
                DecisionAction.GROW, False, DecisionReason.INHIBITED, reading
            )
            return
        if not self._actuate(
            self.tier.grow, DecisionAction.GROW, decision.reason, reading
        ):
            self.decisions_suppressed += 1
            return
        self.grows_triggered += 1
        self.policy.on_actuated(
            DecisionAction.GROW, self.kernel.now, self.policy_state
        )

    def _try_shrink(self, reading: CpuReading, decision: PolicyDecision) -> None:
        if self.tier.replica_count <= self.min_replicas:
            # Symmetric with the at-cap path above: a shrink suppressed at
            # the replica floor counts (and is traced) too.
            self.decisions_suppressed += 1
            self._emit(
                DecisionAction.SHRINK, False, DecisionReason.AT_FLOOR, reading
            )
            return
        if not self.inhibition.try_acquire(self.name):
            self.decisions_suppressed += 1
            self._emit(
                DecisionAction.SHRINK, False, DecisionReason.INHIBITED, reading
            )
            return
        if not self._actuate(
            self.tier.shrink, DecisionAction.SHRINK, decision.reason, reading
        ):
            self.decisions_suppressed += 1
            return
        self.shrinks_triggered += 1
        self.policy.on_actuated(
            DecisionAction.SHRINK, self.kernel.now, self.policy_state
        )


class ThresholdReactor(PolicyReactor):
    """The paper's threshold trigger for one tier.

    * smoothed CPU > ``max_threshold`` → grow the tier by one replica;
    * smoothed CPU < ``min_threshold`` → shrink by one (never below
      ``min_replicas``).

    Kept as a constructor-compatible shell over the ``threshold`` policy
    plugin: every pre-refactor call site (three-tier assembly, ADL
    attributes, tests) builds it exactly as before.
    """

    def __init__(
        self,
        kernel: SimKernel,
        tier: "TierManager",
        inhibition: "InhibitionLock",
        max_threshold: float = 0.80,
        min_threshold: float = 0.35,
        min_replicas: int = 1,
        max_replicas: Optional[int] = None,
        warmup_samples: int = 5,
        fresh_samples_required: int = 30,
        name: str = "reactor",
        policy: Optional[Policy] = None,
    ) -> None:
        if policy is None:
            policy = ThresholdPolicy(
                max_threshold=max_threshold, min_threshold=min_threshold
            )
        super().__init__(
            kernel,
            tier,
            inhibition,
            policy,
            min_replicas=min_replicas,
            max_replicas=max_replicas,
            warmup_samples=warmup_samples,
            fresh_samples_required=fresh_samples_required,
            name=name,
        )

    # The thresholds stay reachable as attributes (benchmarks and the
    # proactive manager read them; a few tests adjust them mid-run).
    @property
    def max_threshold(self) -> float:
        return self.policy.max_threshold

    @max_threshold.setter
    def max_threshold(self, value: float) -> None:
        self.policy = dataclasses.replace(self.policy, max_threshold=value)

    @property
    def min_threshold(self) -> float:
        return self.policy.min_threshold

    @min_threshold.setter
    def min_threshold(self, value: float) -> None:
        self.policy = dataclasses.replace(self.policy, min_threshold=value)


class AdaptiveThresholdReactor(ThresholdReactor):
    """Extension (§7 future work: "improving the self-optimizing algorithm
    by setting incrementally and dynamically its parameters").

    Detects oscillation — a grow and a shrink within ``oscillation_window_s``
    of each other — and widens the dead band by lowering ``min_threshold``
    (down to ``min_floor``, itself clamped into ``[0, min_threshold]`` so a
    large ``widen_step`` can never push the live threshold below zero).
    When no oscillation occurs for ``relax_after_s``, the band narrows back
    towards its initial width.
    """

    def __init__(
        self,
        *args,
        oscillation_window_s: float = 300.0,
        widen_step: float = 0.05,
        relax_after_s: float = 900.0,
        min_floor: float = 0.10,
        max_threshold: float = 0.80,
        min_threshold: float = 0.35,
        **kwargs,
    ) -> None:
        policy = AdaptiveThresholdPolicy(
            max_threshold=max_threshold,
            min_threshold=min_threshold,
            oscillation_window_s=oscillation_window_s,
            widen_step=widen_step,
            relax_after_s=relax_after_s,
            min_floor=min_floor,
        )
        super().__init__(*args, policy=policy, **kwargs)

    @property
    def oscillation_window_s(self) -> float:
        return self.policy.oscillation_window_s

    @property
    def widen_step(self) -> float:
        return self.policy.widen_step

    @property
    def relax_after_s(self) -> float:
        return self.policy.relax_after_s

    @property
    def min_floor(self) -> float:
        return self.policy.min_floor

    @property
    def adaptations(self) -> int:
        return self.policy_state.adaptations

    # The *live* (adapted) threshold is runtime state, not a parameter.
    @property
    def min_threshold(self) -> float:
        return self.policy_state.min_threshold

    @min_threshold.setter
    def min_threshold(self, value: float) -> None:
        self.policy_state.min_threshold = value

    @property
    def max_threshold(self) -> float:
        return self.policy.max_threshold

    @max_threshold.setter
    def max_threshold(self, value: float) -> None:
        self.policy = dataclasses.replace(self.policy, max_threshold=value)
