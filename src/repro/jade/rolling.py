"""Rolling reconfiguration of static bindings.

mod_jk's worker list is *static*: rebinding an Apache requires stopping it
(§5.1).  When a whole web tier must be repointed — e.g. a Tomcat replica
was added behind several Apaches — doing them all at once would black out
the site.  This actuator performs the paper's stop/unbind/bind/start
sequence **one frontend at a time**, waiting out each restart, so the
remaining replicas keep serving (their balancer skips the one that is
down).

This composes the paper's actuator vocabulary ("updating connections
between the tiers", §3.4) into a higher-level operation, using only the
uniform component interface.
"""

from __future__ import annotations

from typing import Sequence

from repro.fractal.component import Component
from repro.fractal.interfaces import Interface
from repro.simulation.kernel import SimKernel
from repro.simulation.process import Process, Signal, sleep


class RollingRebind:
    """Sequentially repoint a set of frontends' client interfaces."""

    def __init__(
        self,
        kernel: SimKernel,
        frontends: Sequence[Component],
        itf_name: str,
        targets: Sequence[Interface],
        settle_s: float = 1.0,
    ) -> None:
        if not frontends:
            raise ValueError("need at least one frontend")
        if not targets:
            raise ValueError("need at least one target")
        self.kernel = kernel
        self.frontends = list(frontends)
        self.itf_name = itf_name
        self.targets = list(targets)
        self.settle_s = settle_s
        self.done = Signal(kernel)
        self.restarted = 0

    def start(self) -> "RollingRebind":
        """Begin the rolling sequence; ``done`` fires when every frontend
        has been restarted against the new target set."""
        Process(self.kernel, self._sequence(), name="rolling-rebind")
        return self

    def _sequence(self):
        for frontend in self.frontends:
            was_started = frontend.lifecycle_controller.is_started()
            frontend.stop()
            bc = frontend.binding_controller
            bc.unbind_all(self.itf_name)
            for target in self.targets:
                frontend.bind(self.itf_name, target)
            startup = getattr(frontend.content, "startup_time_s", 1.0)
            yield sleep(startup)
            if was_started:
                frontend.start()
            self.restarted += 1
            # Let the restarted replica take load before touching the next.
            yield sleep(self.settle_s)
        self.done.succeed(self)


def rolling_rebind(
    kernel: SimKernel,
    frontends: Sequence[Component],
    itf_name: str,
    targets: Sequence[Interface],
    settle_s: float = 1.0,
) -> RollingRebind:
    """Convenience wrapper: build and start a :class:`RollingRebind`."""
    return RollingRebind(kernel, frontends, itf_name, targets, settle_s).start()
