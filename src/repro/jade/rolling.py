"""Rolling reconfiguration of static bindings.

mod_jk's worker list is *static*: rebinding an Apache requires stopping it
(§5.1).  When a whole web tier must be repointed — e.g. a Tomcat replica
was added behind several Apaches — doing them all at once would black out
the site.  This actuator performs the paper's stop/unbind/bind/start
sequence **one frontend at a time**, waiting out each restart, so the
remaining replicas keep serving (their balancer skips the one that is
down).

This composes the paper's actuator vocabulary ("updating connections
between the tiers", §3.4) into a higher-level operation, using only the
uniform component interface.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence

from repro.fractal.component import Component
from repro.fractal.interfaces import Interface
from repro.simulation.kernel import SimKernel
from repro.simulation.process import Process, Signal, sleep


class RollingRebind:
    """Sequentially repoint a set of frontends' client interfaces.

    A frontend that was already stopped is rebound without the restart
    dance: no startup wait, no settle, no ``restarted`` increment — the
    rolling pass must never *start* a deliberately stopped replica.

    ``on_stopped`` (when given) runs on each frontend while it is down,
    between unbind and rebind — the hook the deploy subsystem uses to
    swap the server version during the outage window.

    Aborting the operation mid-flight (``Process.kill`` on the returned
    process, e.g. a cancelled deployment) must not strand the current
    frontend stopped and unbound: a ``finally`` clause restores its
    bindings and restarts it if it was running when the pass reached it.
    """

    def __init__(
        self,
        kernel: SimKernel,
        frontends: Sequence[Component],
        itf_name: str,
        targets: Sequence[Interface],
        settle_s: float = 1.0,
        on_stopped: Optional[Callable[[Component], None]] = None,
    ) -> None:
        if not frontends:
            raise ValueError("need at least one frontend")
        if not targets:
            raise ValueError("need at least one target")
        self.kernel = kernel
        self.frontends = list(frontends)
        self.itf_name = itf_name
        self.targets = list(targets)
        self.settle_s = settle_s
        self.on_stopped = on_stopped
        self.done = Signal(kernel)
        self.restarted = 0
        self.process: Optional[Process] = None

    def start(self) -> "RollingRebind":
        """Begin the rolling sequence; ``done`` fires when every frontend
        has been restarted against the new target set."""
        self.process = Process(self.kernel, self._sequence(), name="rolling-rebind")
        return self

    def _rebind(self, frontend: Component) -> None:
        frontend.binding_controller.unbind_all(self.itf_name)
        for target in self.targets:
            frontend.bind(self.itf_name, target)

    def _sequence(self):
        for frontend in self.frontends:
            was_started = frontend.lifecycle_controller.is_started()
            restored = False
            try:
                frontend.stop()
                self._rebind(frontend)
                if self.on_stopped is not None:
                    self.on_stopped(frontend)
                if not was_started:
                    # Deliberately stopped replica: repoint only, never
                    # start it, and skip the restart/settle waits.
                    restored = True
                    continue
                startup = getattr(frontend.content, "startup_time_s", 1.0)
                yield sleep(startup)
                frontend.start()
                restored = True
                self.restarted += 1
                # Let the restarted replica take load before touching the
                # next.
                yield sleep(self.settle_s)
            finally:
                if not restored:
                    # Aborted mid-restart (the generator was closed while
                    # waiting): never leave the frontend stopped+unbound.
                    if not frontend.binding_controller.bound_instances(
                        self.itf_name
                    ):
                        self._rebind(frontend)
                    if was_started and not frontend.lifecycle_controller.is_started():
                        frontend.start()
        if not self.done.fired:
            self.done.succeed(self)


def rolling_rebind(
    kernel: SimKernel,
    frontends: Sequence[Component],
    itf_name: str,
    targets: Sequence[Interface],
    settle_s: float = 1.0,
) -> RollingRebind:
    """Convenience wrapper: build and start a :class:`RollingRebind`."""
    return RollingRebind(kernel, frontends, itf_name, targets, settle_s).start()
