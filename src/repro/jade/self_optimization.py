"""The self-optimization manager (§4, §5).

Two control loops — one for the replicated application-server tier, one for
the replicated database tier — each assembled from a CPU probe (1 s period,
60 s / 90 s moving averages), a threshold reactor (0.80 / 0.35 defaults)
and the generic tier actuator.  The loops run independently but share one
:class:`~repro.jade.control_loop.InhibitionLock` (60 s), exactly as in
§5.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.fractal.component import Component
from repro.jade.actuators import TierManager
from repro.jade.control_loop import ControlLoop, InhibitionLock
from repro.jade.reactors import (
    AdaptiveThresholdReactor,
    PolicyReactor,
    ThresholdReactor,
)
from repro.jade.sensors import CpuProbe
from repro.policy import PolicyConfig
from repro.simulation.kernel import SimKernel
from repro.workload.calibration import DEFAULT_CALIBRATION, Calibration


@dataclass
class LoopConfig:
    """Per-tier loop parameters (paper defaults)."""

    window_s: float = 60.0          # moving-average span
    period_s: float = 1.0           # probe/control period
    max_threshold: float = 0.80
    min_threshold: float = 0.35
    min_replicas: int = 1
    max_replicas: Optional[int] = None
    probe_demand_s: float = 0.0004
    adaptive: bool = False          # use the AdaptiveThresholdReactor
    planner: bool = False           # use the model-based PlannerReactor
    planner_target: float = 0.60    # its target utilization
    planner_hysteresis: float = 0.12
    #: named policy plugin with parameter overrides (``repro.policy``);
    #: None = the legacy flags above pick the reactor.  Takes precedence
    #: over ``adaptive``/``planner`` when set.
    policy: Optional[PolicyConfig] = None


# §5.2: "the average CPU usage is computed over the last 60 seconds for the
# application servers and over the last 90 seconds for the database servers".
# Thresholds were "determined experimentally through specific benchmarks"
# and are tier-specific; these values place the reconfigurations at client
# populations close to the paper's Figure 5 (see EXPERIMENTS.md).
APP_LOOP_DEFAULTS = LoopConfig(window_s=60.0, max_threshold=0.80, min_threshold=0.38)
DB_LOOP_DEFAULTS = LoopConfig(window_s=90.0, max_threshold=0.75, min_threshold=0.40)


class SelfOptimizationManager:
    """Builds and owns the two resizing loops."""

    def __init__(
        self,
        kernel: SimKernel,
        app_tier: TierManager,
        db_tier: TierManager,
        inhibition_s: float = 60.0,
        app_config: Optional[LoopConfig] = None,
        db_config: Optional[LoopConfig] = None,
        calibration: Optional[Calibration] = None,
    ) -> None:
        self.kernel = kernel
        self.inhibition = InhibitionLock(kernel, inhibition_s)
        #: demand mix the model-based policies default their parameters
        #: from (the queue-model plugin solves its utilization target
        #: from the tier's calibrated service demand)
        self.calibration = calibration or DEFAULT_CALIBRATION
        self.loops: dict[str, ControlLoop] = {}
        self.composite = Component("self-optimization-manager", composite=True)
        self._build_loop("app", app_tier, app_config or APP_LOOP_DEFAULTS)
        self._build_loop("db", db_tier, db_config or DB_LOOP_DEFAULTS)

    def _build_loop(self, label: str, tier: TierManager, cfg: LoopConfig) -> None:
        probe = CpuProbe(
            self.kernel,
            nodes_provider=tier.active_nodes,
            window_s=cfg.window_s,
            period_s=cfg.period_s,
            probe_demand_s=cfg.probe_demand_s,
            name=f"probe-{label}",
        )
        reactor_cls = AdaptiveThresholdReactor if cfg.adaptive else ThresholdReactor
        # The post-reconfiguration fresh-evidence gate can never exceed the
        # number of samples the window can hold.
        fresh = min(30, max(1, int(cfg.window_s / cfg.period_s)))
        if cfg.policy is not None:
            reactor = self._policy_reactor(label, tier, cfg, fresh)
        elif cfg.planner:
            from repro.jade.planner import PlannerReactor

            reactor = PlannerReactor(
                self.kernel,
                tier,
                self.inhibition,
                target_utilization=cfg.planner_target,
                hysteresis=cfg.planner_hysteresis,
                min_replicas=cfg.min_replicas,
                max_replicas=cfg.max_replicas,
                fresh_samples_required=fresh,
            )
        else:
            reactor = reactor_cls(
                self.kernel,
                tier,
                self.inhibition,
                max_threshold=cfg.max_threshold,
                min_threshold=cfg.min_threshold,
                min_replicas=cfg.min_replicas,
                max_replicas=cfg.max_replicas,
                fresh_samples_required=fresh,
            )
        loop = ControlLoop.build(self.kernel, f"resize-{label}", probe, reactor, tier)
        self.loops[label] = loop
        self.composite.content_controller.add(loop.composite)

    def _policy_reactor(
        self, label: str, tier: TierManager, cfg: LoopConfig, fresh: int
    ):
        """Build the reactor for an explicit :class:`PolicyConfig`.

        The named threshold policies keep the dedicated reactor shells
        (their thresholds default to the loop's own band); every other
        plugin rides the generic :class:`PolicyReactor`, with model
        parameters defaulted from this loop's tier and the calibration.
        """
        pc = cfg.policy
        overrides = pc.as_dict()
        common = dict(
            min_replicas=cfg.min_replicas,
            max_replicas=cfg.max_replicas,
            fresh_samples_required=fresh,
        )
        if pc.name == "threshold":
            return ThresholdReactor(
                self.kernel,
                tier,
                self.inhibition,
                max_threshold=overrides.pop("max_threshold", cfg.max_threshold),
                min_threshold=overrides.pop("min_threshold", cfg.min_threshold),
                **common,
                **overrides,
            )
        if pc.name == "adaptive-threshold":
            return AdaptiveThresholdReactor(
                self.kernel,
                tier,
                self.inhibition,
                max_threshold=overrides.pop("max_threshold", cfg.max_threshold),
                min_threshold=overrides.pop("min_threshold", cfg.min_threshold),
                **common,
                **overrides,
            )
        defaults: dict = {}
        if pc.name == "queue-model":
            # Per-tier service demand from the calibrated mix: the app
            # tier's servlet work, the DB tier's read/write blend.
            cal = self.calibration
            defaults["service_demand_s"] = (
                cal.app_demand_total() if label == "app"
                else cal.effective_db_demand()
            )
        elif pc.name == "forecast":
            defaults["max_threshold"] = cfg.max_threshold
            defaults["min_threshold"] = cfg.min_threshold
        return PolicyReactor(
            self.kernel,
            tier,
            self.inhibition,
            pc.build(**defaults),
            **common,
        )

    # ------------------------------------------------------------------
    def start(self) -> None:
        self.composite.start()

    def stop(self) -> None:
        self.composite.stop()

    @property
    def app_loop(self) -> ControlLoop:
        return self.loops["app"]

    @property
    def db_loop(self) -> ControlLoop:
        return self.loops["db"]
