"""The self-optimization manager (§4, §5).

Two control loops — one for the replicated application-server tier, one for
the replicated database tier — each assembled from a CPU probe (1 s period,
60 s / 90 s moving averages), a threshold reactor (0.80 / 0.35 defaults)
and the generic tier actuator.  The loops run independently but share one
:class:`~repro.jade.control_loop.InhibitionLock` (60 s), exactly as in
§5.2.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.fractal.component import Component
from repro.jade.actuators import TierManager
from repro.jade.control_loop import ControlLoop, InhibitionLock
from repro.jade.reactors import AdaptiveThresholdReactor, ThresholdReactor
from repro.jade.sensors import CpuProbe
from repro.simulation.kernel import SimKernel


@dataclass
class LoopConfig:
    """Per-tier loop parameters (paper defaults)."""

    window_s: float = 60.0          # moving-average span
    period_s: float = 1.0           # probe/control period
    max_threshold: float = 0.80
    min_threshold: float = 0.35
    min_replicas: int = 1
    max_replicas: Optional[int] = None
    probe_demand_s: float = 0.0004
    adaptive: bool = False          # use the AdaptiveThresholdReactor
    planner: bool = False           # use the model-based PlannerReactor
    planner_target: float = 0.60    # its target utilization
    planner_hysteresis: float = 0.12


# §5.2: "the average CPU usage is computed over the last 60 seconds for the
# application servers and over the last 90 seconds for the database servers".
# Thresholds were "determined experimentally through specific benchmarks"
# and are tier-specific; these values place the reconfigurations at client
# populations close to the paper's Figure 5 (see EXPERIMENTS.md).
APP_LOOP_DEFAULTS = LoopConfig(window_s=60.0, max_threshold=0.80, min_threshold=0.38)
DB_LOOP_DEFAULTS = LoopConfig(window_s=90.0, max_threshold=0.75, min_threshold=0.40)


class SelfOptimizationManager:
    """Builds and owns the two resizing loops."""

    def __init__(
        self,
        kernel: SimKernel,
        app_tier: TierManager,
        db_tier: TierManager,
        inhibition_s: float = 60.0,
        app_config: Optional[LoopConfig] = None,
        db_config: Optional[LoopConfig] = None,
    ) -> None:
        self.kernel = kernel
        self.inhibition = InhibitionLock(kernel, inhibition_s)
        self.loops: dict[str, ControlLoop] = {}
        self.composite = Component("self-optimization-manager", composite=True)
        self._build_loop("app", app_tier, app_config or APP_LOOP_DEFAULTS)
        self._build_loop("db", db_tier, db_config or DB_LOOP_DEFAULTS)

    def _build_loop(self, label: str, tier: TierManager, cfg: LoopConfig) -> None:
        probe = CpuProbe(
            self.kernel,
            nodes_provider=tier.active_nodes,
            window_s=cfg.window_s,
            period_s=cfg.period_s,
            probe_demand_s=cfg.probe_demand_s,
            name=f"probe-{label}",
        )
        reactor_cls = AdaptiveThresholdReactor if cfg.adaptive else ThresholdReactor
        # The post-reconfiguration fresh-evidence gate can never exceed the
        # number of samples the window can hold.
        fresh = min(30, max(1, int(cfg.window_s / cfg.period_s)))
        if cfg.planner:
            from repro.jade.planner import PlannerReactor

            reactor = PlannerReactor(
                self.kernel,
                tier,
                self.inhibition,
                target_utilization=cfg.planner_target,
                hysteresis=cfg.planner_hysteresis,
                min_replicas=cfg.min_replicas,
                max_replicas=cfg.max_replicas,
                fresh_samples_required=fresh,
            )
        else:
            reactor = reactor_cls(
                self.kernel,
                tier,
                self.inhibition,
                max_threshold=cfg.max_threshold,
                min_threshold=cfg.min_threshold,
                min_replicas=cfg.min_replicas,
                max_replicas=cfg.max_replicas,
                fresh_samples_required=fresh,
            )
        loop = ControlLoop.build(self.kernel, f"resize-{label}", probe, reactor, tier)
        self.loops[label] = loop
        self.composite.content_controller.add(loop.composite)

    # ------------------------------------------------------------------
    def start(self) -> None:
        self.composite.start()

    def stop(self) -> None:
        self.composite.stop()

    @property
    def app_loop(self) -> ControlLoop:
        return self.loops["app"]

    @property
    def db_loop(self) -> ControlLoop:
        return self.loops["db"]
