"""The self-recovery manager (Fig. 3; repair algorithm after Bouchenak et
al., SRDS 2005).

A heartbeat sensor watches every replica of the managed tiers; when one
fails (its node crashed or its process died), the repair reactor asks the
tier's actuator to repair: clean the architecture, allocate a fresh node,
redeploy the software and re-integrate the replica — for a database replica
this includes recovery-log synchronization, so the repaired replica comes
back with consistent state.

Repairs that cannot run immediately (tier busy, no free node, arbitration
denial) stay queued and are retried every ``retry_period_s``.
"""

from __future__ import annotations

from typing import Optional

from repro.fractal.component import Component
from repro.jade.actuators import TierManager
from repro.jade.sensors import HeartbeatSensor
from repro.metrics.collector import MetricsCollector
from repro.obs.events import NodeFailed
from repro.simulation.kernel import PeriodicTask, SimKernel


class SelfRecoveryManager:
    """Failure detection + repair across a set of managed tiers."""

    def __init__(
        self,
        kernel: SimKernel,
        tiers: list[TierManager],
        collector: Optional[MetricsCollector] = None,
        detect_period_s: float = 1.0,
        retry_period_s: float = 5.0,
    ) -> None:
        self.kernel = kernel
        self.tiers = list(tiers)
        self.collector = collector
        self.retry_period_s = retry_period_s
        self.sensor = HeartbeatSensor(
            kernel, self._all_servers, period_s=detect_period_s
        )
        self.sensor.subscribe(self._on_failure)
        self._pending: list[tuple[TierManager, Component]] = []
        self._retry_task: Optional[PeriodicTask] = None
        self.failures_seen = 0
        self.repairs_started = 0
        #: optional progress-based detector (see ``attach_detector``)
        self.detector = None
        #: plain-data detection log: {"t", "component", "tier", "reason"}
        self.detections: list[dict] = []
        #: optional decision tracer (set by the assembled system)
        self.tracer = None
        # The manager is itself a component (Jade administrates itself).
        self.composite = Component("self-recovery-manager", composite=True)
        self.composite.content_controller.add(
            Component("recovery-sensor", content=self.sensor)
        )

    # ------------------------------------------------------------------
    def _all_servers(self):
        for tier in self.tiers:
            yield from tier.servers()

    def _tier_of(self, server: object) -> Optional[tuple[TierManager, Component]]:
        for tier in self.tiers:
            for record in tier.replicas:
                if getattr(record.component.content, "server", None) is server:
                    return tier, record.component
        return None

    # ------------------------------------------------------------------
    def attach_detector(self, detector) -> None:
        """Add a progress-based failure detector (e.g. the phi-accrual
        detector of :mod:`repro.chaos.detectors`) whose suspicions feed
        the same repair path as heartbeat failures.  The detector is
        started/stopped with the manager and administrated as a
        sub-component, like the heartbeat sensor."""
        self.detector = detector
        detector.subscribe(self._on_suspicion)
        self.composite.content_controller.add(
            Component("recovery-detector", content=detector)
        )

    def _on_failure(self, server: object) -> None:
        self._handle_failure(server, "heartbeat")

    def handle_interruption(self, server: object) -> None:
        """Drain path for spot interruption notices (:mod:`repro.market`):
        the market warns that the server's node will be reclaimed, so the
        replica is repaired *now* — unbound, discarded and regrown on a
        fresh node — instead of waiting for the crash at the deadline."""
        self._handle_failure(server, "spot-notice")

    def _on_suspicion(self, server: object, phi: float, reason: str) -> None:
        self._handle_failure(server, f"detector:{reason}")

    def _handle_failure(self, server: object, reason: str) -> None:
        located = self._tier_of(server)
        if located is None:
            return  # already repaired or not ours
        tier, component = located
        self.failures_seen += 1
        self.detections.append(
            {
                "t": self.kernel.now,
                "component": component.name,
                "tier": tier.tier_name,
                "reason": reason,
            }
        )
        if self.collector is not None:
            suffix = "" if reason == "heartbeat" else f" ({reason})"
            self.collector.record_reconfiguration(
                self.kernel.now,
                f"[recovery] detected failure of {component.name}{suffix}",
            )
        if self.tracer is not None:
            node = getattr(server, "node", None)
            seq = self.tracer.emit(
                NodeFailed(
                    self.kernel.now,
                    node=node.name if node is not None else "",
                    owner=f"tier:{tier.tier_name}",
                    reason=reason,
                )
            )
            self.tracer.push_cause(seq)
            try:
                repaired = tier.repair(component)
            finally:
                self.tracer.pop_cause()
        else:
            repaired = tier.repair(component)
        if repaired:
            self.repairs_started += 1
        else:
            self._pending.append((tier, component))

    def _retry(self) -> None:
        still_pending: list[tuple[TierManager, Component]] = []
        for tier, component in self._pending:
            # The replica may have been cleaned up already (repair() removes
            # it from the tier) — grow back if the tier is short-handed.
            if any(r.component is component for r in tier.replicas):
                if not tier.repair(component):
                    still_pending.append((tier, component))
                else:
                    self.repairs_started += 1
            else:
                if not tier.grow():
                    still_pending.append((tier, component))
                else:
                    self.repairs_started += 1
        self._pending = still_pending

    # ------------------------------------------------------------------
    def start(self) -> None:
        self.composite.start()
        self.sensor.on_start()
        if self.detector is not None:
            self.detector.on_start()
        if self._retry_task is None:
            self._retry_task = self.kernel.every(self.retry_period_s, self._retry)

    def stop(self) -> None:
        self.sensor.on_stop()
        if self.detector is not None:
            self.detector.on_stop()
        self.composite.stop()
        if self._retry_task is not None:
            self._retry_task.cancel()
            self._retry_task = None

    @property
    def pending_repairs(self) -> int:
        return len(self._pending)
