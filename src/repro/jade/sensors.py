"""Sensors.

"Sensors are responsible for the detection of the occurrence of a
particular event ... sensors must monitor and aggregate low-level
information such as CPU/memory usage, or higher-level information such as
client response times.  Sensors must be efficient and lightweight." (§3.4)

The CPU probe is the paper's workhorse: it samples per-node CPU utilization
every second, averages spatially over the tier's nodes and temporally with
a moving average (60 s for app servers, 90 s for databases — §5.2), and
pushes readings to its subscriber.  Sampling costs a small CPU job on each
sampled node, which is the source of Jade's (tiny) intrusivity in Table 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional

from repro.cluster.node import Node
from repro.metrics.aggregates import MovingAverage, spatial_average
from repro.obs.events import ProbeReading
from repro.simulation.kernel import PeriodicTask, SimKernel


class UtilizationSampler:
    """Non-destructive per-consumer utilization sampling.

    Several independent observers (a Jade probe, the experiment's metrics
    sampler) may watch the same node; each keeps its own (time, busy)
    anchor so they do not steal each other's deltas.
    """

    def __init__(self) -> None:
        self._anchors: dict[str, tuple[float, float]] = {}

    def sample(self, node: Node) -> float:
        """Utilization of ``node`` since this sampler last looked at it.

        The first observation of a node only *seeds* the anchor and reads
        0.0: a replica grown at t=500 s must not have its first sample
        averaged over [0, 500] (which would under-report CPU and invite an
        immediate spurious shrink) — there is simply no delta yet.
        """
        now = node.kernel.now
        busy = node.cpu.busy_time()
        anchor = self._anchors.get(node.name)
        self._anchors[node.name] = (now, busy)
        if anchor is None:
            return 0.0
        last_t, last_busy = anchor
        span = now - last_t
        if span <= 0.0:
            return 0.0
        return min(1.0, (busy - last_busy) / span)

    def forget(self, node: Node) -> None:
        """Drop the anchor (node released or crashed)."""
        self._anchors.pop(node.name, None)


@dataclass(frozen=True)
class CpuReading:
    """One probe notification."""

    t: float
    smoothed: float   # spatial + temporal average
    raw: float        # spatial average of the last period only
    node_count: int


ReadingListener = Callable[[CpuReading], None]
NodesProvider = Callable[[], list[Node]]


class CpuProbe:
    """Periodic CPU probe over a (dynamic) set of nodes.

    ``nodes_provider`` is consulted at every sample so a resized tier is
    followed automatically.  ``probe_demand_s`` CPU is consumed on every
    sampled node per sample (set 0 to model a free probe).
    """

    def __init__(
        self,
        kernel: SimKernel,
        nodes_provider: NodesProvider,
        window_s: float,
        period_s: float = 1.0,
        probe_demand_s: float = 0.0,
        name: str = "cpu-probe",
    ) -> None:
        if period_s <= 0:
            raise ValueError("period must be positive")
        self.kernel = kernel
        self.nodes_provider = nodes_provider
        self.period_s = period_s
        self.probe_demand_s = probe_demand_s
        self.name = name
        self.window = MovingAverage(window_s)
        self.sampler = UtilizationSampler()
        self.samples_taken = 0
        #: optional decision tracer (set by the assembled system)
        self.tracer = None
        self._listeners: list[ReadingListener] = []
        self._task: Optional[PeriodicTask] = None

    def subscribe(self, listener: ReadingListener) -> None:
        self._listeners.append(listener)

    # -- lifecycle hooks (driven by the sensor component wrapper) ----------
    def on_start(self, component=None) -> None:
        if self._task is None:
            self._task = self.kernel.every(self.period_s, self._sample)

    def on_stop(self, component=None) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    @property
    def running(self) -> bool:
        return self._task is not None

    # ------------------------------------------------------------------
    def _sample(self) -> None:
        nodes = [n for n in self.nodes_provider() if n.up]
        if self.probe_demand_s > 0.0:
            for node in nodes:
                node.run_job(self.probe_demand_s, tag=self.name)
        raw = spatial_average(self.sampler.sample(n) for n in nodes)
        self.samples_taken += 1
        if raw != raw:  # NaN: empty tier
            return
        smoothed = self.window.add(self.kernel.now, raw)
        reading = CpuReading(self.kernel.now, smoothed, raw, len(nodes))
        if self.tracer is not None:
            self.tracer.emit(
                ProbeReading(
                    self.kernel.now,
                    probe=self.name,
                    smoothed=smoothed,
                    raw=raw,
                    nodes=len(nodes),
                )
            )
        for listener in list(self._listeners):
            listener(reading)


ServerProvider = Callable[[], Iterable[object]]
FailureListener = Callable[[object], None]


class HeartbeatSensor:
    """Failure detector for the self-recovery manager.

    Every period it pings each managed element (anything with ``running``
    and a ``node``); an element whose node is down, or which stopped
    running without a management action, is reported exactly once.
    """

    def __init__(
        self,
        kernel: SimKernel,
        servers_provider: ServerProvider,
        period_s: float = 1.0,
        name: str = "heartbeat",
    ) -> None:
        self.kernel = kernel
        self.servers_provider = servers_provider
        self.period_s = period_s
        self.name = name
        self._listeners: list[FailureListener] = []
        self._reported: set[int] = set()
        self._task: Optional[PeriodicTask] = None
        self.failures_detected = 0

    def subscribe(self, listener: FailureListener) -> None:
        self._listeners.append(listener)

    def on_start(self, component=None) -> None:
        if self._task is None:
            self._task = self.kernel.every(self.period_s, self._check)

    def on_stop(self, component=None) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    def _check(self) -> None:
        for server in self.servers_provider():
            node = getattr(server, "node", None)
            healthy = getattr(server, "running", True) and (
                node is None or node.up
            )
            if healthy:
                self._reported.discard(id(server))
            elif id(server) not in self._reported:
                self._reported.add(id(server))
                self.failures_detected += 1
                for listener in list(self._listeners):
                    listener(server)


class ResponseTimeProbe:
    """Optional higher-level sensor (§4.2): moving average of client
    response times, fed by the experiment's metrics stream."""

    def __init__(
        self,
        kernel: SimKernel,
        window_s: float = 60.0,
        name: str = "rt-probe",
    ) -> None:
        self.kernel = kernel
        self.window = MovingAverage(window_s)
        self.name = name
        self._listeners: list[Callable[[float, float], None]] = []

    def subscribe(self, listener: Callable[[float, float], None]) -> None:
        """listener(t, smoothed_latency_s)"""
        self._listeners.append(listener)

    def observe(self, t: float, latency_s: float) -> None:
        smoothed = self.window.add(t, latency_s)
        for listener in list(self._listeners):
            listener(t, smoothed)


@dataclass(frozen=True)
class LatencyReading:
    """One latency-sensor notification (same shape contract as
    :class:`CpuReading`: reactors read ``.smoothed`` and ``.raw``)."""

    t: float
    smoothed: float   # moving average of per-request latency, seconds
    raw: float        # mean latency over the last period, seconds
    sample_count: int


class LatencySensor:
    """Periodic sensor over the experiment's latency stream.

    "a sensor specific to optimization may provide an estimator of the
    response-time to client requests" (§4.2).  Each period it consumes the
    latencies recorded since the previous sample, maintains a moving
    average, and pushes a :class:`LatencyReading`.  Silent periods (no
    completions) emit nothing — the controlled quantity is undefined.
    """

    def __init__(
        self,
        kernel: SimKernel,
        latency_series,
        window_s: float = 60.0,
        period_s: float = 1.0,
        name: str = "latency-sensor",
    ) -> None:
        self.kernel = kernel
        self.series = latency_series  # a metrics TimeSeries of latencies
        self.window = MovingAverage(window_s)
        self.period_s = period_s
        self.name = name
        self._cursor = 0
        self._listeners: list[Callable[[LatencyReading], None]] = []
        self._task: Optional[PeriodicTask] = None
        self.samples_taken = 0

    def subscribe(self, listener: Callable[[LatencyReading], None]) -> None:
        self._listeners.append(listener)

    def on_start(self, component=None) -> None:
        if self._task is None:
            self._task = self.kernel.every(self.period_s, self._sample)

    def on_stop(self, component=None) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    def _sample(self) -> None:
        self.samples_taken += 1
        fresh = self.series.tail_since(self._cursor)
        self._cursor += len(fresh)
        for t, v in fresh:
            self.window.add(t, v)
        new = [v for _, v in fresh]
        # Age the window even when no sample arrived.
        smoothed = self.window.age(self.kernel.now)
        if smoothed != smoothed:  # NaN: nothing in the window
            return
        raw = float(sum(new) / len(new)) if new else smoothed
        reading = LatencyReading(self.kernel.now, smoothed, raw, len(new))
        for listener in list(self._listeners):
            listener(reading)
