"""End-to-end experiment harness.

:class:`ManagedSystem` assembles the full testbed of §5.2:

* a cluster (two load-balancer nodes + a pool of worker nodes, LAN);
* the RUBiS J2EE application deployed from an ADL description
  (PLB → Tomcat×1 → C-JDBC → MySQL×1 initially);
* optionally the Jade managers: self-optimization (two control loops),
  self-recovery, and arbitration;
* the RUBiS client emulator driving the configured workload profile;
* a metrics sampler reproducing Table 1's node CPU/memory accounting.

The harness is what every quantitative benchmark and example drives; a
single :class:`ExperimentConfig` pins all parameters so a run is
reproducible from its seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Optional

from repro.cluster.allocator import ClusterManager
from repro.cluster.installer import Package, SoftwareInstallationService
from repro.cluster.network import Lan
from repro.cluster.node import Node
from repro.fractal.adl import parse_adl
from repro.jade.actuators import TierManager
from repro.jade.arbitration import ArbitrationManager
from repro.jade.deployment import DeployedApplication, DeploymentService
from repro.jade.self_optimization import (
    DB_LOOP_DEFAULTS,
    APP_LOOP_DEFAULTS,
    LoopConfig,
    SelfOptimizationManager,
)
from repro.jade.self_recovery import SelfRecoveryManager
from repro.jade.sensors import UtilizationSampler
from repro.legacy.cjdbc import BackendState
from repro.metrics.collector import MetricsCollector
from repro.legacy.directory import Directory
from repro.obs.events import KernelStats
from repro.obs.tracer import Tracer
from repro.simulation.kernel import SimKernel
from repro.simulation.resources import ThrashingCurve
from repro.simulation.rng import RngStreams
from repro.wrappers import default_factory_registry
from repro.wrappers.mysql import make_mysql_component
from repro.wrappers.tomcat import make_tomcat_component
from repro.workload.calibration import Calibration, DEFAULT_CALIBRATION
from repro.workload.clients import ClientEmulator
from repro.workload.profiles import RampProfile, WorkloadProfile

if TYPE_CHECKING:  # pragma: no cover
    from repro.capacity.proactive import ProactiveConfig
    from repro.chaos.campaign import ChaosCampaign
    from repro.deploy.scenario import DeployScenario
    from repro.market.scenario import MarketScenario

#: ADL description of the initial RUBiS deployment (§5.2: "Initially, the
#: J2EE system is deployed with one application server (Tomcat) and one
#: database server (MySQL)").  Spec order fixes both node allocation and
#: start order (a database must be running before its load balancer).
RUBIS_ADL = """
<definition name="rubis-j2ee">
  <component name="mysql" type="mysql" package="mysql"/>
  <component name="cjdbc" type="cjdbc" package="cjdbc"/>
  <component name="plb" type="plb" package="plb"/>
  <component name="tomcat" type="tomcat" package="tomcat"/>
  <binding client="cjdbc.backends" server="mysql.mysql"/>
  <binding client="tomcat.jdbc" server="cjdbc.jdbc"/>
  <binding client="plb.workers" server="tomcat.http"/>
</definition>
"""


@dataclass
class ExperimentConfig:
    """All knobs of one experiment run."""

    seed: int = 1
    #: self-optimization manager active?
    managed: bool = True
    #: self-recovery manager active?
    recovery: bool = False
    #: arbitration manager mediating tier operations?
    arbitration: bool = False
    profile: WorkloadProfile = field(default_factory=RampProfile)
    calibration: Calibration = DEFAULT_CALIBRATION
    #: worker nodes available for replicas (paper: 2 app + 3 db at peak)
    pool_nodes: int = 7
    #: CPU speed of every node relative to the calibrated 2006-era machine
    #: (2.0 = hardware twice as fast; shifts every scaling point)
    node_speed: float = 1.0
    #: emulate clients in batches of this size (one ClientCohort process
    #: stands for ``cohort`` identical browsers); 1 = per-client processes
    cohort: int = 1
    #: scale node speed, memory, and the thrashing knee together (weak
    #: scaling: hardware_scale == cohort keeps per-constituent utilization
    #: identical to the unscaled run)
    hardware_scale: float = 1.0
    #: drive the workload with the mean-field fluid engine (see
    #: ``repro.workload.fluid``) instead of discrete cohort events; the
    #: control loops only see sampled CPU, so they run unmodified
    fluid: bool = False
    #: hybrid handoff point: populations below this run discrete cohorts,
    #: at/above it the fluid flow takes over (<= 0 = always fluid; only
    #: meaningful with ``fluid=True``)
    fluid_threshold: int = 0
    #: coarse tick of the fluid flow update (also the hybrid dispatcher's
    #: population-adjustment cadence; 1 s matches the probe period)
    fluid_tick_s: float = 1.0
    inhibition_s: float = 60.0
    app_loop: LoopConfig = field(default_factory=lambda: replace(APP_LOOP_DEFAULTS))
    db_loop: LoopConfig = field(default_factory=lambda: replace(DB_LOOP_DEFAULTS))
    #: apply the thrashing capacity curve to worker nodes
    thrashing: bool = True
    #: replace the CPU-threshold optimizer with the latency-SLO manager
    #: (extension; requires ``managed=True``)
    use_slo_manager: bool = False
    slo_max_latency_s: float = 0.5
    slo_min_latency_s: float = 0.06
    #: run the proactive capacity manager alongside the reactive loops
    #: (extension; see ``repro.capacity``)
    proactive: bool = False
    #: knobs of the proactive planning loop (None = defaults)
    proactive_config: Optional["ProactiveConfig"] = None
    #: chaos campaign injected during the run (extension; see
    #: ``repro.chaos`` — a picklable fault schedule, so chaos runs are
    #: cacheable and fan out across seeds like any other experiment)
    chaos: Optional["ChaosCampaign"] = None
    #: deployment scenario executed during the run (extension; see
    #: ``repro.deploy`` — a picklable value like ``chaos``, so deploy
    #: runs are cacheable and fan out across seeds unchanged)
    deploy: Optional["DeployScenario"] = None
    #: heterogeneous node market (extension; see ``repro.market`` — a
    #: picklable value like ``chaos``/``deploy``: instance-type catalog,
    #: spot price process with interruption notices, and a cost-aware
    #: fleet allocator stocking the node pool in place of the paper's
    #: fixed uniform pool of ``pool_nodes``)
    market: Optional["MarketScenario"] = None
    #: sample node CPU/memory every second (Table 1)
    sample_nodes: bool = True
    #: extra simulated time after the profile ends (lets requests drain)
    tail_s: float = 60.0
    #: browsers abandon requests after this long (None = the paper's
    #: patient emulator)
    client_timeout_s: Optional[float] = None
    #: collect decision traces (zero-cost when False: no tracer is wired)
    trace: bool = False
    #: JSONL sink for the trace (implies ``trace``)
    trace_jsonl: Optional[str] = None
    #: in-memory trace ring size
    trace_ring: int = 65536
    #: run identifier stamped on every trace record (default derived from
    #: the seed, so re-runs are comparable)
    trace_run_id: Optional[str] = None


class ManagedSystem:
    """A fully-assembled testbed ready to run."""

    def __init__(self, config: Optional[ExperimentConfig] = None) -> None:
        self.config = config or ExperimentConfig()
        cfg = self.config
        self.kernel = SimKernel()
        self.streams = RngStreams(cfg.seed)
        self.collector = MetricsCollector()
        self.lan = Lan()
        self.directory = Directory()
        cal = cfg.calibration

        # --- cluster ---------------------------------------------------
        hs = cfg.hardware_scale
        capacity = (
            ThrashingCurve(
                int(round(cal.db_thrash_knee * hs)),
                cal.db_thrash_slope / hs,
                cal.db_thrash_floor,
            )
            if cfg.thrashing
            else (lambda n: 1.0)
        )
        self.market = None
        if cfg.market is not None:
            # Heterogeneous fleet: the market engine stocks the pool with
            # typed nodes (reserve on-demand first, then the policy mix)
            # instead of the paper's fixed uniform `pool_nodes`.
            from repro.market.engine import MarketEngine

            def make_node(name, itype, node_market):
                return Node(
                    self.kernel,
                    name,
                    cpu_speed=cfg.node_speed * hs * itype.cpu_capacity,
                    capacity_model=capacity,
                    memory_mb=cal.node_memory_mb * hs * (itype.memory_mb / 1024.0),
                    base_os_mb=cal.node_base_os_mb,
                    per_job_mb=cal.per_job_mb,
                    instance=itype,
                    market=node_market,
                )

            self.market = MarketEngine(
                self.kernel,
                cfg.market,
                self.streams,
                make_node,
                collector=self.collector,
                pool_vcpus=float(cfg.pool_nodes),
            )
            self.nodes = self.market.nodes
            self.cluster = self.market.cluster
        else:
            self.nodes = [
                Node(
                    self.kernel,
                    f"node{i}",
                    cpu_speed=cfg.node_speed * hs,
                    capacity_model=capacity,
                    memory_mb=cal.node_memory_mb * hs,
                    base_os_mb=cal.node_base_os_mb,
                    per_job_mb=cal.per_job_mb,
                )
                for i in range(1, cfg.pool_nodes + 1)
            ]
            self.cluster = ClusterManager(self.nodes)
        self.installer = SoftwareInstallationService(self.kernel, self.lan)
        for pkg in (
            Package("tomcat", "3.3.2", size_mb=18.0, setup_time_s=2.0, footprint_mb=24.0),
            Package("mysql", "4.0.17", size_mb=35.0, setup_time_s=3.0, footprint_mb=30.0),
            Package("cjdbc", "2.0.2", size_mb=8.0, setup_time_s=1.5, footprint_mb=12.0),
            Package("plb", "0.3", size_mb=1.0, setup_time_s=0.5, footprint_mb=4.0),
            Package("apache", "1.3", size_mb=6.0, setup_time_s=1.0, footprint_mb=10.0),
        ):
            self.installer.register(pkg)

        # --- deploy the application -------------------------------------
        registry = default_factory_registry()
        self.deployer = DeploymentService(
            self.kernel, registry, self.cluster, self.directory, self.installer, self.lan
        )
        self.app: DeployedApplication = self.deployer.deploy(parse_adl(RUBIS_ADL))
        self.plb = self.app.instance("plb")
        self.cjdbc = self.app.instance("cjdbc")
        self._initial_tomcat = self.app.instance("tomcat")
        self._initial_mysql = self.app.instance("mysql")
        self.app.start()

        # --- tier managers (actuators) ----------------------------------
        self.arbitration = (
            ArbitrationManager(self.kernel) if cfg.arbitration else None
        )
        factory_context = {
            "kernel": self.kernel,
            "directory": self.directory,
            "lan": self.lan,
        }
        self.app_tier = TierManager(
            self.kernel,
            "application",
            composite=self.app.root,
            balancer=self.plb,
            balancer_itf="workers",
            replica_itf="http",
            factory=make_tomcat_component,
            cluster=self.cluster,
            installer=self.installer,
            package="tomcat",
            bindings_template=[("jdbc", self.cjdbc.get_interface("jdbc"))],
            factory_context=factory_context,
            collector=self.collector,
            arbitration=self.arbitration,
            name_prefix="tomcat",
        )
        controller = self.cjdbc.content.controller

        def _db_ready(record) -> bool:
            try:
                handle = controller.backend(record.binding_instance)
            except KeyError:
                return True  # detached (crashed) — do not wait forever
            return handle.state is BackendState.ENABLED

        self.db_tier = TierManager(
            self.kernel,
            "database",
            composite=self.app.root,
            balancer=self.cjdbc,
            balancer_itf="backends",
            replica_itf="mysql",
            factory=make_mysql_component,
            cluster=self.cluster,
            installer=self.installer,
            package="mysql",
            factory_context=factory_context,
            collector=self.collector,
            ready_check=_db_ready,
            arbitration=self.arbitration,
            name_prefix="mysql",
        )
        # Adopt the initially deployed replicas.
        self.app_tier.adopt(
            self._initial_tomcat,
            self.app.node_of(self._initial_tomcat),
            self.plb.binding_controller.bound_instances("workers")[0],
        )
        self.db_tier.adopt(
            self._initial_mysql,
            self.app.node_of(self._initial_mysql),
            self.cjdbc.binding_controller.bound_instances("backends")[0],
        )
        # Replica naming continues after the initial instances.
        self.app_tier._next_id = 2
        self.db_tier._next_id = 2

        # --- Jade managers ----------------------------------------------
        self.optimizer = None
        self.recovery: Optional[SelfRecoveryManager] = None
        if cfg.managed:
            if cfg.use_slo_manager:
                from repro.jade.latency_optimization import (
                    LatencyOptimizationManager,
                )

                self.optimizer = LatencyOptimizationManager(
                    self.kernel,
                    [self.app_tier, self.db_tier],
                    self.collector,
                    max_latency_s=cfg.slo_max_latency_s,
                    min_latency_s=cfg.slo_min_latency_s,
                    inhibition_s=cfg.inhibition_s,
                )
            else:
                self.optimizer = SelfOptimizationManager(
                    self.kernel,
                    self.app_tier,
                    self.db_tier,
                    inhibition_s=cfg.inhibition_s,
                    app_config=cfg.app_loop,
                    db_config=cfg.db_loop,
                    calibration=cal,
                )
            # Management components deployed on every node (Table 1's
            # memory overhead).
            for node in self.nodes:
                node.register_footprint("jade:mgmt", cal.jade_mgmt_footprint_mb)
            if self.market is not None:
                # ... including nodes the fleet allocator buys later.
                self.market.node_decorators.append(
                    lambda n: n.register_footprint(
                        "jade:mgmt", cal.jade_mgmt_footprint_mb
                    )
                )
        if cfg.recovery:
            self.recovery = SelfRecoveryManager(
                self.kernel,
                [self.app_tier, self.db_tier],
                collector=self.collector,
            )

        # --- chaos injection (extension) ---------------------------------
        # Wired like the proactive manager: lazily imported, sharing the
        # seeded RNG streams (its own "chaos" stream) so a campaign is
        # reproducible from the experiment seed.
        self.chaos = None
        if cfg.chaos is not None:
            from repro.chaos.faults import ChaosInjector

            self.chaos = ChaosInjector(
                self, cfg.chaos, rng=self.streams.get("chaos")
            )
            if cfg.chaos.detector == "phi" and self.recovery is not None:
                from repro.chaos.detectors import PhiAccrualDetector

                self.recovery.attach_detector(
                    PhiAccrualDetector(
                        self.kernel,
                        self.recovery._all_servers,
                        threshold=cfg.chaos.phi_threshold,
                        failfast_ticks=cfg.chaos.failfast_ticks,
                    )
                )

        # --- market engine late-binding -----------------------------------
        # The engine was built with the cluster (it owns the pool); now
        # that tiers and recovery exist it can drain interrupted nodes.
        if self.market is not None:
            self.market.attach(self)

        # --- tier CPU recording for Figures 6 & 7 --------------------------
        # With Jade, the real probes' readings are recorded; without Jade a
        # *passive* measurement probe (zero CPU cost — it models the
        # experimenters' external instrumentation, not a management
        # component) produces the comparison curves.
        self._passive_probes = []
        if isinstance(self.optimizer, SelfOptimizationManager):
            for label, tier_name in (("app", "application"), ("db", "database")):
                probe = self.optimizer.loops[label].probe
                probe.subscribe(self._tier_recorder(tier_name))
        else:
            from repro.jade.sensors import CpuProbe

            for tier, tier_name, window in (
                (self.app_tier, "application", cfg.app_loop.window_s),
                (self.db_tier, "database", cfg.db_loop.window_s),
            ):
                probe = CpuProbe(
                    self.kernel,
                    nodes_provider=tier.active_nodes,
                    window_s=window,
                    period_s=1.0,
                    probe_demand_s=0.0,
                    name=f"passive-{tier_name}",
                )
                probe.subscribe(self._tier_recorder(tier_name))
                self._passive_probes.append(probe)

        # --- workload ----------------------------------------------------
        if cfg.fluid:
            # Hybrid fluid/discrete engine: cohorts below the threshold,
            # mean-field flow above it.  The engine reads the live tier
            # membership through the same ``active_nodes`` providers the
            # CPU probes use, so reconfigurations (and market/chaos node
            # churn) are reflected on the next tick.
            from repro.workload.fluid import FluidEngine, HybridWorkload

            engine = FluidEngine(
                self.kernel,
                self.collector,
                calibration=cal,
                app_nodes=self.app_tier.active_nodes,
                db_nodes=self.db_tier.active_nodes,
                balancers=(
                    (
                        self.app.node_of(self.plb),
                        self.plb.content.balancer.proxy_demand,
                    ),
                    (
                        self.app.node_of(self.cjdbc),
                        self.cjdbc.content.controller.route_demand,
                    ),
                ),
                lan=self.lan,
            )
            self.emulator = HybridWorkload(
                self.kernel,
                entry=self.entry,
                profile=cfg.profile,
                collector=self.collector,
                streams=self.streams,
                engine=engine,
                calibration=cal,
                threshold=cfg.fluid_threshold,
                tick_s=cfg.fluid_tick_s,
                request_timeout_s=cfg.client_timeout_s,
                cohort=cfg.cohort,
            )
        else:
            self.emulator = ClientEmulator(
                self.kernel,
                entry=self.entry,
                profile=cfg.profile,
                collector=self.collector,
                streams=self.streams,
                calibration=cal,
                request_timeout_s=cfg.client_timeout_s,
                cohort=cfg.cohort,
            )

        # --- proactive capacity manager (extension) ----------------------
        # Built after the emulator so its load provider can read the live
        # client population; it shares the reactive loops' inhibition lock
        # (a proactive reconfiguration inhibits reactive churn and vice
        # versa) and, through the tier actuators, the arbitration manager.
        self.proactive = None
        if cfg.proactive:
            from repro.capacity.proactive import ProactiveManager
            from repro.capacity.snapshot import SystemSnapshot

            lock = getattr(self.optimizer, "inhibition", None)
            if lock is None:
                from repro.jade.control_loop import InhibitionLock

                lock = InhibitionLock(self.kernel, cfg.inhibition_s)
            self.proactive = ProactiveManager(
                self.kernel,
                self.app_tier,
                self.db_tier,
                lock,
                load_provider=lambda: self.emulator.active_clients,
                snapshot_source=lambda: SystemSnapshot.capture(
                    self, inhibition=lock
                ),
                app_thresholds=(
                    cfg.app_loop.max_threshold,
                    cfg.app_loop.min_threshold,
                ),
                db_thresholds=(
                    cfg.db_loop.max_threshold,
                    cfg.db_loop.min_threshold,
                ),
                config=cfg.proactive_config,
            )
            # Feed the planner's projection from the same probes the
            # reactive loops read (or the passive ones when unmanaged).
            if isinstance(self.optimizer, SelfOptimizationManager):
                for label in ("app", "db"):
                    self.optimizer.loops[label].probe.subscribe(
                        self.proactive.cpu_listener(label)
                    )
            else:
                for label, probe in zip(("app", "db"), self._passive_probes):
                    probe.subscribe(self.proactive.cpu_listener(label))

        # --- deployment manager (extension) -------------------------------
        # Built after the proactive manager so it can share whichever
        # inhibition lock exists (optimizer's, else proactive's); with
        # neither, it creates its own.  Its RNG stream ("deploy") feeds
        # the pushed version's per-request error draws, so a bad push is
        # reproducible from the experiment seed.
        self.deploy = None
        if cfg.deploy is not None:
            from repro.deploy.canary import DeployManager

            lock = getattr(self.optimizer, "inhibition", None)
            if lock is None and self.proactive is not None:
                lock = self.proactive.inhibition
            self.deploy = DeployManager(
                self, cfg.deploy, rng=self.streams.get("deploy"), lock=lock
            )

        # --- metrics sampling ---------------------------------------------
        self._node_sampler = UtilizationSampler()
        self._sampling_task = None
        self._horizon: Optional[float] = None  # set by start_all()

        # --- decision tracing (opt-in; None everywhere when disabled) ----
        self.tracer = None
        if cfg.trace or cfg.trace_jsonl:
            self.tracer = Tracer(
                run_id=cfg.trace_run_id or f"run-seed{cfg.seed}",
                ring_size=cfg.trace_ring,
                sink_path=cfg.trace_jsonl,
            )
            self._wire_tracer(self.tracer)

    def _wire_tracer(self, tracer) -> None:
        """Attach the tracer to every emission point of the control loops."""
        self.app_tier.tracer = tracer
        self.db_tier.tracer = tracer
        if isinstance(self.optimizer, SelfOptimizationManager):
            self.optimizer.inhibition.tracer = tracer
            for loop in self.optimizer.loops.values():
                loop.probe.tracer = tracer
                loop.reactor.tracer = tracer
        elif self.optimizer is not None:
            # Latency-SLO manager: the lock still traces; its reactor
            # decisions surface through the tier events.
            self.optimizer.inhibition.tracer = tracer
        for probe in self._passive_probes:
            probe.tracer = tracer
        if self.recovery is not None:
            self.recovery.tracer = tracer
            if self.recovery.detector is not None:
                self.recovery.detector.tracer = tracer
        if self.chaos is not None:
            self.chaos.tracer = tracer
        if self.deploy is not None:
            self.deploy.tracer = tracer
        if self.market is not None:
            self.market.tracer = tracer
            self.market.market.tracer = tracer
        if self.proactive is not None:
            self.proactive.tracer = tracer
            self.proactive.inhibition.tracer = tracer

    # ------------------------------------------------------------------
    def entry(self, request) -> None:
        """The system's front door (what the emulated browsers hit)."""
        self.plb.content.balancer.handle(request)

    def _tier_recorder(self, tier_name: str):
        collector = self.collector

        def record(reading) -> None:
            collector.record_tier_cpu(
                tier_name, reading.t, reading.smoothed, reading.raw
            )

        return record

    def involved_nodes(self) -> list[Node]:
        """Nodes participating in the experiment right now: the balancers'
        nodes plus every tier replica's node."""
        nodes = [
            self.app.node_of(self.plb),
            self.app.node_of(self.cjdbc),
        ]
        nodes.extend(self.app_tier.nodes())
        nodes.extend(self.db_tier.nodes())
        return nodes

    def _sample_nodes(self) -> None:
        nodes = [n for n in self.involved_nodes() if n.up]
        if not nodes:
            return
        cpu = sum(self._node_sampler.sample(n) for n in nodes) / len(nodes)
        mem = sum(n.memory_utilization() for n in nodes) / len(nodes)
        self.collector.record_node_sample(self.kernel.now, cpu, mem)

    # ------------------------------------------------------------------
    # Lifecycle: run() == start_all() + advance(horizon) + finish().
    #
    # The split is the kernel/system boundary the federation layer builds
    # on: a region coordinator interleaves many systems by calling
    # ``advance`` epoch by epoch (applying cross-region messages at each
    # barrier) and ``finish`` once, while every single-cluster caller
    # keeps using ``run`` unchanged.
    # ------------------------------------------------------------------
    def start_all(self, duration_s: Optional[float] = None) -> float:
        """Start every manager, probe, and the client emulator.

        Returns the workload horizon (seconds of simulated time the
        emulator drives load for); the caller advances the kernel to it —
        in one ``advance`` call or many — then calls :meth:`finish`.
        """
        cfg = self.config
        self._horizon = (
            duration_s if duration_s is not None else cfg.profile.duration_s
        )
        if self.optimizer is not None:
            self.optimizer.start()
        if self.recovery is not None:
            self.recovery.start()
        if self.proactive is not None:
            self.proactive.on_start()
        if self.chaos is not None:
            self.chaos.start()
        if self.deploy is not None:
            self.deploy.start()
        if self.market is not None:
            self.market.start()
        if cfg.sample_nodes:
            self._sampling_task = self.kernel.every(1.0, self._sample_nodes)
        for probe in self._passive_probes:
            probe.on_start()
        self.emulator.start()
        return self._horizon

    def advance(self, until: float) -> float:
        """Drain the kernel up to simulated time ``until`` (idempotent:
        advancing to a time already passed is a no-op).  Returns the
        kernel clock."""
        self.kernel.run(until=until)
        return self.kernel.now

    def finish(self) -> MetricsCollector:
        """Stop the emulator, drain the tail, stop every manager, and
        flush the tracer.  Requires :meth:`start_all`; returns the
        collector."""
        if self._horizon is None:
            raise RuntimeError("finish() before start_all()")
        self.kernel.run(until=self._horizon)
        self.emulator.stop()
        self.kernel.run(until=self._horizon + self.config.tail_s)
        self._horizon = None
        if self._sampling_task is not None:
            self._sampling_task.cancel()
            self._sampling_task = None
        if self.optimizer is not None:
            self.optimizer.stop()
        if self.recovery is not None:
            self.recovery.stop()
        if self.proactive is not None:
            self.proactive.on_stop()
        if self.chaos is not None:
            self.chaos.stop()
        if self.deploy is not None:
            self.deploy.stop()
        if self.market is not None:
            self.market.stop()
        if self.tracer is not None:
            self.tracer.emit(
                KernelStats(
                    self.kernel.now,
                    events_processed=self.kernel.events_processed,
                    tombstones_skipped=self.kernel.tombstones_skipped,
                    pending=self.kernel.pending,
                )
            )
            self.tracer.flush()
        return self.collector

    def run(self, duration_s: Optional[float] = None) -> MetricsCollector:
        """Run the experiment end to end and return the collector."""
        horizon = self.start_all(duration_s)
        self.advance(horizon)
        return self.finish()

    # ------------------------------------------------------------------
    # Summaries used by the benchmark tables
    # ------------------------------------------------------------------
    def summary(self) -> dict[str, float]:
        col = self.collector
        horizon = self.config.profile.duration_s
        return {
            "completed": col.completed_requests,
            "failed": col.failed_requests,
            "throughput_rps": col.throughput(0.0, horizon),
            "latency_mean_ms": col.latency_summary()["mean"] * 1e3,
            "latency_p95_ms": col.latency_summary()["p95"] * 1e3,
            "app_replicas_max": (
                col.tier_replicas["application"].max()
                if "application" in col.tier_replicas
                else 1
            ),
            "db_replicas_max": (
                col.tier_replicas["database"].max()
                if "database" in col.tier_replicas
                else 1
            ),
            "node_cpu_mean": col.node_cpu.mean(),
            "node_mem_mean": col.node_memory.mean(),
        }
