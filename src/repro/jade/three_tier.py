"""Three-tier experiment harness (extension).

§7: "We also intend to apply our self-optimization techniques on other use
cases to show the genericity of our approach."  This harness manages the
*full* Figure 2 architecture — an L4 switch in front of replicated Apache
web servers, cross-bound through mod_jk to a fixed pair of Tomcats, over
C-JDBC and replicated MySQL — with **two** control loops: one resizing the
web tier (a tier the paper never resized) and one resizing the database
tier.  The actuator code is the unchanged generic
:class:`~repro.jade.actuators.TierManager`; only the wiring differs, which
is exactly the genericity claim being demonstrated.

The workload mixes static documents with RUBiS interactions
(``static_fraction``); static demand is set high enough that the web tier
becomes a real bottleneck under peak load (synthetic stress — on the real
testbed static pages were too cheap to ever need scaling, which is why the
paper managed only the dynamic tiers).
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional

from repro.cluster.allocator import ClusterManager
from repro.cluster.installer import Package, SoftwareInstallationService
from repro.cluster.network import Lan
from repro.cluster.node import Node
from repro.fractal.adl import parse_adl
from repro.jade.actuators import TierManager
from repro.jade.control_loop import ControlLoop, InhibitionLock
from repro.jade.deployment import DeploymentService
from repro.jade.reactors import ThresholdReactor
from repro.jade.sensors import CpuProbe
from repro.legacy.cjdbc import BackendState
from repro.legacy.directory import Directory
from repro.metrics.collector import MetricsCollector
from repro.simulation.kernel import SimKernel
from repro.simulation.rng import RngStreams
from repro.wrappers import default_factory_registry
from repro.wrappers.apache import make_apache_component
from repro.wrappers.mysql import make_mysql_component
from repro.workload.calibration import Calibration, DEFAULT_CALIBRATION
from repro.workload.clients import ClientEmulator
from repro.workload.profiles import WorkloadProfile

THREE_TIER_ADL = """
<definition name="figure2-managed">
  <component name="mysql" type="mysql" package="mysql"/>
  <component name="cjdbc" type="cjdbc" package="cjdbc"/>
  <component name="tomcat" type="tomcat" replicas="2" package="tomcat"/>
  <component name="apache" type="apache" package="apache"/>
  <component name="l4" type="l4switch"/>
  <binding client="cjdbc.backends" server="mysql.mysql"/>
  <binding client="tomcat.jdbc" server="cjdbc.jdbc"/>
  <binding client="apache.ajp" server="tomcat.ajp"/>
  <binding client="l4.web" server="apache.http"/>
</definition>
"""

#: synthetic three-tier calibration: 40 % static requests, expensive enough
#: that the web tier saturates under peak load
THREE_TIER_CALIBRATION = replace(
    DEFAULT_CALIBRATION, static_fraction=0.40, static_demand_s=0.030
)


class ThreeTierSystem:
    """L4 + Apache×k (managed) + Tomcat×2 + C-JDBC + MySQL×m (managed)."""

    def __init__(
        self,
        profile: WorkloadProfile,
        seed: int = 1,
        pool_nodes: int = 9,
        calibration: Calibration = THREE_TIER_CALIBRATION,
        managed: bool = True,
        inhibition_s: float = 60.0,
        web_max: float = 0.80,
        web_min: float = 0.35,
    ) -> None:
        self.kernel = SimKernel()
        self.streams = RngStreams(seed)
        self.collector = MetricsCollector()
        self.lan = Lan()
        self.directory = Directory()
        self.managed = managed
        self.nodes = [
            Node(self.kernel, f"node{i}", memory_mb=calibration.node_memory_mb)
            for i in range(1, pool_nodes + 1)
        ]
        self.cluster = ClusterManager(self.nodes)
        self.installer = SoftwareInstallationService(self.kernel, self.lan)
        for name in ("mysql", "cjdbc", "tomcat", "apache"):
            self.installer.register(Package(name, "1.0", size_mb=12.0, setup_time_s=1.5))

        deployer = DeploymentService(
            self.kernel,
            default_factory_registry(),
            self.cluster,
            self.directory,
            self.installer,
            self.lan,
        )
        self.app = deployer.deploy(parse_adl(THREE_TIER_ADL))
        self.l4 = self.app.instance("l4")
        self.cjdbc = self.app.instance("cjdbc")
        self.tomcats = self.app.instances("tomcat")
        self.app.start()

        context = {
            "kernel": self.kernel,
            "directory": self.directory,
            "lan": self.lan,
        }
        # --- web tier: L4 is the balancer, Apache the replica -----------
        self.web_tier = TierManager(
            self.kernel,
            "web",
            composite=self.app.root,
            balancer=self.l4,
            balancer_itf="web",
            replica_itf="http",
            factory=make_apache_component,
            cluster=self.cluster,
            installer=self.installer,
            package="apache",
            bindings_template=[
                ("ajp", t.get_interface("ajp")) for t in self.tomcats
            ],
            factory_context=context,
            collector=self.collector,
            name_prefix="apache",
        )
        apache1 = self.app.instance("apache")
        self.web_tier.adopt(
            apache1,
            self.app.node_of(apache1),
            self.l4.binding_controller.bound_instances("web")[0],
        )
        # --- db tier (same wiring as the main harness) -------------------
        controller = self.cjdbc.content.controller

        def _db_ready(record) -> bool:
            try:
                return (
                    controller.backend(record.binding_instance).state
                    is BackendState.ENABLED
                )
            except KeyError:
                return True

        self.db_tier = TierManager(
            self.kernel,
            "database",
            composite=self.app.root,
            balancer=self.cjdbc,
            balancer_itf="backends",
            replica_itf="mysql",
            factory=make_mysql_component,
            cluster=self.cluster,
            installer=self.installer,
            package="mysql",
            factory_context=context,
            collector=self.collector,
            ready_check=_db_ready,
            name_prefix="mysql",
        )
        mysql1 = self.app.instance("mysql")
        self.db_tier.adopt(
            mysql1,
            self.app.node_of(mysql1),
            self.cjdbc.binding_controller.bound_instances("backends")[0],
        )

        # --- control loops -----------------------------------------------
        self.loops: dict[str, ControlLoop] = {}
        if managed:
            inhibition = InhibitionLock(self.kernel, inhibition_s)
            for label, tier, window, max_t, min_t in (
                ("web", self.web_tier, 60.0, web_max, web_min),
                ("db", self.db_tier, 90.0, 0.75, 0.40),
            ):
                probe = CpuProbe(
                    self.kernel,
                    nodes_provider=tier.active_nodes,
                    window_s=window,
                    probe_demand_s=calibration.probe_demand_s,
                    name=f"probe-{label}",
                )
                tier_name = "web" if label == "web" else "database"
                probe.subscribe(self._tier_recorder(tier_name))
                reactor = ThresholdReactor(
                    self.kernel,
                    tier,
                    inhibition,
                    max_threshold=max_t,
                    min_threshold=min_t,
                )
                self.loops[label] = ControlLoop.build(
                    self.kernel, f"resize-{label}", probe, reactor, tier
                )

        # --- workload ------------------------------------------------------
        self.emulator = ClientEmulator(
            self.kernel,
            entry=self.l4.content.switch.handle,
            profile=profile,
            collector=self.collector,
            streams=self.streams,
            calibration=calibration,
        )
        self.profile = profile

    def _tier_recorder(self, tier_name: str):
        collector = self.collector

        def record(reading) -> None:
            collector.record_tier_cpu(
                tier_name, reading.t, reading.smoothed, reading.raw
            )

        return record

    # ------------------------------------------------------------------
    def run(self, duration_s: Optional[float] = None) -> MetricsCollector:
        horizon = duration_s if duration_s is not None else self.profile.duration_s
        for loop in self.loops.values():
            loop.start()
        self.emulator.start()
        self.kernel.run(until=horizon)
        self.emulator.stop()
        self.kernel.run(until=horizon + 60.0)
        for loop in self.loops.values():
            loop.stop()
        return self.collector
