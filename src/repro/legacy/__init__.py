"""Simulated legacy middleware (the *managed* layer).

One module per legacy program of the paper's testbed:

* :mod:`~repro.legacy.apache` — Apache httpd web server (+ mod_jk routing);
* :mod:`~repro.legacy.tomcat` — Jakarta Tomcat servlet container;
* :mod:`~repro.legacy.mysql` — MySQL database server (full mirror replica);
* :mod:`~repro.legacy.cjdbc` — C-JDBC database load balancer / replication
  consistency manager, extended with the paper's **recovery log** (§4.1);
* :mod:`~repro.legacy.plb` — PLB, the application-server load balancer;
* :mod:`~repro.legacy.l4switch` — L4 switch in front of the web tier.

Each program is configured through proprietary-style config files
(:mod:`~repro.legacy.configfiles`) stored on its node's filesystem, resolves
its peers through host:port endpoints (:mod:`~repro.legacy.directory`), and
consumes CPU on its node for every request.  None of them knows anything
about Jade — the management layer only touches them through wrappers, as in
the paper.
"""

from repro.legacy.apache import ApacheServer
from repro.legacy.cjdbc import BackendState, CJdbcController
from repro.legacy.directory import Directory, EndpointNotFound
from repro.legacy.l4switch import L4Switch
from repro.legacy.mysql import MySqlServer
from repro.legacy.plb import PlbBalancer
from repro.legacy.policies import (
    LeastPendingPolicy,
    RandomPolicy,
    RoundRobinPolicy,
    WeightedRoundRobinPolicy,
    make_policy,
)
from repro.legacy.recovery_log import RecoveryLog
from repro.legacy.requests import RequestFailed, WebRequest
from repro.legacy.server import LegacyServer, ServerNotRunning
from repro.legacy.tomcat import TomcatServer, parse_jdbc_url

__all__ = [
    "ApacheServer",
    "BackendState",
    "CJdbcController",
    "Directory",
    "EndpointNotFound",
    "L4Switch",
    "LeastPendingPolicy",
    "LegacyServer",
    "MySqlServer",
    "PlbBalancer",
    "RandomPolicy",
    "RecoveryLog",
    "RequestFailed",
    "RoundRobinPolicy",
    "ServerNotRunning",
    "TomcatServer",
    "WeightedRoundRobinPolicy",
    "WebRequest",
    "make_policy",
    "parse_jdbc_url",
]
