"""Simulated Apache httpd web server with mod_jk.

Serves static documents locally (CPU demand from the request) and forwards
dynamic requests to Tomcat workers through mod_jk.  The worker set and
weights come from ``worker.properties`` — the exact file the paper's §5.1
scenario edits by hand in the manual procedure, and the file the Apache
wrapper rewrites when its ``ajp`` binding changes.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.network import Lan
from repro.cluster.node import Node
from repro.legacy.configfiles import HttpdConf, WorkerProperties
from repro.legacy.directory import Directory
from repro.legacy.policies import WeightedRoundRobinPolicy
from repro.legacy.requests import WebRequest
from repro.legacy.server import LegacyServer
from repro.simulation.kernel import SimKernel


class ApacheServer(LegacyServer):
    """An Apache replica."""

    CONFIG_PATH = "/etc/apache/httpd.conf"
    footprint_mb = 40.0

    #: CPU to proxy one dynamic request through mod_jk (seconds)
    proxy_demand = 0.0002

    def __init__(
        self,
        kernel: SimKernel,
        name: str,
        node: Node,
        directory: Directory,
        lan: Optional[Lan] = None,
    ) -> None:
        super().__init__(kernel, name, node, directory, lan)
        self.conf: Optional[HttpdConf] = None
        self.workers: Optional[WorkerProperties] = None
        self._policy = WeightedRoundRobinPolicy(lambda w: w.lbfactor)
        self.static_served = 0
        self.dynamic_forwarded = 0

    # ------------------------------------------------------------------
    def _load_config(self) -> None:
        self.conf = HttpdConf.parse(self.node.fs.read(self.CONFIG_PATH))
        workers_text = self.node.fs.read(self.conf.jk_workers_file)
        self.workers = WorkerProperties.parse(workers_text)
        self._policy.reset()

    def _endpoints(self) -> list[tuple[str, int]]:
        assert self.conf is not None
        return [(self.host, self.conf.listen)]

    @property
    def port(self) -> int:
        assert self.conf is not None
        return self.conf.listen

    # ------------------------------------------------------------------
    def handle(self, request: WebRequest) -> None:
        """Serve one HTTP request (static locally, dynamic via mod_jk)."""
        if not self.running:
            request.fail(self.kernel, f"{self.name} is not running")
            return
        if not self._admit():
            request.fail(self.kernel, f"{self.name}: 503 MaxClients reached")
            return
        request.trace(self.name)
        weight = request.weight
        if request.is_static:
            self._begin(weight)
            self._run_then(
                request.static_demand,
                lambda: self._finish_static(request),
                lambda err: self._abort(request, f"static serve aborted: {err}"),
                weight=weight,
            )
        else:
            self._begin(weight)
            self._run_then(
                self.proxy_demand * weight,
                lambda: self._forward(request),
                lambda err: self._abort(request, f"mod_jk aborted: {err}"),
                weight=weight,
            )

    def _finish_static(self, request: WebRequest) -> None:
        self.static_served += request.weight
        self._end(weight=request.weight)
        request.complete(self.kernel)

    def _forward(self, request: WebRequest) -> None:
        assert self.workers is not None
        live = []
        for worker in self.workers.workers:
            server = self.directory.try_lookup(worker.host, worker.port)
            if server is not None and server.running:
                live.append(worker)
        if not live:
            self._abort(request, "no live AJP worker")
            return
        worker = self._policy.choose(live)
        server = self.directory.lookup(worker.host, worker.port)
        self.dynamic_forwarded += request.weight
        self._end(weight=request.weight)
        self._after_hop(server.handle, request)

    def _abort(self, request: WebRequest, reason: str) -> None:
        self._end(ok=False, weight=request.weight)
        request.fail(self.kernel, f"{self.name}: {reason}")
