"""Simulated C-JDBC database load balancer.

"C-JDBC plays the role of load balancer and replication consistency
manager, each server containing a full copy of the whole database (full
mirroring)." (§4.1)

The controller exposes a JDBC endpoint to Tomcat and routes queries:

* **reads** go to one ENABLED backend chosen by the configured policy
  (``LeastPendingRequestsFirst`` by default, as in C-JDBC);
* **writes** are appended to the :class:`~repro.legacy.recovery_log.RecoveryLog`
  and fanned out to *all* ENABLED backends; the query completes when every
  replica has committed (full-mirroring write barrier).

Backends are managed through the controller's administrative API — the one
the paper's actuators drive through the MySQL/C-JDBC wrappers:

* :meth:`attach_backend` inserts a replica in SYNCING state and replays the
  recovery-log suffix it is missing; the replica becomes ENABLED only once
  caught up ("Once these requests have been processed by the newly
  allocated server, we can reinsert it in the clustered database as an
  active and up-to-date replica").
* :meth:`detach_backend` disables a replica and records its checkpoint
  index, so re-attaching it later only replays the gap.
"""

from __future__ import annotations

import enum
from typing import Optional

from repro.cluster.network import Lan
from repro.cluster.node import Node
from repro.legacy.configfiles import CjdbcXml
from repro.legacy.directory import Directory, EndpointNotFound
from repro.legacy.mysql import MySqlServer
from repro.legacy.policies import BalancingPolicy, make_policy
from repro.legacy.recovery_log import RecoveryLog
from repro.legacy.requests import WebRequest
from repro.legacy.server import LegacyServer, ServerNotRunning
from repro.simulation.kernel import SimKernel
from repro.simulation.process import Process, Signal, wait


class BackendState(enum.Enum):
    SYNCING = "syncing"
    ENABLED = "enabled"
    DISABLED = "disabled"


class BackendHandle:
    """Controller-side view of one MySQL replica."""

    __slots__ = (
        "name",
        "server",
        "state",
        "sync_started_at",
        "sync_replayed",
        "inflight",
    )

    def __init__(self, name: str, server: MySqlServer, state: BackendState):
        self.name = name
        self.server = server
        self.state = state
        self.sync_started_at: Optional[float] = None
        self.sync_replayed = 0
        #: controller-side count of reads dispatched but not yet answered
        #: (what C-JDBC's LeastPendingRequestsFirst actually inspects)
        self.inflight = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Backend {self.name} {self.state.value}>"


class CJdbcController(LegacyServer):
    """The C-JDBC controller process (runs on its own node)."""

    CONFIG_PATH = "/etc/cjdbc/cjdbc.xml"
    footprint_mb = 64.0

    #: controller CPU consumed to parse/route one query (seconds)
    route_demand = 0.0003

    def __init__(
        self,
        kernel: SimKernel,
        name: str,
        node: Node,
        directory: Directory,
        lan: Optional[Lan] = None,
    ) -> None:
        super().__init__(kernel, name, node, directory, lan)
        self.conf: Optional[CjdbcXml] = None
        self.log = RecoveryLog()
        self._backends: dict[str, BackendHandle] = {}
        self._policy: Optional[BalancingPolicy] = None
        self.reads_routed = 0
        self.writes_routed = 0
        self.syncs_completed = 0

    # ------------------------------------------------------------------
    def _load_config(self) -> None:
        text = self.node.fs.read(self.CONFIG_PATH)
        self.conf = CjdbcXml.parse(text)
        self._policy = make_policy(
            self.conf.policy,
            pending_fn=lambda handle: handle.inflight,
        )

    def _endpoints(self) -> list[tuple[str, int]]:
        assert self.conf is not None
        return [(self.host, self.conf.port)]

    def _started(self) -> None:
        # Backends declared in the config file are attached at start; with
        # an empty recovery log they enable instantly (initial deployment
        # assumes consistent, freshly-loaded replicas).
        assert self.conf is not None
        for decl in self.conf.backends:
            if decl.name in self._backends:
                continue
            try:
                server = self.directory.lookup(decl.host, decl.port)
            except EndpointNotFound:
                raise ServerNotRunning(
                    f"{self.name}: configured backend {decl.name} "
                    f"({decl.host}:{decl.port}) is unreachable"
                ) from None
            self.attach_backend(decl.name, server)

    @property
    def port(self) -> int:
        if self.conf is None:
            raise ServerNotRunning(f"{self.name}: not configured")
        return self.conf.port

    # ------------------------------------------------------------------
    # Backend administration
    # ------------------------------------------------------------------
    def backends(self) -> list[BackendHandle]:
        return list(self._backends.values())

    def enabled_backends(self) -> list[BackendHandle]:
        return [b for b in self._backends.values() if b.state is BackendState.ENABLED]

    def backend(self, name: str) -> BackendHandle:
        return self._backends[name]

    def attach_backend(self, name: str, server: MySqlServer) -> BackendHandle:
        """Insert a replica.  If it is missing log entries it enters SYNCING
        and a replay process brings it up to date; otherwise it enables
        immediately."""
        if not self.running:
            raise ServerNotRunning(self.name)
        if name in self._backends:
            raise ValueError(f"backend {name!r} already attached")
        if not isinstance(server, MySqlServer):
            raise TypeError(f"backend must be a MySqlServer, got {type(server)}")
        handle = BackendHandle(name, server, BackendState.SYNCING)
        self._backends[name] = handle
        if server.applied_index >= self.log.next_index:
            handle.state = BackendState.ENABLED
            if self._policy is not None:
                self._policy.reset()
        else:
            handle.sync_started_at = self.kernel.now
            Process(self.kernel, self._sync(handle), name=f"sync:{name}")
        return handle

    def _sync(self, handle: BackendHandle):
        """Replay the missing log suffix onto a SYNCING backend, then enable
        it.  New writes appended during replay are picked up because the
        loop re-reads ``log.next_index`` each iteration."""
        server = handle.server
        while server.applied_index < self.log.next_index:
            if handle.state is not BackendState.SYNCING:
                return  # detached mid-sync
            entry = self.log.get(server.applied_index)
            try:
                yield wait(server.replay_write(entry))
            except Exception:
                # Replica died mid-sync: drop it from the controller.
                self._backends.pop(handle.name, None)
                handle.state = BackendState.DISABLED
                return
            handle.sync_replayed += 1
        if handle.state is BackendState.SYNCING:
            handle.state = BackendState.ENABLED
            self.syncs_completed += 1
            if self._policy is not None:
                self._policy.reset()

    def detach_backend(self, name: str) -> int:
        """Disable a replica and checkpoint its position; returns the
        checkpoint index."""
        handle = self._backends.pop(name, None)
        if handle is None:
            raise KeyError(name)
        handle.state = BackendState.DISABLED
        checkpoint = handle.server.applied_index
        self.log.set_checkpoint(name, min(checkpoint, self.log.next_index))
        if self._policy is not None:
            self._policy.reset()
        return checkpoint

    def drop_backend(self, name: str) -> None:
        """Remove a dead replica without checkpointing (crash path)."""
        handle = self._backends.pop(name, None)
        if handle is not None:
            handle.state = BackendState.DISABLED
            if self._policy is not None:
                self._policy.reset()

    # ------------------------------------------------------------------
    # Query routing (the JDBC surface Tomcat talks to)
    # ------------------------------------------------------------------
    def execute(self, request: WebRequest) -> Signal:
        """Route one query; the signal fires when the result is ready."""
        sig = Signal(self.kernel)
        if not self.running:
            sig.fail(ServerNotRunning(self.name))
            return sig
        request.trace(self.name)
        self._begin(request.weight)
        self._run_then(
            self.route_demand * request.weight,
            lambda: self._route(request, sig),
            lambda err: self._fail(sig, err, request.weight),
            weight=request.weight,
        )
        return sig

    def _route(self, request: WebRequest, sig: Signal) -> None:
        if request.is_write:
            self._route_write(request, sig)
        else:
            self._route_read(request, sig)

    def _route_read(self, request: WebRequest, sig: Signal) -> None:
        enabled = self.enabled_backends()
        weight = request.weight
        if not enabled:
            self._fail(
                sig, ServerNotRunning(f"{self.name}: no enabled backend"), weight
            )
            return
        assert self._policy is not None
        handle = self._policy.choose(enabled)
        self.reads_routed += weight
        handle.inflight += weight

        def answered(s: Signal) -> None:
            handle.inflight -= weight
            self._relay(s, sig, weight)

        def dispatch() -> None:
            inner = handle.server.execute_read(request.db_demand, weight)
            inner.add_callback(answered)

        self._after_hop(dispatch)

    def _route_write(self, request: WebRequest, sig: Signal) -> None:
        enabled = self.enabled_backends()
        weight = request.weight
        if not enabled:
            self._fail(
                sig, ServerNotRunning(f"{self.name}: no enabled backend"), weight
            )
            return
        entry = self.log.append(request.interaction, request.db_demand, weight)
        self.writes_routed += weight
        remaining = len(enabled)
        failed: list[BaseException] = []

        def one_done(s: Signal) -> None:
            nonlocal remaining
            remaining -= 1
            if s.error is not None:
                failed.append(s.error)
            if remaining == 0:
                if failed and len(failed) == len(enabled):
                    # Every replica failed the write: surface the error.
                    self._fail(sig, failed[0], weight)
                else:
                    # Quorum semantics of RAIDb-1: the write succeeded on
                    # the surviving replicas; dead ones are repaired later.
                    self._end(weight=weight)
                    sig.succeed(self)

        for handle in enabled:
            self._after_hop(
                lambda h=handle: h.server.execute_write(entry).add_callback(one_done)
            )

    def _relay(self, inner: Signal, sig: Signal, weight: int = 1) -> None:
        if inner.error is not None:
            self._fail(sig, inner.error, weight)
        else:
            self._end(weight=weight)
            sig.succeed(self)

    def _fail(self, sig: Signal, err: BaseException, weight: int = 1) -> None:
        self._end(ok=False, weight=weight)
        sig.fail(err)
