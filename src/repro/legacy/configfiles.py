"""Proprietary configuration-file formats of the legacy layer.

The heterogeneity of these formats is the paper's core motivation: "very
complex administration interfaces and procedures associated with very
heterogeneous software" (§2).  We implement a faithful miniature of each
format with a parser and a renderer, so that wrappers *really* rewrite
config text and servers *really* parse it back:

* :class:`HttpdConf` — Apache ``httpd.conf`` directives;
* :class:`WorkerProperties` — mod_jk ``worker.properties`` (the exact file
  quoted in the paper's §5.1 scenario);
* :class:`ServerXml` — Tomcat ``server.xml`` (connector ports);
* :class:`MyCnf` — MySQL ``my.cnf`` INI sections;
* :class:`CjdbcXml` — C-JDBC virtual-database XML (backend list);
* :class:`PlbConf` — PLB's simple directive file.

All classes round-trip: ``parse(render(x)) == x``.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Optional


class ConfigError(ValueError):
    """Malformed legacy configuration text."""


# ----------------------------------------------------------------------
# Apache httpd.conf
# ----------------------------------------------------------------------
class HttpdConf:
    """Apache-style directive file: one ``Directive value`` per line."""

    KNOWN_DIRECTIVES = (
        "Listen",
        "ServerName",
        "MaxClients",
        "DocumentRoot",
        "JkWorkersFile",
    )

    def __init__(
        self,
        listen: int = 80,
        server_name: str = "localhost",
        max_clients: int = 150,
        document_root: str = "/var/www",
        jk_workers_file: str = "/etc/apache/worker.properties",
    ) -> None:
        self.listen = listen
        self.server_name = server_name
        self.max_clients = max_clients
        self.document_root = document_root
        self.jk_workers_file = jk_workers_file

    def render(self) -> str:
        return (
            f"Listen {self.listen}\n"
            f"ServerName {self.server_name}\n"
            f"MaxClients {self.max_clients}\n"
            f"DocumentRoot {self.document_root}\n"
            f"JkWorkersFile {self.jk_workers_file}\n"
        )

    @classmethod
    def parse(cls, text: str) -> "HttpdConf":
        conf = cls()
        seen = set()
        for lineno, raw in enumerate(text.splitlines(), 1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(None, 1)
            if len(parts) != 2:
                raise ConfigError(f"httpd.conf line {lineno}: {raw!r}")
            directive, value = parts
            if directive == "Listen":
                conf.listen = int(value)
            elif directive == "ServerName":
                conf.server_name = value
            elif directive == "MaxClients":
                conf.max_clients = int(value)
            elif directive == "DocumentRoot":
                conf.document_root = value
            elif directive == "JkWorkersFile":
                conf.jk_workers_file = value
            else:
                raise ConfigError(
                    f"httpd.conf line {lineno}: unknown directive {directive!r}"
                )
            seen.add(directive)
        return conf

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, HttpdConf):
            return NotImplemented
        return self.render() == other.render()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"HttpdConf(listen={self.listen}, server={self.server_name!r})"


# ----------------------------------------------------------------------
# mod_jk worker.properties
# ----------------------------------------------------------------------
class Worker:
    """One AJP13 worker entry (a Tomcat instance)."""

    __slots__ = ("name", "host", "port", "wtype", "lbfactor")

    def __init__(
        self,
        name: str,
        host: str,
        port: int,
        wtype: str = "ajp13",
        lbfactor: int = 100,
    ):
        self.name = name
        self.host = host
        self.port = port
        self.wtype = wtype
        self.lbfactor = lbfactor

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Worker):
            return NotImplemented
        return (self.name, self.host, self.port, self.wtype, self.lbfactor) == (
            other.name,
            other.host,
            other.port,
            other.wtype,
            other.lbfactor,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Worker({self.name!r}, {self.host}:{self.port})"


class WorkerProperties:
    """The mod_jk ``worker.properties`` file — the format the paper quotes.

    A load-balancer pseudo-worker named ``loadbalancer`` dispatches over the
    ``balanced_workers`` list.
    """

    def __init__(self, workers: Optional[list[Worker]] = None) -> None:
        self.workers: list[Worker] = list(workers or [])

    def worker(self, name: str) -> Worker:
        for w in self.workers:
            if w.name == name:
                return w
        raise KeyError(name)

    def add_worker(self, worker: Worker) -> None:
        if any(w.name == worker.name for w in self.workers):
            raise ConfigError(f"duplicate worker {worker.name!r}")
        self.workers.append(worker)

    def remove_worker(self, name: str) -> None:
        before = len(self.workers)
        self.workers = [w for w in self.workers if w.name != name]
        if len(self.workers) == before:
            raise KeyError(name)

    def render(self) -> str:
        lines: list[str] = []
        for w in self.workers:
            lines.append(f"worker.{w.name}.port={w.port}")
            lines.append(f"worker.{w.name}.host={w.host}")
            lines.append(f"worker.{w.name}.type={w.wtype}")
            lines.append(f"worker.{w.name}.lbfactor={w.lbfactor}")
        names = ", ".join(w.name for w in self.workers)
        lines.append(f"worker.list={names}{', ' if names else ''}loadbalancer")
        lines.append("worker.loadbalancer.type=lb")
        lines.append(f"worker.loadbalancer.balanced_workers={names}")
        return "\n".join(lines) + "\n"

    @classmethod
    def parse(cls, text: str) -> "WorkerProperties":
        raw: dict[str, dict[str, str]] = {}
        balanced: list[str] = []
        for lineno, line in enumerate(text.splitlines(), 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            if "=" not in line:
                raise ConfigError(f"worker.properties line {lineno}: {line!r}")
            key, value = (s.strip() for s in line.split("=", 1))
            parts = key.split(".")
            if parts[:2] == ["worker", "list"]:
                continue
            if len(parts) != 3 or parts[0] != "worker":
                raise ConfigError(f"worker.properties line {lineno}: bad key {key!r}")
            _, name, prop = parts
            if name == "loadbalancer":
                if prop == "balanced_workers":
                    balanced = [v.strip() for v in value.split(",") if v.strip()]
                continue
            raw.setdefault(name, {})[prop] = value
        workers = []
        for name in balanced or list(raw):
            props = raw.get(name)
            if props is None:
                raise ConfigError(f"balanced worker {name!r} has no definition")
            try:
                workers.append(
                    Worker(
                        name,
                        host=props["host"],
                        port=int(props["port"]),
                        wtype=props.get("type", "ajp13"),
                        lbfactor=int(props.get("lbfactor", "100")),
                    )
                )
            except KeyError as missing:
                raise ConfigError(
                    f"worker {name!r} is missing property {missing}"
                ) from None
        return cls(workers)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, WorkerProperties):
            return NotImplemented
        return self.workers == other.workers


# ----------------------------------------------------------------------
# Tomcat server.xml
# ----------------------------------------------------------------------
class ServerXml:
    """Minimal Tomcat ``server.xml``: HTTP and AJP connector ports and the
    JDBC datasource URL the servlets use."""

    def __init__(
        self,
        http_port: int = 8080,
        ajp_port: int = 8009,
        datasource_url: str = "jdbc:cjdbc://localhost:25322/rubis",
        max_threads: int = 150,
    ) -> None:
        self.http_port = http_port
        self.ajp_port = ajp_port
        self.datasource_url = datasource_url
        self.max_threads = max_threads

    def render(self) -> str:
        return (
            "<Server>\n"
            f'  <Connector protocol="HTTP/1.1" port="{self.http_port}" '
            f'maxThreads="{self.max_threads}"/>\n'
            f'  <Connector protocol="AJP/1.3" port="{self.ajp_port}"/>\n'
            f'  <Resource name="jdbc/rubis" url="{self.datasource_url}"/>\n'
            "</Server>\n"
        )

    @classmethod
    def parse(cls, text: str) -> "ServerXml":
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise ConfigError(f"server.xml: {exc}") from exc
        conf = cls()
        for conn in root.findall("Connector"):
            protocol = conn.get("protocol", "")
            if protocol.startswith("HTTP"):
                conf.http_port = int(conn.get("port", conf.http_port))
                conf.max_threads = int(conn.get("maxThreads", conf.max_threads))
            elif protocol.startswith("AJP"):
                conf.ajp_port = int(conn.get("port", conf.ajp_port))
        resource = root.find("Resource")
        if resource is not None:
            conf.datasource_url = resource.get("url", conf.datasource_url)
        return conf

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ServerXml):
            return NotImplemented
        return self.render() == other.render()


# ----------------------------------------------------------------------
# MySQL my.cnf
# ----------------------------------------------------------------------
class MyCnf:
    """INI-style ``my.cnf`` with a single ``[mysqld]`` section."""

    def __init__(
        self,
        port: int = 3306,
        datadir: str = "/var/lib/mysql",
        max_connections: int = 200,
    ) -> None:
        self.port = port
        self.datadir = datadir
        self.max_connections = max_connections

    def render(self) -> str:
        return (
            "[mysqld]\n"
            f"port={self.port}\n"
            f"datadir={self.datadir}\n"
            f"max_connections={self.max_connections}\n"
        )

    @classmethod
    def parse(cls, text: str) -> "MyCnf":
        conf = cls()
        section = None
        for lineno, line in enumerate(text.splitlines(), 1):
            line = line.strip()
            if not line or line.startswith(("#", ";")):
                continue
            if line.startswith("[") and line.endswith("]"):
                section = line[1:-1]
                continue
            if section != "mysqld":
                continue
            if "=" not in line:
                raise ConfigError(f"my.cnf line {lineno}: {line!r}")
            key, value = (s.strip() for s in line.split("=", 1))
            if key == "port":
                conf.port = int(value)
            elif key == "datadir":
                conf.datadir = value
            elif key == "max_connections":
                conf.max_connections = int(value)
        return conf

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, MyCnf):
            return NotImplemented
        return self.render() == other.render()


# ----------------------------------------------------------------------
# C-JDBC virtual database XML
# ----------------------------------------------------------------------
class CjdbcBackend:
    """One database backend declaration in the C-JDBC controller config."""

    __slots__ = ("name", "host", "port")

    def __init__(self, name: str, host: str, port: int):
        self.name = name
        self.host = host
        self.port = port

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CjdbcBackend):
            return NotImplemented
        return (self.name, self.host, self.port) == (other.name, other.host, other.port)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CjdbcBackend({self.name!r}, {self.host}:{self.port})"


class CjdbcXml:
    """C-JDBC controller configuration (virtual database + backends +
    load-balancer policy + recovery-log location)."""

    def __init__(
        self,
        vdb_name: str = "rubis",
        port: int = 25322,
        policy: str = "LeastPendingRequestsFirst",
        backends: Optional[list[CjdbcBackend]] = None,
        recovery_log: str = "/var/lib/cjdbc/recovery.db",
    ) -> None:
        self.vdb_name = vdb_name
        self.port = port
        self.policy = policy
        self.backends: list[CjdbcBackend] = list(backends or [])
        self.recovery_log = recovery_log

    def render(self) -> str:
        lines = [
            "<C-JDBC>",
            f'  <VirtualDatabase name="{self.vdb_name}" port="{self.port}">',
            f'    <RecoveryLog url="{self.recovery_log}"/>',
            f'    <RAIDb-1 loadBalancer="{self.policy}">',
        ]
        for b in self.backends:
            lines.append(
                f'      <DatabaseBackend name="{b.name}" host="{b.host}" '
                f'port="{b.port}"/>'
            )
        lines += ["    </RAIDb-1>", "  </VirtualDatabase>", "</C-JDBC>"]
        return "\n".join(lines) + "\n"

    @classmethod
    def parse(cls, text: str) -> "CjdbcXml":
        try:
            root = ET.fromstring(text)
        except ET.ParseError as exc:
            raise ConfigError(f"cjdbc.xml: {exc}") from exc
        vdb = root.find("VirtualDatabase")
        if vdb is None:
            raise ConfigError("cjdbc.xml: missing <VirtualDatabase>")
        conf = cls(
            vdb_name=vdb.get("name", "rubis"),
            port=int(vdb.get("port", "25322")),
        )
        log = vdb.find("RecoveryLog")
        if log is not None:
            conf.recovery_log = log.get("url", conf.recovery_log)
        raidb = vdb.find("RAIDb-1")
        if raidb is not None:
            conf.policy = raidb.get("loadBalancer", conf.policy)
            for b in raidb.findall("DatabaseBackend"):
                name, host, port = b.get("name"), b.get("host"), b.get("port")
                if not (name and host and port):
                    raise ConfigError("cjdbc.xml: incomplete <DatabaseBackend>")
                conf.backends.append(CjdbcBackend(name, host, int(port)))
        return conf

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CjdbcXml):
            return NotImplemented
        return self.render() == other.render()


# ----------------------------------------------------------------------
# PLB configuration
# ----------------------------------------------------------------------
class PlbConf:
    """PLB's directive file: a listen port and ``server host:port`` lines."""

    def __init__(
        self,
        listen: int = 8888,
        servers: Optional[list[tuple[str, int]]] = None,
        policy: str = "roundrobin",
    ) -> None:
        self.listen = listen
        self.servers: list[tuple[str, int]] = list(servers or [])
        self.policy = policy

    def render(self) -> str:
        lines = [f"listen {self.listen}", f"policy {self.policy}"]
        lines += [f"server {host}:{port}" for host, port in self.servers]
        return "\n".join(lines) + "\n"

    @classmethod
    def parse(cls, text: str) -> "PlbConf":
        conf = cls(servers=[])
        for lineno, line in enumerate(text.splitlines(), 1):
            line = line.strip()
            if not line or line.startswith("#"):
                continue
            parts = line.split(None, 1)
            if len(parts) != 2:
                raise ConfigError(f"plb.conf line {lineno}: {line!r}")
            keyword, value = parts
            if keyword == "listen":
                conf.listen = int(value)
            elif keyword == "policy":
                conf.policy = value
            elif keyword == "server":
                if ":" not in value:
                    raise ConfigError(f"plb.conf line {lineno}: bad server {value!r}")
                host, port = value.rsplit(":", 1)
                conf.servers.append((host, int(port)))
            else:
                raise ConfigError(f"plb.conf line {lineno}: unknown {keyword!r}")
        return conf

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, PlbConf):
            return NotImplemented
        return self.render() == other.render()
