"""Cluster-wide endpoint directory.

Legacy programs find each other through ``host:port`` endpoints written in
their configuration files (Apache's ``worker.properties`` lists Tomcat
hosts; Tomcat's datasource URL points at the C-JDBC controller...).  The
directory plays the role of the network stack: it resolves an endpoint to
the live server object listening on it.  A lookup of an endpoint nobody
listens on raises :class:`EndpointNotFound` — the simulated equivalent of a
TCP connection refusal, which is exactly what a mis-edited config file
produces on the real testbed.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.legacy.server import LegacyServer


class EndpointNotFound(ConnectionError):
    """Nothing is listening on the requested host:port."""


class Directory:
    """Maps (host, port) endpoints to listening servers."""

    def __init__(self) -> None:
        self._endpoints: dict[tuple[str, int], "LegacyServer"] = {}

    def register(self, host: str, port: int, server: "LegacyServer") -> None:
        key = (host, int(port))
        current = self._endpoints.get(key)
        if current is not None and current is not server:
            raise ValueError(
                f"endpoint {host}:{port} already taken by {current.name}"
            )
        self._endpoints[key] = server

    def unregister(self, host: str, port: int) -> None:
        self._endpoints.pop((host, int(port)), None)

    def lookup(self, host: str, port: int) -> "LegacyServer":
        try:
            return self._endpoints[(host, int(port))]
        except KeyError:
            raise EndpointNotFound(f"{host}:{port}") from None

    def try_lookup(self, host: str, port: int) -> Optional["LegacyServer"]:
        return self._endpoints.get((host, int(port)))

    def endpoints(self) -> list[tuple[str, int, str]]:
        return sorted(
            (host, port, server.name)
            for (host, port), server in self._endpoints.items()
        )

    def __len__(self) -> int:
        return len(self._endpoints)
