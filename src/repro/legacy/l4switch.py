"""Simulated L4 switch.

"the L4 switch for a cluster of replicated Apache web servers" (§2) — the
hardware balancer in front of the web tier in Figure 2.  Being hardware, it
has no node, no config file and no CPU cost; it spreads client connections
over a set of Apache endpoints and skips dead ones.
"""

from __future__ import annotations

from typing import Optional


from repro.cluster.network import Lan
from repro.legacy.directory import Directory
from repro.legacy.policies import BalancingPolicy, RoundRobinPolicy
from repro.legacy.requests import WebRequest
from repro.simulation.kernel import SimKernel


class L4Switch:
    """A link-level load balancer (not a :class:`LegacyServer`: it is a
    piece of hardware, which is precisely why the paper manages the web tier
    through it rather than through software configuration)."""

    def __init__(
        self,
        kernel: SimKernel,
        name: str,
        directory: Directory,
        lan: Optional[Lan] = None,
        policy: Optional[BalancingPolicy] = None,
    ) -> None:
        self.kernel = kernel
        self.name = name
        self.directory = directory
        self.lan = lan
        self.policy = policy if policy is not None else RoundRobinPolicy()
        self._endpoints: list[tuple[str, int]] = []
        self.forwarded = 0
        self.dropped = 0

    # ------------------------------------------------------------------
    # Port configuration (front-panel administration)
    # ------------------------------------------------------------------
    def add_endpoint(self, host: str, port: int) -> None:
        key = (host, int(port))
        if key in self._endpoints:
            raise ValueError(f"endpoint {host}:{port} already configured")
        self._endpoints.append(key)
        self.policy.reset()

    def remove_endpoint(self, host: str, port: int) -> None:
        key = (host, int(port))
        self._endpoints.remove(key)
        self.policy.reset()

    @property
    def endpoints(self) -> list[tuple[str, int]]:
        return list(self._endpoints)

    # ------------------------------------------------------------------
    def handle(self, request: WebRequest) -> None:
        """Forward a client connection to a live web server."""
        request.trace(self.name)
        candidates = list(self._endpoints)
        for _ in range(len(candidates)):
            host, port = self.policy.choose(candidates)
            server = self.directory.try_lookup(host, port)
            if server is not None and server.running:
                self.forwarded += 1
                if self.lan is None:
                    self.kernel.call_soon(server.handle, request)
                else:
                    self.kernel.schedule(
                        self.lan.message_delay(), server.handle, request
                    )
                return
            candidates = [(h, p) for h, p in candidates if (h, p) != (host, port)]
            if not candidates:
                break
        self.dropped += 1
        request.fail(self.kernel, f"{self.name}: no live web server")
