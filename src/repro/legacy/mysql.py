"""Simulated MySQL database server.

One replica of the fully-mirrored database (C-JDBC RAIDb-1: "each server
containing a full copy of the whole database").  The replica's logical
state is summarized by:

* ``applied_index`` — recovery-log index of the next write it expects
  (i.e. it has executed all writes with index < applied_index);
* ``state_digest`` — an order-sensitive digest of the applied write
  sequence, used by tests and the consistency checker to prove that two
  replicas are byte-identical iff their digests match.

Queries consume CPU on the node (the demand travels on the request); writes
additionally advance the digest.  Replayed writes (state reconciliation)
take the same code path as live writes, so synchronization competes for CPU
with foreground load — as on the real testbed.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.network import Lan
from repro.cluster.node import Node
from repro.legacy.configfiles import MyCnf
from repro.legacy.directory import Directory
from repro.legacy.recovery_log import WriteEntry
from repro.legacy.server import LegacyServer, ServerNotRunning
from repro.simulation.kernel import SimKernel
from repro.simulation.process import Signal

_DIGEST_MASK = (1 << 61) - 1
_DIGEST_MULT = 1000003


def advance_digest(digest: int, write_id: int) -> int:
    """Order-sensitive digest combine (FNV-style)."""
    return ((digest * _DIGEST_MULT) ^ write_id) & _DIGEST_MASK


class MySqlServer(LegacyServer):
    """A MySQL replica."""

    CONFIG_PATH = "/etc/mysql/my.cnf"
    footprint_mb = 80.0

    def __init__(
        self,
        kernel: SimKernel,
        name: str,
        node: Node,
        directory: Directory,
        lan: Optional[Lan] = None,
    ) -> None:
        super().__init__(kernel, name, node, directory, lan)
        self.conf: Optional[MyCnf] = None
        self.applied_index = 0
        self.state_digest = 0
        self.reads_served = 0
        self.writes_applied = 0
        self.replays_applied = 0
        # Writes whose CPU work finished but whose turn (index order) has
        # not yet come: index -> (entry, signal, replay flag).
        self._ready: dict[int, tuple[WriteEntry, Signal, bool]] = {}
        # Ids for writes executed through a direct (non-clustered) JDBC
        # connection; offset far above recovery-log ids.
        self._next_local_write_id = 1_000_000_000

    # ------------------------------------------------------------------
    def _load_config(self) -> None:
        text = self.node.fs.read(self.CONFIG_PATH)
        self.conf = MyCnf.parse(text)

    def _endpoints(self) -> list[tuple[str, int]]:
        assert self.conf is not None
        return [(self.host, self.conf.port)]

    @property
    def port(self) -> int:
        if self.conf is None:
            raise ServerNotRunning(f"{self.name}: not configured")
        return self.conf.port

    # ------------------------------------------------------------------
    # Query execution
    # ------------------------------------------------------------------
    def execute(self, request) -> Signal:
        """Direct JDBC entry point (Tomcat configured without C-JDBC).

        Reads cost their CPU demand; writes also advance the local state
        with a locally-generated write id (there is no cluster to keep
        consistent in this mode).
        """
        if request.is_write:
            entry = WriteEntry(
                self.applied_index,
                self._next_local_write_id,
                request.interaction,
                request.db_demand,
                request.weight,
            )
            self._next_local_write_id += 1
            return self._apply(entry, replay=False)
        return self.execute_read(request.db_demand, request.weight)

    def execute_read(self, demand: float, weight: int = 1) -> Signal:
        """Run a read query of the given CPU demand; the signal fires when
        the result set is ready.  ``weight`` batches that many identical
        reads (cohorts) whose summed demand is ``demand``."""
        sig = Signal(self.kernel)
        if not self.running:
            sig.fail(ServerNotRunning(self.name))
            return sig
        if not self._admit():
            sig.fail(ConnectionError(f"{self.name}: too many connections"))
            return sig
        self._begin(weight)

        def ok() -> None:
            self.reads_served += weight
            self._end(weight=weight)
            sig.succeed(self)

        def fail(err: BaseException) -> None:
            self._end(ok=False, weight=weight)
            sig.fail(err)

        self._run_then(demand, ok, fail, weight=weight)
        return sig

    def execute_write(self, entry: WriteEntry) -> Signal:
        """Apply a live write (fanned out by C-JDBC) — consumes CPU then
        advances the replica state."""
        return self._apply(entry, replay=False)

    def replay_write(self, entry: WriteEntry) -> Signal:
        """Apply a write during state reconciliation (same cost model)."""
        return self._apply(entry, replay=True)

    def _apply(self, entry: WriteEntry, replay: bool) -> Signal:
        """Concurrent writes run their CPU work in parallel (the node CPU is
        processor-shared) but *commit* strictly in recovery-log index order,
        which is how C-JDBC's total ordering of writes manifests at each
        backend."""
        sig = Signal(self.kernel)
        if not self.running:
            sig.fail(ServerNotRunning(self.name))
            return sig
        if entry.index < self.applied_index or entry.index in self._ready:
            sig.fail(
                RuntimeError(
                    f"{self.name}: write #{entry.index} already applied or "
                    f"in flight (at #{self.applied_index})"
                )
            )
            return sig
        self._begin(entry.weight)

        def ok() -> None:
            self._ready[entry.index] = (entry, sig, replay)
            self._commit_ready()

        def fail(err: BaseException) -> None:
            self._end(ok=False, weight=entry.weight)
            sig.fail(err)

        self._run_then(entry.demand, ok, fail, weight=entry.weight)
        return sig

    def _commit_ready(self) -> None:
        """Commit every write whose predecessors have all committed."""
        while self.applied_index in self._ready:
            entry, sig, replay = self._ready.pop(self.applied_index)
            self.applied_index = entry.index + 1
            self.state_digest = advance_digest(self.state_digest, entry.write_id)
            if replay:
                self.replays_applied += 1
            else:
                self.writes_applied += 1
            self._end(weight=entry.weight)
            sig.succeed(self)
