"""Simulated PLB — the application-server load balancer.

"PLB 0.3, a free high-performance load balancer for Unix" fronts the
replicated Tomcat tier in the paper's testbed.  It reads a directive file
(``plb.conf``) listing backend ``host:port`` entries, balances requests over
them, and supports online reconfiguration (re-reading its config on
``reload`` — the hook the Jade actuators use to integrate or remove a
replica without dropping traffic).

A backend that refuses the connection (crashed or stopped) is skipped and
the next one is tried, like a real TCP balancer with health checking.
"""

from __future__ import annotations

from typing import Optional

from repro.cluster.network import Lan
from repro.cluster.node import Node
from repro.legacy.configfiles import PlbConf
from repro.legacy.directory import Directory
from repro.legacy.policies import BalancingPolicy, make_policy
from repro.legacy.requests import WebRequest
from repro.legacy.server import LegacyServer, ServerNotRunning
from repro.simulation.kernel import SimKernel


class PlbBalancer(LegacyServer):
    """The PLB process."""

    CONFIG_PATH = "/etc/plb/plb.conf"
    footprint_mb = 16.0

    #: balancer CPU consumed to proxy one request (seconds)
    proxy_demand = 0.0002

    def __init__(
        self,
        kernel: SimKernel,
        name: str,
        node: Node,
        directory: Directory,
        lan: Optional[Lan] = None,
    ) -> None:
        super().__init__(kernel, name, node, directory, lan)
        self.conf: Optional[PlbConf] = None
        self._policy: Optional[BalancingPolicy] = None
        self.forwarded = 0
        self.retries = 0

    # ------------------------------------------------------------------
    def _load_config(self) -> None:
        text = self.node.fs.read(self.CONFIG_PATH)
        self.conf = PlbConf.parse(text)
        self._policy = make_policy(self.conf.policy)

    def _endpoints(self) -> list[tuple[str, int]]:
        assert self.conf is not None
        return [(self.host, self.conf.listen)]

    def reload(self) -> None:
        """Re-read plb.conf without dropping the listening socket (the
        online-reconfiguration entry point used by actuators)."""
        if not self.running:
            raise ServerNotRunning(self.name)
        self._load_config()

    @property
    def backend_endpoints(self) -> list[tuple[str, int]]:
        if self.conf is None:
            return []
        return list(self.conf.servers)

    # ------------------------------------------------------------------
    def handle(self, request: WebRequest) -> None:
        """Proxy one client request to a backend."""
        if not self.running:
            request.fail(self.kernel, f"{self.name} is not running")
            return
        request.trace(self.name)
        self._begin(request.weight)
        self._run_then(
            self.proxy_demand * request.weight,
            lambda: self._forward(request),
            lambda err: self._abort(request, f"proxy aborted: {err}"),
            weight=request.weight,
        )

    def _forward(self, request: WebRequest) -> None:
        assert self.conf is not None and self._policy is not None
        candidates = list(self.conf.servers)
        attempts = len(candidates)
        chosen = None
        for _ in range(attempts):
            host, port = self._policy.choose(candidates)
            server = self.directory.try_lookup(host, port)
            if server is not None and server.running:
                chosen = server
                break
            self.retries += 1
            candidates = [(h, p) for h, p in candidates if (h, p) != (host, port)]
            if not candidates:
                break
        if chosen is None:
            self._abort(request, "no live backend")
            return
        self.forwarded += request.weight
        self._end(weight=request.weight)
        self._after_hop(chosen.handle, request)

    def _abort(self, request: WebRequest, reason: str) -> None:
        self._end(ok=False, weight=request.weight)
        request.fail(self.kernel, f"{self.name}: {reason}")
