"""Load-balancing policies.

"Different load balancing algorithms may be used, e.g. Random, Round-Robin,
etc." (§2).  The same policy objects are used by mod_jk (Apache→Tomcat),
PLB (clients→Tomcat) and C-JDBC (reads→MySQL backends); ablation benchmark
A4 compares them.
"""

from __future__ import annotations

from typing import Callable, Optional, Sequence, TypeVar

import numpy as np

T = TypeVar("T")

PendingFn = Callable[[T], int]
WeightFn = Callable[[T], float]


class BalancingPolicy:
    """Chooses one backend among candidates; stateful policies keep their
    own rotation state keyed on nothing (one policy instance per balancer)."""

    name = "abstract"

    def choose(self, candidates: Sequence[T]) -> T:
        raise NotImplementedError

    def reset(self) -> None:
        """Forget rotation state (called when the backend set changes)."""


class RandomPolicy(BalancingPolicy):
    """Uniform random choice."""

    name = "random"

    def __init__(self, rng: Optional[np.random.Generator] = None) -> None:
        self.rng = rng if rng is not None else np.random.default_rng(0)

    def choose(self, candidates: Sequence[T]) -> T:
        if not candidates:
            raise IndexError("no backend available")
        return candidates[int(self.rng.integers(len(candidates)))]


class RoundRobinPolicy(BalancingPolicy):
    """Cyclic rotation; robust to the candidate list changing size."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def choose(self, candidates: Sequence[T]) -> T:
        if not candidates:
            raise IndexError("no backend available")
        choice = candidates[self._next % len(candidates)]
        self._next = (self._next + 1) % len(candidates)
        return choice

    def reset(self) -> None:
        self._next = 0


class LeastPendingPolicy(BalancingPolicy):
    """Pick the backend with the fewest in-flight requests (C-JDBC's
    ``LeastPendingRequestsFirst``).  Requires a ``pending_fn`` that reads a
    candidate's current load; ties break on list order for determinism."""

    name = "least-pending"

    def __init__(self, pending_fn: PendingFn) -> None:
        self.pending_fn = pending_fn

    def choose(self, candidates: Sequence[T]) -> T:
        if not candidates:
            raise IndexError("no backend available")
        return min(candidates, key=self.pending_fn)


class WeightedRoundRobinPolicy(BalancingPolicy):
    """mod_jk's lbfactor-weighted rotation: each backend is selected in
    proportion to its weight, using smooth weighted round-robin."""

    name = "weighted-round-robin"

    def __init__(self, weight_fn: WeightFn) -> None:
        self.weight_fn = weight_fn
        self._current: dict[int, float] = {}

    def choose(self, candidates: Sequence[T]) -> T:
        if not candidates:
            raise IndexError("no backend available")
        total = 0.0
        best = None
        best_key = None
        for cand in candidates:
            key = id(cand)
            weight = float(self.weight_fn(cand))
            if weight <= 0:
                raise ValueError("weights must be positive")
            value = self._current.get(key, 0.0) + weight
            self._current[key] = value
            total += weight
            if best is None or value > self._current[best_key]:
                best = cand
                best_key = key
        assert best is not None and best_key is not None
        self._current[best_key] -= total
        return best

    def reset(self) -> None:
        self._current.clear()


def make_policy(
    name: str,
    rng: Optional[np.random.Generator] = None,
    pending_fn: Optional[PendingFn] = None,
    weight_fn: Optional[WeightFn] = None,
) -> BalancingPolicy:
    """Build a policy by name (as found in legacy config files)."""
    lowered = name.lower().replace("_", "").replace("-", "")
    if lowered == "random":
        return RandomPolicy(rng)
    if lowered in ("roundrobin", "rr"):
        return RoundRobinPolicy()
    if lowered in ("leastpending", "leastpendingrequestsfirst"):
        if pending_fn is None:
            raise ValueError("least-pending policy needs a pending_fn")
        return LeastPendingPolicy(pending_fn)
    if lowered in ("weightedroundrobin", "wrr"):
        if weight_fn is None:
            raise ValueError("weighted round-robin needs a weight_fn")
        return WeightedRoundRobinPolicy(weight_fn)
    raise ValueError(f"unknown balancing policy {name!r}")
