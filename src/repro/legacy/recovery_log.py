"""C-JDBC recovery log.

"A 'recovery log' has been added to the C-JDBC load-balancer.  This
recovery log is implemented as a particular database whose purpose is to
keep track of all the requests that affect the state of the database.
Basically, all write requests are logged and indexed as strings in this
recovery log." (§4.1)

The log is an append-only sequence of :class:`WriteEntry`.  Inserting a new
backend replays the suffix of the log it has not yet executed; removing a
backend records the index of the last write it executed, so a later
re-insertion replays only the gap.
"""

from __future__ import annotations

from typing import Iterator, Optional


class WriteEntry:
    """One logged write request (a cohort write batches ``weight`` identical
    writes; ``demand`` is their summed CPU demand)."""

    __slots__ = ("index", "write_id", "sql", "demand", "weight")

    def __init__(
        self, index: int, write_id: int, sql: str, demand: float, weight: int = 1
    ):
        self.index = index
        self.write_id = write_id
        self.sql = sql
        self.demand = demand
        self.weight = weight

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"WriteEntry(#{self.index}, id={self.write_id})"


class RecoveryLog:
    """Append-only indexed write log with per-backend checkpoints."""

    def __init__(self) -> None:
        self._entries: list[WriteEntry] = []
        self._checkpoints: dict[str, int] = {}
        self._next_write_id = 1

    # ------------------------------------------------------------------
    @property
    def next_index(self) -> int:
        """Index the next appended entry will receive (== current length)."""
        return len(self._entries)

    def append(self, sql: str, demand: float, weight: int = 1) -> WriteEntry:
        """Log a write request; returns the entry (with its index)."""
        entry = WriteEntry(
            len(self._entries), self._next_write_id, sql, demand, weight
        )
        self._next_write_id += 1
        self._entries.append(entry)
        return entry

    def get(self, index: int) -> WriteEntry:
        return self._entries[index]

    def entries_from(self, index: int) -> Iterator[WriteEntry]:
        """Iterate entries with index >= ``index`` (the replay suffix)."""
        if index < 0:
            raise IndexError("index must be >= 0")
        return iter(self._entries[index:])

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------
    # Checkpoints ("the state is stored as the index value in the recovery
    # log corresponding to the last write request that it has executed
    # before being disabled")
    # ------------------------------------------------------------------
    def set_checkpoint(self, backend_name: str, index: int) -> None:
        if not 0 <= index <= self.next_index:
            raise IndexError(
                f"checkpoint {index} outside log bounds [0, {self.next_index}]"
            )
        self._checkpoints[backend_name] = index

    def checkpoint(self, backend_name: str) -> Optional[int]:
        return self._checkpoints.get(backend_name)

    def drop_checkpoint(self, backend_name: str) -> None:
        self._checkpoints.pop(backend_name, None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RecoveryLog({len(self._entries)} entries)"
