"""Requests flowing through the legacy layer.

A :class:`WebRequest` is an HTTP request emitted by an emulated client.  It
carries its interaction type and the *service demands* it will impose on
each tier (computed once by the workload model from the RUBiS calibration),
plus tracing fields every hop fills in.  Keeping demands on the request —
rather than inside each server — keeps the legacy servers generic and all
calibration in one place (:mod:`repro.workload.calibration`).
"""

from __future__ import annotations

import itertools
from typing import Optional

from repro.simulation.kernel import SimKernel
from repro.simulation.process import Signal

_req_ids = itertools.count(1)


class RequestFailed(RuntimeError):
    """The request could not be served (server down, no backend...)."""


class WebRequest:
    """One client HTTP interaction."""

    __slots__ = (
        "req_id",
        "interaction",
        "is_static",
        "is_write",
        "app_demand_pre",
        "app_demand_post",
        "db_demand",
        "static_demand",
        "completion",
        "issued_at",
        "completed_at",
        "failed",
        "hops",
        "client_id",
        "weight",
    )

    def __init__(
        self,
        kernel: SimKernel,
        interaction: str,
        is_static: bool = False,
        is_write: bool = False,
        app_demand_pre: float = 0.0,
        app_demand_post: float = 0.0,
        db_demand: float = 0.0,
        static_demand: float = 0.0,
        client_id: Optional[int] = None,
        weight: int = 1,
    ) -> None:
        self.req_id = next(_req_ids)
        self.interaction = interaction
        self.is_static = is_static
        self.is_write = is_write
        self.app_demand_pre = app_demand_pre
        self.app_demand_post = app_demand_post
        self.db_demand = db_demand
        self.static_demand = static_demand
        self.completion = Signal(kernel)
        self.issued_at = kernel.now
        self.completed_at: Optional[float] = None
        self.failed = False
        self.hops: list[str] = []
        self.client_id = client_id
        #: number of identical client requests this object batches (cohort
        #: aggregation); demands are the summed demands of all constituents
        self.weight = weight

    @property
    def latency(self) -> Optional[float]:
        if self.completed_at is None:
            return None
        return self.completed_at - self.issued_at

    def trace(self, server_name: str) -> None:
        self.hops.append(server_name)

    def complete(self, kernel: SimKernel) -> None:
        """Mark success and fire the completion signal."""
        if self.completion.fired:
            return
        self.completed_at = kernel.now
        self.completion.succeed(self)

    def fail(self, kernel: SimKernel, reason: str) -> None:
        """Mark failure and fire the completion signal with an error."""
        if self.completion.fired:
            return
        self.completed_at = kernel.now
        self.failed = True
        self.completion.fail(RequestFailed(f"request {self.req_id}: {reason}"))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<WebRequest #{self.req_id} {self.interaction}>"
