"""Base class for simulated legacy servers.

A legacy server is a program running on a cluster node.  It is started with
a shell-script-like call, parses its *own* proprietary config files from the
node filesystem at start time, listens on host:port endpoints, consumes node
CPU to serve requests, and dies with its node.  It knows nothing about Jade:
the management layer interacts with it exactly the way an administrator
would — editing config files and invoking start/stop (§3.2).
"""

from __future__ import annotations

from typing import Callable, Optional

from repro.cluster.network import Lan
from repro.cluster.node import Node
from repro.legacy.directory import Directory
from repro.simulation.kernel import SimKernel
from repro.simulation.process import Signal


class ServerNotRunning(RuntimeError):
    """Operation requires the server process to be running."""


class LegacyServer:
    """Common machinery: lifecycle, endpoints, counters, crash handling."""

    #: static memory footprint of the running process, MB
    footprint_mb: float = 48.0

    def __init__(
        self,
        kernel: SimKernel,
        name: str,
        node: Node,
        directory: Directory,
        lan: Optional[Lan] = None,
    ) -> None:
        self.kernel = kernel
        self.name = name
        self.node = node
        self.directory = directory
        self.lan = lan
        self.running = False
        self.pending = 0  # requests currently in flight at this server
        self.served = 0
        self.failures = 0
        self.rejected = 0
        #: when set, new work is refused once ``pending`` reaches this value
        #: (models Tomcat's maxThreads / Apache's MaxClients / MySQL's
        #: max_connections).  None = accept everything (the default: the
        #: paper's Figure 8 shows unbounded queueing, not admission control).
        self.admission_limit: Optional[int] = None
        #: label of the configuration version this server runs (None =
        #: stable baseline; set by the deploy subsystem's bounce actuators)
        self.version_label: Optional[str] = None
        #: a "bad push" injects servlet errors: each admitted request
        #: fails with this probability (drawn from ``fault_rng``).  Zero
        #: cost when 0.0 — the hot path short-circuits on the float.
        self.fault_rate: float = 0.0
        self.fault_rng: Optional[Callable[[], float]] = None
        #: optional per-request tap ``(request, ok) -> None`` fired at
        #: completion/abort (the canary controller's measurement hook)
        self.request_observer: Optional[Callable[[object, bool], None]] = None
        self._registered: list[tuple[str, int]] = []
        node.on_crash(self._node_crashed)

    # ------------------------------------------------------------------
    # Identity
    # ------------------------------------------------------------------
    @property
    def host(self) -> str:
        """The server's hostname is its node's name."""
        return self.node.name

    # ------------------------------------------------------------------
    # Lifecycle (what the start/stop shell scripts do)
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Parse config from the node filesystem, bind endpoints, run.

        Idempotent; raises if the node is down or the config is missing or
        malformed (exactly how a real init script fails).
        """
        if self.running:
            return
        if not self.node.up:
            raise ServerNotRunning(f"{self.name}: node {self.node.name} is down")
        self._load_config()
        for host, port in self._endpoints():
            self.directory.register(host, port, self)
            self._registered.append((host, port))
        self.node.register_footprint(f"srv:{self.name}", self.footprint_mb)
        self.running = True
        self._started()

    def stop(self) -> None:
        """Stop accepting requests and release endpoints (graceful: CPU work
        already queued on the node completes)."""
        if not self.running:
            return
        self.running = False
        self._release_endpoints()
        self.node.unregister_footprint(f"srv:{self.name}")
        self._stopped()

    def _release_endpoints(self) -> None:
        for host, port in self._registered:
            self.directory.unregister(host, port)
        self._registered.clear()

    def _node_crashed(self, node: Node) -> None:
        if self.running:
            self.running = False
            self._release_endpoints()
            self._crashed()

    # Hooks for subclasses -------------------------------------------------
    def _load_config(self) -> None:
        """Parse the server's config files; raise on absence/corruption."""

    def _endpoints(self) -> list[tuple[str, int]]:
        """(host, port) pairs the server listens on once started."""
        return []

    def _started(self) -> None:
        """Post-start hook."""

    def _stopped(self) -> None:
        """Post-stop hook."""

    def _crashed(self) -> None:
        """Crash hook (node died under the server)."""

    # ------------------------------------------------------------------
    # Serving helpers
    # ------------------------------------------------------------------
    def _admit(self) -> bool:
        """True if a new request may enter; counts the rejection if not."""
        if self.admission_limit is not None and self.pending >= self.admission_limit:
            self.rejected += 1
            return False
        return True

    def _inject_fault(self) -> bool:
        """True when the configured per-version error rate fires for this
        request (a bad push's 500s)."""
        if self.fault_rate <= 0.0 or self.fault_rng is None:
            return False
        return self.fault_rng() < self.fault_rate

    def _observe(self, request, ok: bool) -> None:
        if self.request_observer is not None:
            self.request_observer(request, ok)

    def _begin(self, weight: int = 1) -> None:
        self.pending += weight

    def _end(self, ok: bool = True, weight: int = 1) -> None:
        self.pending -= weight
        assert self.pending >= 0, f"{self.name}: pending underflow"
        if ok:
            self.served += weight
        else:
            self.failures += weight

    def _after_hop(self, fn: Callable[..., None], *args) -> None:
        """Run ``fn`` after a simulated network hop (immediately if no LAN
        model was provided)."""
        if self.lan is None:
            self.kernel.call_soon(fn, *args)
        else:
            self.kernel.schedule(self.lan.message_delay(), fn, *args)

    def _run_then(
        self,
        demand: float,
        fn: Callable[[], None],
        fail: Callable[[BaseException], None],
        weight: int = 1,
    ) -> None:
        """Consume ``demand`` seconds of CPU on our node, then call ``fn``;
        on CPU abort (node crash) call ``fail``.  ``weight`` is the number
        of batched identical requests the demand sums over (cohorts): the
        CPU sees ``weight`` concurrent requests of ``demand / weight``
        each."""
        if demand <= 0.0:
            fn()
            return
        job = self.node.run_job(demand, tag=self.name, weight=weight)

        def _done(sig: Signal) -> None:
            if sig.error is not None:
                fail(sig.error)
            else:
                fn()

        job.done.add_callback(_done)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "running" if self.running else "stopped"
        return f"<{type(self).__name__} {self.name} on {self.node.name} [{state}]>"
