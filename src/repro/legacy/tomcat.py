"""Simulated Jakarta Tomcat servlet container.

Serves the dynamic interactions of the RUBiS application: each request
consumes servlet CPU (``app_demand_pre``), issues its database work through
the JDBC datasource configured in ``server.xml`` (a C-JDBC URL in the
clustered setup, or a direct MySQL URL), then generates the HTML response
(``app_demand_post``).

The evaluation application "was composed of servlets with no dynamically
changing session information" (§4.1), so Tomcat replicas are stateless and
can be added/removed without state reconciliation.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.cluster.network import Lan
from repro.cluster.node import Node
from repro.legacy.configfiles import ConfigError, ServerXml
from repro.legacy.directory import Directory, EndpointNotFound
from repro.legacy.requests import WebRequest
from repro.legacy.server import LegacyServer, ServerNotRunning
from repro.simulation.kernel import SimKernel
from repro.simulation.process import Signal

_JDBC_URL = re.compile(r"^jdbc:(?P<driver>[\w-]+)://(?P<host>[\w.-]+):(?P<port>\d+)/(?P<db>\w+)$")


def parse_jdbc_url(url: str) -> tuple[str, str, int, str]:
    """``jdbc:cjdbc://host:port/db`` -> (driver, host, port, database)."""
    m = _JDBC_URL.match(url)
    if m is None:
        raise ConfigError(f"bad JDBC URL {url!r}")
    return m["driver"], m["host"], int(m["port"]), m["db"]


class TomcatServer(LegacyServer):
    """A Tomcat replica."""

    CONFIG_PATH = "/etc/tomcat/server.xml"
    footprint_mb = 96.0

    def __init__(
        self,
        kernel: SimKernel,
        name: str,
        node: Node,
        directory: Directory,
        lan: Optional[Lan] = None,
    ) -> None:
        super().__init__(kernel, name, node, directory, lan)
        self.conf: Optional[ServerXml] = None
        self._ds_host: Optional[str] = None
        self._ds_port: Optional[int] = None

    # ------------------------------------------------------------------
    def _load_config(self) -> None:
        text = self.node.fs.read(self.CONFIG_PATH)
        self.conf = ServerXml.parse(text)
        _, host, port, _ = parse_jdbc_url(self.conf.datasource_url)
        self._ds_host, self._ds_port = host, port

    def _endpoints(self) -> list[tuple[str, int]]:
        assert self.conf is not None
        return [(self.host, self.conf.http_port), (self.host, self.conf.ajp_port)]

    @property
    def ajp_port(self) -> int:
        if self.conf is None:
            raise ServerNotRunning(f"{self.name}: not configured")
        return self.conf.ajp_port

    # ------------------------------------------------------------------
    def handle(self, request: WebRequest) -> None:
        """Serve a dynamic request end-to-end; completes (or fails) the
        request's completion signal."""
        if not self.running:
            request.fail(self.kernel, f"{self.name} is not running")
            return
        if not self._admit():
            request.fail(self.kernel, f"{self.name}: 503 all threads busy")
            return
        if self._inject_fault():
            # A bad push's servlet bug: the request errors out immediately
            # (counted as a server failure, visible to the canary tap).
            self.failures += request.weight
            self._observe(request, False)
            request.fail(self.kernel, f"{self.name}: 500 injected fault")
            return
        request.trace(self.name)
        self._begin(request.weight)
        self._run_then(
            request.app_demand_pre,
            lambda: self._query_db(request),
            lambda err: self._abort(request, f"servlet aborted: {err}"),
            weight=request.weight,
        )

    def _query_db(self, request: WebRequest) -> None:
        if request.db_demand <= 0.0:
            self._respond(request)
            return
        try:
            datasource = self.directory.lookup(self._ds_host, self._ds_port)
        except EndpointNotFound:
            self._abort(request, "datasource connection refused")
            return
        sig: Signal = datasource.execute(request)

        def _db_done(s: Signal) -> None:
            if s.error is not None:
                self._abort(request, f"SQL error: {s.error}")
            else:
                self._respond(request)

        sig.add_callback(_db_done)

    def _respond(self, request: WebRequest) -> None:
        self._run_then(
            request.app_demand_post,
            lambda: self._finish(request),
            lambda err: self._abort(request, f"response generation aborted: {err}"),
            weight=request.weight,
        )

    def _finish(self, request: WebRequest) -> None:
        self._end(weight=request.weight)
        self._observe(request, True)
        request.complete(self.kernel)

    def _abort(self, request: WebRequest, reason: str) -> None:
        self._end(ok=False, weight=request.weight)
        self._observe(request, False)
        request.fail(self.kernel, f"{self.name}: {reason}")
