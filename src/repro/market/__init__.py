"""Heterogeneous node markets (extension; see ROADMAP item 1).

The paper's Cluster Manager draws from a uniform pool of identical free
nodes; its resource-saving argument (§1) is therefore counted in plain
node-hours.  This package prices that argument: an instance-type
**catalog** (:mod:`~repro.market.catalog`), a deterministic **spot
market** with 2-minute interruption notices
(:mod:`~repro.market.spot`), a cost-aware bin-packing
**fleet allocator** stocking the Cluster Manager's pool
(:mod:`~repro.market.allocator`), the **engine** gluing them to the
managed system (:mod:`~repro.market.engine`), frozen
:class:`~repro.market.scenario.MarketScenario` presets riding the cached
parallel runner, a fleet-cost scorecard (:mod:`~repro.market.costs`) and
a fleet-mix what-if (:mod:`~repro.market.whatif`).

Headline: the Fig. 9 ramp at the same SLO for measurably lower fleet
cost than the uniform on-demand pool (see ``benchmarks/bench_market.py``).
"""

from repro.market.catalog import (
    DEFAULT_CATALOG,
    MARKETS,
    InstanceType,
    by_name,
    price_book,
)
from repro.market.allocator import FleetAllocator, Offer
from repro.market.engine import MarketEngine
from repro.market.scenario import (
    POLICIES,
    PRESETS,
    MarketScenario,
    market_config,
)
from repro.market.spot import SpotMarket

__all__ = [
    "DEFAULT_CATALOG",
    "MARKETS",
    "POLICIES",
    "PRESETS",
    "FleetAllocator",
    "InstanceType",
    "MarketEngine",
    "MarketScenario",
    "Offer",
    "SpotMarket",
    "by_name",
    "market_config",
    "price_book",
]
