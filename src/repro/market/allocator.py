"""Cost-aware fleet allocation: shopping for nodes on the market.

The paper's Cluster Manager hands out nodes from a fixed uniform pool.
The :class:`FleetAllocator` *stocks* that pool instead: it buys nodes of
catalog instance types on the on-demand or spot market and retires them
when demand falls, choosing the mix greedily — best-fit-decreasing over
price-per-effective-vCPU at current prices — under an **on-demand
capacity floor** (the scenario's interruption-tolerance policy: at least
``on_demand_floor`` of fleet capacity must be non-preemptible).

The allocator only does the mechanics (offers, mix choice, provisioning,
retirement, exact cost integration); *when* to rebalance and against
what demand target is the :class:`~repro.market.engine.MarketEngine`'s
plan loop.  Tier actuators keep calling the unchanged
:meth:`~repro.cluster.allocator.ClusterManager.allocate` — the market is
invisible to the paper's control loops, exactly as a cloud autoscaler
is invisible to the application.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.market.catalog import InstanceType, by_name

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.allocator import ClusterManager
    from repro.cluster.node import Node
    from repro.market.scenario import MarketScenario
    from repro.market.spot import SpotMarket
    from repro.simulation.kernel import SimKernel


class Offer:
    """One purchasable (instance type, market) pair at its current price."""

    __slots__ = ("itype", "market", "price")

    def __init__(self, itype: InstanceType, market: str, price: float):
        self.itype = itype
        self.market = market
        self.price = price

    @property
    def price_per_vcpu(self) -> float:
        return self.price / self.itype.cpu_capacity

    def sort_key(self) -> tuple:
        # cheapest effective vCPUs first; among ties prefer bigger boxes
        # (fewer nodes), then a total deterministic order.
        return (
            self.price_per_vcpu,
            -self.itype.cpu_capacity,
            self.itype.name,
            self.market,
        )


class Provision:
    """One node's market life: bought at ``t0``, returned at ``t1``."""

    __slots__ = ("node_name", "type_name", "market", "t0", "t1", "reason")

    def __init__(self, node_name: str, type_name: str, market: str, t0: float):
        self.node_name = node_name
        self.type_name = type_name
        self.market = market
        self.t0 = t0
        self.t1: Optional[float] = None
        self.reason: Optional[str] = None

    def as_dict(self) -> dict:
        return {
            "node": self.node_name,
            "type": self.type_name,
            "market": self.market,
            "t0": self.t0,
            "t1": self.t1,
            "reason": self.reason,
        }


class FleetAllocator:
    """Buys and retires nodes to stock a :class:`ClusterManager` pool."""

    def __init__(
        self,
        kernel: "SimKernel",
        scenario: "MarketScenario",
        market: "SpotMarket",
        cluster: "ClusterManager",
        make_node: Callable[[str, InstanceType, str], "Node"],
    ) -> None:
        self.kernel = kernel
        self.scenario = scenario
        self.market = market
        self.cluster = cluster
        self.make_node = make_node
        self._index = by_name(scenario.catalog)
        self._counter = 0
        #: full market history, open and closed (the cost report's input)
        self.provisions: list[Provision] = []
        self._open: dict[str, Provision] = {}

    # ------------------------------------------------------------------
    # Fleet state
    # ------------------------------------------------------------------
    def live_nodes(self) -> list["Node"]:
        return [
            n
            for n in self.cluster.free_nodes() + self.cluster.allocated_nodes()
            if n.name in self._open
        ]

    def live_capacity(self) -> tuple[float, float]:
        """(on-demand, spot) effective vCPUs currently provisioned."""
        od = spot = 0.0
        for node in self.live_nodes():
            cap = node.instance.cpu_capacity if node.instance else 1.0
            if node.market == "spot":
                spot += cap
            else:
                od += cap
        return od, spot

    # ------------------------------------------------------------------
    # Shopping
    # ------------------------------------------------------------------
    def offers(self) -> list[Offer]:
        """Current menu, cheapest effective vCPU first."""
        menu: list[Offer] = []
        for size in sorted(set(self.scenario.sizes)):
            itype = self._index[size]
            menu.append(Offer(itype, "on-demand", itype.hourly_price))
            if itype.spot and self.scenario.on_demand_floor < 1.0:
                menu.append(Offer(itype, "spot", self.market.price(size)))
        menu.sort(key=Offer.sort_key)
        return menu

    def choose_mix(self, deficit_vcpus: float) -> list[Offer]:
        """Greedy best-fit-decreasing: repeatedly take the cheapest offer
        per effective vCPU, demoting spot picks to the cheapest on-demand
        offer whenever they would sink the on-demand capacity floor."""
        if deficit_vcpus <= 0:
            return []
        od, spot = self.live_capacity()
        menu = self.offers()
        od_menu = [o for o in menu if o.market == "on-demand"]
        picks: list[Offer] = []
        remaining = deficit_vcpus
        floor = self.scenario.on_demand_floor
        while remaining > 1e-9:
            offer = menu[0]
            if offer.market == "spot":
                cap = offer.itype.cpu_capacity
                total_after = od + spot + cap
                if spot + cap > (1.0 - floor) * total_after + 1e-9:
                    offer = od_menu[0]
            cap = offer.itype.cpu_capacity
            if offer.market == "spot":
                spot += cap
            else:
                od += cap
            picks.append(offer)
            remaining -= cap
        return picks

    # ------------------------------------------------------------------
    # Provisioning / retirement
    # ------------------------------------------------------------------
    def provision(self, itype: InstanceType, market: str) -> "Node":
        """Buy one node and stock the free pool with it (after the
        scenario's boot delay, if any)."""
        self._counter += 1
        name = f"mkt{self._counter}.{itype.name}.{'sp' if market == 'spot' else 'od'}"
        node = self.make_node(name, itype, market)
        prov = Provision(name, itype.name, market, self.kernel.now)
        self.provisions.append(prov)
        self._open[name] = prov
        if self.scenario.boot_s > 0:
            self.kernel.schedule(self.scenario.boot_s, self._join, node)
        else:
            self._join(node)
        return node

    def _join(self, node: "Node") -> None:
        if node.up and node.name in self._open:
            self.cluster.add_node(node)

    def provision_mix(self, mix: list[Offer]) -> list["Node"]:
        return [self.provision(o.itype, o.market) for o in mix]

    def retire_excess(self, excess_vcpus: float) -> list["Node"]:
        """Return up to ``excess_vcpus`` of *free* capacity to the market,
        most-expensive-per-effective-vCPU first, never violating the
        on-demand floor (so scale-down does not silently raise the fleet's
        interruption exposure)."""
        if excess_vcpus <= 0:
            return []
        od, spot = self.live_capacity()
        floor = self.scenario.on_demand_floor

        def current_price_per_vcpu(node: "Node") -> float:
            itype = node.instance
            price = (
                self.market.price(itype.name)
                if node.market == "spot"
                else itype.hourly_price
            )
            return price / itype.cpu_capacity

        candidates = sorted(
            (n for n in self.cluster.free_nodes() if n.name in self._open),
            key=lambda n: (-current_price_per_vcpu(n), n.name),
        )
        retired: list["Node"] = []
        remaining = excess_vcpus
        for node in candidates:
            cap = node.instance.cpu_capacity if node.instance else 1.0
            if cap > remaining + 1e-9:
                continue
            if node.market != "spot":
                # would the fleet still satisfy the floor without it?
                total_after = od - cap + spot
                if total_after > 0 and od - cap < floor * total_after - 1e-9:
                    continue
                od -= cap
            else:
                spot -= cap
            self.retire(node, reason="scale-down")
            retired.append(node)
            remaining -= cap
        return retired

    def retire(self, node: "Node", reason: str = "scale-down") -> None:
        """Return a (free) node to the market and close its provision."""
        self.cluster.discard(node)
        self.close(node.name, reason=reason)

    def close(self, node_name: str, reason: str = "scale-down") -> None:
        """Close the provision record (idempotent; also used when a spot
        node is reclaimed or crashes)."""
        prov = self._open.pop(node_name, None)
        if prov is not None:
            prov.t1 = self.kernel.now
            prov.reason = reason

    # ------------------------------------------------------------------
    # Cost
    # ------------------------------------------------------------------
    def fleet_cost(self, t_end: Optional[float] = None) -> float:
        """Exact cost of every provision up to ``t_end`` (default: now),
        integrating the piecewise-constant spot tape."""
        end = self.kernel.now if t_end is None else t_end
        total = 0.0
        for prov in self.provisions:
            t1 = end if prov.t1 is None else min(prov.t1, end)
            total += self.market.integrate(prov.type_name, prov.market, prov.t0, t1)
        return total

    def node_seconds(self, t_end: Optional[float] = None) -> float:
        end = self.kernel.now if t_end is None else t_end
        return sum(
            max(0.0, (end if p.t1 is None else min(p.t1, end)) - p.t0)
            for p in self.provisions
        )
