"""The ``"market"`` section of BENCH_engine.json (shared logic).

One headline claim, asserted by the CI market-smoke job: on the Fig. 9
ramp, the cost-aware fleet allocator with the ``spot-heavy`` policy meets
the **same SLO-violation budget** as the paper's uniform on-demand pool
at **>= 15 % lower total fleet cost**, with 95 % confidence intervals
across seeds.  The ``balanced`` arm rides along to show the
floor/savings trade-off.

Lives inside the package (not ``benchmarks/``) so ``repro bench`` can
import it from an installed tree; ``benchmarks/bench_market.py`` is the
CLI/pytest wrapper.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Sequence

from repro.market.costs import score_scenario
from repro.market.scenario import PRESETS, market_config

#: minimum mean savings (percent) the headline arm must clear
MIN_SAVINGS_PCT = 15.0
#: how far (s) the mean SLO violation may exceed the uniform pool's
SLO_TOLERANCE_S = 10.0


def run_market_section(
    seeds: Sequence[int] = (1, 2, 3),
    peak: int = 500,
    scale: float = 0.15,
    parallel: bool = True,
    use_cache: bool = False,
    slo_latency_s: float = 0.5,
) -> dict:
    """The ``"market"`` section of BENCH_engine.json."""
    from repro.runner import ExperimentRunner, ResultCache

    runner = ExperimentRunner(
        cache=ResultCache() if use_cache else None, parallel=parallel
    )
    seeds = tuple(seeds)

    arms = {name: PRESETS[name]() for name in ("spot-heavy", "balanced")}
    labelled = {}
    for name, scenario in arms.items():
        for seed in seeds:
            labelled[f"{name}-s{seed}"] = market_config(
                scenario, seed=seed, peak=peak, scale=scale
            )
    for seed in seeds:
        labelled[f"uniform-s{seed}"] = replace(
            market_config(arms["spot-heavy"], seed=seed, peak=peak, scale=scale),
            market=None,
        )
    results = runner.run_many(labelled)

    cards = {
        name: score_scenario(
            scenario,
            [results[f"{name}-s{s}"] for s in seeds],
            slo_latency_s=slo_latency_s,
        )
        for name, scenario in arms.items()
    }
    uniform = score_scenario(
        None,
        [results[f"uniform-s{s}"] for s in seeds],
        slo_latency_s=slo_latency_s,
        uniform=True,
    )

    head = cards["spot-heavy"]["aggregate"]
    uni = uniform["aggregate"]
    return {
        "seeds": list(seeds),
        "peak": peak,
        "scale": scale,
        "slo_latency_s": slo_latency_s,
        "slo_tolerance_s": SLO_TOLERANCE_S,
        "min_savings_pct": MIN_SAVINGS_PCT,
        "arms": cards,
        "uniform": uniform,
        "headline": {
            "fleet_cost": head["fleet_cost"],
            "uniform_cost": head["uniform_cost"],
            "savings_pct": head["savings_pct"],
            "spot_share": head["spot_share"],
            "slo_violation_s": head["slo_violation_s"],
            "uniform_slo_violation_s": uni["slo_violation_s"],
            "slo_delta_s": (
                head["slo_violation_s"]["mean"] - uni["slo_violation_s"]["mean"]
            ),
            "goodput_rps": head["goodput_rps"],
            "uniform_goodput_rps": uni["goodput_rps"],
        },
    }


def render_section(section: dict) -> str:
    h = section["headline"]
    lines = [
        f"Heterogeneous fleet: Fig. 9 ramp to {section['peak']} at scale "
        f"{section['scale']:g}, seeds "
        f"{', '.join(str(s) for s in section['seeds'])}",
        "",
        f"spot-heavy: cost {h['fleet_cost']['mean']:.3f} +/- "
        f"{h['fleet_cost']['ci95']:.3f} vs uniform "
        f"{h['uniform_cost']['mean']:.3f} "
        f"(savings {h['savings_pct']['mean']:.1f} +/- "
        f"{h['savings_pct']['ci95']:.1f} %, "
        f"spot share {h['spot_share']['mean'] * 100:.0f} %)",
        f"SLO violation: {h['slo_violation_s']['mean']:.1f} +/- "
        f"{h['slo_violation_s']['ci95']:.1f} s vs uniform "
        f"{h['uniform_slo_violation_s']['mean']:.1f} s "
        f"(delta {h['slo_delta_s']:+.1f} s, budget "
        f"+{section['slo_tolerance_s']:.0f} s)",
        f"goodput: {h['goodput_rps']['mean']:.2f} vs uniform "
        f"{h['uniform_goodput_rps']['mean']:.2f} req/s",
    ]
    for name, card in sorted(section["arms"].items()):
        if name == "spot-heavy":
            continue
        agg = card["aggregate"]
        lines.append(
            f"{name}: cost {agg['fleet_cost']['mean']:.3f} "
            f"(savings {agg['savings_pct']['mean']:.1f} %), "
            f"SLO {agg['slo_violation_s']['mean']:.1f} s"
        )
    return "\n".join(lines)


def check_section(section: dict) -> None:
    """The load-bearing assertions shared by pytest, --smoke and CI."""
    h = section["headline"]
    savings = h["savings_pct"]["mean"]
    assert savings >= section["min_savings_pct"], (
        f"spot-heavy savings {savings:.1f} % below the "
        f"{section['min_savings_pct']:.0f} % headline floor"
    )
    assert h["slo_delta_s"] <= section["slo_tolerance_s"], (
        f"spot-heavy SLO violation exceeds the uniform pool's by "
        f"{h['slo_delta_s']:.1f} s (budget {section['slo_tolerance_s']:.0f} s)"
    )
    # the savings must come from the market, not from serving less work
    good = h["goodput_rps"]["mean"]
    uni_good = h["uniform_goodput_rps"]["mean"]
    assert good >= 0.95 * uni_good, (
        f"spot-heavy goodput {good:.2f} req/s fell below 95 % of the "
        f"uniform pool's {uni_good:.2f} req/s"
    )
    for row in section["arms"]["spot-heavy"]["per_seed"]:
        assert row["fleet_cost"] < row["uniform_cost"], (
            f"seed {row['seed']}: fleet cost {row['fleet_cost']:.3f} not "
            f"below uniform {row['uniform_cost']:.3f}"
        )
