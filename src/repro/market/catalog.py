"""Instance-type catalog: what the node market sells.

The paper's Cluster Manager draws from a *uniform* pool (§3.3).  A real
fleet buys capacity from a menu of instance **types** — so a node gets a
typed capacity/price profile here: vCPU count, a per-vCPU speed factor
relative to the calibrated 2006-era machine, memory, and an hourly
on-demand price.  Spot-capable types can additionally be bought at the
market's fluctuating spot price (see :mod:`repro.market.spot`) at the
cost of 2-minute interruption notices.

Everything is a frozen, picklable value, like
:class:`~repro.chaos.campaign.ChaosCampaign`: a catalog rides inside a
:class:`~repro.market.scenario.MarketScenario` through the cached
process-pool runner unchanged.

Prices are expressed in the cost model's units: the baseline
``std.small`` costs exactly ``CostModel.node_hour_cost`` (1.0) per hour,
so a uniform on-demand pool prices identically under the flat rate and
under the catalog — the market arms differ only where they genuinely
buy different capacity.
"""

from __future__ import annotations

from dataclasses import dataclass

MARKETS = ("on-demand", "spot")


@dataclass(frozen=True)
class InstanceType:
    """One purchasable machine shape."""

    name: str
    vcpus: int
    #: per-vCPU speed multiplier vs the calibrated baseline machine
    cpu_factor: float = 1.0
    memory_mb: float = 1024.0
    #: on-demand price per hour (cost-model units)
    hourly_price: float = 1.0
    #: purchasable as preemptible spot capacity?
    spot: bool = False
    #: long-run mean spot price as a fraction of the on-demand price
    spot_fraction: float = 0.3

    def __post_init__(self) -> None:
        if self.vcpus < 1:
            raise ValueError("vcpus must be >= 1")
        if self.cpu_factor <= 0 or self.memory_mb <= 0:
            raise ValueError("cpu_factor and memory_mb must be positive")
        if self.hourly_price <= 0:
            raise ValueError("hourly_price must be positive")
        if not 0.0 < self.spot_fraction <= 1.0:
            raise ValueError("spot_fraction must be in (0, 1]")

    @property
    def cpu_capacity(self) -> float:
        """Effective vCPUs: what the fleet allocator packs against."""
        return self.vcpus * self.cpu_factor

    def price_per_effective_vcpu(self, price: float | None = None) -> float:
        """Hourly price per effective vCPU (the bin-packing sort key);
        pass a live spot price to rank a spot offer."""
        return (self.hourly_price if price is None else price) / self.cpu_capacity

    @property
    def spot_mean_price(self) -> float:
        """Long-run mean of the spot price walk."""
        return self.hourly_price * self.spot_fraction


#: the default menu: the baseline machine, a double, and a compute-tuned
#: shape — larger instances are slightly cheaper per vCPU, as in every
#: real price book, so best-fit-decreasing has real choices to make.
DEFAULT_CATALOG: tuple[InstanceType, ...] = (
    InstanceType("std.small", vcpus=1, cpu_factor=1.0, memory_mb=1024.0,
                 hourly_price=1.0, spot=True, spot_fraction=0.3),
    InstanceType("std.large", vcpus=2, cpu_factor=1.0, memory_mb=2048.0,
                 hourly_price=1.9, spot=True, spot_fraction=0.3),
    InstanceType("cpu.large", vcpus=2, cpu_factor=1.3, memory_mb=1536.0,
                 hourly_price=2.4, spot=True, spot_fraction=0.35),
)


def by_name(catalog: tuple[InstanceType, ...]) -> dict[str, InstanceType]:
    index = {itype.name: itype for itype in catalog}
    if len(index) != len(catalog):
        raise ValueError("duplicate instance type names in catalog")
    return index


def price_book(catalog: tuple[InstanceType, ...]) -> tuple[tuple[str, float], ...]:
    """Catalog as a :class:`~repro.capacity.cost.CostModel` price book:
    sorted (name, on-demand hourly price) pairs."""
    return tuple(sorted((t.name, t.hourly_price) for t in catalog))
