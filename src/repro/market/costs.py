"""Fleet-cost scorecard.

Turns finished market runs into the numbers the cost story is told with:
exact integrated **fleet cost** (piecewise-constant spot tape), the
**uniform-pool baseline** it is measured against (``pool_nodes`` nodes of
the calibrated machine held for the whole run at the flat
``CostModel.node_hour_cost`` — precisely what every pre-market experiment
in this repo pays), the **savings**, and the SLO metrics proving the
savings did not come out of latency — per seed, then aggregated across
seeds with 95 % confidence intervals.

Everything here is a pure function of :class:`CompletedRun` plain data
(:class:`~repro.runner.results.MarketStats` plus the collector), so the
scorecard of a cached or pool-worker run is byte-identical to a serial
one — :func:`scorecard_json` canonicalizes exactly like the chaos and
deploy scorecards.
"""

from __future__ import annotations

import json
import math
from typing import Sequence

from repro.capacity.cost import slo_violation_time

#: hourly price of the uniform pool's calibrated machine (std.small ==
#: CostModel.node_hour_cost — see repro.market.catalog)
UNIFORM_NODE_HOUR_COST = 1.0


def _stats(values: Sequence[float]) -> dict[str, float]:
    clean = [v for v in values if v == v]  # drop NaNs
    if not clean:
        return {"mean": float("nan"), "ci95": 0.0, "n": 0}
    mean = sum(clean) / len(clean)
    if len(clean) > 1:
        var = sum((v - mean) ** 2 for v in clean) / (len(clean) - 1)
        ci = 1.96 * math.sqrt(var) / math.sqrt(len(clean))
    else:
        ci = 0.0
    return {"mean": mean, "ci95": ci, "n": len(clean)}


def _run_window(config) -> float:
    """Total simulated seconds of a run (profile + drain tail) — the
    window both arms are priced over."""
    return config.profile.duration_s + config.tail_s


def uniform_fleet_cost(config) -> float:
    """What the same run pays on the paper's uniform pool: every one of
    ``pool_nodes`` held for the entire run at the flat rate (the pool is
    provisioned up-front and never returned)."""
    return config.pool_nodes * UNIFORM_NODE_HOUR_COST * _run_window(config) / 3600.0


def score_run(run, slo_latency_s: float = 0.5) -> dict:
    """Per-run scorecard of one market execution (a :class:`CompletedRun`
    — or any object exposing ``config``/``collector``/``market``)."""
    market = run.market
    if market is None:
        raise ValueError("run has no market scenario attached")
    col = run.collector
    config = run.config
    duration = config.profile.duration_s
    window = _run_window(config)

    spot_seconds = 0.0
    for prov in market.provisions:
        t1 = window if prov["t1"] is None else min(prov["t1"], window)
        if prov["market"] == "spot":
            spot_seconds += max(0.0, t1 - prov["t0"])
    uniform = uniform_fleet_cost(config)
    fleet = market.fleet_cost
    reclaims = sum(1 for p in market.provisions if p["reason"] == "spot-reclaim")

    completed = col.completed_requests
    failed = col.failed_requests
    attempted = completed + failed
    return {
        "seed": config.seed,
        "scenario": market.scenario,
        "policy": market.policy,
        "fleet_cost": fleet,
        "uniform_cost": uniform,
        "savings_pct": 100.0 * (1.0 - fleet / uniform) if uniform else float("nan"),
        "node_hours": market.node_seconds / 3600.0,
        "uniform_node_hours": config.pool_nodes * window / 3600.0,
        "spot_share": (
            spot_seconds / market.node_seconds
            if market.node_seconds
            else 0.0
        ),
        "nodes_provisioned": market.nodes_provisioned,
        "interruptions": len(market.interruptions),
        "reclaims": reclaims,
        "rebalances": len(market.rebalances),
        "held_node_hours_by_owner": {
            owner: seconds / 3600.0
            for owner, seconds in sorted(market.held_seconds_by_owner.items())
        },
        "slo_violation_s": slo_violation_time(
            col.latencies, 0.0, duration, slo_latency_s
        ),
        "goodput_rps": col.throughput(0.0, duration),
        "availability": completed / attempted if attempted else float("nan"),
        "failed_requests": failed,
        "completed_requests": completed,
    }


def score_uniform_run(run, slo_latency_s: float = 0.5) -> dict:
    """The same metric keys for a uniform-pool run (``market=None``) —
    the baseline arm of the cost comparison."""
    col = run.collector
    config = run.config
    duration = config.profile.duration_s
    window = _run_window(config)
    uniform = uniform_fleet_cost(config)
    completed = col.completed_requests
    failed = col.failed_requests
    attempted = completed + failed
    return {
        "seed": config.seed,
        "scenario": "uniform",
        "policy": "uniform",
        "fleet_cost": uniform,
        "uniform_cost": uniform,
        "savings_pct": 0.0,
        "node_hours": config.pool_nodes * window / 3600.0,
        "uniform_node_hours": config.pool_nodes * window / 3600.0,
        "spot_share": 0.0,
        "nodes_provisioned": config.pool_nodes,
        "interruptions": 0,
        "reclaims": 0,
        "rebalances": 0,
        "held_node_hours_by_owner": {},
        "slo_violation_s": slo_violation_time(
            col.latencies, 0.0, duration, slo_latency_s
        ),
        "goodput_rps": col.throughput(0.0, duration),
        "availability": completed / attempted if attempted else float("nan"),
        "failed_requests": failed,
        "completed_requests": completed,
    }


#: per-seed metrics aggregated with mean/ci95 across seeds
AGGREGATED = (
    "fleet_cost",
    "uniform_cost",
    "savings_pct",
    "node_hours",
    "spot_share",
    "slo_violation_s",
    "goodput_rps",
    "availability",
)


def score_scenario(
    scenario, runs: Sequence, slo_latency_s: float = 0.5, uniform: bool = False
) -> dict:
    """Multi-seed scorecard: per-seed rows plus mean/ci95 aggregates.
    ``uniform=True`` scores a baseline arm (runs without a market)."""
    scorer = score_uniform_run if uniform else score_run
    per_seed = [scorer(r, slo_latency_s) for r in runs]
    aggregate = {
        metric: _stats([float(row[metric]) for row in per_seed])
        for metric in AGGREGATED
    }
    return {
        "scenario": "uniform" if uniform else scenario.name,
        "policy": "uniform" if uniform else scenario.policy,
        "slo_latency_s": slo_latency_s,
        "seeds": [row["seed"] for row in per_seed],
        "per_seed": per_seed,
        "aggregate": aggregate,
    }


# ----------------------------------------------------------------------
# Canonical serialization (byte-identity) and rendering
# ----------------------------------------------------------------------
def _canonical(value):
    if isinstance(value, dict):
        return {k: _canonical(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_canonical(v) for v in value]
    if isinstance(value, float):
        if value != value:
            return None  # NaN is not valid JSON; canonicalize to null
        return round(value, 9)
    return value


def scorecard_json(scorecard: dict) -> str:
    """Canonical JSON: sorted keys, floats rounded to 9 decimals, NaN →
    null.  Two runs of the same scenario + seeds — serial, parallel or
    cache-resolved — must produce byte-identical output."""
    return json.dumps(_canonical(scorecard), indent=2, sort_keys=True) + "\n"


def render_scorecard(scorecard: dict) -> list[str]:
    """Human-readable scorecard block for the CLI."""
    agg = scorecard["aggregate"]

    def fmt(metric: str, scale: float = 1.0, unit: str = "") -> str:
        s = agg[metric]
        if s["n"] == 0 or s["mean"] != s["mean"]:
            return "n/a"
        return f"{s['mean'] * scale:.2f} ± {s['ci95'] * scale:.2f}{unit}"

    lines = [
        f"Scenario '{scorecard['scenario']}' "
        f"(policy: {scorecard['policy']}, "
        f"seeds: {', '.join(str(s) for s in scorecard['seeds'])})",
        f"  fleet cost          : {fmt('fleet_cost')} "
        f"(uniform pool: {fmt('uniform_cost')})",
        f"  savings             : {fmt('savings_pct', unit=' %')}",
        f"  node-hours          : {fmt('node_hours', unit=' h')}",
        f"  spot share          : {fmt('spot_share', scale=100.0, unit=' %')}",
        f"  SLO violation       : {fmt('slo_violation_s', unit=' s')} "
        f"(SLO {scorecard['slo_latency_s'] * 1000:.0f} ms)",
        f"  goodput             : {fmt('goodput_rps', unit=' req/s')}",
        f"  availability        : {fmt('availability', scale=100.0, unit=' %')}",
    ]
    interruptions = sum(r["interruptions"] for r in scorecard["per_seed"])
    reclaims = sum(r["reclaims"] for r in scorecard["per_seed"])
    if interruptions or reclaims:
        lines.append(
            f"  interruptions       : {interruptions} notices, "
            f"{reclaims} reclaims"
        )
    return lines
