"""Market engine: the glue between the market and the managed system.

One :class:`MarketEngine` per run owns the heterogeneous half of the
testbed: the :class:`~repro.market.spot.SpotMarket` price process, the
:class:`~repro.cluster.allocator.ClusterManager` pool (initially empty —
the engine stocks it), and the
:class:`~repro.market.allocator.FleetAllocator`.  It runs two periodic
processes:

* the **plan loop** (every ``plan_period_s``): observes the capacity the
  tiers currently hold, feeds it to a trend forecaster, and rebalances
  the fleet toward ``max(held, predicted_peak) + headroom`` effective
  vCPUs — buying the cheapest mix under the on-demand floor, retiring
  free nodes most-expensive-first.  The paper's reactive loops drive
  *replicas*; the engine drives the *pool they draw from*, exactly the
  split between an application autoscaler and a cluster autoscaler.

* the **interruption loop** (every price tick): draws a hazard per live
  spot node from the dedicated ``"market-interrupt"`` RNG stream (the
  price tape's ``"market"`` stream is never touched, so prices stay a
  pure function of seed + scenario).  A hit issues a 2-minute notice:
  the node is pulled from the free pool, its replicas are drained
  through :meth:`SelfRecoveryManager.handle_interruption` (repair now,
  on a fresh node), and the node is reclaimed — crashed — at the
  deadline regardless.

Scheduled spot reclaims can also arrive from a chaos campaign's
``spot-interruption`` :class:`~repro.chaos.faults.FaultSpec`; both paths
converge on :meth:`MarketEngine.interrupt`.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Optional

from repro.capacity.forecast import make_forecaster
from repro.cluster.allocator import ClusterManager
from repro.market.allocator import FleetAllocator, Offer
from repro.market.catalog import InstanceType
from repro.market.spot import SpotMarket
from repro.obs.events import FleetRebalanced, InterruptionNotice

if TYPE_CHECKING:  # pragma: no cover
    from repro.cluster.node import Node
    from repro.market.scenario import MarketScenario
    from repro.metrics.collector import MetricsCollector
    from repro.simulation.kernel import SimKernel
    from repro.simulation.rng import RngStreams


def _mix_summary(mix: list[Offer]) -> str:
    counts: dict[str, int] = {}
    for offer in mix:
        key = f"{offer.itype.name}@{'spot' if offer.market == 'spot' else 'od'}"
        counts[key] = counts.get(key, 0) + 1
    return " ".join(f"{n}x {k}" for k, n in sorted(counts.items())) or "none"


class MarketEngine:
    """Owns market, pool and fleet for one managed-system run."""

    def __init__(
        self,
        kernel: "SimKernel",
        scenario: "MarketScenario",
        streams: "RngStreams",
        make_node: Callable[[str, InstanceType, str], "Node"],
        collector: Optional["MetricsCollector"] = None,
        pool_vcpus: float = 7.0,
    ) -> None:
        self.kernel = kernel
        self.scenario = scenario
        self.collector = collector
        self.tracer = None
        self.system = None
        #: live node list shared with the system (probes iterate it);
        #: nodes are appended on provision and never removed, like
        #: crashed nodes in chaos runs
        self.nodes: list["Node"] = []
        #: decorators applied to every provisioned node (the system adds
        #: e.g. the Jade management footprint here)
        self.node_decorators: list[Callable[["Node"], None]] = []
        self.market = SpotMarket(kernel, scenario, streams.get("market"))
        self._interrupt_rng = streams.get("market-interrupt")
        self.cluster = ClusterManager([])
        self.allocator = FleetAllocator(
            kernel, scenario, self.market, self.cluster, self._make_node
        )
        self._user_make_node = make_node
        self._forecaster = make_forecaster("trend")
        self._plan_task = None
        self._interrupt_task = None
        #: nodes under an active interruption notice (name → deadline)
        self._noticed: dict[str, float] = {}
        #: plain-data logs for MarketStats
        self.interruptions: list[dict] = []
        self.rebalances: list[dict] = []
        self._build_initial_fleet(pool_vcpus)

    # ------------------------------------------------------------------
    def _make_node(self, name: str, itype: InstanceType, market: str) -> "Node":
        node = self._user_make_node(name, itype, market)
        for decorate in self.node_decorators:
            decorate(node)
        self.nodes.append(node)
        return node

    def _build_initial_fleet(self, pool_vcpus: float) -> None:
        """Reserve on-demand base nodes first — FIFO allocation puts the
        balancers and the initial replica of each tier on them, so the
        non-preemptible core of the application never sits on spot — then
        fill the rest of the pool with the policy mix."""
        scn = self.scenario
        base = scn.base_type
        reserve = min(scn.reserve_nodes, int(pool_vcpus // base.cpu_capacity) or 1)
        for _ in range(reserve):
            self.allocator.provision(base, "on-demand")
        deficit = pool_vcpus - reserve * base.cpu_capacity
        mix = self.allocator.choose_mix(deficit)
        self.allocator.provision_mix(mix)
        self._log_rebalance(
            "initial",
            f"{reserve}x {base.name}@od " + _mix_summary(mix),
            pool_vcpus,
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def attach(self, system) -> None:
        """Late-bind the assembled system (recovery manager, tiers)."""
        self.system = system

    def start(self) -> None:
        scn = self.scenario
        self.market.tracer = self.tracer
        self.market.start()
        if self._plan_task is None:
            self._plan_task = self.kernel.every(scn.plan_period_s, self._plan)
        if (
            self._interrupt_task is None
            and scn.interruption_hazard_per_hour > 0
            and scn.on_demand_floor < 1.0
        ):
            self._interrupt_task = self.kernel.every(
                scn.tick_s, self._interrupt_tick
            )

    def stop(self) -> None:
        self.market.stop()
        if self._plan_task is not None:
            self._plan_task.cancel()
            self._plan_task = None
        if self._interrupt_task is not None:
            self._interrupt_task.cancel()
            self._interrupt_task = None

    # ------------------------------------------------------------------
    # Plan loop
    # ------------------------------------------------------------------
    def _held_vcpus(self) -> float:
        return sum(
            (n.instance.cpu_capacity if n.instance else 1.0)
            for n in self.cluster.allocated_nodes()
        )

    def _plan(self) -> None:
        now = self.kernel.now
        held = self._held_vcpus()
        self._forecaster.observe(now, held)
        predicted = self._forecaster.predicted_peak(self.scenario.horizon_s)
        if predicted != predicted:  # NaN: unobserved
            predicted = held
        target = max(held, predicted) + self.scenario.headroom_vcpus
        od, spot = self.allocator.live_capacity()
        live = od + spot
        if target > live + 1e-9:
            mix = self.allocator.choose_mix(target - live)
            self.allocator.provision_mix(mix)
            self._log_rebalance("provision", _mix_summary(mix), target)
        elif live - target >= self.scenario.base_type.cpu_capacity:
            retired = self.allocator.retire_excess(live - target)
            if retired:
                detail = " ".join(sorted(n.name for n in retired))
                self._log_rebalance("retire", detail, target)

    def _log_rebalance(self, action: str, detail: str, target: float) -> None:
        od, spot = self.allocator.live_capacity()
        t = self.kernel.now
        self.rebalances.append(
            {"t": t, "action": action, "detail": detail,
             "target": target, "od": od, "spot": spot}
        )
        if self.collector is not None:
            self.collector.record_reconfiguration(
                t, f"[market] {action}: {detail} "
                   f"(target={target:.1f} od={od:.1f} spot={spot:.1f})"
            )
        if self.tracer is not None:
            self.tracer.emit(FleetRebalanced(
                t, action=action, detail=detail, target_vcpus=target,
                od_vcpus=od, spot_vcpus=spot,
            ))

    # ------------------------------------------------------------------
    # Spot interruptions
    # ------------------------------------------------------------------
    def _interrupt_tick(self) -> None:
        scn = self.scenario
        victims = sorted(
            (
                n
                for n in self.cluster.free_nodes()
                + self.cluster.allocated_nodes()
                if n.market == "spot" and n.up and n.name not in self._noticed
            ),
            key=lambda n: n.name,
        )
        for node in victims:
            itype = node.instance
            pressure = self.market.price_pressure(itype.name) if itype else 1.0
            p = (
                scn.interruption_hazard_per_hour
                * pressure
                * scn.tick_s
                / 3600.0
            )
            if float(self._interrupt_rng.random()) < p:
                self.interrupt(node, source="market")

    def interrupt(self, node: "Node", source: str = "market") -> float:
        """Issue an interruption notice for ``node``: drain its replicas
        now, reclaim (crash) it at the deadline.  Returns the deadline."""
        now = self.kernel.now
        deadline = now + self.scenario.notice_s
        if node.name in self._noticed:
            return self._noticed[node.name]
        self._noticed[node.name] = deadline
        itype_name = node.instance.name if node.instance else "?"
        price = (
            self.market.price(itype_name)
            if node.instance and node.instance.spot
            else 0.0
        )
        self.interruptions.append(
            {"t": now, "node": node.name, "type": itype_name,
             "deadline": deadline, "price": price, "source": source}
        )
        if self.collector is not None:
            self.collector.record_reconfiguration(
                now,
                f"[market] interruption notice for {node.name} "
                f"(reclaim at t={deadline:.0f}s, {source})",
            )
        if self.tracer is not None:
            self.tracer.emit(InterruptionNotice(
                now, node=node.name, instance_type=itype_name,
                deadline=deadline, price=round(price, 6), source=source,
            ))
        # A free node must not be handed out during its notice window.
        if self.cluster.owner_of(node) is None:
            self.cluster.discard(node)
        self._drain(node)
        self.kernel.schedule(self.scenario.notice_s, self._reclaim, node)
        return deadline

    def _drain(self, node: "Node") -> int:
        """Repair every tier replica on the node *now* (the whole point of
        the notice): recovery unbinds it, discards the node from the pool
        and grows a replacement on a fresh node."""
        system = self.system
        if system is None:
            return 0
        recovery = getattr(system, "recovery", None)
        if recovery is None:
            return 0
        drained = 0
        for tier in (system.app_tier, system.db_tier):
            for record in list(tier.replicas):
                if record.node is node:
                    server = getattr(record.component.content, "server", None)
                    if server is not None:
                        recovery.handle_interruption(server)
                        drained += 1
        return drained

    def _reclaim(self, node: "Node") -> None:
        """The notice expired: the market takes the node back, drained or
        not (idempotent if it already crashed)."""
        if node.up:
            node.crash()
        self.cluster.discard(node)
        self.allocator.close(node.name, reason="spot-reclaim")
        self._noticed.pop(node.name, None)
        if self.collector is not None:
            self.collector.record_reconfiguration(
                self.kernel.now, f"[market] spot reclaim of {node.name}"
            )

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def fleet_cost(self, t_end: Optional[float] = None) -> float:
        return self.allocator.fleet_cost(t_end)

    def price_history(self) -> dict[str, list[tuple[float, float]]]:
        return {k: list(v) for k, v in self.market.history.items()}
