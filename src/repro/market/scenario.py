"""Declarative market scenarios.

A :class:`MarketScenario` is a frozen, picklable value — the instance
catalog, the fleet policy (how much interruption risk the operator
tolerates, expressed as an on-demand capacity floor), spot-market
dynamics and fleet-planning knobs — so it rides inside
:class:`~repro.jade.system.ExperimentConfig` through the
content-addressed :class:`~repro.runner.cache.ResultCache` and the
process-pool :class:`~repro.runner.parallel.ExperimentRunner` unchanged.
The same scenario + seed yields a byte-identical market scorecard
whether it runs serially, in a pool worker, or resolves from the cache
(test-enforced, like the chaos and deploy scorecards).

``PRESETS`` holds the named scenarios the CLI, benchmark, sweep
``--fleet`` axis and CI smoke use; :func:`market_config` packs a
scenario into the Fig. 9 ramp (managed, self-recovery on so interrupted
spot replicas are repaired).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.market.catalog import DEFAULT_CATALOG, InstanceType, by_name

#: fleet policies, by decreasing on-demand floor (= interruption tolerance
#: bought with money): ``on-demand`` never touches the spot market,
#: ``balanced`` keeps half the capacity interruption-proof, ``spot-heavy``
#: only the quarter that hosts the balancers and one replica of each tier.
POLICIES = {"on-demand": 1.0, "balanced": 0.5, "spot-heavy": 0.25}


@dataclass(frozen=True)
class MarketScenario:
    """One heterogeneous-fleet experiment: what the market sells, how
    prices move, and how the fleet allocator shops."""

    name: str
    #: fleet policy label (sets the default ``on_demand_floor``)
    policy: str = "spot-heavy"
    #: minimum fraction of fleet capacity kept on-demand (interruption
    #: tolerance; 1.0 = never buy spot)
    on_demand_floor: float = 0.25
    #: catalog types the allocator may buy (baseline-only by default so
    #: tier balancing sees homogeneous replicas; multi-size presets
    #: exercise the best-fit-decreasing packing)
    sizes: tuple[str, ...] = ("std.small",)
    catalog: tuple[InstanceType, ...] = DEFAULT_CATALOG
    #: spot price tick period
    tick_s: float = 30.0
    #: per-tick lognormal walk sigma of the spot price
    volatility: float = 0.08
    #: mean-reversion strength toward the type's long-run spot mean
    reversion: float = 0.15
    #: base spot interruption hazard (per provisioned spot node per hour,
    #: scaled by price pressure); 0 = spot capacity is never reclaimed
    interruption_hazard_per_hour: float = 0.0
    #: interruption notice (the cloud's classic 2 minutes)
    notice_s: float = 120.0
    #: fleet-planning loop period
    plan_period_s: float = 15.0
    #: forecast horizon the demand target looks ahead over
    horizon_s: float = 120.0
    #: spare effective vCPUs kept free above the forecast demand
    headroom_vcpus: float = 1.0
    #: provisioning delay before a bought node joins the free pool
    boot_s: float = 0.0
    #: on-demand baseline nodes provisioned up-front (the two balancers
    #: plus the initial replica of each tier — never interruptible)
    reserve_nodes: int = 4

    def __post_init__(self) -> None:
        object.__setattr__(self, "sizes", tuple(self.sizes))
        object.__setattr__(self, "catalog", tuple(self.catalog))
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r} (choose from {sorted(POLICIES)})"
            )
        if not 0.0 <= self.on_demand_floor <= 1.0:
            raise ValueError("on_demand_floor must be in [0, 1]")
        index = by_name(self.catalog)
        for size in self.sizes:
            if size not in index:
                raise ValueError(f"size {size!r} not in catalog")
        if not self.sizes:
            raise ValueError("need at least one purchasable size")
        if self.tick_s <= 0 or self.plan_period_s <= 0 or self.horizon_s <= 0:
            raise ValueError("market periods must be positive")
        if self.volatility < 0 or self.reversion < 0:
            raise ValueError("volatility and reversion must be >= 0")
        if self.interruption_hazard_per_hour < 0 or self.notice_s < 0:
            raise ValueError("hazard and notice must be >= 0")
        if self.headroom_vcpus < 0 or self.boot_s < 0:
            raise ValueError("headroom and boot time must be >= 0")
        if self.reserve_nodes < 4:
            raise ValueError(
                "reserve_nodes must be >= 4 (two balancers + one replica "
                "of each tier must sit on on-demand nodes)"
            )

    @property
    def base_type(self) -> InstanceType:
        """The first purchasable size — what demand is denominated in."""
        return by_name(self.catalog)[self.sizes[0]]


# ----------------------------------------------------------------------
# Preset scenarios (the CLI's --scenario / sweep's --fleet choices)
# ----------------------------------------------------------------------
def on_demand() -> MarketScenario:
    """The sanity arm: same catalog, but the allocator never buys spot.
    Fleet cost tracks the uniform pool minus rightsizing."""
    return MarketScenario("on-demand", policy="on-demand", on_demand_floor=1.0)


def balanced() -> MarketScenario:
    """Half the capacity stays on-demand; mild spot interruption rate."""
    return MarketScenario(
        "balanced", policy="balanced", on_demand_floor=0.5,
        interruption_hazard_per_hour=2.0,
    )


def spot_heavy() -> MarketScenario:
    """The cost-saving arm: everything beyond the reserve floor is spot."""
    return MarketScenario(
        "spot-heavy", policy="spot-heavy", on_demand_floor=0.25,
        interruption_hazard_per_hour=2.0,
    )


def volatile() -> MarketScenario:
    """A stress arm: violent spot prices and frequent reclaims — what the
    on-demand floor and drain-then-crash recovery are for."""
    return MarketScenario(
        "volatile", policy="spot-heavy", on_demand_floor=0.25,
        volatility=0.3, reversion=0.05,
        interruption_hazard_per_hour=30.0,
    )


def multi_size() -> MarketScenario:
    """Opens the whole catalog so best-fit-decreasing packs across
    instance shapes, not just markets."""
    return MarketScenario(
        "multi-size", policy="balanced", on_demand_floor=0.5,
        sizes=("std.small", "std.large", "cpu.large"),
        interruption_hazard_per_hour=2.0,
    )


PRESETS = {
    "on-demand": on_demand,
    "balanced": balanced,
    "spot-heavy": spot_heavy,
    "volatile": volatile,
    "multi-size": multi_size,
}


def market_config(
    scenario: MarketScenario,
    seed: int = 1,
    peak: int = 500,
    scale: float = 0.15,
    cohort: int = 1,
):
    """Pack a scenario into the §5.2 ramp (Fig. 9) — the workload the
    cost headline is measured on.  Managed (reactive self-sizing) with
    self-recovery on: interrupted spot replicas must be repaired, not
    mourned."""
    from repro.jade.system import ExperimentConfig
    from repro.workload.profiles import RampProfile

    return ExperimentConfig(
        profile=RampProfile(
            base=80 * cohort,
            peak=peak * cohort,
            step_clients=21 * cohort,
            warmup_s=300.0 * scale,
            step_period_s=60.0 * scale,
            cooldown_s=300.0 * scale,
        ),
        seed=seed,
        managed=True,
        recovery=True,
        cohort=cohort,
        hardware_scale=float(cohort),
        market=scenario,
    )
