"""The spot market: a deterministic price process.

Spot prices follow a mean-reverting lognormal walk per instance type,
driven exclusively by the dedicated ``"market"`` RNG stream: every tick
draws exactly one normal per spot-capable purchasable size, in sorted
type order, **regardless of fleet state**.  The price series is therefore
a pure function of (seed, scenario) — what the allocator or chaos does
with the fleet can never perturb it, and serial/pool/cache runs see the
same tape.

The walk: with ``m`` the type's long-run mean spot price,

    log p(t+1) = log p(t) + reversion * (log m - log p(t))
                 + volatility * N(0, 1)

clamped to ``[0.02, 1.0] × on-demand price`` (spot never exceeds the
fixed-price market, as on real clouds for the regimes we model).  The
full piecewise-constant price history is kept as plain data so fleet
cost can be integrated exactly after the run.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING, Optional

from repro.market.catalog import InstanceType, by_name

if TYPE_CHECKING:  # pragma: no cover
    import numpy as np

    from repro.market.scenario import MarketScenario
    from repro.obs.tracer import Tracer
    from repro.simulation.kernel import SimKernel

PRICE_FLOOR_FRACTION = 0.02


class SpotMarket:
    """Evolves spot prices for the scenario's purchasable types and
    answers price queries from the fleet allocator and cost report."""

    def __init__(
        self,
        kernel: "SimKernel",
        scenario: "MarketScenario",
        rng: "np.random.Generator",
        tracer: Optional["Tracer"] = None,
    ) -> None:
        self.kernel = kernel
        self.scenario = scenario
        self.rng = rng
        self.tracer = tracer
        index = by_name(scenario.catalog)
        #: spot-capable purchasable types, sorted by name — the fixed
        #: draw order that makes the price tape composition-insensitive
        self.spot_types: tuple[InstanceType, ...] = tuple(
            index[s] for s in sorted(set(scenario.sizes)) if index[s].spot
        )
        self._prices: dict[str, float] = {
            t.name: t.spot_mean_price for t in self.spot_types
        }
        self._index = index
        #: per-type piecewise-constant price history: [(t, price), ...]
        self.history: dict[str, list[tuple[float, float]]] = {
            t.name: [(0.0, t.spot_mean_price)] for t in self.spot_types
        }
        self.ticks = 0
        self._task = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        if self.spot_types and self._task is None:
            self._task = self.kernel.every(self.scenario.tick_s, self._tick)

    def stop(self) -> None:
        if self._task is not None:
            self._task.cancel()
            self._task = None

    def _tick(self) -> None:
        self.ticks += 1
        now = self.kernel.now
        scn = self.scenario
        for itype in self.spot_types:
            mean = itype.spot_mean_price
            prev = self._prices[itype.name]
            step = (
                math.log(prev)
                + scn.reversion * (math.log(mean) - math.log(prev))
                + scn.volatility * float(self.rng.normal())
            )
            price = math.exp(step)
            lo = PRICE_FLOOR_FRACTION * itype.hourly_price
            price = min(max(price, lo), itype.hourly_price)
            self._prices[itype.name] = price
            self.history[itype.name].append((now, price))
            if self.tracer is not None:
                from repro.obs.events import MarketPriceTick

                self.tracer.emit(MarketPriceTick(
                    t=now, instance_type=itype.name, price=round(price, 6),
                ))

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def price(self, type_name: str, market: str = "spot") -> float:
        """Current hourly price for one node of ``type_name``."""
        itype = self._index[type_name]
        if market == "on-demand":
            return itype.hourly_price
        if type_name not in self._prices:
            raise ValueError(f"{type_name!r} is not sold on the spot market")
        return self._prices[type_name]

    def price_pressure(self, type_name: str) -> float:
        """Current spot price over its long-run mean — scales the
        interruption hazard (expensive spot == scarce spot)."""
        itype = self._index[type_name]
        if type_name not in self._prices:
            return 1.0
        return self._prices[type_name] / itype.spot_mean_price

    def integrate(
        self, type_name: str, market: str, t0: float, t1: float
    ) -> float:
        """Exact cost of holding one ``type_name`` node over ``[t0, t1]``
        (piecewise-constant spot tape; flat on-demand price)."""
        if t1 <= t0:
            return 0.0
        itype = self._index[type_name]
        if market == "on-demand" or type_name not in self.history:
            return itype.hourly_price * (t1 - t0) / 3600.0
        total = 0.0
        tape = self.history[type_name]
        for i, (start, price) in enumerate(tape):
            end = tape[i + 1][0] if i + 1 < len(tape) else float("inf")
            lo, hi = max(start, t0), min(end, t1)
            if hi > lo:
                total += price * (hi - lo) / 3600.0
        return total
