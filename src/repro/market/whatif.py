"""What-if over fleet mixes.

:mod:`repro.capacity.whatif` branches over *replica counts* inside one
run; this module branches one level up, over **fleet policies**: it fans
the same workload out across candidate :class:`MarketScenario` arms (plus
the uniform-pool baseline) through the cached process-pool runner, scores
each arm with :mod:`repro.market.costs`, and ranks the mixes that keep
the SLO by cost.  Because every arm is an ordinary ``ExperimentConfig``,
repeated evaluations resolve from the result cache — the same memoization
the replica-level what-if engine enjoys.

This is what ``repro market --compare`` prints and what an operator (or
the roadmap's future policy autotuner) reads to pick a policy: "which
mix meets the forecast demand at minimum cost?" answered with evidence.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Optional, Sequence

from repro.market.costs import score_scenario
from repro.market.scenario import MarketScenario, market_config


def evaluate_mixes(
    scenarios: Sequence[MarketScenario],
    seeds: Sequence[int] = (1,),
    peak: int = 500,
    scale: float = 0.15,
    cohort: int = 1,
    slo_latency_s: float = 0.5,
    slo_tolerance_s: float = 5.0,
    runner=None,
    include_uniform: bool = True,
) -> dict:
    """Run every candidate mix (and the uniform baseline) across seeds
    and rank them: SLO-feasible arms first, cheapest first.

    An arm is *feasible* when its mean SLO violation stays within
    ``slo_tolerance_s`` of the uniform pool's — the cost comparison only
    counts if the latency story holds.
    """
    if runner is None:
        from repro.runner.parallel import ExperimentRunner

        runner = ExperimentRunner()

    labelled = {}
    for scenario in scenarios:
        for seed in seeds:
            labelled[f"{scenario.name}-s{seed}"] = market_config(
                scenario, seed=seed, peak=peak, scale=scale, cohort=cohort
            )
    if include_uniform:
        base = scenarios[0] if scenarios else MarketScenario("on-demand", policy="on-demand", on_demand_floor=1.0)
        for seed in seeds:
            cfg = market_config(base, seed=seed, peak=peak, scale=scale, cohort=cohort)
            labelled[f"uniform-s{seed}"] = replace(cfg, market=None)
    results = runner.run_many(labelled)

    uniform_card: Optional[dict] = None
    if include_uniform:
        uniform_card = score_scenario(
            None,
            [results[f"uniform-s{s}"] for s in seeds],
            slo_latency_s=slo_latency_s,
            uniform=True,
        )
    cards = [
        score_scenario(
            scenario,
            [results[f"{scenario.name}-s{s}"] for s in seeds],
            slo_latency_s=slo_latency_s,
        )
        for scenario in scenarios
    ]

    slo_budget = (
        uniform_card["aggregate"]["slo_violation_s"]["mean"] + slo_tolerance_s
        if uniform_card is not None
        else float("inf")
    )
    branches = []
    for card in cards + ([uniform_card] if uniform_card is not None else []):
        agg = card["aggregate"]
        slo = agg["slo_violation_s"]["mean"]
        branches.append(
            {
                "scenario": card["scenario"],
                "policy": card["policy"],
                "fleet_cost": agg["fleet_cost"]["mean"],
                "savings_pct": agg["savings_pct"]["mean"],
                "slo_violation_s": slo,
                "spot_share": agg["spot_share"]["mean"],
                "feasible": bool(slo == slo and slo <= slo_budget),
            }
        )
    branches.sort(key=lambda b: (not b["feasible"], b["fleet_cost"], b["scenario"]))
    return {
        "seeds": list(seeds),
        "slo_budget_s": slo_budget if slo_budget != float("inf") else None,
        "branches": branches,
        "best": branches[0]["scenario"] if branches else None,
        "scorecards": {card["scenario"]: card for card in cards},
        "uniform": uniform_card,
    }


def render_mixes(table: dict) -> list[str]:
    """Human-readable branch table for the CLI."""
    lines = [
        f"Fleet-mix what-if over seeds {table['seeds']} "
        f"(SLO budget: "
        + (
            f"{table['slo_budget_s']:.1f}s"
            if table["slo_budget_s"] is not None
            else "none"
        )
        + "):",
        f"  {'scenario':<12} {'policy':<10} {'cost':>8} {'save%':>7} "
        f"{'slo_s':>6} {'spot%':>6}  verdict",
    ]
    for branch in table["branches"]:
        marker = "ok " if branch["feasible"] else "SLO"
        best = " <- best" if branch["scenario"] == table["best"] else ""
        lines.append(
            f"  {branch['scenario']:<12} {branch['policy']:<10} "
            f"{branch['fleet_cost']:>8.3f} {branch['savings_pct']:>6.1f}% "
            f"{branch['slo_violation_s']:>6.1f} "
            f"{branch['spot_share'] * 100:>5.1f}%  {marker}{best}"
        )
    return lines
