"""Measurement infrastructure.

Time-series recording (:mod:`~repro.metrics.series`), the temporal/spatial
averaging the paper's sensors perform (:mod:`~repro.metrics.aggregates`),
and the experiment-wide collector the benchmark harness reads figures from
(:mod:`~repro.metrics.collector`).
"""

from repro.metrics.aggregates import MovingAverage, spatial_average, summarize
from repro.metrics.collector import MetricsCollector
from repro.metrics.export import series_rows, to_json_dict, write_csv, write_json
from repro.metrics.series import StepSeries, TimeSeries

__all__ = [
    "MetricsCollector",
    "MovingAverage",
    "StepSeries",
    "TimeSeries",
    "series_rows",
    "spatial_average",
    "summarize",
    "to_json_dict",
    "write_csv",
    "write_json",
]
