"""Aggregation used by the sensors.

"This probe computes a moving average of the collected data in order to
remove artifacts characterizing the CPU consumption.  It finally computes an
average CPU load across all nodes" (§4.1): a *temporal* moving average
(:class:`MovingAverage`) composed with a *spatial* average
(:func:`spatial_average`).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable

import numpy as np


class MovingAverage:
    """Time-windowed moving average over irregular samples.

    Keeps samples newer than ``window_s`` and returns their arithmetic mean
    (the paper's averaging over "the last 60 seconds" of 1 Hz samples).
    """

    def __init__(self, window_s: float) -> None:
        if window_s <= 0:
            raise ValueError("window must be positive")
        self.window_s = window_s
        self._samples: deque[tuple[float, float]] = deque()
        self._sum = 0.0

    def add(self, t: float, value: float) -> float:
        """Add a sample and return the current average."""
        self._samples.append((t, value))
        self._sum += value
        self._evict(t)
        return self.value

    def age(self, now: float) -> float:
        """Evict samples that have fallen out of the window as of ``now``
        without adding a new one; returns the current average."""
        self._evict(now)
        return self.value

    def _evict(self, now: float) -> None:
        cutoff = now - self.window_s
        samples = self._samples
        while samples and samples[0][0] <= cutoff:
            _, v = samples.popleft()
            self._sum -= v

    @property
    def value(self) -> float:
        """Current average (NaN when no samples are in the window)."""
        if not self._samples:
            return float("nan")
        return self._sum / len(self._samples)

    @property
    def sample_count(self) -> int:
        return len(self._samples)

    def reset(self) -> None:
        self._samples.clear()
        self._sum = 0.0


def spatial_average(values: Iterable[float]) -> float:
    """Mean across nodes; NaN for an empty tier."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return float("nan")
    return float(arr.mean())


def summarize(values: Iterable[float]) -> dict[str, float]:
    """Summary statistics used in benchmark tables."""
    arr = np.asarray(list(values), dtype=np.float64)
    if arr.size == 0:
        return {
            "count": 0,
            "mean": float("nan"),
            "p50": float("nan"),
            "p95": float("nan"),
            "p99": float("nan"),
            "max": float("nan"),
        }
    return {
        "count": int(arr.size),
        "mean": float(arr.mean()),
        "p50": float(np.percentile(arr, 50)),
        "p95": float(np.percentile(arr, 95)),
        "p99": float(np.percentile(arr, 99)),
        "max": float(arr.max()),
    }
