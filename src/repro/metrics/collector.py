"""Experiment-wide metrics collector.

One :class:`MetricsCollector` per experiment run gathers everything the
paper's figures and tables are built from:

* per-request latencies (Figures 8 & 9);
* per-tier smoothed CPU utilization (Figures 6 & 7);
* per-tier replica counts (Figure 5);
* workload level (active emulated clients);
* throughput, and node CPU/memory samples (Table 1).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.metrics.aggregates import summarize
from repro.metrics.series import StepSeries, TimeSeries


class MetricsCollector:
    """Append-only sink for experiment measurements."""

    def __init__(self) -> None:
        self.latencies = TimeSeries("latency_s")          # (completion t, latency)
        self.failures = TimeSeries("failures")            # (t, 1.0) per failed req
        self.workload = StepSeries("active_clients")      # emulated client count
        self.tier_cpu: dict[str, TimeSeries] = {}         # smoothed CPU per tier
        self.tier_cpu_raw: dict[str, TimeSeries] = {}     # spatial avg, unsmoothed
        self.tier_replicas: dict[str, StepSeries] = {}    # replica count per tier
        self.node_cpu = TimeSeries("node_cpu")            # all-node CPU samples
        self.node_memory = TimeSeries("node_memory")      # all-node memory samples
        self.reconfigurations: list[tuple[float, str]] = []
        self.completed_requests = 0
        self.failed_requests = 0
        #: per-latency-sample weights (cohort completions record one sample
        #: for ``weight`` identical constituent requests); parallel to
        #: ``latencies``
        self._latency_weights: list[float] = []

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def record_latency(self, t: float, latency_s: float, weight: int = 1) -> None:
        """Record one latency sample standing for ``weight`` identical
        completions (cohort fan-out).  Percentile summaries treat the
        sample once; counts and throughput are weighted."""
        self.completed_requests += weight
        self.latencies.append(t, latency_s)
        self._latency_weights.append(float(weight))

    def record_failure(self, t: float, weight: int = 1) -> None:
        self.failed_requests += weight
        self.failures.append(t, float(weight))

    def record_workload(self, t: float, clients: int) -> None:
        self.workload.set(t, float(clients))

    def record_tier_cpu(self, tier: str, t: float, smoothed: float, raw: float) -> None:
        self.tier_cpu.setdefault(tier, TimeSeries(f"cpu[{tier}]")).append(t, smoothed)
        self.tier_cpu_raw.setdefault(tier, TimeSeries(f"cpu_raw[{tier}]")).append(t, raw)

    def record_replicas(self, tier: str, t: float, count: int) -> None:
        series = self.tier_replicas.get(tier)
        if series is None:
            series = StepSeries(f"replicas[{tier}]", initial=float(count))
            self.tier_replicas[tier] = series
        else:
            series.set(t, float(count))

    def record_node_sample(self, t: float, cpu: float, memory: float) -> None:
        self.node_cpu.append(t, cpu)
        self.node_memory.append(t, memory)

    def record_reconfiguration(self, t: float, description: str) -> None:
        self.reconfigurations.append((t, description))

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def latency_summary(self) -> dict[str, float]:
        return summarize(self.latencies.values)

    def throughput(self, t_start: float, t_end: float) -> float:
        """Completed requests per second over [t_start, t_end), counting
        each cohort sample as its weight in constituent requests."""
        if t_end <= t_start:
            raise ValueError("empty interval")
        t = self.latencies.times
        mask = (t >= t_start) & (t < t_end)
        w = np.asarray(self._latency_weights)
        if len(w) == len(t):
            n = float(w[mask].sum())
        else:  # defensive: direct appends to ``latencies`` bypass weights
            n = float(np.count_nonzero(mask))
        return n / (t_end - t_start)

    def latency_buckets(self, width: float, t_end: Optional[float] = None) -> TimeSeries:
        return self.latencies.bucket_mean(width, t_end)

    def replica_changes(self, tier: str) -> list[tuple[float, float]]:
        series = self.tier_replicas.get(tier)
        return series.changes if series is not None else []

    def error_rate(self) -> float:
        total = self.completed_requests + self.failed_requests
        if total == 0:
            return 0.0
        return self.failed_requests / total
