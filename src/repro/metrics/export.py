"""Exporting experiment results.

Turns a :class:`~repro.metrics.collector.MetricsCollector` into portable
artifacts: long-format CSV rows (one per series sample — convenient for
pandas/gnuplot) and a JSON document with the summary statistics, replica
staircases and the reconfiguration event log.
"""

from __future__ import annotations

import csv
import json
from typing import Iterator, Optional

from repro.metrics.collector import MetricsCollector


def series_rows(
    collector: MetricsCollector, bucket_s: float = 10.0
) -> Iterator[tuple[str, float, float]]:
    """Yield (series name, time, value) rows for every collected series.

    Continuous series (latency, CPU) are bucketed to ``bucket_s`` to keep
    exports small; step series (replicas, workload) export their change
    points exactly.
    """
    for t, v in collector.latencies.bucket_mean(bucket_s):
        yield "latency_s", t, v
    for tier, series in sorted(collector.tier_cpu.items()):
        for t, v in series.bucket_mean(bucket_s):
            yield f"cpu[{tier}]", t, v
    for tier, series in sorted(collector.tier_cpu_raw.items()):
        for t, v in series.bucket_mean(bucket_s):
            yield f"cpu_raw[{tier}]", t, v
    for tier, series in sorted(collector.tier_replicas.items()):
        for t, v in series.changes:
            yield f"replicas[{tier}]", t, v
    for t, v in collector.workload.changes:
        yield "clients", t, v
    if len(collector.node_cpu):
        for t, v in collector.node_cpu.bucket_mean(bucket_s):
            yield "node_cpu", t, v
        for t, v in collector.node_memory.bucket_mean(bucket_s):
            yield "node_memory", t, v


def write_csv(
    collector: MetricsCollector, path: str, bucket_s: float = 10.0
) -> int:
    """Write the long-format CSV; returns the number of data rows."""
    count = 0
    with open(path, "w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(["series", "t_s", "value"])
        for name, t, v in series_rows(collector, bucket_s):
            writer.writerow([name, f"{t:.3f}", f"{v:.6g}"])
            count += 1
    return count


def to_json_dict(
    collector: MetricsCollector,
    horizon_s: Optional[float] = None,
    tracer=None,
    seed: Optional[int] = None,
    extra: Optional[dict] = None,
) -> dict:
    """A JSON-serializable report of the run.  When a decision ``tracer``
    is supplied, its per-run summary (event counts, decisions by reason,
    reconfiguration durations) is included under ``"trace"``; ``seed``
    records the experiment seed so the run can be replayed exactly.
    ``extra`` merges caller-computed top-level sections (e.g. the
    recovery command's MTTR/availability block); a key colliding with a
    core report section raises instead of silently overwriting it."""
    stats = collector.latency_summary()
    report = {
        "requests": {
            "completed": collector.completed_requests,
            "failed": collector.failed_requests,
            "error_rate": collector.error_rate(),
        },
        "latency_s": {k: v for k, v in stats.items()},
        "replicas": {
            tier: [[t, v] for t, v in series.changes]
            for tier, series in sorted(collector.tier_replicas.items())
        },
        "reconfigurations": [[t, d] for t, d in collector.reconfigurations],
    }
    if seed is not None:
        report["seed"] = seed
    if horizon_s is not None and collector.completed_requests:
        report["throughput_rps"] = collector.throughput(0.0, horizon_s)
    if tracer is not None:
        report["trace"] = tracer.summary()
    if extra:
        colliding = sorted(set(extra) & set(report))
        if colliding:
            raise ValueError(
                f"extra section would overwrite core report key(s): "
                f"{', '.join(colliding)}"
            )
        report.update(extra)
    return report


def write_json(
    collector: MetricsCollector,
    path: str,
    horizon_s: Optional[float] = None,
    tracer=None,
    seed: Optional[int] = None,
    extra: Optional[dict] = None,
) -> None:
    with open(path, "w") as fh:
        json.dump(
            to_json_dict(collector, horizon_s, tracer=tracer, seed=seed, extra=extra),
            fh,
            indent=2,
        )
