"""Time-series containers.

Append-heavy Python lists internally; NumPy views on demand (the guides'
rule: simple code on the hot path, vectorized math at analysis time).
"""

from __future__ import annotations

from typing import Iterator, Optional

import numpy as np


class TimeSeries:
    """A sampled series of (time, value) points, appended in time order."""

    def __init__(self, name: str = "") -> None:
        self.name = name
        self._t: list[float] = []
        self._v: list[float] = []

    def append(self, t: float, value: float) -> None:
        if self._t and t < self._t[-1]:
            raise ValueError(
                f"{self.name or 'series'}: non-monotonic append "
                f"({t} after {self._t[-1]})"
            )
        self._t.append(t)
        self._v.append(value)

    def __len__(self) -> int:
        return len(self._t)

    def __iter__(self) -> Iterator[tuple[float, float]]:
        return iter(zip(self._t, self._v))

    @property
    def times(self) -> np.ndarray:
        return np.asarray(self._t, dtype=np.float64)

    @property
    def values(self) -> np.ndarray:
        return np.asarray(self._v, dtype=np.float64)

    def last(self) -> Optional[tuple[float, float]]:
        if not self._t:
            return None
        return self._t[-1], self._v[-1]

    def tail_since(self, index: int) -> list[tuple[float, float]]:
        """Samples appended at or after ``index`` — an O(new) incremental
        read for periodic consumers (avoids re-materializing the full
        arrays every poll)."""
        return list(zip(self._t[index:], self._v[index:]))

    def bucket_mean(self, width: float, t_end: Optional[float] = None) -> "TimeSeries":
        """Resample into fixed-width buckets (mean of samples per bucket);
        empty buckets are skipped.  Used to print figure series compactly."""
        if width <= 0:
            raise ValueError("bucket width must be positive")
        out = TimeSeries(f"{self.name}/bucket{width:g}")
        if not self._t:
            return out
        t = self.times
        v = self.values
        stop = t_end if t_end is not None else float(t[-1])
        edges = np.arange(0.0, stop + width, width)
        idx = np.digitize(t, edges) - 1
        for b in np.unique(idx):
            mask = idx == b
            out.append(float(edges[b] + width / 2.0), float(v[mask].mean()))
        return out

    def window(self, t0: float, t1: float) -> "TimeSeries":
        """Sub-series with t0 <= t < t1."""
        out = TimeSeries(f"{self.name}/window")
        for t, v in zip(self._t, self._v):
            if t0 <= t < t1:
                out.append(t, v)
        return out

    def mean(self) -> float:
        if not self._v:
            return float("nan")
        return float(np.mean(self._v))

    def max(self) -> float:
        if not self._v:
            return float("nan")
        return float(np.max(self._v))


class StepSeries:
    """A piecewise-constant series (replica counts, node counts): records
    value *changes* and can be queried at any time."""

    def __init__(self, name: str = "", initial: float = 0.0) -> None:
        self.name = name
        self._t: list[float] = [0.0]
        self._v: list[float] = [initial]

    def set(self, t: float, value: float) -> None:
        if t < self._t[-1]:
            raise ValueError(f"{self.name or 'step series'}: non-monotonic set")
        if value == self._v[-1]:
            return
        self._t.append(t)
        self._v.append(value)

    def value_at(self, t: float) -> float:
        i = int(np.searchsorted(np.asarray(self._t), t, side="right")) - 1
        return self._v[max(i, 0)]

    @property
    def changes(self) -> list[tuple[float, float]]:
        return list(zip(self._t, self._v))

    def sample(self, times: np.ndarray) -> np.ndarray:
        """Vectorized evaluation at the given times."""
        ts = np.asarray(self._t)
        vs = np.asarray(self._v)
        idx = np.clip(np.searchsorted(ts, times, side="right") - 1, 0, len(vs) - 1)
        return vs[idx]

    def max(self) -> float:
        return float(np.max(self._v))

    def integral(self, t0: float, t1: float) -> float:
        """Integral of the step function over ``[t0, t1)`` — e.g. the
        node-seconds held by a tier whose replica count this series tracks."""
        if t1 <= t0:
            return 0.0
        total = 0.0
        changes = self.changes
        for i, (start, value) in enumerate(changes):
            end = changes[i + 1][0] if i + 1 < len(changes) else t1
            lo = max(start, t0)
            hi = min(end, t1)
            if hi > lo:
                total += value * (hi - lo)
        return total

    def time_weighted_mean(self, t_end: float) -> float:
        """Mean value over [0, t_end], weighting by how long each level
        held — e.g. the average number of allocated nodes."""
        ts = np.append(np.asarray(self._t, dtype=float), t_end)
        vs = np.asarray(self._v, dtype=float)
        durations = np.diff(ts)
        if durations.sum() <= 0:
            return float(vs[-1])
        return float((vs * durations).sum() / durations.sum())

    def __len__(self) -> int:
        return len(self._t)
