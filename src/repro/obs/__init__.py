"""obs — decision-trace observability for the autonomic control loops.

The paper's managers make their decisions through introspectable Fractal
components; this package makes the *decision flow* introspectable too:
every probe reading, threshold decision (with a machine-readable
suppression reason), inhibition-lock transition, reconfiguration and node
movement becomes a typed, timestamped, causally-linked event.

* :mod:`~repro.obs.events` — the event types and reason enums;
* :mod:`~repro.obs.tracer` — ring buffer + JSONL sink + run summary;
* :mod:`~repro.obs.timeline` — the ``repro trace`` causal renderer.

Tracing is opt-in (``ExperimentConfig(trace=True)`` or ``--trace FILE``)
and zero-cost when off: emission points hold ``tracer = None`` and every
site guards with one attribute test.
"""

from repro.obs.events import (
    Decision,
    DecisionAction,
    DecisionReason,
    InhibitionAcquired,
    InhibitionRejected,
    KernelStats,
    NodeAllocated,
    NodeFailed,
    NodeReleased,
    ProbeReading,
    ReconfigCompleted,
    ReconfigStarted,
    TraceEvent,
)
from repro.obs.tracer import Tracer, causal_chain, load_jsonl
from repro.obs.timeline import render_timeline, render_timeline_file

__all__ = [
    "Decision",
    "DecisionAction",
    "DecisionReason",
    "InhibitionAcquired",
    "InhibitionRejected",
    "KernelStats",
    "NodeAllocated",
    "NodeFailed",
    "NodeReleased",
    "ProbeReading",
    "ReconfigCompleted",
    "ReconfigStarted",
    "TraceEvent",
    "Tracer",
    "causal_chain",
    "load_jsonl",
    "render_timeline",
    "render_timeline_file",
]
