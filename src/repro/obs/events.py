"""Typed trace events.

The paper's argument (§3.4, §5.2) is that autonomic decisions flow through
a uniform, introspectable component architecture: probe readings cross
thresholds, reactors decide, the inhibition lock arbitrates, actuators
reconfigure, the cluster manager moves nodes.  Each of those steps has a
typed, timestamped event here, so a Fig. 5 replica-count staircase can be
explained after the fact ("the DB tier grew at t=410 s because reading X
crossed 0.75; the shrink at t=610 s was suppressed: inhibited").

Every event is an immutable dataclass with a ``kind`` tag and an optional
``cause`` — the sequence number of the event that led to it.  Causality is
a chain: ``ReconfigCompleted.cause`` → ``ReconfigStarted.cause`` →
``Decision`` — which is what the ``repro trace`` timeline renders and the
integration tests assert.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import ClassVar, Optional


class DecisionAction:
    """Machine-readable decision actions (``Decision.action``)."""

    GROW = "grow"
    SHRINK = "shrink"
    NONE = "none"


class DecisionReason:
    """Machine-readable decision reasons (``Decision.reason``).

    Executed decisions carry the trigger (``above-max`` / ``below-min``);
    suppressed decisions carry why they did not actuate.
    """

    ABOVE_MAX = "above-max"        # smoothed CPU crossed the grow threshold
    BELOW_MIN = "below-min"        # smoothed CPU crossed the shrink threshold
    AT_CAP = "at-cap"              # already at max_replicas
    AT_FLOOR = "at-floor"          # already at min_replicas
    INHIBITED = "inhibited"        # the shared inhibition lock is held
    ACTUATOR_BUSY = "actuator-busy"  # the tier rejected the operation
    NO_DATA = "no-data"            # the reading was NaN (empty window/tier)
    # Proactive-manager reasons: the trigger is a *predicted* crossing, not
    # a measured one (repro.capacity.proactive).
    PREDICTED_ABOVE_MAX = "predicted-above-max"
    PREDICTED_BELOW_MIN = "predicted-below-min"

    SUPPRESSIONS = (AT_CAP, AT_FLOOR, INHIBITED, ACTUATOR_BUSY, NO_DATA)


@dataclass(frozen=True)
class TraceEvent:
    """Base record: simulated time plus an optional causal parent."""

    kind: ClassVar[str] = "event"

    t: float
    cause: Optional[int] = field(default=None, kw_only=True)

    def to_record(self) -> dict:
        """Flat dict for the JSONL sink (``kind`` included, ``cause`` only
        when set — keeps lines compact)."""
        record = {"kind": self.kind, **asdict(self)}
        if record.get("cause") is None:
            record.pop("cause", None)
        return record


@dataclass(frozen=True)
class ProbeReading(TraceEvent):
    """One sensor notification that reached the reactors."""

    kind: ClassVar[str] = "probe-reading"

    probe: str
    smoothed: float
    raw: float
    nodes: int


@dataclass(frozen=True)
class Decision(TraceEvent):
    """A reactor's verdict on one reading.

    ``executed`` means the actuation was started; a suppressed decision
    names why in ``reason`` (one of :class:`DecisionReason.SUPPRESSIONS`).
    An executed decision that the actuator then rejects is followed by a
    second, suppressed :class:`Decision` with ``reason='actuator-busy'``
    and ``cause`` pointing at the retracted one.
    """

    kind: ClassVar[str] = "decision"

    source: str        # reactor/loop name (e.g. "resize-db")
    action: str        # DecisionAction
    executed: bool
    reason: str        # DecisionReason
    smoothed: float
    replicas: int


@dataclass(frozen=True)
class PolicyDecided(TraceEvent):
    """A policy plugin ruled on one set of control-loop inputs
    (``repro.policy``).  Emitted for every non-hold verdict before the
    mechanics (inhibition, caps, the actuator) weigh in; the
    :class:`Decision` that follows records what actually happened to the
    verdict.  ``inputs_digest`` is a
    short fingerprint of the exact :class:`~repro.policy.PolicyInputs`
    snapshot, so identical situations are identifiable across runs
    without logging every field."""

    kind: ClassVar[str] = "policy-decided"

    source: str        # reactor/loop name (e.g. "resize-db")
    policy: str        # policy registry name (e.g. "queue-model")
    action: str        # DecisionAction
    reason: str        # DecisionReason
    inputs_digest: str


@dataclass(frozen=True)
class InhibitionAcquired(TraceEvent):
    kind: ClassVar[str] = "inhibition-acquired"

    by: str
    until: float


@dataclass(frozen=True)
class InhibitionRejected(TraceEvent):
    kind: ClassVar[str] = "inhibition-rejected"

    by: str
    free_at: float


@dataclass(frozen=True)
class ReconfigStarted(TraceEvent):
    kind: ClassVar[str] = "reconfig-started"

    tier: str
    operation: str     # "grow" | "shrink" | "repair"
    replicas: int      # count when the operation started


@dataclass(frozen=True)
class ReconfigCompleted(TraceEvent):
    kind: ClassVar[str] = "reconfig-completed"

    tier: str
    operation: str
    duration_s: float
    replica_delta: int
    replicas: int      # count after the operation
    ok: bool = True
    error: str = ""


@dataclass(frozen=True)
class NodeAllocated(TraceEvent):
    kind: ClassVar[str] = "node-allocated"

    node: str
    owner: str


@dataclass(frozen=True)
class NodeReleased(TraceEvent):
    kind: ClassVar[str] = "node-released"

    node: str
    owner: str


@dataclass(frozen=True)
class NodeFailed(TraceEvent):
    """A node could not be obtained or was lost (allocation failure,
    crash detected by the heartbeat sensor, discard during repair)."""

    kind: ClassVar[str] = "node-failed"

    node: str          # "" when no node could be allocated at all
    owner: str
    reason: str        # "no-free-node" | "crashed" | ...


@dataclass(frozen=True)
class ForecastIssued(TraceEvent):
    """A capacity forecaster extrapolated the load over a horizon."""

    kind: ClassVar[str] = "forecast-issued"

    source: str        # manager name (e.g. "proactive")
    model: str         # forecaster registry name ("ewma"/"trend"/"seasonal")
    horizon_s: float
    current: float     # last observed load
    predicted_peak: float


@dataclass(frozen=True)
class WhatIfEvaluated(TraceEvent):
    """The what-if engine compared candidate configurations on forked
    branch simulations (``cause`` links back to the forecast)."""

    kind: ClassVar[str] = "whatif-evaluated"

    source: str
    candidates: int
    horizon_s: float
    best: str          # winning candidate label (e.g. "app2/db3")
    best_cost: float
    infeasible: int    # candidates the node pool could not host


@dataclass(frozen=True)
class ProactiveDecision(TraceEvent):
    """A proactive grow/shrink proposal (``cause`` links back to the
    what-if evaluation or forecast that motivated it)."""

    kind: ClassVar[str] = "proactive-decision"

    source: str
    tier: str
    action: str        # DecisionAction
    executed: bool
    reason: str        # DecisionReason (predicted-* or a suppression)
    predicted: float   # predicted peak load driving the decision
    replicas: int


@dataclass(frozen=True)
class FaultInjected(TraceEvent):
    """The chaos injector applied one fault (``repro.chaos``)."""

    kind: ClassVar[str] = "fault-injected"

    fault: str         # "crash" | "slow" | "gray" | "partition" | ...
    target: str        # node name(s), or "lan" for network-wide faults
    tier: str = ""     # owning tier when the victim is a replica node
    detail: str = ""   # e.g. "factor=0.02 for 120s"


@dataclass(frozen=True)
class FaultCleared(TraceEvent):
    """A transient fault's duration elapsed and its effect was undone."""

    kind: ClassVar[str] = "fault-cleared"

    fault: str
    target: str


@dataclass(frozen=True)
class DetectorSuspected(TraceEvent):
    """The phi-accrual detector flagged a server as failed while the
    legacy liveness checks (``running``/``node.up``) still pass."""

    kind: ClassVar[str] = "detector-suspected"

    detector: str
    server: str
    node: str
    phi: float
    reason: str        # "phi" (stalled progress) | "fail-fast"


@dataclass(frozen=True)
class DeployStarted(TraceEvent):
    """The deploy manager began bouncing a tier to a new server version
    (``repro.deploy``)."""

    kind: ClassVar[str] = "deploy-started"

    scenario: str
    version: str       # new version label
    strategy: str      # "brutal" | "upthendown" | "crossover" | "downthenup"
    tier: str
    replicas: int      # fleet size when the deployment started


@dataclass(frozen=True)
class CanaryVerdict(TraceEvent):
    """The canary controller compared the canary cohort against the
    stable fleet over the decision window and ruled."""

    kind: ClassVar[str] = "canary-verdict"

    scenario: str
    version: str
    promoted: bool
    reason: str              # "slo-ok" | "error-delta" | "latency-factor" | ...
    canary_error_rate: float
    stable_error_rate: float
    canary_latency_s: float
    stable_latency_s: float


@dataclass(frozen=True)
class RollbackTriggered(TraceEvent):
    """A failed canary verdict triggered the automatic rollback to the
    stable version (``cause`` links back to the verdict)."""

    kind: ClassVar[str] = "rollback-triggered"

    scenario: str
    version: str       # the version being rolled back
    reason: str


@dataclass(frozen=True)
class MarketPriceTick(TraceEvent):
    """The spot market re-priced one instance type (``repro.market``)."""

    kind: ClassVar[str] = "market-price-tick"

    instance_type: str
    price: float       # hourly spot price, cost-model units


@dataclass(frozen=True)
class InterruptionNotice(TraceEvent):
    """The market warned that a spot node will be reclaimed at
    ``deadline`` — the fleet has the notice window to drain it."""

    kind: ClassVar[str] = "interruption-notice"

    node: str
    instance_type: str
    deadline: float    # absolute simulated time of the reclaim
    price: float       # spot price when the notice was issued
    source: str = "market"   # "market" (hazard draw) | "chaos" (campaign)


@dataclass(frozen=True)
class FleetRebalanced(TraceEvent):
    """The fleet allocator changed the provisioned mix (``cause`` links
    back to the forecast or interruption that motivated it)."""

    kind: ClassVar[str] = "fleet-rebalanced"

    action: str        # "initial" | "provision" | "retire"
    detail: str        # e.g. "2x std.small@spot"
    target_vcpus: float
    od_vcpus: float    # on-demand effective vCPUs after the change
    spot_vcpus: float  # spot effective vCPUs after the change


@dataclass(frozen=True)
class EpochRouted(TraceEvent):
    """The federation coordinator retargeted one region's demand at an
    epoch barrier (``repro.federation``): weight scaling plus any spill
    redirected from evacuated regions."""

    kind: ClassVar[str] = "epoch-routed"

    region: str
    epoch: int
    weight: float
    spill_clients: int
    reason: str        # "routing" | "evacuation"


@dataclass(frozen=True)
class KernelStats(TraceEvent):
    """Event-loop counters, emitted once at the end of a traced run."""

    kind: ClassVar[str] = "kernel-stats"

    events_processed: int
    tombstones_skipped: int
    pending: int


#: kind string → event class (used by the timeline renderer for display).
EVENT_KINDS = {
    cls.kind: cls
    for cls in (
        ProbeReading,
        PolicyDecided,
        Decision,
        InhibitionAcquired,
        InhibitionRejected,
        ReconfigStarted,
        ReconfigCompleted,
        NodeAllocated,
        NodeReleased,
        NodeFailed,
        FaultInjected,
        FaultCleared,
        DetectorSuspected,
        DeployStarted,
        CanaryVerdict,
        RollbackTriggered,
        ForecastIssued,
        WhatIfEvaluated,
        ProactiveDecision,
        MarketPriceTick,
        InterruptionNotice,
        FleetRebalanced,
        EpochRouted,
        KernelStats,
    )
}
