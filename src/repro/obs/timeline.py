"""Causal timeline rendering for ``repro trace``.

Turns a JSONL trace back into the story of a run: one line per event in
emission order, with children indented under the event that caused them,
so a Fig. 5 reconfiguration reads end-to-end::

    t=  410.0s decision            resize-db: grow (above-max) cpu=0.78 replicas=1
    t=  410.0s   inhibition-acquired resize-db holds until t=470.0s
    t=  410.0s   node-allocated      node4 -> tier:database
    t=  410.0s   reconfig-started    [database] grow (replicas 1)
    t=  437.2s     reconfig-completed  [database] grow +1 in 27.2s (replicas 2)

Probe readings are high-frequency noise on a causal timeline and are
dropped by default; ``--all`` keeps them.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.obs.tracer import load_jsonl


def _describe(record: dict) -> str:
    kind = record.get("kind", "?")
    if kind == "probe-reading":
        return (
            f"{record['probe']}: smoothed={record['smoothed']:.3f} "
            f"raw={record['raw']:.3f} nodes={record['nodes']}"
        )
    if kind == "decision":
        state = "" if record["executed"] else " SUPPRESSED"
        return (
            f"{record['source']}: {record['action']} ({record['reason']})"
            f"{state} cpu={record['smoothed']:.3f} replicas={record['replicas']}"
        )
    if kind == "policy-decided":
        return (
            f"{record['source']} policy[{record['policy']}]: "
            f"{record['action']} ({record['reason']}) "
            f"inputs#{record['inputs_digest']}"
        )
    if kind == "inhibition-acquired":
        return f"{record['by']} holds until t={record['until']:.1f}s"
    if kind == "inhibition-rejected":
        return f"{record['by']} blocked until t={record['free_at']:.1f}s"
    if kind == "reconfig-started":
        return (
            f"[{record['tier']}] {record['operation']} "
            f"(replicas {record['replicas']})"
        )
    if kind == "reconfig-completed":
        delta = record["replica_delta"]
        status = "" if record.get("ok", True) else f" FAILED: {record['error']}"
        return (
            f"[{record['tier']}] {record['operation']} {delta:+d} in "
            f"{record['duration_s']:.1f}s (replicas {record['replicas']}){status}"
        )
    if kind == "node-allocated":
        return f"{record['node']} -> {record['owner']}"
    if kind == "node-released":
        return f"{record['node']} <- {record['owner']}"
    if kind == "node-failed":
        node = record["node"] or "(none)"
        return f"{node} for {record['owner']}: {record['reason']}"
    if kind == "forecast-issued":
        return (
            f"{record['source']} [{record['model']}]: "
            f"load {record['current']:.0f} -> peak "
            f"{record['predicted_peak']:.0f} over {record['horizon_s']:.0f}s"
        )
    if kind == "whatif-evaluated":
        infeasible = (
            f", {record['infeasible']} infeasible" if record.get("infeasible") else ""
        )
        return (
            f"{record['source']}: {record['candidates']} candidates over "
            f"{record['horizon_s']:.0f}s -> {record['best']} "
            f"(cost {record['best_cost']:.3f}{infeasible})"
        )
    if kind == "proactive-decision":
        state = "" if record["executed"] else " SUPPRESSED"
        return (
            f"{record['source']}: {record['action']} [{record['tier']}] "
            f"({record['reason']}){state} predicted={record['predicted']:.0f} "
            f"replicas={record['replicas']}"
        )
    if kind == "market-price-tick":
        return f"{record['instance_type']}: spot={record['price']:.3f}/h"
    if kind == "interruption-notice":
        return (
            f"{record['node']} [{record['instance_type']}] reclaim at "
            f"t={record['deadline']:.0f}s (spot={record['price']:.3f}/h, "
            f"{record.get('source', 'market')})"
        )
    if kind == "fleet-rebalanced":
        return (
            f"{record['action']}: {record['detail']} "
            f"target={record['target_vcpus']:.1f}vcpu "
            f"fleet=od{record['od_vcpus']:.1f}+spot{record['spot_vcpus']:.1f}"
        )
    if kind == "kernel-stats":
        return (
            f"events={record['events_processed']} "
            f"tombstones={record['tombstones_skipped']} "
            f"pending={record['pending']}"
        )
    return repr(record)


def render_timeline(
    records: Iterable[dict],
    include_probes: bool = False,
    tail: Optional[int] = None,
) -> str:
    """Render records (in emission order) as an indented causal timeline."""
    shown = [
        r
        for r in records
        if include_probes or r.get("kind") != "probe-reading"
    ]
    if tail is not None:
        shown = shown[-tail:] if tail > 0 else []
    visible = {r["seq"] for r in shown}
    depths: dict[int, int] = {}
    lines = []
    for record in shown:
        cause = record.get("cause")
        depth = depths.get(cause, -1) + 1 if cause in visible else 0
        depths[record["seq"]] = depth
        indent = "  " * depth
        lines.append(
            f"t={record['t']:8.1f}s {indent}{record['kind']:<19s} "
            f"{_describe(record)}"
        )
    if not lines:
        return "(empty trace)"
    return "\n".join(lines)


def render_timeline_file(
    path: str, include_probes: bool = False, tail: Optional[int] = None
) -> str:
    records = load_jsonl(path)
    header = ""
    if records:
        run = records[0].get("run", "?")
        header = (
            f"trace {path}: run={run}, {len(records)} events, "
            f"t=[{records[0]['t']:.1f}s .. {records[-1]['t']:.1f}s]\n"
        )
    return header + render_timeline(records, include_probes, tail)
