"""The tracer: ring buffer, JSONL sink, per-run summary.

One :class:`Tracer` per run.  Emission points throughout the control loop
hold an optional reference and guard every emission with
``if self.tracer is not None`` — a disabled run carries a single attribute
test per *potential* event and allocates nothing (the acceptance bar:
tracing off adds no measurable overhead to the micro-benchmarks).

The tracer keeps the last ``ring_size`` records in memory for inspection
and, when given a ``sink_path``, writes **every** record as one JSON line
(the ring may evict, the sink never does).  Each record carries the run id,
a monotonically increasing ``seq``, and optionally the ``cause`` seq of the
event that led to it.

Causality across layers uses a small explicit stack: a reactor emits its
:class:`~repro.obs.events.Decision`, pushes the returned seq with
:meth:`push_cause`, calls the actuator, and pops.  Anything the actuator
emits synchronously (node allocation, reconfig start) picks up
:attr:`current_cause` automatically; asynchronous completions link back to
the start event's seq, which the actuator threads through its own process.
The simulation is single-threaded, so the stack discipline is exact.
"""

from __future__ import annotations

import json
from collections import Counter, deque
from typing import IO, Iterable, Optional

from repro.obs.events import Decision, ReconfigCompleted, TraceEvent


class Tracer:
    """Collects typed trace events for one run."""

    def __init__(
        self,
        run_id: str = "run",
        ring_size: int = 65536,
        sink_path: Optional[str] = None,
        region: Optional[str] = None,
    ) -> None:
        if ring_size < 1:
            raise ValueError("ring_size must be >= 1")
        self.run_id = run_id
        #: federation region this tracer belongs to; when set, every
        #: record is stamped so merged multi-region traces stay separable
        self.region = region
        self.ring: deque[dict] = deque(maxlen=ring_size)
        self.sink_path = sink_path
        self._sink: Optional[IO[str]] = (
            open(sink_path, "w") if sink_path else None
        )
        self._seq = 0
        self._cause_stack: list[int] = []
        # Running aggregates (independent of ring eviction).
        self.counts: Counter[str] = Counter()
        self.decision_counts: Counter[tuple[str, str]] = Counter()  # (action, reason)
        self.suppressed = 0
        self.reconfig_count = 0
        self.reconfig_failures = 0
        self._reconfig_total_s = 0.0
        self._reconfig_max_s = 0.0

    # ------------------------------------------------------------------
    # Emission
    # ------------------------------------------------------------------
    def emit(self, event: TraceEvent) -> int:
        """Record an event; returns its sequence number (usable as the
        ``cause`` of later events)."""
        seq = self._seq
        self._seq += 1
        record = event.to_record()
        record["run"] = self.run_id
        record["seq"] = seq
        if self.region is not None:
            record["region"] = self.region
        if "cause" not in record and self._cause_stack:
            record["cause"] = self._cause_stack[-1]
        self.ring.append(record)
        if self._sink is not None:
            self._sink.write(json.dumps(record) + "\n")
        self._aggregate(event)
        return seq

    def _aggregate(self, event: TraceEvent) -> None:
        self.counts[event.kind] += 1
        if isinstance(event, Decision):
            self.decision_counts[(event.action, event.reason)] += 1
            if not event.executed:
                self.suppressed += 1
        elif isinstance(event, ReconfigCompleted):
            self.reconfig_count += 1
            if event.ok:
                self._reconfig_total_s += event.duration_s
                self._reconfig_max_s = max(self._reconfig_max_s, event.duration_s)
            else:
                self.reconfig_failures += 1

    # ------------------------------------------------------------------
    # Causality
    # ------------------------------------------------------------------
    @property
    def current_cause(self) -> Optional[int]:
        return self._cause_stack[-1] if self._cause_stack else None

    def push_cause(self, seq: int) -> None:
        """Subsequent emissions default their ``cause`` to ``seq``."""
        self._cause_stack.append(seq)

    def pop_cause(self) -> None:
        self._cause_stack.pop()

    # ------------------------------------------------------------------
    # Inspection / lifecycle
    # ------------------------------------------------------------------
    @property
    def events_emitted(self) -> int:
        return self._seq

    def records(self) -> list[dict]:
        """The in-memory tail (up to ``ring_size`` most recent records)."""
        return list(self.ring)

    def summary(self) -> dict:
        """Per-run aggregate: what happened, how often, how long."""
        completed = self.reconfig_count - self.reconfig_failures
        return {
            "run": self.run_id,
            "events": self._seq,
            "by_kind": dict(self.counts),
            "decisions": {
                f"{action}/{reason}": n
                for (action, reason), n in sorted(self.decision_counts.items())
            },
            "decisions_suppressed": self.suppressed,
            "reconfigurations": {
                "count": self.reconfig_count,
                "failures": self.reconfig_failures,
                "mean_duration_s": (
                    self._reconfig_total_s / completed if completed else 0.0
                ),
                "max_duration_s": self._reconfig_max_s,
            },
        }

    def flush(self) -> None:
        if self._sink is not None:
            self._sink.flush()

    def close(self) -> None:
        """Flush and close the sink; further emissions stay in the ring."""
        if self._sink is not None:
            self._sink.close()
            self._sink = None

    def __enter__(self) -> "Tracer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def load_jsonl(path: str) -> list[dict]:
    """Read a trace sink back into records (blank lines skipped)."""
    records = []
    with open(path) as fh:
        for line in fh:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def causal_chain(records: Iterable[dict], record: dict) -> list[dict]:
    """Walk ``cause`` links from ``record`` back to its root event.

    Returns the chain root-first (the record itself is last).  Unknown
    cause seqs terminate the walk (the ring or a truncated file may have
    evicted the parent).
    """
    by_seq = {r["seq"]: r for r in records}
    chain = [record]
    seen = {record["seq"]}
    current = record
    while (cause := current.get("cause")) is not None:
        parent = by_seq.get(cause)
        if parent is None or parent["seq"] in seen:
            break
        chain.append(parent)
        seen.add(parent["seq"])
        current = parent
    chain.reverse()
    return chain
