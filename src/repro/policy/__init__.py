"""Pluggable control-loop policies + the sweep-driven autotuner.

Importing the package populates the registry with the built-in plugins:

* ``threshold`` — the paper's rule (the default of every CPU loop);
* ``adaptive-threshold`` — the §7 oscillation-damping extension;
* ``queue-model`` — M/G/1-PS sizing from the calibrated demand mix;
* ``forecast`` — feedforward on predicted utilization;
* ``latency-band`` — the latency-SLO band of the SloReactor.

See :mod:`repro.policy.api` for the contract and
:mod:`repro.policy.tune` for the autotuner.
"""

from repro.policy.api import (
    HOLD,
    IN_BAND,
    POLICIES,
    Policy,
    PolicyConfig,
    PolicyDecision,
    PolicyInputs,
    make_policy,
    register,
)
from repro.policy.feedforward import ForecastFeedforwardPolicy
from repro.policy.queue_model import QueueModelPolicy
from repro.policy.threshold import (
    AdaptiveThresholdPolicy,
    LatencyBandPolicy,
    ThresholdPolicy,
)

__all__ = [
    "HOLD",
    "IN_BAND",
    "POLICIES",
    "AdaptiveThresholdPolicy",
    "ForecastFeedforwardPolicy",
    "LatencyBandPolicy",
    "Policy",
    "PolicyConfig",
    "PolicyDecision",
    "PolicyInputs",
    "QueueModelPolicy",
    "ThresholdPolicy",
    "make_policy",
    "register",
]
