"""The pluggable analysis/decision interface of every control loop.

The paper welds its analysis step into the reactor: fixed CPU thresholds,
fixed moving-average windows, a fixed one-minute inhibition (§4.1, §5.2).
This package externalizes that judgment behind a tiny interface — the
constraint-component view of Dearle et al. and Aldinucci & Tuosto: a
policy is a swappable component with an explicit contract, not constants
welded into the loop.

Contract:

* a **policy** is a *frozen* dataclass of parameters — picklable,
  hashable, and canonicalized by the result cache like every other
  config value;
* mutable runtime memory (adaptive thresholds, forecaster history) lives
  in a separate *state* object created per loop by
  :meth:`Policy.initial_state`, never on the policy itself;
* :meth:`Policy.decide` maps one :class:`PolicyInputs` snapshot to a
  :class:`PolicyDecision` (grow / shrink / hold with a traced reason);
* :meth:`Policy.on_actuated` is the feedback edge: called only after an
  actuation the policy requested actually started (the adaptive policy
  uses it to widen its dead band, the forecast policy to discard history
  that the new tier size invalidates).

The *mechanics* — warm-up, NaN handling, fresh-evidence gating, the
inhibition lock, actuation, tracing, counters — stay in
:class:`repro.jade.reactors.PolicyReactor`.  Policies only judge.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import ClassVar, Optional

from repro.obs.events import DecisionAction

#: reason string for a hold that is simply "inside the operating band"
IN_BAND = "in-band"


@dataclass(frozen=True)
class PolicyInputs:
    """Everything one control-loop tick shows the policy."""

    t: float                     # simulated time of the reading
    smoothed: float              # windowed sensor average (CPU or latency)
    raw: float                   # last-period average
    node_count: int              # nodes the probe sampled
    replicas: int                # tier size right now
    min_replicas: int
    max_replicas: Optional[int]  # None = uncapped
    tier: str = ""               # loop name, e.g. "resize-db"

    def digest(self) -> str:
        """Short stable fingerprint for the ``PolicyDecided`` trace event
        (lets a timeline reader match a decision to its exact inputs
        without logging every field)."""
        payload = (
            f"{self.t:.6f}|{self.smoothed:.9f}|{self.raw:.9f}|"
            f"{self.node_count}|{self.replicas}|{self.min_replicas}|"
            f"{self.max_replicas}|{self.tier}"
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:12]


@dataclass(frozen=True)
class PolicyDecision:
    """A policy's verdict on one set of inputs.

    ``reason`` is a :class:`repro.obs.events.DecisionReason` string and
    flows into both the ``PolicyDecided`` trace event and the executed
    ``Decision`` event.  Sizing policies set ``target`` — the replica
    count they actually want; the reactor still actuates one step per
    decision (the actuator installs one node at a time), so the target
    is reached over successive readings.
    """

    action: str                  # DecisionAction
    reason: str                  # DecisionReason
    target: Optional[int] = None

    @property
    def is_hold(self) -> bool:
        return self.action == DecisionAction.NONE


#: the canonical do-nothing verdict
HOLD = PolicyDecision(DecisionAction.NONE, IN_BAND)


@dataclass(frozen=True)
class Policy:
    """Base class: frozen parameters + the decide/feedback protocol."""

    #: registry key (subclasses override)
    name: ClassVar[str] = "policy"

    def initial_state(self):
        """Fresh mutable runtime state for one control loop (None when the
        policy is memoryless)."""
        return None

    def decide(self, inputs: PolicyInputs, state) -> PolicyDecision:
        raise NotImplementedError

    def on_actuated(self, action: str, t: float, state) -> None:
        """Called after an actuation this policy requested has started
        successfully (``action`` is grow/shrink, ``t`` the decision
        time)."""
        return None


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
POLICIES: dict[str, type] = {}


def register(cls):
    """Class decorator: add a policy to the registry under ``cls.name``."""
    POLICIES[cls.name] = cls
    return cls


def make_policy(name: str, **params) -> Policy:
    try:
        cls = POLICIES[name]
    except KeyError:
        raise ValueError(
            f"unknown policy {name!r} (have: {sorted(POLICIES)})"
        ) from None
    return cls(**params)


def _coerce(text: str):
    """CLI parameter literals: int, then float, then bool, else string."""
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            pass
    if text.lower() in ("true", "false"):
        return text.lower() == "true"
    return text


@dataclass(frozen=True)
class PolicyConfig:
    """A named policy plus parameter overrides — the picklable value that
    rides through :class:`~repro.jade.self_optimization.LoopConfig`,
    sweep cells, and the result cache.

    ``params`` is a sorted tuple of ``(key, value)`` pairs so two configs
    with the same overrides hash and canonicalize identically.
    """

    name: str = "threshold"
    params: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", tuple(sorted(self.params)))

    @classmethod
    def parse(cls, text: str) -> "PolicyConfig":
        """``"name"`` or ``"name:key=value:key=value"`` (colon-separated
        so comma-lists on the CLI stay unambiguous)."""
        head, *rest = text.split(":")
        if not head:
            raise ValueError(f"empty policy name in {text!r}")
        params = []
        for part in rest:
            key, sep, value = part.partition("=")
            if not sep or not key:
                raise ValueError(
                    f"bad policy parameter {part!r} in {text!r} "
                    "(expected key=value)"
                )
            params.append((key, _coerce(value)))
        return cls(head, tuple(params))

    @property
    def label(self) -> str:
        if not self.params:
            return self.name
        inner = ":".join(f"{k}={v}" for k, v in self.params)
        return f"{self.name}:{inner}"

    def as_dict(self) -> dict:
        return dict(self.params)

    def build(self, **defaults) -> Policy:
        """Instantiate: ``defaults`` (e.g. calibrated service demands)
        are overridden by this config's explicit params."""
        merged = {**defaults, **dict(self.params)}
        return make_policy(self.name, **merged)
