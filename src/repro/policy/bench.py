"""The ``"policy"`` section of BENCH_engine.json (shared logic).

Proves the autotuner's keep: the committed tuned controller
(``configs/tuned_policy.json``, produced by ``repro tune``) against the
paper's hand-set defaults on the Fig. 9 ramp, across seeds with 95 % CIs.
The gate is the operator's bargain — the tuned cell must cut SLO
violation seconds without buying the win with capacity (node-hours
within +2 % of the defaults).

Also hosts the tuner's own CI smoke (``make tune-smoke``): a tiny 2×2
threshold grid where the one sane cell (paper-default thresholds) must
rank first and every known-bad cell (a grow threshold at 0.99, so that
tier never scales up) must score strictly worse.

Lives inside the package (not ``benchmarks/``) so ``repro bench`` can
import it from an installed tree; ``benchmarks/bench_policy.py`` is the
CLI/pytest wrapper.
"""

from __future__ import annotations

from pathlib import Path
from typing import Optional, Sequence

from repro.policy.tune import (
    PAPER_DEFAULT,
    TuneObjective,
    TunePoint,
    TuneSpec,
    _stats,
    load_tuned_point,
    run_tune,
    score_run,
)

#: the committed autotuning artifact (repo-root relative)
TUNED_CONFIG_PATH = (
    Path(__file__).resolve().parents[3] / "configs" / "tuned_policy.json"
)

#: node-hours gate: the tuned cell may cost at most +2 % capacity
NODE_HOURS_MARGIN = 1.02


def run_policy_section(
    seeds: Sequence[int] = (1, 2, 3),
    scale: float = 0.15,
    parallel: bool = True,
    use_cache: bool = False,
    tuned: Optional[TunePoint] = None,
) -> dict:
    """The ``"policy"`` section of BENCH_engine.json."""
    from repro.runner import ExperimentRunner, ResultCache

    runner = ExperimentRunner(
        cache=ResultCache() if use_cache else None, parallel=parallel
    )
    seeds = tuple(seeds)
    if tuned is None:
        tuned = load_tuned_point(TUNED_CONFIG_PATH)
    objective = TuneObjective()
    arms = {"default": PAPER_DEFAULT, "tuned": tuned}
    configs = {
        f"policy-{arm}-s{seed}": point.config(seed, scale)
        for arm, point in arms.items()
        for seed in seeds
    }
    results = runner.run_many(configs)

    section: dict = {
        "seeds": list(seeds),
        "scale": scale,
        "objective": objective.to_record(),
        "arms": {},
    }
    for arm, point in arms.items():
        per_seed = [
            score_run(results[f"policy-{arm}-s{seed}"], objective)
            for seed in seeds
        ]
        section["arms"][arm] = {
            "point": point.to_record(),
            "slo_violation_s": _stats(
                [s["slo_violation_s"] for s in per_seed]
            ),
            "node_hours": _stats([s["node_hours"] for s in per_seed]),
            "reconfigs": _stats([s["reconfigs"] for s in per_seed]),
            "score": _stats([s["score"] for s in per_seed]),
        }
    default, tuned_arm = section["arms"]["default"], section["arms"]["tuned"]
    section["gate"] = {
        "node_hours_margin": NODE_HOURS_MARGIN,
        "slo_ok": (
            tuned_arm["slo_violation_s"]["mean"]
            <= default["slo_violation_s"]["mean"]
        ),
        "node_hours_ok": (
            tuned_arm["node_hours"]["mean"]
            <= default["node_hours"]["mean"] * NODE_HOURS_MARGIN
        ),
    }
    return section


def render_section(section: dict) -> str:
    lines = [
        f"Controller autotuning: Fig. 9 ramp at scale "
        f"{section['scale']:g}, seeds "
        f"{', '.join(str(s) for s in section['seeds'])}",
        "",
        f"{'arm':<8s} {'SLO viol (s)':>16s} {'node-hrs':>16s} "
        f"{'reconf':>10s} {'score':>14s}",
    ]
    for arm in ("default", "tuned"):
        a = section["arms"][arm]
        slo, nh = a["slo_violation_s"], a["node_hours"]
        lines.append(
            f"{arm:<8s} "
            f"{slo['mean']:9.1f} +/- {slo['ci95']:3.1f} "
            f"{nh['mean']:10.3f} +/- {nh['ci95']:.3f} "
            f"{a['reconfigs']['mean']:10.1f} "
            f"{a['score']['mean']:8.2f} +/- {a['score']['ci95']:.2f}"
        )
    p = section["arms"]["tuned"]["point"]
    gate = section["gate"]
    lines += [
        "",
        f"tuned: app band ({p['app_min']:.2f}, {p['app_max']:.2f}), "
        f"db band ({p['db_min']:.2f}, {p['db_max']:.2f}), "
        f"windows x{p['window_scale']:g}, "
        f"inhibition {p['inhibition_s']:.0f}s, "
        f"controller {p['controller']}",
        f"gate: SLO {'OK' if gate['slo_ok'] else 'FAIL'}, node-hours "
        f"{'OK' if gate['node_hours_ok'] else 'FAIL'} "
        f"(margin {gate['node_hours_margin']:g}x)",
    ]
    return "\n".join(lines)


def check_section(section: dict) -> None:
    """The load-bearing assertions shared by pytest and --smoke."""
    n_seeds = len(section["seeds"])
    for arm in ("default", "tuned"):
        a = section["arms"][arm]
        assert a["slo_violation_s"]["n"] == n_seeds
        assert a["node_hours"]["mean"] > 0
    assert section["gate"]["slo_ok"], (
        "tuned controller lost to the paper defaults on SLO violation "
        "seconds"
    )
    assert section["gate"]["node_hours_ok"], (
        "tuned controller exceeded the +2% node-hours budget"
    )


# ----------------------------------------------------------------------
# Tuner smoke (make tune-smoke)
# ----------------------------------------------------------------------
def smoke_spec(scale: float = 0.15) -> TuneSpec:
    """2×2 grid: both grow thresholds at paper default vs. at 0.99."""
    return TuneSpec(
        app_max=(0.80, 0.99),
        app_min=(0.38,),
        db_max=(0.75, 0.99),
        db_min=(0.40,),
        seeds=(1,),
        scale=scale,
    )


def run_tune_smoke(
    scale: float = 0.15, parallel: bool = True, use_cache: bool = False
) -> dict:
    """Run the smoke grid and assert the tuner's ranking is sane."""
    from repro.runner import ExperimentRunner, ResultCache

    runner = ExperimentRunner(
        cache=ResultCache() if use_cache else None, parallel=parallel
    )
    report = run_tune(smoke_spec(scale), runner=runner)
    assert len(report["cells"]) == 4
    # The one sane cell (paper-default thresholds) must win outright;
    # every crippled never-grow (0.99) cell must score strictly worse.
    # (Note "worse" is about score, not rank-last: a never-grow tier
    # saves node-hours, so the doubly-crippled cell is cheap-but-broken
    # rather than maximally expensive.)
    ranked = report["cells"]
    best = ranked[0]["point"]
    assert best["app_max"] == 0.80 and best["db_max"] == 0.75, (
        f"tuner failed to rank the sane cell first: got {best}"
    )
    for cell in ranked[1:]:
        p = cell["point"]
        assert p["app_max"] == 0.99 or p["db_max"] == 0.99
        assert cell["score"]["mean"] > ranked[0]["score"]["mean"], (
            f"crippled cell {cell['label']} did not score worse than "
            "the sane cell"
        )
    return report
