"""Forecast-feedforward policy.

The reactive threshold rule pays the full detection latency of its
moving average: the tier only grows after the *smoothed* CPU has crossed
the threshold, which on the paper's ramp means the SLO is already being
violated while the new node installs (§6, Fig. 9).  This policy closes
that gap by feeding a :mod:`repro.capacity.forecast` forecaster with the
*raw* per-period utilization and acting on the **predicted** value
``lead_s`` seconds out:

* predicted (or measured) utilization above ``max_threshold`` → grow,
  with the ``predicted-above-max`` reason when the forecast fired first;
* shrink only when measured *and* predicted utilization are both below
  ``min_threshold`` — a forecast of returning load vetoes the shrink.

A successful actuation discards the forecaster history: utilization
rescales with the new tier size, so pre-reconfiguration observations
would poison the trend (the same reasoning as the probe's
moving-average reset).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar

from repro.obs.events import DecisionAction, DecisionReason
from repro.policy.api import (
    HOLD,
    Policy,
    PolicyDecision,
    PolicyInputs,
    register,
)


class ForecastState:
    """Holds the live forecaster (rebuilt on every reconfiguration)."""

    __slots__ = ("forecaster",)

    def __init__(self, forecaster) -> None:
        self.forecaster = forecaster


@register
@dataclass(frozen=True)
class ForecastFeedforwardPolicy(Policy):
    """Act on predicted utilization ``lead_s`` seconds ahead."""

    name: ClassVar[str] = "forecast"

    #: forecaster registry name ("ewma" / "trend" / "seasonal")
    forecaster: str = "trend"
    #: how far ahead the prediction looks (≈ one node installation time)
    lead_s: float = 120.0
    max_threshold: float = 0.80
    min_threshold: float = 0.35
    #: extra kwargs for the forecaster, as sorted (key, value) pairs
    forecaster_params: tuple[tuple[str, float], ...] = ()

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_threshold < self.max_threshold <= 1.0:
            raise ValueError(
                f"need 0 <= min < max <= 1, got "
                f"({self.min_threshold}, {self.max_threshold})"
            )
        if self.lead_s <= 0:
            raise ValueError("lead_s must be positive")
        object.__setattr__(
            self, "forecaster_params", tuple(sorted(self.forecaster_params))
        )

    def _make_forecaster(self):
        from repro.capacity.forecast import make_forecaster

        return make_forecaster(self.forecaster, **dict(self.forecaster_params))

    def initial_state(self) -> ForecastState:
        return ForecastState(self._make_forecaster())

    def decide(self, inputs: PolicyInputs, state: ForecastState) -> PolicyDecision:
        f = state.forecaster
        f.observe(inputs.t, inputs.raw)
        predicted = f.predicted_peak(self.lead_s)
        if inputs.smoothed > self.max_threshold:
            return PolicyDecision(DecisionAction.GROW, DecisionReason.ABOVE_MAX)
        if predicted > self.max_threshold:
            return PolicyDecision(
                DecisionAction.GROW, DecisionReason.PREDICTED_ABOVE_MAX
            )
        if (
            inputs.smoothed < self.min_threshold
            and predicted < self.min_threshold
        ):
            return PolicyDecision(DecisionAction.SHRINK, DecisionReason.BELOW_MIN)
        return HOLD

    def on_actuated(self, action: str, t: float, state: ForecastState) -> None:
        state.forecaster = self._make_forecaster()
