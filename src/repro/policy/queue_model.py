"""Queue-model sizing policy (M/G/1-PS).

Each replica is a processor-sharing server (the testbed's PsCpu), so a
request with service demand ``d`` at utilization ``rho`` sees a mean
response time

    R = d / (1 - rho)            (M/G/1-PS)

Solving ``R <= R_slo`` for the utilization gives the *highest* load a
replica may run at while still meeting the per-tier latency budget:

    rho* = 1 - d / R_slo

Unlike :class:`~repro.jade.planner.PlannerReactor` — whose fixed
``target_utilization`` is one more hand-tuned constant — the operating
point here is *derived* from the calibrated demand mix
(:mod:`repro.workload.calibration`) and the SLO: the app tier's ``d`` is
``app_demand_total()``, the DB tier's the read/write blend of
``effective_db_demand()``.  The tier is then sized directly: with ``k``
replicas at measured utilization ``U`` the offered demand is ``U * k``
replica-equivalents, so the policy wants

    k* = ceil(U * k / rho*)

and grows towards it whenever ``k* > k``.  Shrinking uses an asymmetric
guard: only when utilization has fallen below
``rho* * (1 - shrink_margin)`` *and* the model agrees a smaller tier
still fits — releasing capacity is cheap to defer and expensive to
regret (the paper's own reasoning for the inhibition period).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import ClassVar

from repro.obs.events import DecisionAction, DecisionReason
from repro.policy.api import (
    HOLD,
    Policy,
    PolicyDecision,
    PolicyInputs,
    register,
)


@register
@dataclass(frozen=True)
class QueueModelPolicy(Policy):
    """Size the tier so M/G/1-PS response time meets the tier budget."""

    name: ClassVar[str] = "queue-model"

    #: per-tier response-time budget the utilization target is solved from
    slo_latency_s: float = 0.25
    #: mean CPU demand of one request on this tier (callers default it
    #: from the calibration; 0.028 s is the calibrated DB read/write mix)
    service_demand_s: float = 0.028
    #: clamp band for the solved target (a demand close to the SLO would
    #: otherwise drive rho* to 0; a tiny demand to ~1.0, i.e. no headroom)
    rho_floor: float = 0.05
    rho_cap: float = 0.90
    #: shrink only when utilization is this fraction *below* the target
    shrink_margin: float = 0.10

    def __post_init__(self) -> None:
        if self.slo_latency_s <= 0 or self.service_demand_s <= 0:
            raise ValueError("need positive SLO and service demand")
        if not 0.0 < self.rho_floor <= self.rho_cap < 1.0:
            raise ValueError("need 0 < rho_floor <= rho_cap < 1")
        if not 0.0 <= self.shrink_margin < 1.0:
            raise ValueError("need 0 <= shrink_margin < 1")

    @property
    def rho_target(self) -> float:
        """The solved operating point: ``1 - d / R_slo``, clamped."""
        rho = 1.0 - self.service_demand_s / self.slo_latency_s
        return min(self.rho_cap, max(self.rho_floor, rho))

    def desired_replicas(self, utilization: float, replicas: int) -> int:
        """``ceil(U * k / rho*)`` — the epsilon absorbs float noise so an
        exactly-at-target tier is not rounded up."""
        demand = utilization * replicas
        return max(1, math.ceil(demand / self.rho_target - 1e-9))

    def decide(self, inputs: PolicyInputs, state) -> PolicyDecision:
        target = self.desired_replicas(inputs.smoothed, inputs.replicas)
        target = max(target, inputs.min_replicas)
        if inputs.max_replicas is not None:
            target = min(target, inputs.max_replicas)
        if target > inputs.replicas:
            return PolicyDecision(
                DecisionAction.GROW, DecisionReason.ABOVE_MAX, target=target
            )
        if (
            target < inputs.replicas
            and inputs.smoothed < self.rho_target * (1.0 - self.shrink_margin)
        ):
            return PolicyDecision(
                DecisionAction.SHRINK, DecisionReason.BELOW_MIN, target=target
            )
        return HOLD
