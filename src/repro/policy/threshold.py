"""The paper's threshold policies as plugins.

:class:`ThresholdPolicy` is §4.1/§5.2 verbatim — grow above
``max_threshold``, shrink below ``min_threshold`` — and is the default
plugin of every CPU control loop; the refactored
:class:`~repro.jade.reactors.ThresholdReactor` is byte-identical to the
pre-refactor reactor (test-enforced in ``tests/test_policy.py``).

:class:`AdaptiveThresholdPolicy` carries the §7 oscillation-damping
extension, and :class:`LatencyBandPolicy` the latency-SLO band of
``repro.jade.latency_optimization``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import ClassVar, Optional

from repro.obs.events import DecisionAction, DecisionReason
from repro.policy.api import (
    HOLD,
    Policy,
    PolicyDecision,
    PolicyInputs,
    register,
)


def _validate_band(low: float, high: float) -> None:
    if not 0.0 <= low < high <= 1.0:
        raise ValueError(f"need 0 <= min < max <= 1, got ({low}, {high})")


@register
@dataclass(frozen=True)
class ThresholdPolicy(Policy):
    """Grow above ``max_threshold``, shrink below ``min_threshold``."""

    name: ClassVar[str] = "threshold"

    max_threshold: float = 0.80
    min_threshold: float = 0.35

    def __post_init__(self) -> None:
        _validate_band(self.min_threshold, self.max_threshold)

    def decide(self, inputs: PolicyInputs, state) -> PolicyDecision:
        if inputs.smoothed > self.max_threshold:
            return PolicyDecision(DecisionAction.GROW, DecisionReason.ABOVE_MAX)
        if inputs.smoothed < self.min_threshold:
            return PolicyDecision(DecisionAction.SHRINK, DecisionReason.BELOW_MIN)
        return HOLD


class AdaptiveState:
    """Mutable runtime memory of one adaptive loop."""

    __slots__ = (
        "min_threshold",
        "last_grow_t",
        "last_shrink_t",
        "last_adapt_t",
        "adaptations",
    )

    def __init__(self, min_threshold: float) -> None:
        self.min_threshold = min_threshold
        self.last_grow_t: Optional[float] = None
        self.last_shrink_t: Optional[float] = None
        self.last_adapt_t = 0.0
        self.adaptations = 0


@register
@dataclass(frozen=True)
class AdaptiveThresholdPolicy(Policy):
    """§7 future work ("setting incrementally and dynamically its
    parameters"): a grow and a shrink within ``oscillation_window_s`` of
    each other widen the dead band by lowering the live ``min_threshold``
    (down to ``min_floor``); ``relax_after_s`` of calm narrows it back
    towards the configured value."""

    name: ClassVar[str] = "adaptive-threshold"

    max_threshold: float = 0.80
    min_threshold: float = 0.35
    oscillation_window_s: float = 300.0
    widen_step: float = 0.05
    relax_after_s: float = 900.0
    min_floor: float = 0.10

    def __post_init__(self) -> None:
        _validate_band(self.min_threshold, self.max_threshold)
        # A floor outside [0, min_threshold] would let a large widen_step
        # push the live threshold below zero (where the shrink rule can
        # never fire again) or above the starting band; clamp it.
        object.__setattr__(
            self,
            "min_floor",
            min(max(0.0, self.min_floor), self.min_threshold),
        )

    def initial_state(self) -> AdaptiveState:
        return AdaptiveState(self.min_threshold)

    def decide(self, inputs: PolicyInputs, state: AdaptiveState) -> PolicyDecision:
        if inputs.smoothed > self.max_threshold:
            return PolicyDecision(DecisionAction.GROW, DecisionReason.ABOVE_MAX)
        if inputs.smoothed < state.min_threshold:
            return PolicyDecision(DecisionAction.SHRINK, DecisionReason.BELOW_MIN)
        return HOLD

    def on_actuated(self, action: str, t: float, state: AdaptiveState) -> None:
        if action == DecisionAction.GROW:
            state.last_grow_t = t
        elif action == DecisionAction.SHRINK:
            state.last_shrink_t = t
        else:
            return
        if (
            state.last_grow_t is not None
            and state.last_shrink_t is not None
            and abs(state.last_grow_t - state.last_shrink_t)
            <= self.oscillation_window_s
        ):
            # Oscillating: widen the dead band (never below zero — the
            # clamped min_floor guarantees the shrink rule stays live).
            state.min_threshold = max(
                self.min_floor, state.min_threshold - self.widen_step
            )
            state.last_adapt_t = t
            state.adaptations += 1
            # Consume the pair so one oscillation adapts once.
            state.last_grow_t = None
            state.last_shrink_t = None
        elif (
            t - state.last_adapt_t > self.relax_after_s
            and state.min_threshold < self.min_threshold
        ):
            state.min_threshold = min(
                self.min_threshold, state.min_threshold + self.widen_step / 2.0
            )
            state.last_adapt_t = t
            state.adaptations += 1


@register
@dataclass(frozen=True)
class LatencyBandPolicy(Policy):
    """The latency-SLO band of the :class:`SloReactor`: grow when the
    smoothed end-to-end latency violates the SLO, shrink when it sits far
    under it (bottleneck localization stays in the reactor — latency is
    not attributable to one tier, so *which* tier moves is mechanics,
    not judgment)."""

    name: ClassVar[str] = "latency-band"

    max_latency_s: float = 0.5
    min_latency_s: float = 0.06

    def __post_init__(self) -> None:
        if not 0.0 <= self.min_latency_s < self.max_latency_s:
            raise ValueError("need 0 <= min < max latency")

    def decide(self, inputs: PolicyInputs, state) -> PolicyDecision:
        if inputs.smoothed > self.max_latency_s:
            return PolicyDecision(DecisionAction.GROW, DecisionReason.ABOVE_MAX)
        if inputs.smoothed < self.min_latency_s:
            return PolicyDecision(DecisionAction.SHRINK, DecisionReason.BELOW_MIN)
        return HOLD
