"""Sweep-driven autotuning of controller/policy parameters.

The paper hand-set its controller constants "experimentally through
specific benchmarks" (§5.2).  This module mechanizes that experiment:
a grid (or random subsample) over policy parameters — thresholds,
moving-average windows, the inhibition period, or any
:class:`~repro.policy.PolicyConfig` plugin — where every cell is the
standard Fig. 9 ramp replicated across seeds, fanned out through the
:class:`~repro.runner.parallel.ExperimentRunner` (process pool +
content-addressed cache: re-tuning an overlapping grid only computes the
new cells).

Each cell is scored on what an operator pays (the same scorecard
currency as :mod:`repro.capacity.cost`):

* **SLO violation seconds** — bucketed client latency above the SLO;
* **node-hours** — replica-count integral over the run;
* **reconfigurations** — each grow/shrink is operational work and risk;
* optionally **MTTR** under a chaos campaign (``chaos="crash"``).

The scalar objective is a weighted sum, cells rank by mean score across
seeds (95 % CIs reported), and the winner can be written out as a tuned
config (``repro tune --out``) that :mod:`repro.policy.bench` then proves
against the paper defaults.
"""

from __future__ import annotations

import json
import math
import random
import time
from dataclasses import dataclass, replace
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro.policy.api import PolicyConfig

#: chaos arm constants (match the chaos bench's campaign geometry)
CHAOS_CLIENTS = 60
CHAOS_DURATION_S = 420.0


def _stats(values: Sequence[float]) -> dict[str, float]:
    arr = np.asarray(values, dtype=float)
    mean = float(arr.mean())
    ci = (
        1.96 * float(arr.std(ddof=1)) / math.sqrt(len(arr))
        if len(arr) > 1
        else 0.0
    )
    return {"mean": mean, "ci95": ci, "n": len(arr)}


@dataclass(frozen=True)
class TuneObjective:
    """Weights of the scalar score (lower is better), plus the capacity
    budget: the *winning* cell must keep its node-hours within
    ``node_hours_budget`` × the paper-default reference cell's (an SLO
    win bought with extra machines is not a tuning win)."""

    slo_latency_s: float = 0.25
    slo_weight: float = 1.0        # per SLO-violation second
    node_hour_weight: float = 10.0  # per replica node-hour
    reconfig_weight: float = 0.1   # per grow/shrink
    mttr_weight: float = 0.2       # per second of mean time to repair
    node_hours_budget: float = 1.02  # factor over the reference cell

    def to_record(self) -> dict:
        return {
            "slo_latency_s": self.slo_latency_s,
            "slo_weight": self.slo_weight,
            "node_hour_weight": self.node_hour_weight,
            "reconfig_weight": self.reconfig_weight,
            "mttr_weight": self.mttr_weight,
            "node_hours_budget": self.node_hours_budget,
        }


@dataclass(frozen=True)
class TunePoint:
    """One candidate controller parameterization."""

    app_max: float = 0.80
    app_min: float = 0.38
    db_max: float = 0.75
    db_min: float = 0.40
    window_scale: float = 1.0      # multiplies the 60 s / 90 s windows
    inhibition_s: float = 60.0
    controller: str = "default"    # PolicyConfig string, as on the sweep axis

    def __post_init__(self) -> None:
        if not 0.0 <= self.app_min < self.app_max <= 1.0:
            raise ValueError(f"bad app band ({self.app_min}, {self.app_max})")
        if not 0.0 <= self.db_min < self.db_max <= 1.0:
            raise ValueError(f"bad db band ({self.db_min}, {self.db_max})")
        if self.window_scale <= 0 or self.inhibition_s < 0:
            raise ValueError("need window_scale > 0 and inhibition_s >= 0")
        if self.controller != "default":
            PolicyConfig.parse(self.controller)  # validates the syntax

    @property
    def label(self) -> str:
        bits = (
            f"am{self.app_max:g}-an{self.app_min:g}"
            f"-dm{self.db_max:g}-dn{self.db_min:g}"
            f"-w{self.window_scale:g}-i{self.inhibition_s:g}"
        )
        if self.controller != "default":
            bits += f"-p{self.controller}"
        return bits

    def loop_configs(self):
        """The per-tier :class:`LoopConfig` pair this point encodes."""
        from repro.jade.self_optimization import (
            APP_LOOP_DEFAULTS,
            DB_LOOP_DEFAULTS,
        )

        pc = (
            PolicyConfig.parse(self.controller)
            if self.controller != "default"
            else None
        )
        app = replace(
            APP_LOOP_DEFAULTS,
            max_threshold=self.app_max,
            min_threshold=self.app_min,
            window_s=APP_LOOP_DEFAULTS.window_s * self.window_scale,
            policy=pc,
        )
        db = replace(
            DB_LOOP_DEFAULTS,
            max_threshold=self.db_max,
            min_threshold=self.db_min,
            window_s=DB_LOOP_DEFAULTS.window_s * self.window_scale,
            policy=pc,
        )
        return app, db

    def config(self, seed: int, scale: float, peak: int = 500):
        """The cell's experiment: the §5.2 ramp under this controller."""
        from repro.jade.system import ExperimentConfig
        from repro.workload.profiles import RampProfile

        app, db = self.loop_configs()
        return ExperimentConfig(
            profile=RampProfile(
                peak=peak,
                warmup_s=300.0 * scale,
                step_period_s=60.0 * scale,
                cooldown_s=300.0 * scale,
            ),
            seed=seed,
            managed=True,
            inhibition_s=self.inhibition_s,
            app_loop=app,
            db_loop=db,
        )

    def chaos_config(self, campaign, seed: int):
        """The optional resilience arm: the chaos campaign's constant-load
        run with this point's controller active (repairs and scaling then
        compete for the same machinery, which is what MTTR should feel)."""
        from repro.chaos import campaign_config

        cfg = campaign_config(
            campaign,
            seed=seed,
            clients=CHAOS_CLIENTS,
            duration_s=CHAOS_DURATION_S,
        )
        cfg.managed = True
        cfg.inhibition_s = self.inhibition_s
        cfg.app_loop, cfg.db_loop = self.loop_configs()
        return cfg

    def to_record(self) -> dict:
        return {
            "app_max": self.app_max,
            "app_min": self.app_min,
            "db_max": self.db_max,
            "db_min": self.db_min,
            "window_scale": self.window_scale,
            "inhibition_s": self.inhibition_s,
            "controller": self.controller,
        }


#: the paper's hand-set controller (the tuner's reference cell)
PAPER_DEFAULT = TunePoint()


@dataclass(frozen=True)
class TuneSpec:
    """The search space: cross product of the parameter axes, optionally
    subsampled (``samples > 0`` → random search without replacement)."""

    app_max: tuple[float, ...] = (0.80,)
    app_min: tuple[float, ...] = (0.38,)
    db_max: tuple[float, ...] = (0.75,)
    db_min: tuple[float, ...] = (0.40,)
    window_scales: tuple[float, ...] = (1.0,)
    inhibitions: tuple[float, ...] = (60.0,)
    controllers: tuple[str, ...] = ("default",)
    seeds: tuple[int, ...] = (1, 2, 3)
    scale: float = 0.15
    peak: int = 500
    #: random-search subsample size (0 = full grid)
    samples: int = 0
    sample_seed: int = 0
    #: chaos preset name for the MTTR arm ("" = skip it)
    chaos: str = ""

    def grid(self) -> list[TunePoint]:
        points = [
            TunePoint(am, an, dm, dn, w, inh, controller)
            for am in self.app_max
            for an in self.app_min
            for dm in self.db_max
            for dn in self.db_min
            for w in self.window_scales
            for inh in self.inhibitions
            for controller in self.controllers
            if an < am and dn < dm
        ]
        if not points:
            raise ValueError("empty tune grid (check the threshold bands)")
        if self.samples and self.samples < len(points):
            points = random.Random(self.sample_seed).sample(
                points, self.samples
            )
        return points

    def to_record(self) -> dict:
        return {
            "app_max": list(self.app_max),
            "app_min": list(self.app_min),
            "db_max": list(self.db_max),
            "db_min": list(self.db_min),
            "window_scales": list(self.window_scales),
            "inhibitions": list(self.inhibitions),
            "controllers": list(self.controllers),
            "seeds": list(self.seeds),
            "scale": self.scale,
            "peak": self.peak,
            "samples": self.samples,
            "chaos": self.chaos,
            "cells": len(self.grid()),
        }


# ----------------------------------------------------------------------
# Scoring
# ----------------------------------------------------------------------
def score_run(run, objective: TuneObjective) -> dict[str, float]:
    """Scorecard metrics + scalar score for one completed ramp."""
    from repro.capacity.cost import slo_violation_time

    col = run.collector
    t_end = run.config.profile.duration_s + run.config.tail_s
    slo_s = slo_violation_time(
        col.latencies, 0.0, t_end, objective.slo_latency_s
    )
    node_seconds = sum(
        series.integral(0.0, t_end) for series in col.tier_replicas.values()
    )
    reconfigs = (
        run.app_tier.grows_completed
        + run.app_tier.shrinks_completed
        + run.db_tier.grows_completed
        + run.db_tier.shrinks_completed
    )
    node_hours = node_seconds / 3600.0
    return {
        "slo_violation_s": slo_s,
        "node_hours": node_hours,
        "reconfigs": float(reconfigs),
        "score": (
            objective.slo_weight * slo_s
            + objective.node_hour_weight * node_hours
            + objective.reconfig_weight * reconfigs
        ),
    }


def run_tune(
    spec: TuneSpec,
    objective: Optional[TuneObjective] = None,
    runner=None,
) -> dict:
    """Execute the search; returns the report (cells ranked best-first)."""
    from repro.runner.parallel import ExperimentRunner

    objective = objective or TuneObjective()
    if runner is None:
        runner = ExperimentRunner()
    points = spec.grid()

    campaign = None
    if spec.chaos:
        from repro.chaos import PRESETS

        campaign = PRESETS[spec.chaos]()

    # The paper default always runs as the budget reference (a no-op when
    # it is already a grid cell: same label, same config).
    scored_points = list(points)
    if PAPER_DEFAULT.label not in {p.label for p in points}:
        scored_points.append(PAPER_DEFAULT)

    configs = {}
    for point in scored_points:
        for seed in spec.seeds:
            configs[f"{point.label}-s{seed}"] = point.config(
                seed, spec.scale, spec.peak
            )
            if campaign is not None:
                configs[f"{point.label}-chaos-s{seed}"] = point.chaos_config(
                    campaign, seed
                )

    hits0 = misses0 = 0
    if runner.cache is not None:
        hits0, misses0 = runner.cache.hits, runner.cache.misses
    t0 = time.perf_counter()
    results = runner.run_many(configs)
    elapsed = time.perf_counter() - t0

    cells = []
    for point in scored_points:
        per_seed = [
            score_run(results[f"{point.label}-s{seed}"], objective)
            for seed in spec.seeds
        ]
        cell = {
            "point": point.to_record(),
            "label": point.label,
            "slo_violation_s": _stats([s["slo_violation_s"] for s in per_seed]),
            "node_hours": _stats([s["node_hours"] for s in per_seed]),
            "reconfigs": _stats([s["reconfigs"] for s in per_seed]),
            "score": _stats([s["score"] for s in per_seed]),
        }
        if campaign is not None:
            from repro.chaos import score_campaign

            card = score_campaign(
                campaign,
                [results[f"{point.label}-chaos-s{seed}"] for seed in spec.seeds],
            )
            mttr = card["aggregate"]["mttr_mean_s"]
            cell["mttr_s"] = mttr
            mean = mttr["mean"]
            if mean == mean:  # not NaN (NaN = no repair observed)
                cell["score"] = _stats(
                    [
                        s["score"] + objective.mttr_weight * mean
                        for s in per_seed
                    ]
                )
        cells.append(cell)

    cells.sort(key=lambda c: c["score"]["mean"])
    reference = next(
        c for c in cells if c["label"] == PAPER_DEFAULT.label
    )
    # The winner is the best-scoring cell *inside the budget*: node-hours
    # within the factor of the reference AND no SLO regression.  An
    # unconstrained score minimum that buys its SLO win with capacity is
    # reported in the ranking but never selected.
    nh_cap = reference["node_hours"]["mean"] * objective.node_hours_budget
    eligible = [
        c
        for c in cells
        if c["node_hours"]["mean"] <= nh_cap
        and c["slo_violation_s"]["mean"]
        <= reference["slo_violation_s"]["mean"]
    ]
    best = eligible[0] if eligible else reference
    report = {
        "spec": spec.to_record(),
        "objective": objective.to_record(),
        "cells": cells,
        "reference": reference,
        "best": best,
        "within_budget": len(eligible),
        "elapsed_s": elapsed,
    }
    if runner.cache is not None:
        report["cache"] = {
            "hits": runner.cache.hits - hits0,
            "misses": runner.cache.misses - misses0,
        }
    return report


# ----------------------------------------------------------------------
# Tuned-config artifact
# ----------------------------------------------------------------------
def tuned_config_record(cell: dict, report: dict) -> dict:
    """The committed artifact: the winning parameters + provenance."""
    return {
        "point": cell["point"],
        "metrics": {
            "slo_violation_s": cell["slo_violation_s"],
            "node_hours": cell["node_hours"],
            "reconfigs": cell["reconfigs"],
            "score": cell["score"],
        },
        "objective": report["objective"],
        "spec": report["spec"],
    }


def write_tuned_config(report: dict, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(
        json.dumps(tuned_config_record(report["best"], report), indent=2)
        + "\n"
    )
    return path


def load_tuned_point(source: str | Path | dict) -> TunePoint:
    """Rebuild the :class:`TunePoint` from a tuned-config file or dict."""
    if isinstance(source, (str, Path)):
        source = json.loads(Path(source).read_text())
    point = source["point"] if "point" in source else source
    return TunePoint(**point)


def render_report(report: dict, top: int = 10) -> str:
    lines = [
        f"Tuned {report['spec']['cells']} cells x "
        f"{len(report['spec']['seeds'])} seeds in "
        f"{report['elapsed_s']:.1f}s"
        + (
            f" (cache {report['cache']['hits']} hits / "
            f"{report['cache']['misses']} misses)"
            if "cache" in report
            else ""
        ),
        "",
        f"{'#':>3s} {'cell':<44s} {'score':>12s} {'SLO viol (s)':>14s} "
        f"{'node-hrs':>10s} {'reconf':>7s}",
    ]
    for i, cell in enumerate(report["cells"][:top]):
        lines.append(
            f"{i + 1:>3d} {cell['label']:<44s} "
            f"{cell['score']['mean']:>7.2f}±{cell['score']['ci95']:<4.2f} "
            f"{cell['slo_violation_s']['mean']:>8.1f}±"
            f"{cell['slo_violation_s']['ci95']:<5.1f} "
            f"{cell['node_hours']['mean']:>10.3f} "
            f"{cell['reconfigs']['mean']:>7.1f}"
        )
    if len(report["cells"]) > top:
        lines.append(f"    ... {len(report['cells']) - top} more cells")
    ref = report["reference"]
    best = report["best"]["point"]
    budget = report["objective"]["node_hours_budget"]
    lines += [
        "",
        f"reference (paper default): SLO "
        f"{ref['slo_violation_s']['mean']:.1f}s, "
        f"{ref['node_hours']['mean']:.3f} node-hrs "
        f"(budget {budget:g}x -> "
        f"{ref['node_hours']['mean'] * budget:.3f}); "
        f"{report['within_budget']} cell(s) within budget",
        "best within budget: app band "
        f"({best['app_min']:.2f}, {best['app_max']:.2f}), db band "
        f"({best['db_min']:.2f}, {best['db_max']:.2f}), windows x"
        f"{best['window_scale']:g}, inhibition {best['inhibition_s']:.0f}s, "
        f"controller {best['controller']} -> SLO "
        f"{report['best']['slo_violation_s']['mean']:.1f}s, "
        f"{report['best']['node_hours']['mean']:.3f} node-hrs",
    ]
    return "\n".join(lines)
