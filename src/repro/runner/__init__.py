"""Parallel, cached experiment runner.

The figure benchmarks all reduce to "run :class:`ManagedSystem` with this
:class:`ExperimentConfig` and analyse the collector".  Those runs are
independent and expensive (the full §5.2 ramp simulates 3600 s), so this
package provides the machinery to run them efficiently:

* :mod:`repro.runner.results` — :class:`CompletedRun`, a picklable proxy
  carrying everything the analysis code reads (collector, config, tier and
  proactive counters) without the live kernel;
* :mod:`repro.runner.fingerprint` — a content hash over the simulator's
  source, so cached results invalidate when the code changes;
* :mod:`repro.runner.cache` — a content-addressed on-disk result cache
  keyed by (payload description, code fingerprint), size-capped with LRU
  eviction (``repro cache {stats,clear,prune}``);
* :mod:`repro.runner.parallel` — :func:`fanout_map`, the generic
  order-preserving process-pool map, and :class:`ExperimentRunner`, which
  fans a batch of configs out over it with cache short-circuiting;
* :mod:`repro.runner.sweep` — ``repro sweep``: the grid fan-out
  (seeds × scales × policies × cohorts) with CSV/JSON output;
* :mod:`repro.runner.bench` — the ``repro bench`` engine benchmark:
  micro-benchmarks, a multi-seed ramp replication, the what-if
  decision-latency benchmark and a sweep-throughput probe, written to
  ``BENCH_engine.json`` with confidence intervals.
"""

from repro.runner.cache import ResultCache, describe_config
from repro.runner.fingerprint import code_fingerprint
from repro.runner.parallel import (
    ExperimentRunner,
    execute_config,
    fanout_map,
)
from repro.runner.results import ChaosStats, CompletedRun
from repro.runner.sweep import (
    SweepPoint,
    SweepResult,
    SweepSpec,
    run_sweep,
    write_sweep_csv,
    write_sweep_json,
)

__all__ = [
    "ChaosStats",
    "CompletedRun",
    "ExperimentRunner",
    "ResultCache",
    "SweepPoint",
    "SweepResult",
    "SweepSpec",
    "code_fingerprint",
    "describe_config",
    "execute_config",
    "fanout_map",
    "run_sweep",
    "write_sweep_csv",
    "write_sweep_json",
]
