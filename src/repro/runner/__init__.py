"""Parallel, cached experiment runner.

The figure benchmarks all reduce to "run :class:`ManagedSystem` with this
:class:`ExperimentConfig` and analyse the collector".  Those runs are
independent and expensive (the full §5.2 ramp simulates 3600 s), so this
package provides the machinery to run them efficiently:

* :mod:`repro.runner.results` — :class:`CompletedRun`, a picklable proxy
  carrying everything the analysis code reads (collector, config, tier and
  proactive counters) without the live kernel;
* :mod:`repro.runner.fingerprint` — a content hash over the simulator's
  source, so cached results invalidate when the code changes;
* :mod:`repro.runner.cache` — a content-addressed on-disk result cache
  keyed by (experiment description, code fingerprint);
* :mod:`repro.runner.parallel` — :class:`ExperimentRunner`, which fans a
  batch of configs out over a process pool with cache short-circuiting;
* :mod:`repro.runner.bench` — the ``repro bench`` engine benchmark:
  micro-benchmarks plus a multi-seed ramp replication, written to
  ``BENCH_engine.json`` with confidence intervals.
"""

from repro.runner.cache import ResultCache, describe_config
from repro.runner.fingerprint import code_fingerprint
from repro.runner.parallel import ExperimentRunner, execute_config
from repro.runner.results import CompletedRun

__all__ = [
    "CompletedRun",
    "ExperimentRunner",
    "ResultCache",
    "code_fingerprint",
    "describe_config",
    "execute_config",
]
