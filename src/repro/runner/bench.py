"""The ``repro bench`` engine benchmark.

The always-on **micro** layer times the kernel and PS-CPU scenarios from
``benchmarks/bench_micro_engine.py`` best-of-N against the committed
pre-optimization baselines (events/s, jobs/s, speedups).  Every other
section of BENCH_engine.json — ramp, whatif, sweep, chaos, deploy,
market, fluid — lives in the :data:`SECTIONS` registry and is skipped
through the single ``skip`` parameter (``repro bench --skip NAME``;
``--micro-only`` skips them all), so a full committed report is one
``repro bench --out BENCH_engine.json`` invocation.

The CI perf-smoke job runs ``repro bench --check BENCH_engine.json`` and
fails if the fresh micro timings drift more than the tolerance from the
committed numbers.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro.runner.cache import ResultCache
from repro.runner.parallel import ExperimentRunner

#: wall-clock of the micro scenarios before the engine fast-path work
#: (event freelist, bucketed timers, token-guarded PS wakes), measured
#: best-of-10 on the reference machine.  The ``speedup_vs_baseline``
#: figures in BENCH_engine.json are relative to these.
BASELINES_S = {
    "kernel_10k_events": 0.034357,
    "ps_cpu_5k_jobs": 0.069714,
}


# ----------------------------------------------------------------------
# Micro scenarios (mirror benchmarks/bench_micro_engine.py)
# ----------------------------------------------------------------------
def _scenario_kernel() -> int:
    from repro.simulation import SimKernel

    kernel = SimKernel()
    sink = []
    for i in range(10_000):
        kernel.schedule(float(i % 100) * 0.01, sink.append, i)
    kernel.run()
    return len(sink)


def _scenario_ps(arrivals, demands) -> int:
    from repro.simulation import CpuJob, PsCpu, SimKernel

    kernel = SimKernel()
    cpu = PsCpu(kernel)
    for t, d in zip(arrivals, demands):
        kernel.schedule_at(float(t), cpu.submit, CpuJob(kernel, float(d)))
    kernel.run()
    return cpu.completed


def _best_of(fn, rounds: int) -> float:
    best = math.inf
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_micro(rounds: int = 10) -> dict[str, dict[str, float]]:
    """Time both micro scenarios; returns the BENCH_engine ``micro`` block."""
    rng = np.random.default_rng(0)
    arrivals = np.cumsum(rng.exponential(0.01, size=5000))
    demands = rng.gamma(4.0, 0.01 / 4.0, size=5000)

    kernel_s = _best_of(_scenario_kernel, rounds)
    ps_s = _best_of(lambda: _scenario_ps(arrivals, demands), rounds)
    return {
        "kernel_10k_events": {
            "baseline_s": BASELINES_S["kernel_10k_events"],
            "best_s": kernel_s,
            "events_per_s": 10_000 / kernel_s,
            "speedup_vs_baseline": BASELINES_S["kernel_10k_events"] / kernel_s,
        },
        "ps_cpu_5k_jobs": {
            "baseline_s": BASELINES_S["ps_cpu_5k_jobs"],
            "best_s": ps_s,
            "jobs_per_s": 5000 / ps_s,
            "speedup_vs_baseline": BASELINES_S["ps_cpu_5k_jobs"] / ps_s,
        },
    }


# ----------------------------------------------------------------------
# Multi-seed ramp replication
# ----------------------------------------------------------------------
def _stats(values: Sequence[float]) -> dict[str, float]:
    arr = np.asarray(values, dtype=float)
    mean = float(arr.mean())
    if len(arr) > 1:
        ci = 1.96 * float(arr.std(ddof=1)) / math.sqrt(len(arr))
    else:
        ci = 0.0
    return {"mean": mean, "ci95": ci, "n": len(arr)}


def _ramp_config(
    managed: bool,
    seed: int,
    scale: float,
    fluid: bool = False,
    fluid_threshold: int = 0,
):
    from repro.jade.system import ExperimentConfig
    from repro.workload.profiles import RampProfile

    return ExperimentConfig(
        profile=RampProfile(
            warmup_s=300.0 * scale,
            step_period_s=60.0 * scale,
            cooldown_s=300.0 * scale,
        ),
        seed=seed,
        managed=managed,
        fluid=fluid,
        fluid_threshold=fluid_threshold,
    )


def run_ramp_replication(
    seeds: Sequence[int],
    scale: float,
    runner: ExperimentRunner,
    fluid: bool = False,
    fluid_threshold: int = 0,
) -> dict:
    """Run the managed/static ramp pair for every seed and aggregate.

    With a cache attached the batch runs twice — a cold pass that computes
    (or reuses an earlier session's entries) and a warm pass that must
    resolve entirely from the cache — and the report records per-pass
    hit/miss deltas.  The committed BENCH_engine.json therefore always
    shows ``warm.hits > 0``: the warm pass is what a re-run benchmark
    session actually costs.
    """
    configs = {}
    for seed in seeds:
        configs[f"managed-{seed}"] = _ramp_config(
            True, seed, scale, fluid, fluid_threshold
        )
        configs[f"static-{seed}"] = _ramp_config(
            False, seed, scale, fluid, fluid_threshold
        )

    def timed_pass() -> tuple[dict, dict]:
        hits0 = misses0 = 0
        if runner.cache is not None:
            hits0, misses0 = runner.cache.hits, runner.cache.misses
        t0 = time.perf_counter()
        results = runner.run_many(configs)
        stats = {"elapsed_s": time.perf_counter() - t0}
        if runner.cache is not None:
            stats["hits"] = runner.cache.hits - hits0
            stats["misses"] = runner.cache.misses - misses0
        return results, stats

    results, cold = timed_pass()
    warm = None
    if runner.cache is not None:
        warm_results, warm = timed_pass()
        results = warm_results

    arms = {}
    for arm in ("managed", "static"):
        summaries = [results[f"{arm}-{s}"].summary() for s in seeds]
        walls = [results[f"{arm}-{s}"].wall_time_s for s in seeds]
        arms[arm] = {
            "throughput_rps": _stats([s["throughput_rps"] for s in summaries]),
            "latency_mean_ms": _stats([s["latency_mean_ms"] for s in summaries]),
            "completed": _stats([s["completed"] for s in summaries]),
            "wall_time_s": _stats(walls),
        }
    serial_estimate = sum(r.wall_time_s for r in results.values())
    block = {
        "scale": scale,
        "fluid": fluid,
        "seeds": list(seeds),
        "arms": arms,
        "runs": len(results),
        "parallel_elapsed_s": cold["elapsed_s"],
        "serial_estimate_s": serial_estimate,
    }
    if runner.cache is not None:
        block["cache"] = {
            "dir": str(runner.cache.root),
            "cold": cold,
            "warm": warm,
            # headline numbers: what a re-run against this cache reports
            "hits": warm["hits"],
            "misses": warm["misses"],
        }
    return block


# ----------------------------------------------------------------------
# What-if decision latency + sweep throughput
# ----------------------------------------------------------------------
def _whatif_fixture():
    """A deterministic mid-ramp fork: (snapshot, forecast)."""
    from repro.capacity.whatif import run_to_fork
    from repro.jade.system import ExperimentConfig, ManagedSystem
    from repro.workload.profiles import RampProfile

    config = ExperimentConfig(
        seed=7,
        profile=RampProfile(
            base=80,
            peak=260,
            step_period_s=15.0,
            warmup_s=60.0,
            cooldown_s=60.0,
        ),
    )
    snapshot = run_to_fork(ManagedSystem(config), 150.0)
    forecast = [(150.0 + 15.0 * i, 200.0 + 5.0 * i) for i in range(4)]
    return snapshot, forecast


def _whatif_candidates(n: int):
    """The first ``n`` of a fixed candidate ladder (deterministic)."""
    from repro.capacity.whatif import Candidate

    ladder = [
        (1, 1), (2, 1), (1, 2), (2, 2),
        (3, 1), (1, 3), (3, 2), (2, 3),
        (3, 3), (4, 1), (1, 4), (4, 2),
    ]
    if n > len(ladder):
        raise ValueError(f"at most {len(ladder)} candidates supported")
    return [Candidate(app, db) for app, db in ladder[:n]]


def run_whatif_bench(candidates: int = 8) -> dict:
    """Time one C-candidate proactive decision three ways — serial (the
    pre-optimization path), parallel against a cold cache, and memoized
    against the warm cache — asserting the reports stay byte-identical.

    Returns the BENCH_engine ``whatif`` block.  The headline
    ``speedup_memoized`` is the decision-latency win of a repeated
    decision under unchanged conditions (the proactive manager re-planning,
    a re-run benchmark session); ``speedup_parallel`` is the cold-cache
    pool fan-out win and degrades to ~1x on single-core runners.
    """
    import shutil
    import tempfile

    from repro.capacity.cost import CostModel
    from repro.capacity.whatif import WhatIfEngine
    from repro.runner.parallel import default_workers

    snapshot, forecast = _whatif_fixture()
    cands = _whatif_candidates(candidates)

    def make_engine(**kwargs) -> WhatIfEngine:
        return WhatIfEngine(
            horizon_s=45.0, warmup_s=40.0, cost_model=CostModel(), **kwargs
        )

    def timed(engine):
        t0 = time.perf_counter()
        outcomes = engine.evaluate(snapshot, forecast, cands)
        elapsed = time.perf_counter() - t0
        return outcomes, elapsed

    cache_dir = Path(tempfile.mkdtemp(prefix="bench-whatif-"))
    try:
        serial_engine = make_engine(parallel=False)
        serial_out, serial_s = timed(serial_engine)
        serial_report = serial_engine.report(serial_out)

        workers = min(8, max(2, default_workers()))
        cold_engine = make_engine(
            parallel=True, max_workers=workers, cache=ResultCache(cache_dir)
        )
        cold_out, parallel_s = timed(cold_engine)

        warm_engine = make_engine(
            parallel=True, max_workers=workers, cache=ResultCache(cache_dir)
        )
        warm_out, memoized_s = timed(warm_engine)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)

    byte_identical = (
        cold_engine.report(cold_out) == serial_report
        and warm_engine.report(warm_out) == serial_report
    )
    winner = serial_engine.best(serial_out).candidate.label
    same_winner = (
        cold_engine.best(cold_out).candidate.label == winner
        and warm_engine.best(warm_out).candidate.label == winner
    )
    return {
        "candidates": candidates,
        "serial_s": serial_s,
        "parallel_cold_s": parallel_s,
        "memoized_s": memoized_s,
        "speedup_parallel": serial_s / parallel_s,
        "speedup_memoized": serial_s / memoized_s,
        "byte_identical": byte_identical,
        "same_winner": same_winner,
        "winner": winner,
        "workers": workers,
        "memoized_cache_hits": warm_engine.cache_hits,
        "memoized_branches_run": warm_engine.branches_run,
    }


def run_sweep_bench() -> dict:
    """Throughput of a small sweep grid, cold then warm (cache-resolved).

    Returns the BENCH_engine ``sweep`` block."""
    import shutil
    import tempfile

    from repro.runner.sweep import SweepSpec, run_sweep

    spec = SweepSpec(
        seeds=(1, 2),
        scales=(0.05,),
        policies=("static", "managed"),
        cohorts=(1,),
    )
    cache_dir = Path(tempfile.mkdtemp(prefix="bench-sweep-"))
    try:
        runner = ExperimentRunner(cache=ResultCache(cache_dir))
        cold = run_sweep(spec, runner)
        warm = run_sweep(spec, runner)
    finally:
        shutil.rmtree(cache_dir, ignore_errors=True)
    return {
        "spec": spec.to_record(),
        "cold": {
            "elapsed_s": cold.elapsed_s,
            "rows_per_s": len(cold.rows) / cold.elapsed_s,
            "cache": cold.cache,
        },
        "warm": {
            "elapsed_s": warm.elapsed_s,
            "rows_per_s": len(warm.rows) / warm.elapsed_s,
            "cache": warm.cache,
        },
        "rows_identical": cold.rows == warm.rows,
    }


# ----------------------------------------------------------------------
# Section registry + entry points
# ----------------------------------------------------------------------
def _section_ramp(ctx: dict) -> dict:
    runner = ExperimentRunner(
        cache=ResultCache() if ctx["use_cache"] else None,
        parallel=ctx["parallel"],
    )
    return run_ramp_replication(
        ctx["seeds"],
        ctx["scale"],
        runner,
        fluid=ctx["fluid"],
        fluid_threshold=ctx["fluid_threshold"],
    )


def _section_whatif(ctx: dict) -> dict:
    return run_whatif_bench(candidates=ctx["whatif_candidates"])


def _section_sweep(ctx: dict) -> dict:
    return run_sweep_bench()


def _section_chaos(ctx: dict) -> dict:
    from repro.chaos.bench import run_chaos_section

    return run_chaos_section(
        seeds=ctx["seeds"],
        parallel=ctx["parallel"],
        use_cache=ctx["use_cache"],
    )


def _section_deploy(ctx: dict) -> dict:
    from repro.deploy.bench import run_deploy_section

    return run_deploy_section(
        seeds=ctx["seeds"],
        parallel=ctx["parallel"],
        use_cache=ctx["use_cache"],
    )


def _section_market(ctx: dict) -> dict:
    from repro.market.bench import run_market_section

    return run_market_section(
        seeds=ctx["seeds"],
        parallel=ctx["parallel"],
        use_cache=ctx["use_cache"],
    )


def _section_fluid(ctx: dict) -> dict:
    from repro.workload.fluid_bench import run_fluid_section

    return run_fluid_section(
        seed=ctx["seeds"][0],
        parallel=ctx["parallel"],
        use_cache=ctx["use_cache"],
    )


def _section_policy(ctx: dict) -> dict:
    from repro.policy.bench import run_policy_section

    return run_policy_section(
        seeds=ctx["seeds"],
        scale=ctx["scale"],
        parallel=ctx["parallel"],
        use_cache=ctx["use_cache"],
    )


def _section_federation(ctx: dict) -> dict:
    from repro.federation.bench import run_federation_section

    return run_federation_section(
        seed=ctx["seeds"][0],
        use_cache=ctx["use_cache"],
        parallel=ctx["parallel"],
    )


#: every BENCH_engine.json section beyond the always-on ``micro`` block,
#: in report order.  ``run_bench(skip=...)`` names entries here — the one
#: skip mechanism for all subsystem benches (``--micro-only`` == skip all).
#: ``federation`` runs last so its shared-pool snapshot reflects every
#: fan-out the earlier sections made.
SECTIONS = {
    "ramp": _section_ramp,
    "whatif": _section_whatif,
    "sweep": _section_sweep,
    "chaos": _section_chaos,
    "deploy": _section_deploy,
    "market": _section_market,
    "fluid": _section_fluid,
    "policy": _section_policy,
    "federation": _section_federation,
}


def run_bench(
    out_path: Optional[str] = None,
    seeds: Sequence[int] = (1, 2, 3),
    scale: float = 0.15,
    rounds: int = 10,
    parallel: bool = True,
    use_cache: bool = True,
    skip: Sequence[str] = (),
    whatif_candidates: int = 8,
    fluid: bool = False,
    fluid_threshold: int = 0,
) -> dict:
    """Run the full engine benchmark; optionally write BENCH_engine.json.

    ``skip`` names :data:`SECTIONS` entries to leave out; everything else
    runs in registry order after the micro scenarios.  ``fluid`` /
    ``fluid_threshold`` switch the ramp-replication arms onto the hybrid
    fluid workload engine (the dedicated ``fluid`` section always
    benchmarks both modes)."""
    unknown = set(skip) - set(SECTIONS)
    if unknown:
        raise ValueError(
            f"unknown bench section(s) {sorted(unknown)}; "
            f"choose from {list(SECTIONS)}"
        )
    ctx = {
        "seeds": tuple(seeds),
        "scale": scale,
        "parallel": parallel,
        "use_cache": use_cache,
        "whatif_candidates": whatif_candidates,
        "fluid": fluid,
        "fluid_threshold": fluid_threshold,
    }
    report: dict = {"micro": run_micro(rounds)}
    for name, section in SECTIONS.items():
        if name not in skip:
            report[name] = section(ctx)
    if out_path:
        Path(out_path).write_text(
            json.dumps(report, indent=2, default=float) + "\n"
        )
    return report


def check_against(
    reference_path: str, tolerance: float = 0.25, rounds: int = 10
) -> tuple[bool, list[str]]:
    """Perf-smoke gate: re-time the micro scenarios and compare against a
    committed BENCH_engine.json.  A scenario fails if it is slower than
    ``(1 + tolerance) ×`` the committed timing (being *faster* never
    fails).  Returns (ok, report lines)."""
    reference = json.loads(Path(reference_path).read_text())
    fresh = run_micro(rounds)
    ok = True
    lines = []
    for name, block in fresh.items():
        committed = reference["micro"][name]["best_s"]
        measured = block["best_s"]
        limit = committed * (1.0 + tolerance)
        passed = measured <= limit
        ok = ok and passed
        lines.append(
            f"{name}: {measured * 1e3:.2f} ms vs committed "
            f"{committed * 1e3:.2f} ms (limit {limit * 1e3:.2f} ms) "
            f"{'ok' if passed else 'REGRESSION'}"
        )
    return ok, lines


def check_whatif(
    reference_path: str, min_speedup: float = 3.0
) -> tuple[bool, list[str]]:
    """Perf-smoke gate over the what-if work (``make bench-whatif-check``).

    Validates the *committed* BENCH_engine.json whatif section (present,
    byte-identical, memoized speedup >= ``min_speedup``), then runs two
    live smokes sized for a CI runner: a 2-candidate parallel decision
    that must be byte-identical to serial with the same winner, and a
    2x2 sweep shard whose warm pass must resolve from the cache with
    identical rows.  Returns (ok, report lines).
    """
    reference = json.loads(Path(reference_path).read_text())
    ok = True
    lines = []

    committed = reference.get("whatif")
    if committed is None:
        return False, [f"{reference_path}: no 'whatif' section committed"]
    checks = [
        ("byte_identical", committed.get("byte_identical") is True),
        ("same_winner", committed.get("same_winner") is True),
        (
            f"speedup_memoized >= {min_speedup:g}",
            committed.get("speedup_memoized", 0.0) >= min_speedup,
        ),
    ]
    for name, passed in checks:
        ok = ok and passed
        lines.append(f"committed whatif.{name}: {'ok' if passed else 'FAIL'}")

    live = run_whatif_bench(candidates=2)
    for name in ("byte_identical", "same_winner"):
        passed = live[name] is True
        ok = ok and passed
        lines.append(
            f"live 2-candidate parallel decision {name}: "
            f"{'ok' if passed else 'FAIL'}"
        )
    lines.append(
        f"live decision: serial {live['serial_s']:.2f}s, memoized "
        f"{live['memoized_s']:.3f}s ({live['speedup_memoized']:.1f}x)"
    )

    sweep = run_sweep_bench()
    sweep_checks = [
        ("rows_identical", sweep["rows_identical"] is True),
        ("warm pass cache-resolved", sweep["warm"]["cache"]["misses"] == 0),
        ("warm pass hits > 0", sweep["warm"]["cache"]["hits"] > 0),
    ]
    for name, passed in sweep_checks:
        ok = ok and passed
        lines.append(f"live 2x2 sweep {name}: {'ok' if passed else 'FAIL'}")
    return ok, lines
