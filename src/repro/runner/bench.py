"""The ``repro bench`` engine benchmark.

Two layers, written together to ``BENCH_engine.json``:

* **micro** — the kernel and PS-CPU scenarios from
  ``benchmarks/bench_micro_engine.py``, timed best-of-N against the
  committed pre-optimization baselines, reporting events/s, jobs/s and
  speedups;
* **ramp** — a multi-seed replication of the managed/static §5.2 ramp pair
  through the parallel cached runner, reporting per-arm means with 95 %
  confidence intervals plus the parallel-vs-serial wall-clock and cache
  statistics.

The CI perf-smoke job runs ``repro bench --check BENCH_engine.json`` and
fails if the fresh micro timings drift more than the tolerance from the
committed numbers.
"""

from __future__ import annotations

import json
import math
import time
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from repro.runner.cache import ResultCache
from repro.runner.parallel import ExperimentRunner

#: wall-clock of the micro scenarios before the engine fast-path work
#: (event freelist, bucketed timers, token-guarded PS wakes), measured
#: best-of-10 on the reference machine.  The ``speedup_vs_baseline``
#: figures in BENCH_engine.json are relative to these.
BASELINES_S = {
    "kernel_10k_events": 0.034357,
    "ps_cpu_5k_jobs": 0.069714,
}


# ----------------------------------------------------------------------
# Micro scenarios (mirror benchmarks/bench_micro_engine.py)
# ----------------------------------------------------------------------
def _scenario_kernel() -> int:
    from repro.simulation import SimKernel

    kernel = SimKernel()
    sink = []
    for i in range(10_000):
        kernel.schedule(float(i % 100) * 0.01, sink.append, i)
    kernel.run()
    return len(sink)


def _scenario_ps(arrivals, demands) -> int:
    from repro.simulation import CpuJob, PsCpu, SimKernel

    kernel = SimKernel()
    cpu = PsCpu(kernel)
    for t, d in zip(arrivals, demands):
        kernel.schedule_at(float(t), cpu.submit, CpuJob(kernel, float(d)))
    kernel.run()
    return cpu.completed


def _best_of(fn, rounds: int) -> float:
    best = math.inf
    for _ in range(rounds):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def run_micro(rounds: int = 10) -> dict[str, dict[str, float]]:
    """Time both micro scenarios; returns the BENCH_engine ``micro`` block."""
    rng = np.random.default_rng(0)
    arrivals = np.cumsum(rng.exponential(0.01, size=5000))
    demands = rng.gamma(4.0, 0.01 / 4.0, size=5000)

    kernel_s = _best_of(_scenario_kernel, rounds)
    ps_s = _best_of(lambda: _scenario_ps(arrivals, demands), rounds)
    return {
        "kernel_10k_events": {
            "baseline_s": BASELINES_S["kernel_10k_events"],
            "best_s": kernel_s,
            "events_per_s": 10_000 / kernel_s,
            "speedup_vs_baseline": BASELINES_S["kernel_10k_events"] / kernel_s,
        },
        "ps_cpu_5k_jobs": {
            "baseline_s": BASELINES_S["ps_cpu_5k_jobs"],
            "best_s": ps_s,
            "jobs_per_s": 5000 / ps_s,
            "speedup_vs_baseline": BASELINES_S["ps_cpu_5k_jobs"] / ps_s,
        },
    }


# ----------------------------------------------------------------------
# Multi-seed ramp replication
# ----------------------------------------------------------------------
def _stats(values: Sequence[float]) -> dict[str, float]:
    arr = np.asarray(values, dtype=float)
    mean = float(arr.mean())
    if len(arr) > 1:
        ci = 1.96 * float(arr.std(ddof=1)) / math.sqrt(len(arr))
    else:
        ci = 0.0
    return {"mean": mean, "ci95": ci, "n": len(arr)}


def _ramp_config(managed: bool, seed: int, scale: float):
    from repro.jade.system import ExperimentConfig
    from repro.workload.profiles import RampProfile

    return ExperimentConfig(
        profile=RampProfile(
            warmup_s=300.0 * scale,
            step_period_s=60.0 * scale,
            cooldown_s=300.0 * scale,
        ),
        seed=seed,
        managed=managed,
    )


def run_ramp_replication(
    seeds: Sequence[int],
    scale: float,
    runner: ExperimentRunner,
) -> dict:
    """Run the managed/static ramp pair for every seed and aggregate."""
    configs = {}
    for seed in seeds:
        configs[f"managed-{seed}"] = _ramp_config(True, seed, scale)
        configs[f"static-{seed}"] = _ramp_config(False, seed, scale)
    t0 = time.perf_counter()
    results = runner.run_many(configs)
    elapsed = time.perf_counter() - t0

    arms = {}
    for arm in ("managed", "static"):
        summaries = [results[f"{arm}-{s}"].summary() for s in seeds]
        walls = [results[f"{arm}-{s}"].wall_time_s for s in seeds]
        arms[arm] = {
            "throughput_rps": _stats([s["throughput_rps"] for s in summaries]),
            "latency_mean_ms": _stats([s["latency_mean_ms"] for s in summaries]),
            "completed": _stats([s["completed"] for s in summaries]),
            "wall_time_s": _stats(walls),
        }
    serial_estimate = sum(r.wall_time_s for r in results.values())
    block = {
        "scale": scale,
        "seeds": list(seeds),
        "arms": arms,
        "runs": len(results),
        "parallel_elapsed_s": elapsed,
        "serial_estimate_s": serial_estimate,
    }
    if runner.cache is not None:
        block["cache"] = {
            "hits": runner.cache.hits,
            "misses": runner.cache.misses,
            "dir": str(runner.cache.root),
        }
    return block


# ----------------------------------------------------------------------
# Entry points
# ----------------------------------------------------------------------
def run_bench(
    out_path: Optional[str] = None,
    seeds: Sequence[int] = (1, 2, 3),
    scale: float = 0.15,
    rounds: int = 10,
    parallel: bool = True,
    use_cache: bool = True,
    skip_ramp: bool = False,
) -> dict:
    """Run the full engine benchmark; optionally write BENCH_engine.json."""
    report: dict = {"micro": run_micro(rounds)}
    if not skip_ramp:
        runner = ExperimentRunner(
            cache=ResultCache() if use_cache else None, parallel=parallel
        )
        report["ramp"] = run_ramp_replication(seeds, scale, runner)
    if out_path:
        Path(out_path).write_text(
            json.dumps(report, indent=2, default=float) + "\n"
        )
    return report


def check_against(
    reference_path: str, tolerance: float = 0.25, rounds: int = 10
) -> tuple[bool, list[str]]:
    """Perf-smoke gate: re-time the micro scenarios and compare against a
    committed BENCH_engine.json.  A scenario fails if it is slower than
    ``(1 + tolerance) ×`` the committed timing (being *faster* never
    fails).  Returns (ok, report lines)."""
    reference = json.loads(Path(reference_path).read_text())
    fresh = run_micro(rounds)
    ok = True
    lines = []
    for name, block in fresh.items():
        committed = reference["micro"][name]["best_s"]
        measured = block["best_s"]
        limit = committed * (1.0 + tolerance)
        passed = measured <= limit
        ok = ok and passed
        lines.append(
            f"{name}: {measured * 1e3:.2f} ms vs committed "
            f"{committed * 1e3:.2f} ms (limit {limit * 1e3:.2f} ms) "
            f"{'ok' if passed else 'REGRESSION'}"
        )
    return ok, lines
