"""Content-addressed on-disk result cache.

A cache entry is addressed by ``sha256(description ++ code fingerprint)``
where *description* is a canonical, human-readable rendering of the
payload's identity (for experiments: every :class:`ExperimentConfig`
field, recursively, including the workload profile and calibration; for
what-if branches: the full :class:`~repro.capacity.whatif.BranchSpec`).
Two equal descriptions are the same computation; any change to the
simulator's source changes the fingerprint and orphans every entry (see
:mod:`repro.runner.fingerprint`).

Layout (under ``$REPRO_CACHE_DIR``, default ``~/.cache/repro-jade``)::

    <key>.pkl    pickled payload (CompletedRun, BranchOutcome, ...)
    <key>.json   metadata sidecar: description, fingerprint, wall time,
                 summary — greppable without unpickling

Entries are immutable; invalidation is by key change only, so ``rm -r``
on the directory is always safe.  The cache is size-capped: every store
prunes least-recently-used entries (payload mtime, refreshed on every
hit) until the directory fits ``max_bytes`` (default 2 GiB, override via
``$REPRO_CACHE_MAX_BYTES``; ``0`` disables pruning).  ``repro cache
{stats,clear,prune}`` exposes the same maintenance from the CLI.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional

from repro.runner.fingerprint import code_fingerprint

_DEFAULT_DIR = "~/.cache/repro-jade"
_DEFAULT_MAX_BYTES = 2 * 1024**3  # 2 GiB


def _canon(value):
    """Recursively render a config value as plain JSON-able data.

    Dataclasses and plain attribute-bag objects become ``{"__type__": name,
    ...fields}``; callables are rejected because they cannot be described
    by value (a config holding one is not cacheable).
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canon(v) for k, v in sorted(value.items())}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out = {"__type__": type(value).__name__}
        for f in dataclasses.fields(value):
            out[f.name] = _canon(getattr(value, f.name))
        return out
    if callable(value):
        raise TypeError(
            f"config contains a callable ({value!r}); not describable by value"
        )
    if hasattr(value, "__dict__") or hasattr(type(value), "__slots__"):
        out = {"__type__": type(value).__name__}
        attrs = getattr(value, "__dict__", None)
        if attrs is None:
            attrs = {
                s: getattr(value, s)
                for s in type(value).__slots__
                if hasattr(value, s)
            }
        for name in sorted(attrs):
            out[name] = _canon(attrs[name])
        return out
    raise TypeError(f"cannot canonicalize {type(value).__name__}: {value!r}")


def describe_config(config) -> str:
    """Canonical text form of an :class:`ExperimentConfig` (stable across
    processes and sessions; the cache-key input)."""
    return json.dumps(_canon(config), sort_keys=True, separators=(",", ":"))


def default_max_bytes() -> int:
    """Size cap from ``$REPRO_CACHE_MAX_BYTES`` (0 = unbounded)."""
    env = os.environ.get("REPRO_CACHE_MAX_BYTES")
    if env:
        return max(0, int(env))
    return _DEFAULT_MAX_BYTES


class ResultCache:
    """Load/store picklable result payloads by computation identity."""

    def __init__(
        self, root: Optional[Path] = None, max_bytes: Optional[int] = None
    ) -> None:
        if root is None:
            root = Path(
                os.environ.get("REPRO_CACHE_DIR", _DEFAULT_DIR)
            ).expanduser()
        self.root = Path(root)
        self.max_bytes = default_max_bytes() if max_bytes is None else max_bytes
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def key_for(self, config, fingerprint: Optional[str] = None) -> str:
        if fingerprint is None:
            fingerprint = code_fingerprint()
        digest = hashlib.sha256()
        digest.update(describe_config(config).encode())
        digest.update(b"\n")
        digest.update(fingerprint.encode())
        # Federation topology (region count, names, epoch/channel config)
        # is part of a payload's identity: without this a federated spec
        # whose field values happened to canonicalize like a
        # single-cluster config could alias its cache entry.
        topology = getattr(config, "topology", None)
        if callable(topology):
            digest.update(b"\ntopology:")
            digest.update(
                json.dumps(
                    _canon(topology()), sort_keys=True, separators=(",", ":")
                ).encode()
            )
        return digest.hexdigest()

    def _paths(self, key: str) -> tuple[Path, Path]:
        return self.root / f"{key}.pkl", self.root / f"{key}.json"

    # ------------------------------------------------------------------
    def load(self, key: str):
        payload, _ = self._paths(key)
        try:
            with open(payload, "rb") as fh:
                run = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError):
            self.misses += 1
            return None
        self.hits += 1
        try:  # refresh LRU recency for the pruner
            os.utime(payload)
        except OSError:
            pass
        return run

    def store(self, key: str, run, config=None) -> Path:
        """Persist atomically (write-rename, so readers never see a torn
        entry); returns the payload path."""
        self.root.mkdir(parents=True, exist_ok=True)
        payload, sidecar = self._paths(key)
        blob = pickle.dumps(run, protocol=pickle.HIGHEST_PROTOCOL)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, payload)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        meta = {
            "key": key,
            "code_fingerprint": code_fingerprint(),
            "payload_type": type(run).__name__,
        }
        for attr in ("wall_time_s", "events_processed"):
            value = getattr(run, attr, None)
            if value is not None:
                meta[attr] = value
        describe = getattr(run, "summary", None) or getattr(run, "to_record", None)
        if callable(describe):
            meta["summary"] = describe()
        if config is not None:
            meta["config"] = json.loads(describe_config(config))
        sidecar.write_text(json.dumps(meta, indent=2, default=float) + "\n")
        if self.max_bytes:
            self.prune()
        return payload

    # ------------------------------------------------------------------
    # Hygiene: size accounting, LRU pruning, clearing
    # ------------------------------------------------------------------
    def _entries(self) -> list[tuple[float, int, Path, Path]]:
        """(payload mtime, total bytes, payload, sidecar) per entry."""
        entries = []
        try:
            payloads = sorted(self.root.glob("*.pkl"))
        except OSError:
            return []
        for payload in payloads:
            sidecar = payload.with_suffix(".json")
            try:
                stat = payload.stat()
            except OSError:
                continue
            size = stat.st_size
            try:
                size += sidecar.stat().st_size
            except OSError:
                pass
            entries.append((stat.st_mtime, size, payload, sidecar))
        return entries

    def stats(self) -> dict:
        """Entry count and on-disk footprint (plus this process's
        hit/miss counters)."""
        entries = self._entries()
        return {
            "dir": str(self.root),
            "entries": len(entries),
            "bytes": sum(size for _, size, _, _ in entries),
            "max_bytes": self.max_bytes,
            "hits": self.hits,
            "misses": self.misses,
        }

    def prune(self, max_bytes: Optional[int] = None) -> list[str]:
        """Evict least-recently-used entries until the cache fits the
        size cap; returns the evicted keys (oldest first)."""
        cap = self.max_bytes if max_bytes is None else max_bytes
        if not cap:
            return []
        entries = sorted(self._entries())  # oldest mtime first
        total = sum(size for _, size, _, _ in entries)
        evicted = []
        for _, size, payload, sidecar in entries:
            if total <= cap:
                break
            for path in (payload, sidecar):
                try:
                    path.unlink()
                except OSError:
                    pass
            total -= size
            evicted.append(payload.stem)
        return evicted

    def clear(self) -> int:
        """Delete every entry; returns the number of entries removed."""
        entries = self._entries()
        for _, _, payload, sidecar in entries:
            for path in (payload, sidecar):
                try:
                    path.unlink()
                except OSError:
                    pass
        return len(entries)

    # ------------------------------------------------------------------
    def get_or_none(self, config):
        return self.load(self.key_for(config))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ResultCache({self.root}, {self.hits} hits/{self.misses} misses)"
