"""Content-addressed on-disk result cache.

A cache entry is addressed by ``sha256(description ++ code fingerprint)``
where *description* is a canonical, human-readable rendering of the
:class:`ExperimentConfig` (every field, recursively, including the workload
profile and calibration).  Two configs with equal descriptions are the same
experiment; any change to the simulator's source changes the fingerprint
and orphans every entry (see :mod:`repro.runner.fingerprint`).

Layout (under ``$REPRO_CACHE_DIR``, default ``~/.cache/repro-jade``)::

    <key>.pkl    pickled CompletedRun (the payload)
    <key>.json   metadata sidecar: description, fingerprint, wall time,
                 summary — greppable without unpickling

Entries are immutable; invalidation is by key change only, so ``rm -r``
on the directory is always safe.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import tempfile
from pathlib import Path
from typing import Optional

from repro.runner.fingerprint import code_fingerprint
from repro.runner.results import CompletedRun

_DEFAULT_DIR = "~/.cache/repro-jade"


def _canon(value):
    """Recursively render a config value as plain JSON-able data.

    Dataclasses and plain attribute-bag objects become ``{"__type__": name,
    ...fields}``; callables are rejected because they cannot be described
    by value (a config holding one is not cacheable).
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_canon(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _canon(v) for k, v in sorted(value.items())}
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        out = {"__type__": type(value).__name__}
        for f in dataclasses.fields(value):
            out[f.name] = _canon(getattr(value, f.name))
        return out
    if callable(value):
        raise TypeError(
            f"config contains a callable ({value!r}); not describable by value"
        )
    if hasattr(value, "__dict__") or hasattr(type(value), "__slots__"):
        out = {"__type__": type(value).__name__}
        attrs = getattr(value, "__dict__", None)
        if attrs is None:
            attrs = {
                s: getattr(value, s)
                for s in type(value).__slots__
                if hasattr(value, s)
            }
        for name in sorted(attrs):
            out[name] = _canon(attrs[name])
        return out
    raise TypeError(f"cannot canonicalize {type(value).__name__}: {value!r}")


def describe_config(config) -> str:
    """Canonical text form of an :class:`ExperimentConfig` (stable across
    processes and sessions; the cache-key input)."""
    return json.dumps(_canon(config), sort_keys=True, separators=(",", ":"))


class ResultCache:
    """Load/store :class:`CompletedRun` payloads by experiment identity."""

    def __init__(self, root: Optional[Path] = None) -> None:
        if root is None:
            root = Path(
                os.environ.get("REPRO_CACHE_DIR", _DEFAULT_DIR)
            ).expanduser()
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    # ------------------------------------------------------------------
    def key_for(self, config, fingerprint: Optional[str] = None) -> str:
        if fingerprint is None:
            fingerprint = code_fingerprint()
        digest = hashlib.sha256()
        digest.update(describe_config(config).encode())
        digest.update(b"\n")
        digest.update(fingerprint.encode())
        return digest.hexdigest()

    def _paths(self, key: str) -> tuple[Path, Path]:
        return self.root / f"{key}.pkl", self.root / f"{key}.json"

    # ------------------------------------------------------------------
    def load(self, key: str) -> Optional[CompletedRun]:
        payload, _ = self._paths(key)
        try:
            with open(payload, "rb") as fh:
                run = pickle.load(fh)
        except (OSError, pickle.UnpicklingError, EOFError):
            self.misses += 1
            return None
        self.hits += 1
        return run

    def store(self, key: str, run: CompletedRun, config=None) -> Path:
        """Persist atomically (write-rename, so readers never see a torn
        entry); returns the payload path."""
        self.root.mkdir(parents=True, exist_ok=True)
        payload, sidecar = self._paths(key)
        blob = pickle.dumps(run, protocol=pickle.HIGHEST_PROTOCOL)
        fd, tmp = tempfile.mkstemp(dir=self.root, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                fh.write(blob)
            os.replace(tmp, payload)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        meta = {
            "key": key,
            "code_fingerprint": code_fingerprint(),
            "wall_time_s": run.wall_time_s,
            "events_processed": run.events_processed,
            "summary": run.summary(),
        }
        if config is not None:
            meta["config"] = json.loads(describe_config(config))
        sidecar.write_text(json.dumps(meta, indent=2, default=float) + "\n")
        return payload

    # ------------------------------------------------------------------
    def get_or_none(self, config) -> Optional[CompletedRun]:
        return self.load(self.key_for(config))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"ResultCache({self.root}, {self.hits} hits/{self.misses} misses)"
