"""Source fingerprint for cache invalidation.

A cached experiment result is only valid for the code that produced it.
Rather than tracking which modules an experiment touches (everything, in
practice — the simulation is one connected system), the cache key folds in
a single content hash over every ``.py`` file under the ``repro`` package.
Any source edit — even a comment — invalidates the whole cache; that is
deliberate, because a stale hit is far more expensive to debug than a
recomputed miss.
"""

from __future__ import annotations

import hashlib
from pathlib import Path
from typing import Optional

_cached: dict[str, str] = {}


def code_fingerprint(root: Optional[Path] = None) -> str:
    """Hex digest over the sorted relative paths and contents of every
    Python source file under ``root`` (default: the installed ``repro``
    package).  Memoized per process per root."""
    if root is None:
        import repro

        root = Path(repro.__file__).resolve().parent
    root = Path(root)
    key = str(root)
    hit = _cached.get(key)
    if hit is not None:
        return hit
    digest = hashlib.sha256()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    result = digest.hexdigest()
    _cached[key] = result
    return result
