"""Process-parallel experiment execution with cache short-circuiting.

Experiments are embarrassingly parallel — each (config, seed) builds its
own kernel and RNG streams — so a batch fans out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.  Determinism is
preserved: a run's result depends only on its config, never on scheduling,
so parallel and serial execution produce identical
:class:`~repro.runner.results.CompletedRun` payloads (asserted by tests).

The runner consults the :class:`~repro.runner.cache.ResultCache` before
dispatching and stores every fresh result, so a repeated ``repro bench``
(or a re-run benchmark session) costs one cache load per experiment.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ProcessPoolExecutor
from typing import Mapping, Optional, Sequence

from repro.runner.cache import ResultCache
from repro.runner.results import CompletedRun


def execute_config(config) -> CompletedRun:
    """Build, run, and distill one experiment (the worker entry point —
    must stay module-level so it is importable from a pool worker)."""
    from repro.jade.system import ManagedSystem

    t0 = time.perf_counter()
    system = ManagedSystem(config)
    system.run()
    return CompletedRun.from_system(system, time.perf_counter() - t0)


class ExperimentRunner:
    """Run batches of :class:`ExperimentConfig`, in parallel, through the
    result cache.

    ``parallel=False`` (or ``REPRO_RUNNER_SERIAL=1``) degrades to in-process
    serial execution — same results, no pool; useful under debuggers and on
    single-core machines where worker start-up costs more than it saves.
    ``cache=None`` disables caching entirely (every run computes).
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        parallel: bool = True,
    ) -> None:
        if os.environ.get("REPRO_RUNNER_SERIAL"):
            parallel = False
        self.max_workers = max_workers or min(8, os.cpu_count() or 1)
        self.cache = cache
        self.parallel = parallel and self.max_workers > 1

    # ------------------------------------------------------------------
    def run(self, config) -> CompletedRun:
        """Run one experiment (cache-aware)."""
        return self.run_many({"run": config})["run"]

    def run_many(self, configs: Mapping[str, object]) -> dict[str, CompletedRun]:
        """Run a labelled batch; returns ``{label: CompletedRun}``.

        Cache hits resolve immediately; misses execute concurrently (or
        serially without a pool) and are stored on completion.
        """
        results: dict[str, CompletedRun] = {}
        pending: list[tuple[str, object, Optional[str]]] = []
        for label, config in configs.items():
            if self.cache is not None:
                key = self.cache.key_for(config)
                hit = self.cache.load(key)
                if hit is not None:
                    results[label] = hit
                    continue
                pending.append((label, config, key))
            else:
                pending.append((label, config, None))

        if not pending:
            return results

        if self.parallel and len(pending) > 1:
            workers = min(self.max_workers, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {
                    label: pool.submit(execute_config, config)
                    for label, config, _ in pending
                }
                fresh = {label: futures[label].result() for label, _, _ in pending}
        else:
            fresh = {
                label: execute_config(config) for label, config, _ in pending
            }

        for label, config, key in pending:
            run = fresh[label]
            if self.cache is not None and key is not None:
                self.cache.store(key, run, config=config)
            results[label] = run
        return results

    def run_seeds(
        self, make_config, seeds: Sequence[int], prefix: str = "seed"
    ) -> dict[int, CompletedRun]:
        """Replicate one experiment across seeds: ``make_config(seed)``
        builds each arm's config.  Returns ``{seed: CompletedRun}``."""
        labelled = {f"{prefix}-{s}": make_config(s) for s in seeds}
        results = self.run_many(labelled)
        return {s: results[f"{prefix}-{s}"] for s in seeds}
