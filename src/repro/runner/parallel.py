"""Process-parallel fan-out with cache short-circuiting.

Two layers live here:

* :func:`fanout_map` — a generic, order-preserving process-pool map used
  by everything in the repo that fans independent work out over cores:
  the experiment runner below, the what-if engine's candidate branches
  (:mod:`repro.capacity.whatif`), and the ``repro sweep`` grid.  It
  degrades to an in-process loop when parallelism cannot help (one item,
  one worker, ``REPRO_RUNNER_SERIAL=1``) or would deadlock (already
  inside a pool worker), so callers never special-case.
* :class:`ExperimentRunner` — batch execution of
  :class:`~repro.jade.system.ExperimentConfig` through the
  :class:`~repro.runner.cache.ResultCache`.

Experiments are embarrassingly parallel — each (config, seed) builds its
own kernel and RNG streams — so a batch fans out over a
:class:`~concurrent.futures.ProcessPoolExecutor`.  Determinism is
preserved: a run's result depends only on its config, never on scheduling,
so parallel and serial execution produce identical
:class:`~repro.runner.results.CompletedRun` payloads (asserted by tests).

The runner consults the :class:`~repro.runner.cache.ResultCache` before
dispatching and stores every fresh result, so a repeated ``repro bench``
(or a re-run benchmark session) costs one cache load per experiment.
"""

from __future__ import annotations

import atexit
import os
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Mapping, Optional, Sequence, TypeVar

from repro.runner.cache import ResultCache
from repro.runner.results import CompletedRun

T = TypeVar("T")
R = TypeVar("R")

#: environment marker set in pool workers so nested fan-outs (e.g. a
#: proactive manager running inside a pooled experiment) stay in-process
#: instead of forking a pool-of-pools
_POOL_MARKER = "REPRO_POOL_WORKER"

#: lifetime counters for the shared pool, surfaced by the bench report:
#: ``created``/``spawn_s`` count executor constructions and their wall
#: cost, ``fanouts`` the parallel fan-outs served, ``reused`` how many of
#: those found a warm pool already standing (the spawn overhead saved).
POOL_STATS = {"created": 0, "spawn_s": 0.0, "fanouts": 0, "reused": 0}

_shared_pool: Optional[ProcessPoolExecutor] = None
_shared_pool_workers = 0


def default_workers() -> int:
    """Pool width when the caller does not choose: bounded by cores."""
    return min(8, os.cpu_count() or 1)


def in_pool_worker() -> bool:
    """True inside a :func:`fanout_map` worker process."""
    return bool(os.environ.get(_POOL_MARKER))


def _pool_initializer() -> None:
    """Runs once in every worker: mark it so nested fan-outs stay
    in-process (module-level so it pickles under spawn)."""
    os.environ[_POOL_MARKER] = "1"


def _get_pool(workers: int) -> ProcessPoolExecutor:
    """The shared executor, (re)created only when more workers are needed.

    Worker processes are stateless between tasks (every task imports and
    builds its own kernel), so one pool safely serves every fan-out in
    the process — bench sections, sweep grids, federation epochs — and
    each reuse saves a full executor spawn.
    """
    global _shared_pool, _shared_pool_workers
    if _shared_pool is not None and _shared_pool_workers >= workers:
        POOL_STATS["reused"] += 1
        return _shared_pool
    if _shared_pool is not None:
        _shared_pool.shutdown(wait=True)
    t0 = time.perf_counter()
    _shared_pool = ProcessPoolExecutor(
        max_workers=workers, initializer=_pool_initializer
    )
    _shared_pool_workers = workers
    POOL_STATS["created"] += 1
    POOL_STATS["spawn_s"] += time.perf_counter() - t0
    return _shared_pool


def shutdown_pool() -> None:
    """Tear down the shared executor (atexit, tests, broken-pool reset)."""
    global _shared_pool, _shared_pool_workers
    if _shared_pool is not None:
        _shared_pool.shutdown(wait=True)
        _shared_pool = None
        _shared_pool_workers = 0


atexit.register(shutdown_pool)


def pool_stats() -> dict:
    """Snapshot of :data:`POOL_STATS` plus the estimated spawn seconds
    saved by reuse (reuses × mean observed spawn cost)."""
    stats = dict(POOL_STATS)
    mean_spawn = (
        POOL_STATS["spawn_s"] / POOL_STATS["created"]
        if POOL_STATS["created"]
        else 0.0
    )
    stats["est_spawn_saved_s"] = POOL_STATS["reused"] * mean_spawn
    return stats


def fanout_map(
    fn: Callable[[T], R],
    items: Sequence[T],
    max_workers: Optional[int] = None,
    parallel: bool = True,
) -> list[R]:
    """Order-preserving map over the shared process pool.

    ``fn`` must be a module-level callable and ``items`` picklable.  The
    result list matches ``items`` order exactly, so a parallel fan-out is
    a drop-in replacement for ``[fn(it) for it in items]`` — callers rely
    on this for byte-identical parallel-vs-serial reports.

    Runs in-process (same results, no pool) when ``parallel`` is off,
    fewer than two items or workers are available, ``REPRO_RUNNER_SERIAL``
    is set, or the caller is itself a pool worker.  The executor persists
    across calls (see :func:`_get_pool`); a broken pool — a worker killed
    mid-task — is torn down and the fan-out retried once on a fresh one.
    """
    items = list(items)
    if max_workers is None:
        max_workers = default_workers()
    workers = min(max_workers, len(items))
    if (
        not parallel
        or workers < 2
        or os.environ.get("REPRO_RUNNER_SERIAL")
        or in_pool_worker()
    ):
        return [fn(item) for item in items]
    POOL_STATS["fanouts"] += 1
    try:
        return list(_get_pool(workers).map(fn, items))
    except BrokenProcessPool:
        shutdown_pool()
        return list(_get_pool(workers).map(fn, items))


def execute_config(config) -> CompletedRun:
    """Build, run, and distill one experiment (the worker entry point —
    must stay module-level so it is importable from a pool worker).

    A :class:`~repro.federation.spec.FederationSpec` payload routes
    through the epoch coordinator instead (regions run serially inside
    the cell — the sweep/bench already fans cells out at this level)."""
    from repro.federation.spec import FederationSpec
    from repro.jade.system import ManagedSystem

    if isinstance(config, FederationSpec):
        from repro.federation.coordinator import run_federation

        return run_federation(config, parallel=False)

    t0 = time.perf_counter()
    system = ManagedSystem(config)
    system.run()
    return CompletedRun.from_system(system, time.perf_counter() - t0)


class ExperimentRunner:
    """Run batches of :class:`ExperimentConfig`, in parallel, through the
    result cache.

    ``parallel=False`` (or ``REPRO_RUNNER_SERIAL=1``) degrades to in-process
    serial execution — same results, no pool; useful under debuggers and on
    single-core machines where worker start-up costs more than it saves.
    ``cache=None`` disables caching entirely (every run computes).
    """

    def __init__(
        self,
        max_workers: Optional[int] = None,
        cache: Optional[ResultCache] = None,
        parallel: bool = True,
    ) -> None:
        if os.environ.get("REPRO_RUNNER_SERIAL"):
            parallel = False
        self.max_workers = max_workers or default_workers()
        self.cache = cache
        self.parallel = parallel and self.max_workers > 1

    # ------------------------------------------------------------------
    def run(self, config) -> CompletedRun:
        """Run one experiment (cache-aware)."""
        return self.run_many({"run": config})["run"]

    def run_many(self, configs: Mapping[str, object]) -> dict[str, CompletedRun]:
        """Run a labelled batch; returns ``{label: CompletedRun}``.

        Cache hits resolve immediately; misses execute concurrently (or
        serially without a pool) and are stored on completion.
        """
        results: dict[str, CompletedRun] = {}
        pending: list[tuple[str, object, Optional[str]]] = []
        for label, config in configs.items():
            if self.cache is not None:
                key = self.cache.key_for(config)
                hit = self.cache.load(key)
                if hit is not None:
                    results[label] = hit
                    continue
                pending.append((label, config, key))
            else:
                pending.append((label, config, None))

        if not pending:
            return results

        fresh = fanout_map(
            execute_config,
            [config for _, config, _ in pending],
            max_workers=self.max_workers,
            parallel=self.parallel,
        )
        for (label, config, key), run in zip(pending, fresh):
            if self.cache is not None and key is not None:
                self.cache.store(key, run, config=config)
            results[label] = run
        return results

    def run_seeds(
        self, make_config, seeds: Sequence[int], prefix: str = "seed"
    ) -> dict[int, CompletedRun]:
        """Replicate one experiment across seeds: ``make_config(seed)``
        builds each arm's config.  Returns ``{seed: CompletedRun}``."""
        labelled = {f"{prefix}-{s}": make_config(s) for s in seeds}
        results = self.run_many(labelled)
        return {s: results[f"{prefix}-{s}"] for s in seeds}
