"""Picklable experiment results.

A live :class:`~repro.jade.system.ManagedSystem` cannot cross a process
boundary (the kernel holds generator frames and callback closures), and it
cannot be cached on disk for the same reason.  :class:`CompletedRun` is the
transportable distillate: the collector, the config, and the handful of
counters the benchmarks and examples read off the live object.  Everything
in it is plain data, so two runs of the same config produce structurally
identical pickles.
"""

from __future__ import annotations

from typing import Optional


class TierStats:
    """Reconfiguration counters of one :class:`TierManager`."""

    __slots__ = ("name", "grows_completed", "shrinks_completed", "replicas")

    def __init__(
        self, name: str, grows_completed: int, shrinks_completed: int, replicas: int
    ) -> None:
        self.name = name
        self.grows_completed = grows_completed
        self.shrinks_completed = shrinks_completed
        self.replicas = replicas

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TierStats({self.name}, +{self.grows_completed}/"
            f"-{self.shrinks_completed}, x{self.replicas})"
        )


class ProactiveStats:
    """Decision counters of the proactive capacity manager."""

    __slots__ = (
        "forecasts_issued",
        "evaluations",
        "grows_triggered",
        "shrinks_triggered",
        "decisions_suppressed",
    )

    def __init__(
        self,
        forecasts_issued: int,
        evaluations: int,
        grows_triggered: int,
        shrinks_triggered: int,
        decisions_suppressed: int,
    ) -> None:
        self.forecasts_issued = forecasts_issued
        self.evaluations = evaluations
        self.grows_triggered = grows_triggered
        self.shrinks_triggered = shrinks_triggered
        self.decisions_suppressed = decisions_suppressed


class ChaosStats:
    """Plain-data distillate of a chaos campaign execution: the fault
    log from the injector plus the recovery manager's detection log —
    everything :mod:`repro.chaos.scorecard` reads."""

    __slots__ = (
        "campaign",
        "detector",
        "faults_injected",
        "events",
        "detections",
        "failures_seen",
        "repairs_started",
        "pending_repairs",
        "detector_suspicions",
    )

    def __init__(
        self,
        campaign: str,
        detector: str,
        faults_injected: int,
        events: list,
        detections: list,
        failures_seen: int,
        repairs_started: int,
        pending_repairs: int,
        detector_suspicions: int,
    ) -> None:
        self.campaign = campaign
        self.detector = detector
        self.faults_injected = faults_injected
        self.events = events
        self.detections = detections
        self.failures_seen = failures_seen
        self.repairs_started = repairs_started
        self.pending_repairs = pending_repairs
        self.detector_suspicions = detector_suspicions

    @classmethod
    def from_system(cls, system) -> Optional["ChaosStats"]:
        injector = getattr(system, "chaos", None)
        if injector is None:
            return None
        recovery = getattr(system, "recovery", None)
        live_detector = getattr(recovery, "detector", None)
        return cls(
            campaign=injector.campaign.name,
            detector=injector.campaign.detector,
            faults_injected=injector.faults_injected,
            events=list(injector.events),
            detections=list(recovery.detections) if recovery is not None else [],
            failures_seen=recovery.failures_seen if recovery is not None else 0,
            repairs_started=recovery.repairs_started if recovery is not None else 0,
            pending_repairs=recovery.pending_repairs if recovery is not None else 0,
            detector_suspicions=(
                live_detector.suspicions if live_detector is not None else 0
            ),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ChaosStats({self.campaign}, {self.faults_injected} faults, "
            f"{self.repairs_started} repairs)"
        )


class DeployStats:
    """Plain-data distillate of a deployment execution: the deploy
    manager's event/capacity logs plus the canary verdict — everything
    :mod:`repro.deploy.scorecard` reads."""

    __slots__ = (
        "scenario",
        "strategy",
        "version",
        "fleet",
        "verdict",
        "reason",
        "events",
        "capacity",
        "canary",
        "started_t",
        "verdict_t",
        "completed_t",
    )

    def __init__(
        self,
        scenario: str,
        strategy: str,
        version: str,
        fleet: int,
        verdict: Optional[str],
        reason: str,
        events: list,
        capacity: list,
        canary: dict,
        started_t: float,
        verdict_t: float,
        completed_t: float,
    ) -> None:
        self.scenario = scenario
        self.strategy = strategy
        self.version = version
        self.fleet = fleet
        self.verdict = verdict
        self.reason = reason
        self.events = events
        self.capacity = capacity
        self.canary = canary
        self.started_t = started_t
        self.verdict_t = verdict_t
        self.completed_t = completed_t

    @classmethod
    def from_system(cls, system) -> Optional["DeployStats"]:
        manager = getattr(system, "deploy", None)
        if manager is None:
            return None
        scenario = manager.scenario
        return cls(
            scenario=scenario.name,
            strategy=scenario.strategy,
            version=scenario.version.label,
            fleet=scenario.fleet,
            verdict=manager.verdict,
            reason=manager.verdict_reason,
            events=list(manager.events),
            capacity=[list(entry) for entry in manager.capacity],
            canary=dict(manager.canary_metrics),
            started_t=manager.started_t,
            verdict_t=manager.verdict_t,
            completed_t=manager.completed_t,
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DeployStats({self.scenario}, {self.strategy}, "
            f"verdict={self.verdict})"
        )


class MarketStats:
    """Plain-data distillate of a heterogeneous-fleet run: the provision
    ledger, price tape, interruption and rebalance logs, and the exact
    integrated fleet cost — everything :mod:`repro.market.costs` reads."""

    __slots__ = (
        "scenario",
        "policy",
        "on_demand_floor",
        "fleet_cost",
        "node_seconds",
        "provisions",
        "price_history",
        "interruptions",
        "rebalances",
        "held_seconds_by_owner",
        "nodes_provisioned",
    )

    def __init__(
        self,
        scenario: str,
        policy: str,
        on_demand_floor: float,
        fleet_cost: float,
        node_seconds: float,
        provisions: list,
        price_history: dict,
        interruptions: list,
        rebalances: list,
        held_seconds_by_owner: dict,
        nodes_provisioned: int,
    ) -> None:
        self.scenario = scenario
        self.policy = policy
        self.on_demand_floor = on_demand_floor
        self.fleet_cost = fleet_cost
        self.node_seconds = node_seconds
        self.provisions = provisions
        self.price_history = price_history
        self.interruptions = interruptions
        self.rebalances = rebalances
        self.held_seconds_by_owner = held_seconds_by_owner
        self.nodes_provisioned = nodes_provisioned

    @classmethod
    def from_system(cls, system) -> Optional["MarketStats"]:
        engine = getattr(system, "market", None)
        if engine is None:
            return None
        scenario = engine.scenario
        return cls(
            scenario=scenario.name,
            policy=scenario.policy,
            on_demand_floor=scenario.on_demand_floor,
            fleet_cost=engine.fleet_cost(),
            node_seconds=engine.allocator.node_seconds(),
            provisions=[p.as_dict() for p in engine.allocator.provisions],
            price_history=engine.price_history(),
            interruptions=list(engine.interruptions),
            rebalances=list(engine.rebalances),
            held_seconds_by_owner=dict(engine.cluster.node_seconds_by_owner()),
            nodes_provisioned=len(engine.allocator.provisions),
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MarketStats({self.scenario}, {self.nodes_provisioned} nodes, "
            f"cost={self.fleet_cost:.2f})"
        )


class FluidStats:
    """Plain-data distillate of a hybrid fluid/discrete workload run:
    tick/handoff counters from :class:`repro.workload.fluid.HybridWorkload`."""

    __slots__ = (
        "ticks",
        "completions",
        "handoffs_to_fluid",
        "handoffs_to_discrete",
        "peak_fluid_population",
        "threshold",
    )

    def __init__(
        self,
        ticks: int,
        completions: int,
        handoffs_to_fluid: int,
        handoffs_to_discrete: int,
        peak_fluid_population: int,
        threshold: int,
    ) -> None:
        self.ticks = ticks
        self.completions = completions
        self.handoffs_to_fluid = handoffs_to_fluid
        self.handoffs_to_discrete = handoffs_to_discrete
        self.peak_fluid_population = peak_fluid_population
        self.threshold = threshold

    @classmethod
    def from_system(cls, system) -> Optional["FluidStats"]:
        emulator = getattr(system, "emulator", None)
        stats = getattr(emulator, "fluid_stats", None)
        if stats is None:
            return None
        return cls(**stats())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FluidStats({self.ticks} ticks, {self.completions} completions, "
            f"peak={self.peak_fluid_population})"
        )


class CompletedRun:
    """Everything an analysis needs from a finished experiment.

    Exposes the same read surface the benchmarks use on a live
    :class:`ManagedSystem` — ``collector``, ``config``, ``app_tier`` /
    ``db_tier`` counters, optional ``proactive`` and ``chaos`` stats,
    and :meth:`summary` — so the two are interchangeable downstream.
    """

    __slots__ = (
        "config",
        "collector",
        "app_tier",
        "db_tier",
        "proactive",
        "chaos",
        "deploy",
        "market",
        "fluid",
        "events_processed",
        "wall_time_s",
    )

    def __init__(
        self,
        config,
        collector,
        app_tier: TierStats,
        db_tier: TierStats,
        proactive: Optional[ProactiveStats],
        events_processed: int,
        wall_time_s: float,
        chaos: Optional[ChaosStats] = None,
        deploy: Optional[DeployStats] = None,
        market: Optional[MarketStats] = None,
        fluid: Optional[FluidStats] = None,
    ) -> None:
        self.config = config
        self.collector = collector
        self.app_tier = app_tier
        self.db_tier = db_tier
        self.proactive = proactive
        self.chaos = chaos
        self.deploy = deploy
        self.market = market
        self.fluid = fluid
        self.events_processed = events_processed
        self.wall_time_s = wall_time_s

    @classmethod
    def from_system(cls, system, wall_time_s: float) -> "CompletedRun":
        """Distill a finished :class:`ManagedSystem`."""
        proactive = None
        live = getattr(system, "proactive", None)
        if live is not None:
            proactive = ProactiveStats(
                live.forecasts_issued,
                live.evaluations,
                live.grows_triggered,
                live.shrinks_triggered,
                live.decisions_suppressed,
            )
        return cls(
            config=system.config,
            collector=system.collector,
            chaos=ChaosStats.from_system(system),
            deploy=DeployStats.from_system(system),
            market=MarketStats.from_system(system),
            fluid=FluidStats.from_system(system),
            app_tier=TierStats(
                "application",
                system.app_tier.grows_completed,
                system.app_tier.shrinks_completed,
                len(system.app_tier.replicas),
            ),
            db_tier=TierStats(
                "database",
                system.db_tier.grows_completed,
                system.db_tier.shrinks_completed,
                len(system.db_tier.replicas),
            ),
            proactive=proactive,
            events_processed=system.kernel.events_processed,
            wall_time_s=wall_time_s,
        )

    def summary(self) -> dict[str, float]:
        """Same table as :meth:`ManagedSystem.summary`."""
        col = self.collector
        horizon = self.config.profile.duration_s
        return {
            "completed": col.completed_requests,
            "failed": col.failed_requests,
            "throughput_rps": col.throughput(0.0, horizon),
            "latency_mean_ms": col.latency_summary()["mean"] * 1e3,
            "latency_p95_ms": col.latency_summary()["p95"] * 1e3,
            "app_replicas_max": (
                col.tier_replicas["application"].max()
                if "application" in col.tier_replicas
                else 1
            ),
            "db_replicas_max": (
                col.tier_replicas["database"].max()
                if "database" in col.tier_replicas
                else 1
            ),
            "node_cpu_mean": col.node_cpu.mean(),
            "node_mem_mean": col.node_memory.mean(),
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CompletedRun(seed={self.config.seed}, "
            f"{self.collector.completed_requests} completed, "
            f"{self.events_processed} events, {self.wall_time_s:.2f}s wall)"
        )
