"""``repro sweep`` — grid fan-out of experiments over the runner.

A sweep is the repo's generic parameter-exploration harness: the cross
product of seeds × time scales × replica policies × client cohort sizes,
each cell one :class:`~repro.jade.system.ExperimentConfig` ramp run,
fanned out through the :class:`~repro.runner.parallel.ExperimentRunner`
(process pool + content-addressed cache, so re-running a sweep with an
overlapping grid only computes the new cells).  Results flatten to one
row per cell — grid coordinates plus the standard run summary — written
as CSV (for plotting) and/or JSON (for programmatic diffing).

Policies:

* ``static``  — fixed one-replica tiers (the paper's unmanaged baseline);
* ``managed`` — the reactive self-sizing managers of §5.2;
* ``proactive`` — reactive managers plus the forecasting capacity planner.

The optional **fleet** axis crosses every cell with a node-market policy
(``--fleet on-demand,spot-heavy``): ``uniform`` is the paper's flat pool;
any other value names a :data:`repro.market.scenario.PRESETS` entry and
runs the cell on a heterogeneous fleet, adding a ``fleet_cost`` column.

The optional **controller** axis crosses every cell with a named
control-loop policy plugin (``--controllers
"default,queue-model,forecast:lead_s=90"``): ``default`` keeps each
cell's legacy reactor selection, any other value is a
:meth:`repro.policy.PolicyConfig.parse` string installed on both tier
loops.  Like the fleet/fluid axes, the label only grows a suffix off the
default, so pre-existing sweep labels (and cache keys) survive.
"""

from __future__ import annotations

import csv
import json
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Sequence

from repro.runner.parallel import ExperimentRunner

POLICIES = ("static", "managed", "proactive")

#: per-cell summary columns (after the grid coordinates)
SUMMARY_FIELDS = (
    "completed",
    "failed",
    "throughput_rps",
    "latency_mean_ms",
    "latency_p95_ms",
    "app_replicas_max",
    "db_replicas_max",
    "node_cpu_mean",
    "node_mem_mean",
    "wall_time_s",
)


@dataclass(frozen=True)
class SweepPoint:
    """One grid cell: a (policy, seed, scale, cohort, fleet, regions)
    coordinate.

    ``fluid`` switches the cell's workload onto the hybrid fluid/discrete
    engine (``fluid_threshold`` users and above run as flow updates).
    ``regions > 1`` federates the cell: the same ramp runs in every
    region under the global load balancer (``repro sweep --regions``),
    and the row reports the federation's global rollup."""

    policy: str
    seed: int
    scale: float
    cohort: int
    peak: int = 500
    fleet: str = "uniform"
    fluid: bool = False
    fluid_threshold: int = 0
    regions: int = 1
    controller: str = "default"

    def __post_init__(self) -> None:
        if self.policy not in POLICIES:
            raise ValueError(
                f"unknown policy {self.policy!r} (choose from {POLICIES})"
            )
        if self.seed < 0 or self.scale <= 0 or self.cohort < 1:
            raise ValueError("need seed >= 0, scale > 0, cohort >= 1")
        if self.regions < 1:
            raise ValueError("need regions >= 1")
        if self.regions > 1 and self.fleet != "uniform":
            raise ValueError("federated cells support the uniform fleet only")
        if self.fleet != "uniform":
            from repro.market.scenario import PRESETS

            if self.fleet not in PRESETS:
                raise ValueError(
                    f"unknown fleet {self.fleet!r} (choose 'uniform' or one "
                    f"of {tuple(sorted(PRESETS))})"
                )
        if self.controller != "default":
            if self.regions > 1:
                raise ValueError(
                    "federated cells support the default controller only"
                )
            if self.policy == "static":
                raise ValueError(
                    "controller policies need managed loops "
                    "(policy 'managed' or 'proactive')"
                )
            from repro.policy import POLICIES as PLUGINS, PolicyConfig

            name = PolicyConfig.parse(self.controller).name
            if name not in PLUGINS:
                raise ValueError(
                    f"unknown controller policy {name!r} "
                    f"(have: {sorted(PLUGINS)})"
                )

    @property
    def label(self) -> str:
        # fleet/fluid suffixes only off the defaults, so pre-existing
        # sweep labels (and their cache keys) are unchanged
        suffix = "" if self.fleet == "uniform" else f"-f{self.fleet}"
        if self.fluid:
            suffix += f"-fluid{self.fluid_threshold}"
        if self.regions > 1:
            suffix += f"-r{self.regions}"
        if self.controller != "default":
            suffix += f"-p{self.controller}"
        return (
            f"{self.policy}-s{self.seed}-x{self.scale:g}-c{self.cohort}"
            f"{suffix}"
        )

    def config(self):
        """The cell's experiment: the §5.2 ramp at this time scale and
        cohort size, under this replica policy (and node market, if the
        fleet axis is off ``uniform``)."""
        from repro.jade.system import ExperimentConfig
        from repro.workload.profiles import RampProfile

        if self.regions > 1:
            from repro.federation.spec import global_ramp

            return global_ramp(
                regions=self.regions,
                scale=self.scale,
                seed=self.seed,
                peak=self.peak,
                managed=self.policy != "static",
                proactive=self.policy == "proactive",
                fluid=self.fluid,
                fluid_threshold=self.fluid_threshold,
                cohort=self.cohort,
            )
        market = None
        recovery = False
        if self.fleet != "uniform":
            from repro.market.scenario import PRESETS

            market = PRESETS[self.fleet]()
            recovery = True  # spot reclaims need the repair path armed
        cfg = ExperimentConfig(
            profile=RampProfile(
                base=80 * self.cohort,
                peak=self.peak * self.cohort,
                step_clients=21 * self.cohort,
                warmup_s=300.0 * self.scale,
                step_period_s=60.0 * self.scale,
                cooldown_s=300.0 * self.scale,
            ),
            seed=self.seed,
            managed=self.policy != "static",
            proactive=self.policy == "proactive",
            cohort=self.cohort,
            hardware_scale=float(self.cohort),
            recovery=recovery,
            market=market,
            fluid=self.fluid,
            fluid_threshold=self.fluid_threshold,
        )
        if self.controller != "default":
            from dataclasses import replace

            from repro.policy import PolicyConfig

            pc = PolicyConfig.parse(self.controller)
            cfg.app_loop = replace(cfg.app_loop, policy=pc)
            cfg.db_loop = replace(cfg.db_loop, policy=pc)
        return cfg


@dataclass(frozen=True)
class SweepSpec:
    """The grid: every combination of the four axes, deterministic order
    (policy-major, then seed, scale, cohort)."""

    seeds: tuple[int, ...] = (1, 2)
    scales: tuple[float, ...] = (0.1,)
    policies: tuple[str, ...] = ("static", "managed")
    cohorts: tuple[int, ...] = (1,)
    peak: int = 500
    fleets: tuple[str, ...] = ("uniform",)
    fluid: bool = False
    fluid_threshold: int = 0
    regions: tuple[int, ...] = (1,)
    controllers: tuple[str, ...] = ("default",)

    def grid(self) -> list[SweepPoint]:
        return [
            SweepPoint(
                policy, seed, scale, cohort, self.peak, fleet,
                self.fluid, self.fluid_threshold, n_regions, controller,
            )
            for policy in self.policies
            for seed in self.seeds
            for scale in self.scales
            for cohort in self.cohorts
            for fleet in self.fleets
            for n_regions in self.regions
            for controller in self.controllers
        ]

    def to_record(self) -> dict:
        return {
            "seeds": list(self.seeds),
            "scales": list(self.scales),
            "policies": list(self.policies),
            "cohorts": list(self.cohorts),
            "peak": self.peak,
            "fleets": list(self.fleets),
            "fluid": self.fluid,
            "fluid_threshold": self.fluid_threshold,
            "regions": list(self.regions),
            "controllers": list(self.controllers),
            "cells": len(self.grid()),
        }


@dataclass
class SweepResult:
    """Rows plus provenance, as written to the JSON output."""

    spec: SweepSpec
    rows: list[dict] = field(default_factory=list)
    elapsed_s: float = 0.0
    cache: Optional[dict] = None

    def to_record(self) -> dict:
        record = {
            "spec": self.spec.to_record(),
            "rows": self.rows,
            "runs": len(self.rows),
            "elapsed_s": self.elapsed_s,
            "rows_per_s": (
                len(self.rows) / self.elapsed_s if self.elapsed_s > 0 else 0.0
            ),
        }
        if self.cache is not None:
            record["cache"] = self.cache
        return record


def run_sweep(
    spec: SweepSpec, runner: Optional[ExperimentRunner] = None
) -> SweepResult:
    """Execute the whole grid through the runner; one row per cell, in
    grid order regardless of scheduling."""
    if runner is None:
        runner = ExperimentRunner()
    points = spec.grid()
    configs = {point.label: point.config() for point in points}
    hits0 = misses0 = 0
    if runner.cache is not None:
        hits0, misses0 = runner.cache.hits, runner.cache.misses
    t0 = time.perf_counter()
    results = runner.run_many(configs)
    elapsed = time.perf_counter() - t0
    rows = []
    for point in points:
        run = results[point.label]
        row = {
            "label": point.label,
            "policy": point.policy,
            "seed": point.seed,
            "scale": point.scale,
            "cohort": point.cohort,
            "peak": point.peak,
            "fleet": point.fleet,
            "regions": point.regions,
            "controller": point.controller,
        }
        summary = run.summary()
        for name in SUMMARY_FIELDS:
            if name == "wall_time_s":
                row[name] = run.wall_time_s
            else:
                row[name] = summary[name]
        # fleet-cost column: the exact integrated cost on a market cell,
        # the flat uniform-pool price everywhere else
        if run.market is not None:
            row["fleet_cost"] = run.market.fleet_cost
        elif point.regions > 1:
            # federated cell: uniform-pool cost summed over regions
            row["fleet_cost"] = run.fleet_cost
        else:
            from repro.market.costs import uniform_fleet_cost

            row["fleet_cost"] = uniform_fleet_cost(run.config)
        rows.append(row)
    cache = None
    if runner.cache is not None:
        cache = {
            "dir": str(runner.cache.root),
            "hits": runner.cache.hits - hits0,
            "misses": runner.cache.misses - misses0,
        }
    return SweepResult(spec=spec, rows=rows, elapsed_s=elapsed, cache=cache)


def write_sweep_csv(rows: Sequence[dict], path: str | Path) -> Path:
    """One row per grid cell, columns in stable order."""
    path = Path(path)
    if not rows:
        path.write_text("")
        return path
    columns = list(rows[0].keys())
    with open(path, "w", newline="") as fh:
        writer = csv.DictWriter(fh, fieldnames=columns)
        writer.writeheader()
        writer.writerows(rows)
    return path


def write_sweep_json(result: SweepResult, path: str | Path) -> Path:
    path = Path(path)
    path.write_text(
        json.dumps(result.to_record(), indent=2, default=float) + "\n"
    )
    return path
