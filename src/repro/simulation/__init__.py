"""Discrete-event simulation substrate.

This package provides the deterministic discrete-event machinery on which the
whole reproduction runs: an event kernel (:mod:`repro.simulation.kernel`),
lightweight generator-based processes (:mod:`repro.simulation.process`),
seeded random-stream management (:mod:`repro.simulation.rng`) and CPU
resource models (:mod:`repro.simulation.resources`).

The paper's experiments are time-based (1 s control periods, 60/90 s moving
averages, a 3000 s workload ramp); simulating time lets a full experiment run
in seconds of wall-clock while keeping every temporal constant identical to
the paper's.
"""

from repro.simulation.kernel import Event, SimKernel
from repro.simulation.process import Process, Signal, sleep, wait
from repro.simulation.resources import (
    CpuJob,
    CpuResource,
    FifoCpu,
    PsCpu,
    ThrashingCurve,
    constant_capacity,
)
from repro.simulation.rng import RngStreams

__all__ = [
    "CpuJob",
    "CpuResource",
    "Event",
    "FifoCpu",
    "Process",
    "PsCpu",
    "RngStreams",
    "Signal",
    "SimKernel",
    "ThrashingCurve",
    "constant_capacity",
    "sleep",
    "wait",
]
