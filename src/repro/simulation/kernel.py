"""Discrete-event simulation kernel.

A minimal, fast event kernel: a binary heap of timestamped callbacks with a
monotonically increasing sequence number for deterministic FIFO tie-breaking.
Everything in the reproduction (servers, probes, control loops, clients)
schedules work through one :class:`SimKernel` instance, so a fixed random
seed reproduces a run event-for-event.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, running twice...)."""


class Event:
    """A scheduled callback.

    Events are returned by :meth:`SimKernel.schedule` and can be cancelled
    with :meth:`cancel` (cancellation is O(1): the entry is tombstoned and
    skipped when popped).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn: Optional[Callable[..., Any]] = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the event from firing; idempotent."""
        self.cancelled = True
        self.fn = None  # drop references early
        self.args = ()

    def __lt__(self, other: "Event") -> bool:
        return (self.time, self.seq) < (other.time, other.seq)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} seq={self.seq} {state}>"


class SimKernel:
    """The event loop.

    Time is a float in *seconds* of simulated time, starting at 0.0.

    Example
    -------
    >>> k = SimKernel()
    >>> out = []
    >>> _ = k.schedule(1.5, out.append, "a")
    >>> _ = k.schedule(0.5, out.append, "b")
    >>> k.run()
    >>> out
    ['b', 'a']
    >>> k.now
    1.5
    """

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._stopped = False
        self.events_processed = 0
        #: cancelled events discarded when they reached the heap head
        #: (``pending`` counts them until then; they never count in
        #: ``events_processed``)
        self.tombstones_skipped = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return len(self._heap)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} s in the past")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is t={self._now})"
            )
        ev = Event(time, next(self._seq), fn, args)
        heapq.heappush(self._heap, ev)
        return ev

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at the current time (after pending events
        already scheduled for this instant)."""
        return self.schedule_at(self._now, fn, *args)

    def every(
        self,
        period: float,
        fn: Callable[..., Any],
        *args: Any,
        start: Optional[float] = None,
    ) -> "PeriodicTask":
        """Run ``fn(*args)`` every ``period`` seconds until cancelled.

        ``start`` is the absolute time of the first firing (defaults to
        ``now + period``).
        """
        if period <= 0:
            raise SimulationError("period must be positive")
        return PeriodicTask(self, period, fn, args, start)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def step(self) -> bool:
        """Run the next pending event. Returns False when the queue is empty."""
        heap = self._heap
        while heap:
            ev = heapq.heappop(heap)
            if ev.cancelled:
                self.tombstones_skipped += 1
                continue
            self._now = ev.time
            fn, args = ev.fn, ev.args
            ev.fn, ev.args = None, ()
            assert fn is not None
            fn(*args)
            self.events_processed += 1
            return True
        return False

    def run(self, until: Optional[float] = None) -> None:
        """Run events until the queue drains or simulated time reaches
        ``until`` (events at exactly ``until`` are executed; time is advanced
        to ``until`` even if the queue drains earlier)."""
        if self._running:
            raise SimulationError("kernel is already running")
        self._running = True
        self._stopped = False
        heap = self._heap
        try:
            while heap and not self._stopped:
                ev = heap[0]
                if ev.cancelled:
                    # Discard tombstones even past the horizon so ``pending``
                    # reflects live events only.
                    heapq.heappop(heap)
                    self.tombstones_skipped += 1
                    continue
                if until is not None and ev.time > until:
                    break
                heapq.heappop(heap)
                self._now = ev.time
                fn, args = ev.fn, ev.args
                ev.fn, ev.args = None, ()
                assert fn is not None
                fn(*args)
                self.events_processed += 1
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            self._now = until

    def stop(self) -> None:
        """Stop :meth:`run` after the current event returns."""
        self._stopped = True


class PeriodicTask:
    """A self-rescheduling task created by :meth:`SimKernel.every`."""

    __slots__ = ("_kernel", "period", "_fn", "_args", "_event", "_cancelled", "fired")

    def __init__(
        self,
        kernel: SimKernel,
        period: float,
        fn: Callable[..., Any],
        args: tuple,
        start: Optional[float],
    ) -> None:
        self._kernel = kernel
        self.period = period
        self._fn = fn
        self._args = args
        self._cancelled = False
        self.fired = 0
        first = kernel.now + period if start is None else start
        self._event = kernel.schedule_at(first, self._tick)

    def _tick(self) -> None:
        if self._cancelled:
            return
        self.fired += 1
        self._fn(*self._args)
        if not self._cancelled:
            self._event = self._kernel.schedule(self.period, self._tick)

    def cancel(self) -> None:
        """Stop future firings; idempotent."""
        self._cancelled = True
        self._event.cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled
