"""Discrete-event simulation kernel.

A minimal, fast event kernel: a binary heap of timestamped callbacks with a
monotonically increasing sequence number for deterministic FIFO tie-breaking.
Everything in the reproduction (servers, probes, control loops, clients)
schedules work through one :class:`SimKernel` instance, so a fixed random
seed reproduces a run event-for-event.

Three fast paths keep the hot loop cheap at scale:

* **Timer buckets** — all events that share an exact timestamp live in one
  heap entry (a :class:`_Bucket`) and are appended/drained in FIFO order in
  O(1).  Periodic probes and samplers fire on shared absolute grids
  (``first + k*period``), and every ``call_soon``/signal callback lands at
  the current instant, so steady-state runs collapse most heap traffic into
  list appends.
* **Event freelist** — fire-and-forget events (:meth:`SimKernel.post`,
  :meth:`SimKernel.post_in`) recycle :class:`Event` objects instead of
  allocating one per callback.  Only events whose handle is never exposed
  are pooled, so external ``cancel()`` semantics are unaffected.
* **Tuple-free ordering** — heap entries compare on ``time``/``seq``
  attributes directly rather than allocating a ``(time, seq)`` tuple per
  comparison.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Optional

#: maximum number of recycled Event objects kept per kernel
_FREELIST_CAP = 1024


class SimulationError(RuntimeError):
    """Raised for kernel misuse (scheduling in the past, running twice...)."""


class Event:
    """A scheduled callback.

    Events are returned by :meth:`SimKernel.schedule` and can be cancelled
    with :meth:`cancel` (cancellation is O(1): the entry is tombstoned and
    skipped when popped).
    """

    __slots__ = ("time", "seq", "fn", "args", "cancelled", "pooled")

    def __init__(self, time: float, seq: int, fn: Callable[..., Any], args: tuple):
        self.time = time
        self.seq = seq
        self.fn: Optional[Callable[..., Any]] = fn
        self.args = args
        self.cancelled = False
        #: internal fire-and-forget event, recycled after execution
        self.pooled = False

    def cancel(self) -> None:
        """Prevent the event from firing; idempotent."""
        self.cancelled = True
        self.fn = None  # drop references early
        self.args = ()

    def __lt__(self, other: "Event") -> bool:
        # Hot path: avoid building (time, seq) tuples per comparison.
        t, u = self.time, other.time
        if t != u:
            return t < u
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "cancelled" if self.cancelled else "pending"
        return f"<Event t={self.time:.6f} seq={self.seq} {state}>"


class _Bucket:
    """All events sharing one exact timestamp, in FIFO (seq) order.

    The first event scheduled at a time sits in the heap on its own; the
    second promotes the timestamp to a bucket.  Appends while the bucket is
    pending — or while it is being drained (``call_soon`` at the current
    instant) — are O(1) and preserve global FIFO order because appended
    events always carry higher sequence numbers.
    """

    __slots__ = ("time", "seq", "events")

    #: uniform interface with Event for the dispatch loop
    cancelled = False
    pooled = False

    def __init__(self, time: float, seq: int):
        self.time = time
        self.seq = seq
        self.events: list[Event] = []

    def __lt__(self, other) -> bool:
        t, u = self.time, other.time
        if t != u:
            return t < u
        return self.seq < other.seq

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"<Bucket t={self.time:.6f} n={len(self.events)}>"


class SimKernel:
    """The event loop.

    Time is a float in *seconds* of simulated time, starting at 0.0.

    Example
    -------
    >>> k = SimKernel()
    >>> out = []
    >>> _ = k.schedule(1.5, out.append, "a")
    >>> _ = k.schedule(0.5, out.append, "b")
    >>> k.run()
    >>> out
    ['b', 'a']
    >>> k.now
    1.5
    """

    def __init__(self) -> None:
        #: heap of (time, seq, Event | _Bucket): the key tuple is built once
        #: per push so heap comparisons run entirely in C
        self._heap: list = []
        #: pending time -> open entry at that time (Event until promoted)
        self._index: dict[float, Any] = {}
        self._seq = itertools.count()
        self._now = 0.0
        self._running = False
        self._stopped = False
        self._pending = 0
        #: bucket currently being drained (persists across stop()/step())
        self._cur_bucket: Optional[_Bucket] = None
        self._cur_i = 0
        self._freelist: list[Event] = []
        self.events_processed = 0
        #: cancelled events discarded when they reached the heap head
        #: (``pending`` counts them until then; they never count in
        #: ``events_processed``)
        self.tombstones_skipped = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self._now

    @property
    def pending(self) -> int:
        """Number of queued (possibly cancelled) events."""
        return self._pending

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(self, delay: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` to run ``delay`` seconds from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} s in the past")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: float, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at absolute simulated ``time``."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is t={self._now})"
            )
        ev = Event(time, next(self._seq), fn, args)
        self._enqueue(ev)
        return ev

    def call_soon(self, fn: Callable[..., Any], *args: Any) -> Event:
        """Schedule ``fn(*args)`` at the current time (after pending events
        already scheduled for this instant)."""
        ev = Event(self._now, next(self._seq), fn, args)
        self._enqueue(ev)
        return ev

    # -- fire-and-forget fast path -------------------------------------
    def post(self, fn: Callable[..., Any], *args: Any) -> None:
        """Like :meth:`call_soon` but returns no handle; the event object is
        recycled through an internal freelist.  Use for callbacks that are
        never cancelled (signal delivery, process resumption)."""
        self._post_at(self._now, fn, args)

    def post_in(self, delay: float, fn: Callable[..., Any], *args: Any) -> None:
        """Like :meth:`schedule` but returns no handle (see :meth:`post`)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule {delay} s in the past")
        self._post_at(self._now + delay, fn, args)

    def post_at(self, time: float, fn: Callable[..., Any], *args: Any) -> None:
        """Like :meth:`schedule_at` but returns no handle (see :meth:`post`).
        Callers that need to revoke a posted callback should guard it with
        their own generation token instead of cancelling."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at t={time} (now is t={self._now})"
            )
        self._post_at(time, fn, args)

    def _post_at(self, time: float, fn: Callable[..., Any], args: tuple) -> None:
        free = self._freelist
        if free:
            ev = free.pop()
            ev.time = time
            ev.seq = seq = next(self._seq)
            ev.fn = fn
            ev.args = args
            ev.cancelled = False
        else:
            ev = Event(time, seq := next(self._seq), fn, args)
            ev.pooled = True
        # _enqueue inlined (hot path: signal delivery, process wake-ups).
        index = self._index
        cur = index.get(time)
        if cur is None:
            index[time] = ev
            heapq.heappush(self._heap, (time, seq, ev))
        elif type(cur) is _Bucket:
            cur.events.append(ev)
        else:
            bucket = _Bucket(time, seq)
            bucket.events.append(ev)
            index[time] = bucket
            heapq.heappush(self._heap, (time, seq, bucket))
        self._pending += 1

    def _enqueue(self, ev: Event) -> None:
        index = self._index
        time = ev.time
        cur = index.get(time)
        if cur is None:
            index[time] = ev
            heapq.heappush(self._heap, (time, ev.seq, ev))
        elif type(cur) is _Bucket:
            cur.events.append(ev)
        else:
            bucket = _Bucket(time, ev.seq)
            bucket.events.append(ev)
            index[time] = bucket
            heapq.heappush(self._heap, (time, bucket.seq, bucket))
        self._pending += 1

    def every(
        self,
        period: float,
        fn: Callable[..., Any],
        *args: Any,
        start: Optional[float] = None,
    ) -> "PeriodicTask":
        """Run ``fn(*args)`` every ``period`` seconds until cancelled.

        ``start`` is the absolute time of the first firing (defaults to
        ``now + period``).
        """
        if period <= 0:
            raise SimulationError("period must be positive")
        return PeriodicTask(self, period, fn, args, start)

    # ------------------------------------------------------------------
    # Execution
    # ------------------------------------------------------------------
    def _recycle(self, ev: Event) -> None:
        ev.fn = None
        ev.args = ()
        if len(self._freelist) < _FREELIST_CAP:
            self._freelist.append(ev)

    def step(self) -> bool:
        """Run the next pending event. Returns False when the queue is empty."""
        heap = self._heap
        index = self._index
        while True:
            bucket = self._cur_bucket
            if bucket is not None:
                events = bucket.events
                i = self._cur_i
                if i < len(events):
                    ev = events[i]
                    self._cur_i = i + 1
                    self._pending -= 1
                    if ev.cancelled:
                        self.tombstones_skipped += 1
                        continue
                    fn, args = ev.fn, ev.args
                    if ev.pooled:
                        self._recycle(ev)
                    else:
                        ev.fn, ev.args = None, ()
                    assert fn is not None
                    fn(*args)
                    self.events_processed += 1
                    return True
                if index.get(bucket.time) is bucket:
                    del index[bucket.time]
                self._cur_bucket = None
                continue
            if not heap:
                return False
            head = heap[0][2]
            if head.cancelled:
                heapq.heappop(heap)
                self._pending -= 1
                self.tombstones_skipped += 1
                if index.get(head.time) is head:
                    del index[head.time]
                continue
            heapq.heappop(heap)
            self._now = head.time
            if type(head) is _Bucket:
                self._cur_bucket = head
                self._cur_i = 0
                continue
            if index.get(head.time) is head:
                del index[head.time]
            self._pending -= 1
            fn, args = head.fn, head.args
            if head.pooled:
                self._recycle(head)
            else:
                head.fn, head.args = None, ()
            assert fn is not None
            fn(*args)
            self.events_processed += 1
            return True

    def run(self, until: Optional[float] = None) -> None:
        """Run events until the queue drains or simulated time reaches
        ``until`` (events at exactly ``until`` are executed; time is advanced
        to ``until`` even if the queue drains earlier)."""
        if self._running:
            raise SimulationError("kernel is already running")
        self._running = True
        self._stopped = False
        heap = self._heap
        index = self._index
        heappop = heapq.heappop
        freelist = self._freelist
        try:
            while not self._stopped:
                bucket = self._cur_bucket
                if bucket is not None:
                    if until is not None and bucket.time > until:
                        break  # resumed with an earlier horizon
                    events = bucket.events
                    i = self._cur_i
                    if i < len(events):
                        ev = events[i]
                        self._cur_i = i + 1
                        self._pending -= 1
                        if ev.cancelled:
                            self.tombstones_skipped += 1
                            continue
                        fn, args = ev.fn, ev.args
                        ev.fn, ev.args = None, ()
                        if ev.pooled and len(freelist) < _FREELIST_CAP:
                            freelist.append(ev)
                        fn(*args)
                        self.events_processed += 1
                        continue
                    if index.get(bucket.time) is bucket:
                        del index[bucket.time]
                    self._cur_bucket = None
                    continue
                if not heap:
                    break
                head = heap[0][2]
                if head.cancelled:
                    # Discard tombstones even past the horizon so ``pending``
                    # reflects live events only.
                    heappop(heap)
                    self._pending -= 1
                    self.tombstones_skipped += 1
                    if index.get(head.time) is head:
                        del index[head.time]
                    continue
                if until is not None and head.time > until:
                    if type(head) is _Bucket:
                        # Compact tombstones inside the out-of-horizon bucket
                        # so ``pending`` reflects live events only.
                        live = [e for e in head.events if not e.cancelled]
                        dropped = len(head.events) - len(live)
                        if dropped:
                            self.tombstones_skipped += dropped
                            self._pending -= dropped
                            head.events[:] = live
                        if not live:
                            heappop(heap)
                            if index.get(head.time) is head:
                                del index[head.time]
                            continue
                    break
                heappop(heap)
                self._now = head.time
                if type(head) is _Bucket:
                    self._cur_bucket = head
                    self._cur_i = 0
                    continue
                cur = index.pop(head.time, None)
                if cur is not head and cur is not None:
                    index[head.time] = cur  # head was promoted away; restore
                self._pending -= 1
                fn, args = head.fn, head.args
                head.fn, head.args = None, ()
                if head.pooled and len(freelist) < _FREELIST_CAP:
                    freelist.append(head)
                fn(*args)
                self.events_processed += 1
        finally:
            self._running = False
        if until is not None and self._now < until and not self._stopped:
            self._now = until

    def stop(self) -> None:
        """Stop :meth:`run` after the current event returns."""
        self._stopped = True


class PeriodicTask:
    """A self-rescheduling task created by :meth:`SimKernel.every`.

    Firings are scheduled on the absolute grid ``first + k*period`` (not
    ``now + period`` from inside each tick), so long runs accumulate no
    floating-point phase drift and co-periodic tasks share exact timestamps
    (one timer bucket per instant instead of one heap entry per task).
    """

    __slots__ = (
        "_kernel",
        "period",
        "_fn",
        "_args",
        "_event",
        "_cancelled",
        "_first",
        "_k",
        "fired",
    )

    def __init__(
        self,
        kernel: SimKernel,
        period: float,
        fn: Callable[..., Any],
        args: tuple,
        start: Optional[float],
    ) -> None:
        self._kernel = kernel
        self.period = period
        self._fn = fn
        self._args = args
        self._cancelled = False
        self.fired = 0
        first = kernel.now + period if start is None else start
        self._first = first
        self._k = 0
        self._event = kernel.schedule_at(first, self._tick)

    def _tick(self) -> None:
        if self._cancelled:
            return
        self.fired += 1
        self._fn(*self._args)
        if not self._cancelled:
            self._k += 1
            self._event = self._kernel.schedule_at(
                self._first + self._k * self.period, self._tick
            )

    def cancel(self) -> None:
        """Stop future firings; idempotent."""
        self._cancelled = True
        self._event.cancel()

    @property
    def cancelled(self) -> bool:
        return self._cancelled
