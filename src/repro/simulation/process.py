"""Generator-based simulated processes.

Client emulators, state-reconciliation tasks and other sequential behaviours
are easiest to express as straight-line code interleaved with waits.  A
:class:`Process` drives a Python generator; the generator yields *commands*:

* ``sleep(dt)`` — suspend for ``dt`` seconds of simulated time;
* ``wait(signal)`` — suspend until a :class:`Signal` fires; the signal's
  value is returned by the ``yield`` expression.

Example
-------
>>> from repro.simulation import SimKernel, Process, Signal, sleep, wait
>>> k = SimKernel()
>>> done = Signal(k)
>>> def worker():
...     yield sleep(2.0)
...     done.succeed("finished")
>>> def waiter(log):
...     value = yield wait(done)
...     log.append((value, k.now))
>>> log = []
>>> _ = Process(k, worker())
>>> _ = Process(k, waiter(log))
>>> k.run()
>>> log
[('finished', 2.0)]
"""

from __future__ import annotations

from typing import Any, Callable, Generator, Iterator, Optional

from repro.simulation.kernel import SimKernel


class Signal:
    """A one-shot event carrying an optional value.

    Multiple processes (or plain callbacks) may wait on the same signal; all
    are resumed when :meth:`succeed` or :meth:`fail` fires.  Firing twice is
    an error — signals are one-shot by design (request completions, repairs,
    synchronization points).
    """

    __slots__ = ("_kernel", "_callbacks", "fired", "value", "error")

    def __init__(self, kernel: SimKernel):
        self._kernel = kernel
        # Lazily allocated: most signals (request/job completions) have at
        # most one waiter, many have none.
        self._callbacks: Optional[list[Callable[["Signal"], None]]] = None
        self.fired = False
        self.value: Any = None
        self.error: Optional[BaseException] = None

    def add_callback(self, fn: Callable[["Signal"], None]) -> None:
        """Run ``fn(self)`` when the signal fires (immediately if already
        fired)."""
        if self.fired:
            self._kernel.post(fn, self)
        elif self._callbacks is None:
            self._callbacks = [fn]
        else:
            self._callbacks.append(fn)

    def succeed(self, value: Any = None) -> None:
        """Fire the signal successfully with ``value``."""
        if self.fired:
            raise RuntimeError("Signal already fired")
        self.fired = True
        self.value = value
        callbacks = self._callbacks
        if callbacks is not None:
            self._callbacks = None
            post = self._kernel.post
            for fn in callbacks:
                post(fn, self)

    def fail(self, error: BaseException) -> None:
        """Fire the signal with an error; waiting processes see it raised."""
        if self.fired:
            raise RuntimeError("Signal already fired")
        self.fired = True
        self.error = error
        callbacks = self._callbacks
        if callbacks is not None:
            self._callbacks = None
            post = self._kernel.post
            for fn in callbacks:
                post(fn, self)


class _Sleep:
    __slots__ = ("duration",)

    def __init__(self, duration: float):
        self.duration = duration


class _Wait:
    __slots__ = ("signal",)

    def __init__(self, signal: Signal):
        self.signal = signal


def sleep(duration: float) -> _Sleep:
    """Command: suspend the yielding process for ``duration`` seconds."""
    return _Sleep(duration)


def wait(signal: Signal) -> _Wait:
    """Command: suspend the yielding process until ``signal`` fires."""
    return _Wait(signal)


class ProcessKilled(Exception):
    """Raised inside a process generator when it is killed."""


class Process:
    """Drives a generator as a simulated process.

    The process starts at the current simulated time (scheduled with
    ``call_soon``).  When the generator ends, :attr:`done` fires with the
    generator's return value (``StopIteration.value``).
    """

    def __init__(self, kernel: SimKernel, gen: Generator[Any, Any, Any], name: str = ""):
        if not isinstance(gen, Iterator):
            raise TypeError("Process expects a generator, got %r" % (gen,))
        self._kernel = kernel
        self._gen = gen
        self.name = name
        self.done = Signal(kernel)
        self.alive = True
        kernel.post(self._resume, None, None)

    def _resume(self, value: Any, error: Optional[BaseException]) -> None:
        if not self.alive:
            return
        try:
            if error is not None:
                command = self._gen.throw(error)
            else:
                command = self._gen.send(value)
        except StopIteration as stop:
            self.alive = False
            self.done.succeed(stop.value)
            return
        except ProcessKilled:
            self.alive = False
            self.done.succeed(None)
            return
        self._dispatch(command)

    def _dispatch(self, command: Any) -> None:
        if isinstance(command, _Sleep):
            # Fire-and-forget: a sleeping process is resumed, never cancelled
            # (kill() flips ``alive`` and the resume no-ops), so the pooled
            # path avoids one Event allocation per think-time.
            self._kernel.post_in(command.duration, self._resume, None, None)
        elif isinstance(command, _Wait):
            command.signal.add_callback(self._on_signal)
        elif isinstance(command, Signal):
            command.add_callback(self._on_signal)
        else:
            self.alive = False
            err = TypeError(f"process {self.name!r} yielded {command!r}")
            self.done.fail(err)
            raise err

    def _on_signal(self, signal: Signal) -> None:
        self._resume(signal.value, signal.error)

    def kill(self) -> None:
        """Terminate the process at its next resumption point.

        If the process is currently suspended, the generator is closed
        immediately and ``done`` fires.
        """
        if not self.alive:
            return
        self.alive = False
        self._gen.close()
        self.done.succeed(None)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "alive" if self.alive else "done"
        return f"<Process {self.name!r} {state}>"
